#include "churn/feed.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "support/contracts.h"
#include "support/rng.h"

namespace mg::churn {

namespace {

using graph::DynamicGraph;
using graph::Graph;
using graph::Vertex;

/// Advances the shared time cursor by a random gap sized so `events`
/// events spread over roughly `horizon_rounds`.
void advance_time(Rng& rng, const FeedOptions& options, std::uint64_t& t) {
  const std::uint64_t mean_gap =
      std::max<std::uint64_t>(1, options.horizon_rounds /
                                     std::max<std::size_t>(options.events, 1));
  t += rng.below(2 * mean_gap + 1);
}

/// Picks a legal insertion; returns false when none was found (dense or
/// tiny graph).
bool pick_addable(const DynamicGraph& g, const std::function<Vertex()>& pick,
                  Vertex& u, Vertex& v) {
  const Vertex n = g.vertex_count();
  if (n < 2) return false;
  for (int attempt = 0; attempt < 32; ++attempt) {
    u = pick();
    v = pick();
    if (u != v && !g.has_edge(u, v)) return true;
  }
  return false;
}

/// Picks a present, non-bridging edge; returns false when every edge is a
/// bridge (e.g. the graph is a tree).
bool pick_removable(const DynamicGraph& g, Rng& rng,
                    const std::function<Vertex()>& pick, Vertex& u,
                    Vertex& v) {
  const Graph& snap = g.snapshot();
  for (int attempt = 0; attempt < 32; ++attempt) {
    u = pick();
    const auto neighbors = snap.neighbors(u);
    if (neighbors.empty()) continue;
    v = neighbors[rng.below(neighbors.size())];
    if (g.is_removable(u, v)) return true;
  }
  return false;
}

void emit(ChurnFeed& feed, DynamicGraph& g, ChurnEvent event) {
  apply_event(g, event);
  feed.events.push_back(event);
}

/// Emits one node event (add, or remove-a-leaf when one exists).
void node_event(ChurnFeed& feed, DynamicGraph& g, Rng& rng,
                std::uint64_t time) {
  const Vertex n = g.vertex_count();
  if (n >= 3 && rng.chance(0.5)) {
    // Removing a degree-1 vertex always preserves connectivity.
    std::vector<Vertex> leaves;
    for (Vertex w = 0; w < n; ++w) {
      if (g.degree(w) == 1) leaves.push_back(w);
    }
    if (!leaves.empty()) {
      const Vertex leaf = leaves[rng.below(leaves.size())];
      emit(feed, g,
           {EventKind::kRemoveNode, leaf, graph::kNoVertex, time});
      return;
    }
  }
  emit(feed, g, {EventKind::kAddNode, static_cast<Vertex>(rng.below(n)),
                 graph::kNoVertex, time});
}

/// Shared uniform/hotspot driver; `pick` supplies the vertex bias.
ChurnFeed biased_feed(const Graph& g0, const FeedOptions& options,
                      const std::function<Vertex(DynamicGraph&, Rng&)>& bias) {
  DynamicGraph g(g0);
  Rng rng(options.seed);
  ChurnFeed feed;
  std::uint64_t t = 0;
  while (feed.events.size() < options.events) {
    advance_time(rng, options, t);
    if (options.allow_node_events &&
        rng.chance(options.node_event_fraction)) {
      node_event(feed, g, rng, t);
      continue;
    }
    const std::function<Vertex()> pick = [&] { return bias(g, rng); };
    Vertex u = 0;
    Vertex v = 0;
    if (rng.chance(options.add_fraction)) {
      if (pick_addable(g, pick, u, v)) {
        emit(feed, g, {EventKind::kAddEdge, u, v, t});
        continue;
      }
      if (pick_removable(g, rng, pick, u, v)) {
        emit(feed, g, {EventKind::kRemoveEdge, u, v, t});
        continue;
      }
    } else {
      if (pick_removable(g, rng, pick, u, v)) {
        emit(feed, g, {EventKind::kRemoveEdge, u, v, t});
        continue;
      }
      if (pick_addable(g, pick, u, v)) {
        emit(feed, g, {EventKind::kAddEdge, u, v, t});
        continue;
      }
    }
    break;  // neither direction legal (pathological tiny graph): stop
  }
  return feed;
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAddEdge:
      return "add_edge";
    case EventKind::kRemoveEdge:
      return "remove_edge";
    case EventKind::kAddNode:
      return "add_node";
    case EventKind::kRemoveNode:
      return "remove_node";
  }
  return "unknown";
}

std::pair<graph::Vertex, graph::Vertex> apply_event(graph::DynamicGraph& g,
                                                    const ChurnEvent& event) {
  switch (event.kind) {
    case EventKind::kAddEdge:
      g.add_edge(event.u, event.v);
      return {event.u, event.v};
    case EventKind::kRemoveEdge:
      g.remove_edge(event.u, event.v);
      return {event.u, event.v};
    case EventKind::kAddNode:
      return {event.u, g.add_node(event.u)};
    case EventKind::kRemoveNode:
      g.remove_node(event.u);
      return {event.u, graph::kNoVertex};
  }
  MG_EXPECTS_MSG(false, "unknown churn event kind");
  return {0, 0};
}

ChurnFeed uniform_feed(const Graph& g0, const FeedOptions& options) {
  return biased_feed(g0, options, [](DynamicGraph& g, Rng& rng) {
    return static_cast<Vertex>(rng.below(g.vertex_count()));
  });
}

ChurnFeed hotspot_feed(const Graph& g0, const FeedOptions& options) {
  // A fixed hot subset absorbs 80% of the endpoint picks; sampled once up
  // front from the seed so the workload is reproducible even as node
  // events grow or shrink the graph.
  std::vector<Vertex> ids(g0.vertex_count());
  std::iota(ids.begin(), ids.end(), Vertex{0});
  Rng setup(options.seed ^ 0x9e3779b97f4a7c15ULL);
  setup.shuffle(ids);
  const std::size_t hot_count =
      std::max<std::size_t>(2, ids.size() / 16);
  ids.resize(std::min(ids.size(), hot_count));
  return biased_feed(g0, options, [ids](DynamicGraph& g, Rng& rng) {
    if (rng.chance(0.8)) {
      const Vertex hot = ids[rng.below(ids.size())];
      if (hot < g.vertex_count()) return hot;
    }
    return static_cast<Vertex>(rng.below(g.vertex_count()));
  });
}

ChurnFeed partition_heal_feed(const Graph& g0, const FeedOptions& options) {
  DynamicGraph g(g0);
  Rng rng(options.seed);
  ChurnFeed feed;
  std::uint64_t t = 0;
  while (feed.events.size() < options.events) {
    const Graph& snap = g.snapshot();
    const Vertex n = snap.vertex_count();
    if (n < 4) break;
    // Grow a BFS ball around a random seed to ~n/3 vertices, then thin its
    // boundary down to a single bridge (the near-partition), then heal.
    const Vertex seed = static_cast<Vertex>(rng.below(n));
    const Vertex target = std::max<Vertex>(1, n / 3);
    std::vector<char> in_ball(n, 0);
    std::vector<Vertex> frontier{seed};
    in_ball[seed] = 1;
    Vertex ball_size = 1;
    for (std::size_t head = 0;
         head < frontier.size() && ball_size < target; ++head) {
      for (Vertex y : snap.neighbors(frontier[head])) {
        if (in_ball[y] || ball_size >= target) continue;
        in_ball[y] = 1;
        ++ball_size;
        frontier.push_back(y);
      }
    }
    std::vector<std::pair<Vertex, Vertex>> boundary;
    for (Vertex u = 0; u < n; ++u) {
      if (!in_ball[u]) continue;
      for (Vertex v : snap.neighbors(u)) {
        if (!in_ball[v]) boundary.emplace_back(u, v);
      }
    }
    if (boundary.size() <= 1) {
      // Already a near-partition: widen the cut instead so waves keep
      // making progress (the heal of this add comes from the next wave).
      Vertex u = 0;
      Vertex v = 0;
      const std::function<Vertex()> pick = [&] {
        return static_cast<Vertex>(rng.below(g.vertex_count()));
      };
      if (!pick_addable(g, pick, u, v)) break;
      advance_time(rng, options, t);
      emit(feed, g, {EventKind::kAddEdge, u, v, t});
      continue;
    }
    rng.shuffle(boundary);
    std::vector<std::pair<Vertex, Vertex>> cut;
    for (std::size_t i = 1; i < boundary.size(); ++i) {  // keep boundary[0]
      if (feed.events.size() >= options.events) break;
      const auto [u, v] = boundary[i];
      if (!g.has_edge(u, v) || !g.is_removable(u, v)) continue;
      advance_time(rng, options, t);
      emit(feed, g, {EventKind::kRemoveEdge, u, v, t});
      cut.push_back(boundary[i]);
    }
    for (auto it = cut.rbegin(); it != cut.rend(); ++it) {  // heal
      if (feed.events.size() >= options.events) break;
      advance_time(rng, options, t);
      emit(feed, g, {EventKind::kAddEdge, it->first, it->second, t});
    }
    if (cut.empty() && feed.events.size() < options.events) {
      // Every boundary edge was a bridge; fall back to uniform progress.
      Vertex u = 0;
      Vertex v = 0;
      const std::function<Vertex()> pick = [&] {
        return static_cast<Vertex>(rng.below(g.vertex_count()));
      };
      advance_time(rng, options, t);
      if (pick_addable(g, pick, u, v)) {
        emit(feed, g, {EventKind::kAddEdge, u, v, t});
      } else {
        break;
      }
    }
  }
  return feed;
}

}  // namespace mg::churn
