// Schedule inspector: reads a network as an edge list (file or stdin),
// runs a chosen algorithm, and prints the validated schedule, per-vertex
// timetables and a DOT rendering of the spanning tree — a debugging /
// teaching tool for the paper's construction.
//
//   $ ./schedule_inspector <edge-list-file> [simple|updown|concurrent|telephone]
//   $ echo "3 2
//     0 1
//     1 2" | ./schedule_inspector -
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "gossip/solve.h"
#include "gossip/timetable.h"
#include "graph/io.h"
#include "graph/properties.h"

int main(int argc, char** argv) {
  using namespace mg;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <edge-list-file|-> "
                 "[simple|updown|concurrent|telephone]\n",
                 argv[0]);
    return 2;
  }

  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  graph::Graph network(0);
  try {
    network = graph::from_edge_list(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }
  if (!graph::is_connected(network) || network.vertex_count() == 0) {
    std::fprintf(stderr, "network must be connected and non-empty\n");
    return 2;
  }

  auto algorithm = gossip::Algorithm::kConcurrentUpDown;
  if (argc > 2) {
    const std::string choice = argv[2];
    if (choice == "simple") {
      algorithm = gossip::Algorithm::kSimple;
    } else if (choice == "updown") {
      algorithm = gossip::Algorithm::kUpDown;
    } else if (choice == "telephone") {
      algorithm = gossip::Algorithm::kTelephone;
    } else if (choice != "concurrent") {
      std::fprintf(stderr, "unknown algorithm '%s'\n", choice.c_str());
      return 2;
    }
  }

  const auto sol = gossip::solve_gossip(network, algorithm);
  std::printf("algorithm: %s\n", gossip::algorithm_name(algorithm).c_str());
  std::printf("n = %u, radius = %u, schedule: %zu rounds, %zu transmissions\n",
              network.vertex_count(), sol.instance.radius(),
              sol.schedule.total_time(),
              sol.schedule.transmission_count());
  std::printf("validation: %s\n\n",
              sol.report.ok ? "OK" : sol.report.error.c_str());

  std::printf("schedule:\n%s\n", sol.schedule.to_string().c_str());

  std::printf("per-vertex timetables:\n");
  for (graph::Vertex v = 0; v < network.vertex_count(); ++v) {
    std::printf("vertex %u (message %u):\n%s\n", v,
                sol.instance.labels().label(v),
                gossip::render_timetable(
                    gossip::vertex_timetable(sol.instance, sol.schedule, v))
                    .c_str());
  }

  std::vector<std::string> labels;
  for (graph::Vertex v = 0; v < network.vertex_count(); ++v) {
    // Built up with += (not operator+ chaining): GCC 12's -Werror=restrict
    // false-positives on temporary-string concatenation (GCC PR105651).
    std::string label = "P";
    label += std::to_string(v);
    label += " m";
    label += std::to_string(sol.instance.labels().label(v));
    labels.push_back(std::move(label));
  }
  std::printf("spanning tree (DOT):\n%s",
              graph::to_dot(sol.instance.tree().as_graph(), labels).c_str());
  return sol.report.ok ? 0 : 1;
}
