// Extension bench: the collective-communication family on one tree.
// Gossip (allgather) = n + r; gather (all-to-one) = n - 1 (receive-bound
// optimal); scatter (one-to-all personalized) = deepest-first makespan;
// broadcast = radius.  §2's applications compose exactly these.
#include <cstdio>

#include "gossip/broadcast.h"
#include "gossip/collectives.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(8);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"fig4", graph::fig4_network()},
      {"line 33", graph::path(33)},
      {"star 32", graph::star(32)},
      {"grid 6x6", graph::grid(6, 6)},
      {"hypercube 6", graph::hypercube(6)},
      {"random gnp 60", graph::random_connected_gnp(60, 0.07, rng)},
  };

  TextTable table;
  table.new_row();
  for (const char* h :
       {"network", "n", "r", "broadcast (r)", "gather (n-1)",
        "scatter", "gossip (n+r)"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto sol = gossip::solve_gossip(g);
    all_ok = all_ok && sol.report.ok;
    const auto& instance = sol.instance;
    const auto broadcast =
        gossip::multicast_broadcast(g, instance.tree().root());
    const auto gather = gossip::gather_schedule(instance);
    const auto scatter = gossip::scatter_schedule(instance);

    all_ok = all_ok && broadcast.total_time() == instance.radius() &&
             gather.total_time() == g.vertex_count() - 1u;

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(static_cast<std::size_t>(instance.radius()));
    table.cell(broadcast.total_time());
    table.cell(gather.total_time());
    table.cell(scatter.total_time());
    table.cell(sol.schedule.total_time());
  }

  std::printf(
      "Collective operations on the minimum-depth spanning tree\n"
      "(broadcast from the center; gather/scatter at the root):\n\n%s\n"
      "Reading: gather is receive-bound optimal (the root absorbs one\n"
      "message per round); scatter's makespan is max_t (t + depth(d_t))\n"
      "with deepest destinations emitted first; gossip = gather + scatter\n"
      "semantics fused into the paper's single n + r pipeline.\n"
      "all checks: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
