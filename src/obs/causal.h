// Causal message tracing: happens-before edges between logical
// transmissions, recorded by producers (today: the `mg::dist` actor
// runtime) and exported as Chrome-trace *flow events* layered onto the
// span timeline (see trace_export.h).
//
// Each event is one logical transmission — a data multicast, a recovery
// digest fan-out, or a grant — identified by a process-unique trace id and
// pointing at its causal parent: the transmission whose arrival made this
// send informative (0 = a root cause, e.g. a message the sender held
// initially).  Fields are plain integers, like TraceEvent, so obs stays
// independent of the graph and schedule types.
//
// Events land in the same kind of *bounded lock-free ring* as SpanTracer:
// recording is one relaxed fetch_add to claim a slot, a plain write, and a
// release store to publish.  A full ring counts drops instead of blocking
// or reallocating, and the same two off switches apply: compile time
// (`MG_OBS_ENABLED=0` turns MG_OBS_CAUSAL into nothing) and run time
// (`CausalTracer::set_enabled(false)`, the default, reduces a record to a
// single relaxed load).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mg::obs {

class CausalTracer {
 public:
  /// Producer-defined kind codes.  The Chrome-trace exporter names the
  /// `mg::dist` encoding below; other producers may use their own codes.
  enum : std::uint32_t {
    kFlowData = 0,    ///< main-phase data multicast
    kFlowRepair = 1,  ///< recovery data round
    kFlowDigest = 2,  ///< recovery digest fan-out
    kFlowGrant = 3,   ///< recovery grant
  };

  /// One logical transmission and its happens-before edge.
  struct Event {
    std::uint64_t id = 0;      ///< process-unique trace id (1-based)
    std::uint64_t parent = 0;  ///< enabling transmission's id; 0 = root
    std::uint32_t kind = 0;    ///< producer-defined kind code
    std::uint64_t time = 0;    ///< producer timebase (rounds for mg::dist)
    std::uint64_t node = 0;    ///< sending processor
    std::uint64_t message = 0; ///< payload (data), requested id (grant)
    std::uint64_t fanout = 0;  ///< receiver count
  };

  explicit CausalTracer(std::size_t capacity = kDefaultCapacity);
  CausalTracer(const CausalTracer&) = delete;
  CausalTracer& operator=(const CausalTracer&) = delete;

  /// The process-wide tracer MG_OBS_CAUSAL reports into.  Disabled by
  /// default — causal tracing is opt-in per run, like span tracing.
  static CausalTracer& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Publishes one event; lock-free, drops when the ring is full.  Safe to
  /// call concurrently with snapshot().
  void record(const Event& event);

  /// record() only when enabled — the single-relaxed-load fast path the
  /// MG_OBS_CAUSAL macro compiles to.
  void try_record(const Event& event) {
    if (enabled()) record(event);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Events accepted into the ring so far (<= capacity).
  [[nodiscard]] std::uint64_t recorded() const;

  /// Events rejected because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Copies every published event, sorted by (time, id).  Events still
  /// being written by a concurrent record() are skipped, never torn.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Forgets every event.  Not safe concurrently with record() — quiesce
  /// (or disable) the tracer first.
  void clear();

 private:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;  // 32768 events

  struct Slot {
    std::atomic<bool> ready{false};
    Event event;
  };

  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};  ///< slots ever claimed (may exceed
                                        ///< capacity; excess = dropped)
};

}  // namespace mg::obs

// Compile-time switch; same default as registry.h / span.h.
#ifndef MG_OBS_ENABLED
#define MG_OBS_ENABLED 1
#endif

#if MG_OBS_ENABLED
/// Records one happens-before event into the global causal tracer (a
/// single relaxed load while the tracer is disabled, its default).
#define MG_OBS_CAUSAL(event) ::mg::obs::CausalTracer::global().try_record(event)
#else
#define MG_OBS_CAUSAL(event) ((void)0)
#endif
