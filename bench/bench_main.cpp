// Unified, machine-readable benchmark runner — the entry point for the
// perf trajectory.  Runs a curated suite of networks (cycle, Petersen,
// grids, hypercubes, seeded random connected graphs at n in {64, 256,
// 1024}) through all four gossip algorithms and writes one JSON row per
// (network, algorithm) pair:
//
//   {name, algorithm, n, m, r, rounds, bound, paper_bound, valid, wall_ns,
//    counters}
//
// `rounds <= bound` must hold on every row: n + r for ConcurrentUpDown
// (Theorem 1), 2n + r - 3 for Simple (Lemma 1), and the trivial
// serialization ceiling n(n-1) for the UpDown reconstruction and the
// Telephone baseline (see bound_for).  The process exits nonzero if any
// row violates its bound or fails validation, so the runner doubles as a
// regression gate.
//
//   bench_main [--out FILE] [--quick] [--sanity]
//
// --out     output path (default BENCH_gossip.json)
// --quick   drop the n = 1024 tier (CI-friendly)
// --sanity  instead of the suite, verify the observability layer's cost
//           model: a run against the disabled (null) registry must leave
//           no named metrics behind, and the per-increment overhead of the
//           disabled path is reported next to the enabled path.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gossip/bounds.h"
#include "gossip/simple.h"
#include "gossip/solve.h"
#include "gossip/updown.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "obs/causal.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/span.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using namespace mg;

struct BenchCase {
  std::string name;
  graph::Graph graph;
};

std::vector<BenchCase> build_suite(bool quick) {
  std::vector<BenchCase> suite;
  const std::vector<graph::Vertex> sizes =
      quick ? std::vector<graph::Vertex>{64, 256}
            : std::vector<graph::Vertex>{64, 256, 1024};

  suite.push_back({"petersen", graph::petersen()});
  for (const graph::Vertex n : sizes) {
    suite.push_back({"cycle/n=" + std::to_string(n), graph::cycle(n)});
  }
  for (const graph::Vertex side : {8u, 16u, 32u}) {
    const graph::Vertex n = side * side;
    if (quick && n > 256) continue;
    suite.push_back({"grid/n=" + std::to_string(n), graph::grid(side, side)});
  }
  for (const unsigned dim : {6u, 8u, 10u}) {
    const graph::Vertex n = graph::Vertex{1} << dim;
    if (quick && n > 256) continue;
    suite.push_back(
        {"hypercube/n=" + std::to_string(n), graph::hypercube(dim)});
  }
  for (const graph::Vertex n : sizes) {
    Rng rng(0xbe7cULL + n);  // fixed seed: rows are reproducible
    suite.push_back(
        {"random_gnp/n=" + std::to_string(n),
         graph::random_connected_gnp(n, 3.0 / static_cast<double>(n), rng)});
  }
  return suite;
}

/// Guaranteed per-row ceiling: `rounds <= bound` must hold on every run.
/// Simple and ConcurrentUpDown carry exact theorems (Lemma 1, Theorem 1).
/// UpDown's greedy reconstruction only meets the paper's two-phase formula
/// on structured families (it exceeds n + 3r - 2 on dense random graphs),
/// and Telephone has no theorem in scope, so both fall back to the trivial
/// serialization ceiling n(n - 1); the formula value is still emitted as
/// the informational `paper_bound` column.
std::uint64_t bound_for(gossip::Algorithm algorithm, std::size_t n,
                        std::size_t r) {
  switch (algorithm) {
    case gossip::Algorithm::kSimple:
      return 2 * n + r - 3;  // Lemma 1 (all suite sizes have n >= 2)
    case gossip::Algorithm::kUpDown:
    case gossip::Algorithm::kTelephone:
      return n * (n - 1);
    case gossip::Algorithm::kConcurrentUpDown:
      return gossip::concurrent_updown_time(n, r);  // Theorem 1: n + r
  }
  return 0;
}

/// The closed-form bound discussed in the paper for this algorithm, even
/// where our reconstruction does not guarantee it (0 = no formula).
std::uint64_t paper_bound_for(gossip::Algorithm algorithm, std::size_t n,
                              std::size_t r) {
  switch (algorithm) {
    case gossip::Algorithm::kSimple:
      return 2 * n + r - 3;
    case gossip::Algorithm::kUpDown:
      return gossip::updown_time_bound(n, r);
    case gossip::Algorithm::kConcurrentUpDown:
      return gossip::concurrent_updown_time(n, r);
    case gossip::Algorithm::kTelephone:
      return 0;
  }
  return 0;
}

int run_suite(const std::string& out_path, bool quick) {
  const auto suite = build_suite(quick);
  constexpr gossip::Algorithm kAlgorithms[] = {
      gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
      gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_main: cannot open %s for writing\n",
                 out_path.c_str());
    return 2;
  }

  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);

  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("suite", "gossip");
  w.key("rows").begin_array();

  bool all_ok = true;
  for (const auto& c : suite) {
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      registry.reset();
      Stopwatch watch;
      const gossip::Solution sol = gossip::solve_gossip(c.graph, algorithm);
      const auto wall_ns = static_cast<std::uint64_t>(watch.seconds() * 1e9);

      const std::size_t n = sol.instance.vertex_count();
      const std::size_t r = sol.instance.radius();
      const std::uint64_t rounds = sol.schedule.total_time();
      const std::uint64_t bound = bound_for(algorithm, n, r);
      const bool row_ok = sol.report.ok && rounds <= bound;
      all_ok = all_ok && row_ok;

      w.begin_object();
      w.field("name", c.name);
      w.field("algorithm", gossip::algorithm_name(algorithm));
      w.field("n", static_cast<std::uint64_t>(n));
      w.field("m", static_cast<std::uint64_t>(c.graph.edge_count()));
      w.field("r", static_cast<std::uint64_t>(r));
      w.field("rounds", rounds);
      w.field("bound", bound);
      w.field("paper_bound", paper_bound_for(algorithm, n, r));
      w.field("valid", sol.report.ok);
      w.field("wall_ns", wall_ns);
      w.key("counters").begin_object();
      for (const auto& [counter_name, value] : registry.snapshot().counters) {
        // reset() keeps names registered; skip metrics this row never hit.
        if (value != 0) w.field(counter_name, value);
      }
      w.end_object();
      w.end_object();

      std::printf("%-22s %-18s n=%5zu r=%3zu rounds=%6llu bound=%7llu %s\n",
                  c.name.c_str(),
                  gossip::algorithm_name(algorithm).c_str(), n, r,
                  static_cast<unsigned long long>(rounds),
                  static_cast<unsigned long long>(bound),
                  row_ok ? "ok" : "VIOLATION");
    }
  }

  w.end_array();
  w.end_object();
  out << '\n';

  std::printf("wrote %s (%zu rows)\n", out_path.c_str(),
              suite.size() * std::size(kAlgorithms));
  if (!all_ok) {
    std::fprintf(stderr, "bench_main: bound violation or invalid schedule\n");
    return 1;
  }
  return 0;
}

/// Verifies the two off switches described in obs/registry.h.
int run_sanity() {
  obs::Registry& registry = obs::Registry::global();

  // 1. Null-registry behaviour: a disabled run must register nothing —
  // counters, timers or histograms — and the span tracer (disabled by
  // default) must keep zero spans.
  registry.set_enabled(false);
  const auto sol =
      gossip::solve_gossip(graph::cycle(64), gossip::Algorithm::kSimple);
  const obs::Snapshot disabled_snap = registry.snapshot();
  if (!sol.report.ok || !disabled_snap.counters.empty() ||
      !disabled_snap.timers.empty() || !disabled_snap.histograms.empty()) {
    std::fprintf(stderr,
                 "sanity FAILED: disabled registry accumulated %zu counters, "
                 "%zu timers, %zu histograms\n",
                 disabled_snap.counters.size(), disabled_snap.timers.size(),
                 disabled_snap.histograms.size());
    return 1;
  }
  const obs::SpanTracer& tracer = obs::SpanTracer::global();
  if (tracer.enabled() || tracer.recorded() != 0) {
    std::fprintf(stderr,
                 "sanity FAILED: disabled span tracer recorded %llu spans\n",
                 static_cast<unsigned long long>(tracer.recorded()));
    return 1;
  }

  // 2. Cost model: ns per counter increment, disabled vs enabled.
  constexpr std::uint64_t kIters = 1'000'000;
  const auto measure = [&] {
    Stopwatch watch;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      MG_OBS_ADD("sanity.increments", 1);
    }
    return watch.seconds() * 1e9 / static_cast<double>(kIters);
  };
  const double disabled_ns = measure();
  registry.set_enabled(true);
  const double enabled_ns = measure();
  const bool compiled_in = MG_OBS_ENABLED != 0;
  std::printf(
      "obs sanity: compiled_in=%d  disabled=%.1f ns/inc  enabled=%.1f "
      "ns/inc\n",
      compiled_in ? 1 : 0, disabled_ns, enabled_ns);

  const std::uint64_t recorded =
      registry.snapshot().counter("sanity.increments");
  if (compiled_in && recorded != kIters) {
    std::fprintf(stderr, "sanity FAILED: enabled run recorded %llu of %llu\n",
                 static_cast<unsigned long long>(recorded),
                 static_cast<unsigned long long>(kIters));
    return 1;
  }

  // 3. Same cost model for the v2 instruments: histogram record and span.
  constexpr std::uint64_t kHistIters = 1'000'000;
  const auto measure_hist = [&] {
    Stopwatch watch;
    for (std::uint64_t i = 0; i < kHistIters; ++i) {
      MG_OBS_HIST("sanity.hist", i & 0xffff);
    }
    return watch.seconds() * 1e9 / static_cast<double>(kHistIters);
  };
  registry.set_enabled(false);
  const double hist_disabled_ns = measure_hist();
  registry.set_enabled(true);
  const double hist_enabled_ns = measure_hist();
  if (compiled_in &&
      registry.snapshot().histogram("sanity.hist").count != kHistIters) {
    std::fprintf(stderr, "sanity FAILED: histogram lost records\n");
    return 1;
  }

  constexpr std::uint64_t kSpanIters = 200'000;
  const auto measure_span = [&] {
    Stopwatch watch;
    for (std::uint64_t i = 0; i < kSpanIters; ++i) {
      MG_OBS_SPAN(sanity_span, "sanity.span");
    }
    return watch.seconds() * 1e9 / static_cast<double>(kSpanIters);
  };
  const double span_disabled_ns = measure_span();  // tracer off by default
  std::printf(
      "obs sanity: histogram disabled=%.1f ns/rec  enabled=%.1f ns/rec  "
      "span(tracing off)=%.1f ns\n",
      hist_disabled_ns, hist_enabled_ns, span_disabled_ns);
  if (tracer.recorded() != 0) {
    std::fprintf(stderr,
                 "sanity FAILED: spans recorded while tracing was off\n");
    return 1;
  }

  // 4. Causal ring: while disabled (the default) a record reduces to one
  // relaxed load and the ring stays empty; enabled, the same event lands.
  obs::CausalTracer& causal = obs::CausalTracer::global();
  if (causal.enabled()) {
    std::fprintf(stderr, "sanity FAILED: causal tracer enabled by default\n");
    return 1;
  }
  [[maybe_unused]] const obs::CausalTracer::Event probe{
      1, 0, obs::CausalTracer::kFlowData, 0, 0, 0, 1};
  MG_OBS_CAUSAL(probe);
  if (causal.recorded() != 0) {
    std::fprintf(stderr,
                 "sanity FAILED: disabled causal ring accepted an event\n");
    return 1;
  }
  if (compiled_in) {
    causal.set_enabled(true);
    MG_OBS_CAUSAL(probe);
    causal.set_enabled(false);
    if (causal.recorded() != 1) {
      std::fprintf(stderr,
                   "sanity FAILED: enabled causal ring recorded %llu of 1\n",
                   static_cast<unsigned long long>(causal.recorded()));
      return 1;
    }
    causal.clear();
  }

  // 5. Sampler: runtime-null observes nothing — a disabled registry keeps
  // earlier names registered (reset() semantics) but every sampled value
  // and delta must stay zero — and with observability compiled out start()
  // stays inert.  Steady-state overhead = the hot loop's ns/inc while a
  // 1 ms sampler runs beside it, next to the sampler-free enabled cost
  // above — the sampler reads the same relaxed atomics off-thread, so the
  // delta should be noise (documented in docs/OBSERVABILITY.md).
  registry.reset();
  registry.set_enabled(false);
  {
    obs::Sampler null_sampler(registry, {std::chrono::milliseconds(1), 16});
    null_sampler.sample_now();
    MG_OBS_ADD("sanity.null_sampler", 1);
    null_sampler.sample_now();
    for (const obs::Sample& s : null_sampler.series()) {
      for (const auto& [counter_name, value] : s.snapshot.counters) {
        if (value != 0) {
          std::fprintf(stderr,
                       "sanity FAILED: runtime-null sampler observed %s=%llu\n",
                       counter_name.c_str(),
                       static_cast<unsigned long long>(value));
          return 1;
        }
      }
      for (const auto& [counter_name, delta] : s.counter_deltas) {
        if (delta != 0) {
          std::fprintf(stderr,
                       "sanity FAILED: runtime-null sampler saw a delta "
                       "%s=+%llu\n",
                       counter_name.c_str(),
                       static_cast<unsigned long long>(delta));
          return 1;
        }
      }
    }
  }
  registry.set_enabled(true);
  double sampled_ns = 0.0;
  std::uint64_t samples_taken = 0;
  {
    obs::Sampler sampler(registry, {std::chrono::milliseconds(1), 64});
    const bool started = sampler.start();
    if (started != compiled_in) {
      std::fprintf(stderr,
                   "sanity FAILED: sampler.start() = %d, compiled_in = %d\n",
                   started ? 1 : 0, compiled_in ? 1 : 0);
      return 1;
    }
    sampled_ns = measure();
    sampler.stop();
    samples_taken = sampler.samples_taken();
    if (compiled_in && samples_taken == 0) {
      std::fprintf(stderr, "sanity FAILED: running sampler took no samples\n");
      return 1;
    }
    if (!compiled_in && samples_taken != 0) {
      std::fprintf(stderr,
                   "sanity FAILED: compiled-out sampler took %llu samples\n",
                   static_cast<unsigned long long>(samples_taken));
      return 1;
    }
  }
  std::printf(
      "obs sanity: causal(off)=inert  sampler: null=empty  "
      "enabled+1ms-cadence=%.1f ns/inc (vs %.1f alone, %llu samples)\n",
      sampled_ns, enabled_ns,
      static_cast<unsigned long long>(samples_taken));

  std::printf("obs sanity: ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_gossip.json";
  bool quick = false;
  bool sanity = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--sanity") == 0) {
      sanity = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_main [--out FILE] [--quick] [--sanity]\n");
      return 2;
    }
  }
  return sanity ? run_sanity() : run_suite(out_path, quick);
}
