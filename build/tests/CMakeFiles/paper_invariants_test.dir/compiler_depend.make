# Empty compiler generated dependencies file for paper_invariants_test.
# This may be replaced when dependencies are built.
