// Ablation: the §3.1 tree choice.  ConcurrentUpDown's n + height bound is
// height-sensitive, so the minimum-depth tree (height = radius) is the
// right reduction; rooting the BFS tree at an eccentric vertex (height up
// to the diameter) or using a DFS spanning tree (height up to n - 1) pays
// proportionally.
#include <cstdio>

#include "gossip/concurrent_updown.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "model/validator.h"
#include "support/rng.h"
#include "support/table.h"
#include "tree/spanning_tree.h"

namespace {

// DFS spanning tree from `root` (the worst structured alternative: height
// can reach n - 1 even on low-radius networks).
mg::tree::RootedTree dfs_tree(const mg::graph::Graph& g,
                              mg::graph::Vertex root) {
  using namespace mg;
  std::vector<graph::Vertex> parent(g.vertex_count(), graph::kNoVertex);
  std::vector<char> seen(g.vertex_count(), 0);
  std::vector<graph::Vertex> stack{root};
  seen[root] = 1;
  while (!stack.empty()) {
    const auto v = stack.back();
    stack.pop_back();
    for (const auto u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        parent[u] = v;
        stack.push_back(u);
      }
    }
  }
  return tree::RootedTree::from_parents(root, std::move(parent));
}

std::size_t run_on(mg::tree::RootedTree t, bool* ok) {
  using namespace mg;
  gossip::Instance instance{std::move(t)};
  const auto schedule = gossip::concurrent_updown(instance);
  const auto report = model::validate_schedule(
      instance.tree().as_graph(), schedule, instance.initial());
  *ok = *ok && report.ok &&
        schedule.total_time() ==
            instance.vertex_count() + instance.radius();
  return schedule.total_time();
}

}  // namespace

int main() {
  using namespace mg;
  Rng rng(5);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"grid 6x6", graph::grid(6, 6)},
      {"hypercube 6", graph::hypercube(6)},
      {"cycle 40", graph::cycle(40)},
      {"petersen", graph::petersen()},
      {"random gnp 60", graph::random_connected_gnp(60, 0.08, rng)},
      {"random geometric 60", graph::random_geometric(60, 0.22, rng)},
  };

  TextTable table;
  table.new_row();
  for (const char* h :
       {"network", "n", "radius", "diameter", "min-depth (n+r)",
        "BFS@eccentric", "DFS tree", "DFS height"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto metrics = graph::compute_metrics(g);
    // The most eccentric vertex: worst BFS root.
    graph::Vertex worst = 0;
    for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
      if (metrics.eccentricity[v] > metrics.eccentricity[worst]) worst = v;
    }
    const auto dfs = dfs_tree(g, worst);
    const auto dfs_height = dfs.height();

    const auto best = run_on(tree::min_depth_spanning_tree(g), &all_ok);
    const auto eccentric = run_on(tree::bfs_tree(g, worst), &all_ok);
    const auto dfs_time = run_on(std::move(dfs), &all_ok);

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(static_cast<std::size_t>(metrics.radius));
    table.cell(static_cast<std::size_t>(metrics.diameter));
    table.cell(best);
    table.cell(eccentric);
    table.cell(dfs_time);
    table.cell(static_cast<std::size_t>(dfs_height));
  }

  std::printf(
      "Ablation: spanning-tree choice for ConcurrentUpDown (time is always\n"
      "n + tree height; only the min-depth tree achieves n + radius)\n\n"
      "%s\nall valid: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
