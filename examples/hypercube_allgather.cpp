// Parallel-computing scenario: gossiping is MPI_Allgather.  §2 lists
// sorting, matrix multiplication, DFT and linear solvers among the
// applications; all of them begin by every rank learning every other
// rank's block.  This example runs the paper's algorithm on classic
// interconnect topologies (hypercube, torus, Meiko-style fat mesh) and
// compares the schedule lengths with the per-topology bounds.
//
//   $ ./hypercube_allgather [dim]
#include <cstdio>
#include <cstdlib>

#include "gossip/bounds.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/network_sim.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace mg;
  const unsigned dim = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 5;

  const std::vector<std::pair<std::string, graph::Graph>> machines = {
      {"hypercube Q" + std::to_string(dim), graph::hypercube(dim)},
      {"torus 8x8", graph::torus(8, 8)},
      {"mesh 8x8", graph::grid(8, 8)},
      {"3-ary tree 64", graph::k_ary_tree(64, 3)},
  };

  TextTable table;
  table.new_row();
  for (const char* h :
       {"interconnect", "ranks", "radius", "allgather rounds", "n+r",
        "lower bound", "max fanout", "last rank done"}) {
    table.cell(std::string(h));
  }

  for (const auto& [name, g] : machines) {
    const auto sol = gossip::solve_gossip(g);
    if (!sol.report.ok) {
      std::printf("%s: validation failed: %s\n", name.c_str(),
                  sol.report.error.c_str());
      return 1;
    }
    // Simulate to get the completion profile (when each rank can proceed
    // to its local compute phase).
    const auto run = sim::simulate(sol.instance.tree().as_graph(),
                                   sol.schedule, sol.instance.initial());
    std::size_t last_done = 0;
    for (const auto t : run.completion_time) {
      last_done = std::max(last_done, t);
    }

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(static_cast<std::size_t>(sol.instance.radius()));
    table.cell(sol.schedule.total_time());
    table.cell(gossip::concurrent_updown_time(g.vertex_count(),
                                              sol.instance.radius()));
    table.cell(gossip::trivial_lower_bound(g.vertex_count()));
    table.cell(sol.schedule.max_fanout());
    table.cell(last_done);
  }

  std::printf(
      "all-to-all broadcast (allgather) on parallel interconnects via the\n"
      "multicast gossip schedule of Gonzalez (IPPS'01):\n\n%s\n"
      "Reading: each rank contributes one block; after 'allgather rounds'\n"
      "communication rounds every rank holds all blocks and the compute\n"
      "phase (matmul / DFT / sort merge) can start.\n",
      table.render().c_str());
  return 0;
}
