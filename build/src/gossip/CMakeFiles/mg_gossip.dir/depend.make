# Empty dependencies file for mg_gossip.
# This may be replaced when dependencies are built.
