// Mutable companion to the immutable CSR `Graph`: a frozen base adjacency
// plus a small per-vertex dirty overlay (edges added since the base was
// built, edges removed from it).  Queries merge base and overlay on the
// fly; when the overlay grows past an amortization threshold — or a node
// event renumbers vertices — the whole structure collapses back into one
// flat CSR base, so long churn streams pay O(m) re-flattening only every
// Theta(m) mutations and every query stays within a constant factor of the
// flat layout.  `snapshot()` exposes the current topology as an ordinary
// immutable `Graph` (cached between mutations) for every existing consumer
// (solvers, validators, the engine's fingerprint).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mg::graph {

struct DynamicGraphOptions {
  /// Collapse the overlay back into a flat CSR base once the number of
  /// overlay entries (added + removed edge records) exceeds
  /// max(collapse_min, directed base entries / collapse_divisor).
  std::size_t collapse_min = 64;
  std::size_t collapse_divisor = 4;
};

/// Churn statistics since construction (monotonic).
struct DynamicGraphStats {
  std::uint64_t edges_added = 0;
  std::uint64_t edges_removed = 0;
  std::uint64_t nodes_added = 0;
  std::uint64_t nodes_removed = 0;
  std::uint64_t collapses = 0;  ///< overlay -> flat CSR rebuilds
};

class DynamicGraph {
 public:
  explicit DynamicGraph(Graph base, DynamicGraphOptions options = {});

  [[nodiscard]] Vertex vertex_count() const { return n_; }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Merged-view adjacency test (base minus removed plus added).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  [[nodiscard]] Vertex degree(Vertex v) const;

  /// Adds undirected edge {u, v}.  Precondition: absent, no self-loop.
  void add_edge(Vertex u, Vertex v);

  /// Removes undirected edge {u, v}.  Precondition: present.
  void remove_edge(Vertex u, Vertex v);

  /// Appends vertex `n` attached to `attach_to` (keeps the graph
  /// connected).  Forces a collapse: node events always re-flatten.
  /// Returns the new vertex id.
  Vertex add_node(Vertex attach_to);

  /// Removes vertex `v` and all incident edges; the last vertex (id n-1)
  /// is renumbered to `v` to keep ids dense.  Forces a collapse.
  /// Precondition: n >= 2.  The caller is responsible for connectivity.
  void remove_node(Vertex v);

  /// Current topology as an immutable CSR graph.  Cached until the next
  /// mutation; a collapsed DynamicGraph returns its base with no copy-free
  /// guarantee beyond that cache.
  [[nodiscard]] const Graph& snapshot() const;

  /// True when removing {u, v} keeps the graph connected (the edge must be
  /// present).  O(m) BFS on the merged view — the churn feed generators'
  /// legality probe.
  [[nodiscard]] bool is_removable(Vertex u, Vertex v) const;

  [[nodiscard]] const DynamicGraphStats& stats() const { return stats_; }

  /// Overlay entries currently pending (0 right after a collapse).
  [[nodiscard]] std::size_t overlay_size() const { return overlay_entries_; }

 private:
  void invalidate_snapshot();
  void maybe_collapse();
  void collapse();

  Vertex n_ = 0;
  std::size_t edge_count_ = 0;
  Graph base_;
  // Per-vertex overlay deltas, each kept sorted and duplicate-free:
  // `added_[v]` are neighbors joined since the base was frozen, and
  // `removed_[v]` are base neighbors deleted since.  An edge toggled
  // add->remove (or remove->add) cancels out of the overlay entirely.
  std::vector<std::vector<Vertex>> added_;
  std::vector<std::vector<Vertex>> removed_;
  std::size_t overlay_entries_ = 0;  // directed records across both maps
  DynamicGraphOptions options_;
  DynamicGraphStats stats_;
  mutable Graph snapshot_;
  mutable bool snapshot_valid_ = false;
};

}  // namespace mg::graph
