#include "model/stats.h"

#include <algorithm>

#include "support/contracts.h"

namespace mg::model {

ScheduleStats compute_stats(graph::Vertex n, const Schedule& schedule) {
  ScheduleStats stats;
  stats.rounds = schedule.total_time();
  stats.sends_per_processor.assign(n, 0);
  stats.receives_per_processor.assign(n, 0);
  stats.per_round.assign(schedule.round_count(), {});

  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    auto& round = stats.per_round[t];
    for (const auto& tx : schedule.round(t)) {
      MG_EXPECTS(tx.sender < n);
      ++stats.transmissions;
      ++round.senders;
      ++stats.sends_per_processor[tx.sender];
      const std::size_t fanout = tx.receivers.size();
      stats.deliveries += fanout;
      round.deliveries += fanout;
      round.receivers += fanout;
      stats.max_fanout = std::max(stats.max_fanout, fanout);
      if (stats.fanout_histogram.size() <= fanout) {
        stats.fanout_histogram.resize(fanout + 1, 0);
      }
      ++stats.fanout_histogram[fanout];
      for (graph::Vertex r : tx.receivers) {
        MG_EXPECTS(r < n);
        ++stats.receives_per_processor[r];
      }
    }
  }

  if (stats.transmissions > 0) {
    stats.mean_fanout = static_cast<double>(stats.deliveries) /
                        static_cast<double>(stats.transmissions);
  }
  const double capacity =
      static_cast<double>(n) * static_cast<double>(stats.rounds);
  if (capacity > 0) {
    stats.receive_utilization =
        static_cast<double>(stats.deliveries) / capacity;
    stats.send_utilization =
        static_cast<double>(stats.transmissions) / capacity;
  }
  return stats;
}

}  // namespace mg::model
