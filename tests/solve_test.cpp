// Integration tests for the one-call front-end: tree construction +
// algorithm + validation on arbitrary networks.
#include <gtest/gtest.h>

#include "gossip/bounds.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "support/thread_pool.h"

namespace mg::gossip {
namespace {

TEST(Solve, DefaultAlgorithmIsConcurrentUpDown) {
  const auto sol = solve_gossip(graph::petersen());
  EXPECT_EQ(sol.algorithm, Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(sol.report.ok) << sol.report.error;
  EXPECT_EQ(sol.schedule.total_time(), 10u + 2u);  // n + radius(Petersen)
}

TEST(Solve, AllAlgorithmsProduceValidSchedules) {
  const auto g = graph::grid(3, 5);
  for (auto alg : {Algorithm::kSimple, Algorithm::kUpDown,
                   Algorithm::kConcurrentUpDown, Algorithm::kTelephone}) {
    const auto sol = solve_gossip(g, alg);
    EXPECT_TRUE(sol.report.ok)
        << algorithm_name(alg) << ": " << sol.report.error;
  }
}

TEST(Solve, AlgorithmOrderingOnANonTrivialNetwork) {
  const auto g = graph::fig4_network();
  const auto concurrent =
      solve_gossip(g, Algorithm::kConcurrentUpDown).schedule.total_time();
  const auto updown = solve_gossip(g, Algorithm::kUpDown).schedule.total_time();
  const auto simple = solve_gossip(g, Algorithm::kSimple).schedule.total_time();
  const auto phone =
      solve_gossip(g, Algorithm::kTelephone).schedule.total_time();
  EXPECT_LE(concurrent, updown);
  EXPECT_LE(updown, simple);
  EXPECT_LT(simple, phone);
}

TEST(Solve, UsesNetworkRadiusNotDiameter) {
  const auto g = graph::path(13);
  const auto sol = solve_gossip(g);
  const auto metrics = graph::compute_metrics(g);
  EXPECT_EQ(sol.instance.radius(), metrics.radius);
  EXPECT_EQ(sol.schedule.total_time(), 13u + metrics.radius);
}

TEST(Solve, ThreadPoolPathProducesSameResult) {
  ThreadPool pool(4);
  const auto g = graph::grid(6, 7);
  const auto seq = solve_gossip(g);
  const auto par = solve_gossip(g, Algorithm::kConcurrentUpDown, &pool);
  EXPECT_TRUE(model::equivalent(seq.schedule, par.schedule));
}

TEST(Solve, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(Algorithm::kSimple), "Simple");
  EXPECT_EQ(algorithm_name(Algorithm::kUpDown), "UpDown");
  EXPECT_EQ(algorithm_name(Algorithm::kConcurrentUpDown), "ConcurrentUpDown");
  EXPECT_EQ(algorithm_name(Algorithm::kTelephone), "Telephone");
}

TEST(Solve, InitialMapsLabelsToVertices) {
  const auto sol = solve_gossip(graph::cycle(6));
  const auto init = sol.instance.initial();
  for (graph::Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(init[v], sol.instance.labels().label(v));
  }
}

TEST(Solve, TelephoneSolutionPassesStricterValidator) {
  const auto sol = solve_gossip(graph::star(7), Algorithm::kTelephone);
  ASSERT_TRUE(sol.report.ok) << sol.report.error;
  EXPECT_TRUE(sol.schedule.is_telephone());
}

}  // namespace
}  // namespace mg::gossip
