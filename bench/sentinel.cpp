// Bench regression sentinel — the cross-PR perf-trajectory gate.
//
// Every BENCH_*.json artifact is regenerated and gated *in isolation*, so
// a slow drift (or a clean 2x sim-core regression landing together with a
// retuned gate) would pass CI.  The sentinel closes that hole with a
// committed, append-only history file:
//
//   BENCH_HISTORY.jsonl — one JSON object per line:
//     {"schema_version": 1, "suite": "fault", "quick": false,
//      "host": "...", "rev": "...", "metrics": {"sim_ns_p50": ..., ...}}
//
// `sentinel append` reduces the current BENCH_{gossip,fault,engine,scale,
// churn,models}.json files into one summary row per suite and appends them
// to the history.  `sentinel check` reduces the same files and compares
// each metric against the *median of the trailing matching rows* (same
// suite and quick flag; wall-clock metrics additionally require the same
// host, so a laptop's history never gates a CI runner) with per-metric
// tolerances:
//
//   * time metrics   (kind "ns"/"ms")  — fail when current exceeds the
//     baseline by more than the tolerance (default +25%, e.g. sim_ns_p50);
//   * ratio metrics  (kind "speedup")  — fail when current falls below the
//     baseline by more than the tolerance (default -30%, e.g. the engine
//     warm speedup);
//   * exact metrics  (round counts)    — deterministic under the fixed
//     bench seeds; any increase fails.
//
// Metrics with no matching baseline are reported and skipped — the first
// run on a new host gates nothing and seeds the history instead.  CI runs
// `append` then `check` (self-baseline: the freshly appended row makes the
// wall-clock comparisons live even on a throwaway runner), then re-runs
// `check --inflate sim_ns_p50=1.5` and asserts the nonzero exit — the
// injected-regression smoke for the sentinel itself.
//
//   sentinel append|check [--history FILE] [--dir DIR] [--rev REV]
//                         [--window N] [--inflate METRIC=FACTOR]...
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "support/json_read.h"

namespace {

using mg::support::JsonValue;
using mg::support::parse_json;

enum class MetricKind {
  kTime,     ///< wall-clock cost: higher is worse, host-scoped baseline
  kSpeedup,  ///< ratio: lower is worse, host-independent
  kExact,    ///< deterministic count: any increase is a regression
};

struct Metric {
  std::string name;
  double value = 0.0;
  MetricKind kind = MetricKind::kTime;
  double tolerance = 0.25;  ///< relative slack in the worse direction
};

struct SuiteRow {
  std::string suite;
  bool quick = false;
  std::vector<Metric> metrics;
};

double sum_over_rows(const JsonValue& rows, const std::string& field) {
  double total = 0.0;
  for (const JsonValue& row : rows.array) {
    if (row.has(field)) total += row.at(field).as_number();
  }
  return total;
}

double mean_over_rows(const JsonValue& rows, const std::string& field) {
  if (rows.array.empty()) return 0.0;
  return sum_over_rows(rows, field) /
         static_cast<double>(rows.array.size());
}

/// Reduces one parsed BENCH_*.json document to its sentinel metrics.  The
/// field names here mirror the emitting bench — keep in sync when a bench
/// schema changes (the schema_version field is the tripwire).
std::optional<SuiteRow> reduce(const JsonValue& doc) {
  SuiteRow out;
  out.suite = doc.at("suite").as_string();
  out.quick = doc.has("quick") && doc.at("quick").as_bool();
  auto time = [&](const std::string& name, double v, double tol = 0.25) {
    out.metrics.push_back({name, v, MetricKind::kTime, tol});
  };
  auto speedup = [&](const std::string& name, double v, double tol = 0.30) {
    out.metrics.push_back({name, v, MetricKind::kSpeedup, tol});
  };
  auto exact = [&](const std::string& name, double v) {
    out.metrics.push_back({name, v, MetricKind::kExact, 0.0});
  };

  if (out.suite == "gossip") {
    exact("rounds_total", sum_over_rows(doc.at("rows"), "rounds"));
    time("wall_ns_total", sum_over_rows(doc.at("rows"), "wall_ns"), 0.75);
  } else if (out.suite == "fault") {
    speedup("core_speedup_p50",
            doc.at("sim_core").at("speedup_p50").as_number());
    time("sim_ns_p50", mean_over_rows(doc.at("rows"), "sim_ns_p50"));
    exact("extra_rounds_total",
          sum_over_rows(doc.at("rows"), "extra_rounds"));
  } else if (out.suite == "engine") {
    speedup("warm_speedup",
            doc.at("warm_vs_cold").at("warm_over_cold").as_number());
    time("warm_ns_p50", doc.at("warm_vs_cold").at("warm_ns_p50").as_number());
  } else if (out.suite == "scale") {
    if (doc.has("center_ab")) {
      speedup("center_speedup", doc.at("center_ab").at("speedup").as_number());
    }
    time("solve_ms_total", sum_over_rows(doc.at("rows"), "solve_ms"));
    time("sim_ms_total", sum_over_rows(doc.at("rows"), "sim_ms"));
  } else if (out.suite == "churn") {
    const JsonValue& pvr = doc.at("patch_vs_resolve");
    if (!pvr.array.empty()) {
      speedup("patch_speedup", pvr.array.front().at("speedup").as_number());
    }
    time("patch_ns_p50",
         mean_over_rows(doc.at("churn_rate_sweep"), "patch_ns_p50"), 0.75);
    time("retree_ns_p50",
         mean_over_rows(doc.at("churn_rate_sweep"), "retree_ns_p50"), 0.75);
  } else if (out.suite == "models") {
    exact("model_rounds_total",
          sum_over_rows(doc.at("rows"), "model_rounds"));
    time("wall_ns_total", sum_over_rows(doc.at("rows"), "wall_ns"), 0.75);
  } else {
    return std::nullopt;  // unknown suite: nothing to gate
  }
  return out;
}

std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) != 0) return "unknown";
  return buf;
}

/// One history line, already parsed.
struct HistoryRow {
  std::string suite;
  bool quick = false;
  std::string host;
  std::map<std::string, double> metrics;
};

std::vector<HistoryRow> load_history(const std::string& path) {
  std::vector<HistoryRow> rows;
  std::ifstream in(path);
  if (!in) return rows;  // no history yet: everything seeds
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      const JsonValue doc = parse_json(line);
      HistoryRow row;
      row.suite = doc.at("suite").as_string();
      row.quick = doc.at("quick").as_bool();
      row.host = doc.at("host").as_string();
      for (const auto& [name, value] : doc.at("metrics").object) {
        row.metrics[name] = value.as_number();
      }
      rows.push_back(std::move(row));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sentinel: %s:%zu: skipping bad row (%s)\n",
                   path.c_str(), line_no, e.what());
    }
  }
  return rows;
}

/// Median of the trailing (up to `window`) baseline values for one metric.
std::optional<double> baseline_for(const std::vector<HistoryRow>& history,
                                   const SuiteRow& current,
                                   const Metric& metric,
                                   const std::string& host,
                                   std::size_t window) {
  std::vector<double> values;
  for (const HistoryRow& row : history) {
    if (row.suite != current.suite || row.quick != current.quick) continue;
    if (metric.kind == MetricKind::kTime && row.host != host) continue;
    const auto it = row.metrics.find(metric.name);
    if (it == row.metrics.end()) continue;
    values.push_back(it->second);
  }
  if (values.empty()) return std::nullopt;
  if (values.size() > window) {
    values.erase(values.begin(),
                 values.end() - static_cast<std::ptrdiff_t>(window));
  }
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

void write_history_row(std::ostream& out, const SuiteRow& row,
                       const std::string& host, const std::string& rev) {
  // Hand-rolled emission keeps the row on one line (JSONL) with stable key
  // order; metric names never need escaping (ASCII identifiers).
  out << "{\"schema_version\": 1, \"suite\": \"" << row.suite
      << "\", \"quick\": " << (row.quick ? "true" : "false")
      << ", \"host\": \"" << host << "\", \"rev\": \"" << rev
      << "\", \"metrics\": {";
  bool first = true;
  for (const Metric& m : row.metrics) {
    if (!first) out << ", ";
    first = false;
    std::ostringstream num;
    num.precision(17);  // round-trips a double exactly (exact metrics gate
                        // on equality, so 6-sig-fig truncation would lie)
    num << m.value;
    out << '"' << m.name << "\": " << num.str();
  }
  out << "}}\n";
}

const char* const kSuiteFiles[] = {
    "BENCH_gossip.json", "BENCH_fault.json", "BENCH_engine.json",
    "BENCH_scale.json",  "BENCH_churn.json", "BENCH_models.json",
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sentinel append|check [--history FILE] [--dir DIR]\n"
      "                [--rev REV] [--window N] [--inflate METRIC=FACTOR]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode != "append" && mode != "check") return usage();
  std::string history_path = "BENCH_HISTORY.jsonl";
  std::string dir = ".";
  std::string rev = "unknown";
  std::size_t window = 5;
  std::map<std::string, double> inflate;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--history") {
      history_path = next();
    } else if (flag == "--dir") {
      dir = next();
    } else if (flag == "--rev") {
      rev = next();
    } else if (flag == "--window") {
      window = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--inflate") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--inflate wants METRIC=FACTOR\n");
        return 2;
      }
      inflate[spec.substr(0, eq)] = std::stod(spec.substr(eq + 1));
    } else {
      return usage();
    }
  }

  // Reduce every BENCH artifact present in --dir.
  std::vector<SuiteRow> current;
  for (const char* file : kSuiteFiles) {
    const std::string path = dir + "/" + file;
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "sentinel: %s absent, skipping\n", path.c_str());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const JsonValue doc = parse_json(buf.str());
      if (auto row = reduce(doc)) current.push_back(std::move(*row));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  if (current.empty()) {
    std::fprintf(stderr, "sentinel: no BENCH artifacts found under %s\n",
                 dir.c_str());
    return 2;
  }
  for (SuiteRow& row : current) {
    for (Metric& m : row.metrics) {
      const auto it = inflate.find(m.name);
      if (it != inflate.end()) {
        std::printf("sentinel: inflating %s/%s by %.2fx (injected)\n",
                    row.suite.c_str(), m.name.c_str(), it->second);
        m.value *= it->second;
      }
    }
  }

  const std::string host = host_name();
  if (mode == "append") {
    std::ofstream out(history_path, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "sentinel: cannot append to %s\n",
                   history_path.c_str());
      return 2;
    }
    for (const SuiteRow& row : current) {
      write_history_row(out, row, host, rev);
      std::printf("sentinel: appended %s row (%zu metrics) to %s\n",
                  row.suite.c_str(), row.metrics.size(),
                  history_path.c_str());
    }
    return 0;
  }

  // check
  const std::vector<HistoryRow> history = load_history(history_path);
  bool regressed = false;
  std::size_t gated = 0;
  std::size_t seeded = 0;
  for (const SuiteRow& row : current) {
    for (const Metric& m : row.metrics) {
      const auto base = baseline_for(history, row, m, host, window);
      if (!base) {
        std::printf("  %-8s %-22s %12.6g  (no baseline, seeding)\n",
                    row.suite.c_str(), m.name.c_str(), m.value);
        ++seeded;
        continue;
      }
      ++gated;
      bool bad = false;
      std::string verdict;
      if (m.kind == MetricKind::kSpeedup) {
        bad = m.value < *base * (1.0 - m.tolerance);
        verdict = bad ? "REGRESSION (ratio fell past tolerance)" : "ok";
      } else if (m.kind == MetricKind::kExact) {
        bad = m.value > *base;
        verdict = bad ? "REGRESSION (deterministic count grew)" : "ok";
      } else {
        bad = m.value > *base * (1.0 + m.tolerance);
        verdict = bad ? "REGRESSION (time past tolerance)" : "ok";
      }
      regressed = regressed || bad;
      std::printf("  %-8s %-22s %12.6g vs baseline %12.6g (tol %.0f%%)  %s\n",
                  row.suite.c_str(), m.name.c_str(), m.value, *base,
                  m.tolerance * 100.0, verdict.c_str());
    }
  }
  std::printf("sentinel: %zu metrics gated, %zu seeding, host %s\n", gated,
              seeded, host.c_str());
  if (regressed) {
    std::fprintf(stderr, "sentinel: perf regression against %s\n",
                 history_path.c_str());
    return 1;
  }
  return 0;
}
