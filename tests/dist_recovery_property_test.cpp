// Adversarial property battery for the decentralized recovery protocol of
// the `mg::dist` actor runtime (ISSUE 6): live faults hit the fabric while
// the actors run, and after the planned horizon the survivors must re-derive
// what is missing purely from digest / grant / data exchanges with their
// neighbors — no coordinator ever inspects global state.  The sweep asserts
//   (a) connected survivors reach their achievable closure (full gossip
//       when nothing crashed),
//   (b) every emergent repair schedule passes the independent model
//       validator seeded with the end-of-main-phase hold sets,
//   (c) crash partitions degrade to an honest partial-coverage report,
//   (d) a too-small extra-round budget truncates honestly instead of
//       looping or lying.
//
// Per-edge delay plans are only paired with timetable rules: the strict §4
// online rule is defined for the synchronous unit-delay model, and a delayed
// o-stream arrival can make its relay plan locally inconsistent (see
// docs/DISTRIBUTED.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/runtime.h"
#include "fault/fault.h"
#include "gossip/recovery.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/rng.h"

namespace mg::dist {
namespace {

/// Connectivity of the subgraph induced by the non-crashed processors.
bool survivors_connected(const graph::Graph& g,
                         const std::vector<graph::Vertex>& crashed) {
  const graph::Vertex n = g.vertex_count();
  std::vector<char> dead(n, 0);
  for (const graph::Vertex v : crashed) dead[v] = 1;
  graph::Vertex start = graph::kNoVertex;
  graph::Vertex live = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!dead[v]) {
      if (start == graph::kNoVertex) start = v;
      ++live;
    }
  }
  if (live == 0) return true;  // vacuously
  std::vector<char> seen(n, 0);
  std::vector<graph::Vertex> queue{start};
  seen[start] = 1;
  graph::Vertex reached = 1;
  while (!queue.empty()) {
    const graph::Vertex v = queue.back();
    queue.pop_back();
    for (const graph::Vertex u : g.neighbors(v)) {
      if (!dead[u] && !seen[u]) {
        seen[u] = 1;
        ++reached;
        queue.push_back(u);
      }
    }
  }
  return reached == live;
}

graph::Graph sweep_graph(std::uint64_t seed) {
  Rng rng(0xd157ULL * (seed + 1));
  const auto n = static_cast<graph::Vertex>(8 + (seed * 5) % 18);
  switch (seed % 5) {
    case 0:
      return graph::cycle(n);
    case 1:
      return graph::grid(3, 3 + static_cast<graph::Vertex>(seed % 4));
    case 2:
      return graph::random_connected_gnp(n, 4.0 / static_cast<double>(n),
                                         rng);
    case 3:
      return graph::random_geometric(n, 0.35, rng);
    default:
      return graph::hypercube(3 + static_cast<unsigned>(seed % 2));
  }
}

fault::FaultPlan sweep_plan(std::uint64_t seed, const graph::Graph& g,
                            gossip::Algorithm algorithm) {
  const double rates[] = {0.05, 0.1, 0.2, 0.3};
  fault::FaultPlan plan;
  plan.drop_rate(rates[seed % 4]).seed(0xdeadULL + seed);
  if (seed % 3 == 1) {
    const auto victim =
        static_cast<graph::Vertex>((seed * 7) % g.vertex_count());
    plan.crash(victim, 2 + seed % 9);
  }
  if (seed % 4 == 2 &&
      algorithm != gossip::Algorithm::kConcurrentUpDown) {
    const auto edges = g.edges();
    const auto& e = edges[seed % edges.size()];
    plan.delay(e.first, e.second, 1 + seed % 3);
  }
  return plan;
}

TEST(DistRecoveryProperty, SeededLiveFaultSweep48) {
  constexpr std::uint64_t kCombos = 48;
  for (std::uint64_t seed = 0; seed < kCombos; ++seed) {
    const graph::Graph g = sweep_graph(seed);
    const auto algorithm = static_cast<gossip::Algorithm>(seed % 4);
    const fault::FaultPlan plan = sweep_plan(seed, g, algorithm);
    SCOPED_TRACE("seed " + std::to_string(seed) + " n=" +
                 std::to_string(g.vertex_count()) + " " +
                 gossip::algorithm_name(algorithm));

    RuntimeOptions options;
    options.faults = &plan;
    options.seed = seed;
    const DistOutcome outcome = run_distributed(g, algorithm, options);
    const RunReport& run = outcome.run;
    ASSERT_TRUE(outcome.central.report.ok) << outcome.central.report.error;

    // (b) The emergent repair is independently model-valid against the
    // hold sets the main phase actually produced.
    const auto repair_report = model::validate_schedule_general(
        g, run.repair, gossip::holds_to_initial_sets(run.main_holds),
        static_cast<std::size_t>(g.vertex_count()),
        {.variant = model::ModelVariant::kMulticast,
         .require_completion = false});
    EXPECT_TRUE(repair_report.ok) << repair_report.error;

    // (a) connected survivors => closure; no crashes at all => full gossip.
    if (survivors_connected(g, run.crashed)) {
      EXPECT_TRUE(run.recovered);
      if (run.crashed.empty()) {
        EXPECT_TRUE(run.complete);
        EXPECT_DOUBLE_EQ(run.coverage, 1.0);
        for (const auto missing : run.missing) EXPECT_EQ(missing, 0u);
      }
    }

    // (c) the coverage report is plain arithmetic over `missing`.
    const auto n = static_cast<std::size_t>(g.vertex_count());
    std::vector<char> dead(n, 0);
    for (const graph::Vertex v : run.crashed) dead[v] = 1;
    std::size_t live = 0;
    std::size_t held = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (dead[v]) continue;
      ++live;
      held += n - run.missing[v];
    }
    if (live > 0) {
      EXPECT_DOUBLE_EQ(run.coverage,
                       static_cast<double>(held) /
                           (static_cast<double>(live) *
                            static_cast<double>(n)));
    }
    // Completion is exactly "no live actor misses anything".
    bool none_missing = true;
    for (std::size_t v = 0; v < n; ++v) {
      if (!dead[v] && run.missing[v] != 0) none_missing = false;
    }
    EXPECT_EQ(run.complete, none_missing);
  }
}

TEST(DistRecoveryProperty, DropsOnNamedGraphsRecoverFully) {
  // Drop-only plans never destroy information, just deliveries: every
  // algorithm on every named graph must close the gaps decentralized.
  const std::pair<std::string, graph::Graph> graphs[] = {
      {"cycle", graph::cycle(16)},
      {"petersen", graph::petersen()},
      {"grid", graph::grid(5, 5)},
      {"hypercube", graph::hypercube(4)},
  };
  for (const auto& [name, g] : graphs) {
    for (const gossip::Algorithm algorithm :
         {gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
          gossip::Algorithm::kConcurrentUpDown,
          gossip::Algorithm::kTelephone}) {
      SCOPED_TRACE(name + "/" + gossip::algorithm_name(algorithm));
      fault::FaultPlan plan;
      plan.drop_rate(0.10).seed(42);
      RuntimeOptions options;
      options.faults = &plan;
      const DistOutcome outcome = run_distributed(g, algorithm, options);
      EXPECT_TRUE(outcome.run.complete);
      EXPECT_TRUE(outcome.run.recovered);
      EXPECT_DOUBLE_EQ(outcome.run.coverage, 1.0);
      EXPECT_TRUE(outcome.run.crashed.empty());
      EXPECT_GT(outcome.run.injected_drops, 0u);
    }
  }
}

TEST(DistRecoveryProperty, CrashPartitionDegradesGracefully) {
  // Crashing the center of a path partitions the survivors: each shore
  // floods to its own closure and the report stays honest.
  const auto g = graph::path(9);
  fault::FaultPlan plan;
  plan.crash(4, 2);
  RuntimeOptions options;
  options.faults = &plan;
  const DistOutcome outcome =
      run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
  const RunReport& run = outcome.run;
  EXPECT_FALSE(run.complete);
  EXPECT_TRUE(run.recovered);  // each shore reached its closure
  ASSERT_EQ(run.crashed, std::vector<graph::Vertex>{4});
  EXPECT_FALSE(survivors_connected(g, run.crashed));
  EXPECT_LT(run.coverage, 1.0);
  EXPECT_GT(run.coverage, 0.0);
  // Both shores miss at least the far shore's four messages.
  for (graph::Vertex v = 0; v < 9; ++v) {
    if (v == 4) continue;
    EXPECT_GE(run.missing[v], 4u) << "v=" << v;
  }
}

TEST(DistRecoveryProperty, RoundBudgetTruncatesHonestly) {
  const auto g = graph::grid(5, 5);
  fault::FaultPlan plan;
  plan.drop_rate(0.35).seed(7);
  RuntimeOptions options;
  options.faults = &plan;
  options.extra_round_budget = 1;
  const DistOutcome outcome =
      run_distributed(g, gossip::Algorithm::kUpDown, options);
  EXPECT_LE(outcome.run.recovery_rounds, 1u);
  // One data round cannot close a 35%-drop run on a 25-node grid; the
  // report must say so rather than pretend.
  EXPECT_FALSE(outcome.run.complete);
  EXPECT_LT(outcome.run.coverage, 1.0);
  // The truncated repair is still model-valid as far as it got.
  const auto report = model::validate_schedule_general(
      g, outcome.run.repair,
      gossip::holds_to_initial_sets(outcome.run.main_holds), 25,
      {.variant = model::ModelVariant::kMulticast,
       .require_completion = false});
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(DistRecoveryProperty, RecoveryDisabledReportsRawMainPhase) {
  const auto g = graph::petersen();
  fault::FaultPlan plan;
  plan.drop_rate(0.25).seed(3);
  RuntimeOptions options;
  options.faults = &plan;
  options.recover = false;
  const DistOutcome outcome =
      run_distributed(g, gossip::Algorithm::kSimple, options);
  EXPECT_EQ(outcome.run.recovery_rounds, 0u);
  EXPECT_EQ(outcome.run.repair.round_count(), 0u);
  EXPECT_EQ(outcome.run.control_messages, 0u);
  EXPECT_FALSE(outcome.run.complete);
  // final holds == main-phase holds when no recovery ran.
  ASSERT_EQ(outcome.run.main_holds.size(), outcome.run.final_holds.size());
  for (std::size_t v = 0; v < outcome.run.main_holds.size(); ++v) {
    EXPECT_EQ(outcome.run.main_holds[v].count(),
              outcome.run.final_holds[v].count());
  }
}

TEST(DistRecoveryProperty, DeadActorsNeverAppearInRepairs) {
  const auto g = graph::cycle(8);
  fault::FaultPlan plan;
  plan.drop_rate(0.2).seed(11).crash(3, 4);
  RuntimeOptions options;
  options.faults = &plan;
  const DistOutcome outcome =
      run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
  for (const auto& round : outcome.run.repair.rounds()) {
    for (const auto& tx : round) {
      EXPECT_NE(tx.sender, 3u);
      for (const graph::Vertex r : tx.receivers) EXPECT_NE(r, 3u);
    }
  }
  // Cycle minus one vertex is a path — still connected, so closure holds.
  EXPECT_TRUE(outcome.run.recovered);
}

TEST(DistRecoveryProperty, DeterministicUnderSeedAndThreads) {
  // Same plan + same bus seed => bit-identical emergent and repair
  // schedules, serial or threaded.
  const auto g = graph::grid(4, 4);
  fault::FaultPlan plan;
  plan.drop_rate(0.15).seed(9).crash(5, 6);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    RuntimeOptions options;
    options.faults = &plan;
    options.threads = threads;
    const DistOutcome a =
        run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
    const DistOutcome b =
        run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_TRUE(model::equivalent(a.run.emergent, b.run.emergent));
    EXPECT_TRUE(model::equivalent(a.run.repair, b.run.repair));
    EXPECT_EQ(a.run.recovery_rounds, b.run.recovery_rounds);
    EXPECT_DOUBLE_EQ(a.run.coverage, b.run.coverage);
  }
}

}  // namespace
}  // namespace mg::dist
