#include "gossip/simple.h"

#include "obs/span.h"
#include "support/contracts.h"

namespace mg::gossip {

model::Schedule simple_gossip(const Instance& instance) {
  MG_OBS_SPAN(algo_span, "gossip.simple");
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  const graph::Vertex n = tree.vertex_count();
  model::Schedule schedule;
  if (n <= 1) return schedule;

  // Up phase: the vertex at level k holding message m (anywhere in its
  // subtree) forwards it at time m - k, so the root receives m at time m.
  for (graph::Vertex v = 0; v < n; ++v) {
    if (tree.is_root(v)) continue;
    const tree::Label i = labels.label(v);
    const tree::Label j = labels.subtree_end(v);
    const std::uint32_t k = tree.level(v);
    for (tree::Label m = i; m <= j; ++m) {
      schedule.add(m - k, {m, v, {tree.parent(v)}});
    }
  }

  // Down phase: the root multicasts message m to all its children at time
  // n - 2 + m; every non-root, non-leaf vertex relays the round it
  // receives, i.e. the level-k vertex sends m at time n - 2 + m + k.
  for (graph::Vertex v = 0; v < n; ++v) {
    if (tree.is_leaf(v)) continue;
    const std::uint32_t k = tree.level(v);
    const auto kids = tree.children(v);
    const std::vector<graph::Vertex> receivers(kids.begin(), kids.end());
    for (model::Message m = 0; m < n; ++m) {
      schedule.add(static_cast<std::size_t>(n) - 2 + m + k,
                   {m, v, receivers});
    }
  }

  schedule.trim();
  MG_ENSURES(schedule.total_time() ==
             simple_total_time(n, instance.radius()));
  return schedule;
}

}  // namespace mg::gossip
