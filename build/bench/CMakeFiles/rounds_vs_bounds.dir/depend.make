# Empty dependencies file for rounds_vs_bounds.
# This may be replaced when dependencies are built.
