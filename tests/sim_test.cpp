// Tests for the network simulator: execution, knowledge curves, traces and
// fault injection.
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "sim/network_sim.h"

namespace mg::sim {
namespace {

gossip::Solution solved_fig4() {
  return gossip::solve_gossip(graph::fig4_network());
}

TEST(Sim, ExecutesValidScheduleToCompletion) {
  const auto sol = solved_fig4();
  const auto result = simulate(sol.instance.tree().as_graph(), sol.schedule,
                               sol.instance.initial());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.total_time, 19u);
  for (const auto m : result.missing) EXPECT_EQ(m, 0u);
}

TEST(Sim, CompletionTimesMatchValidator) {
  const auto sol = solved_fig4();
  const auto result = simulate(sol.instance.tree().as_graph(), sol.schedule,
                               sol.instance.initial());
  ASSERT_TRUE(sol.report.ok);
  EXPECT_EQ(result.completion_time, sol.report.completion_time);
}

TEST(Sim, KnowledgeCurveIsMonotoneAndSaturates) {
  const auto sol = solved_fig4();
  const auto result = simulate(sol.instance.tree().as_graph(), sol.schedule,
                               sol.instance.initial());
  ASSERT_FALSE(result.knowledge.empty());
  EXPECT_EQ(result.knowledge.front(), 16u);        // n pairs at time 0
  EXPECT_EQ(result.knowledge.back(), 16u * 16u);   // n^2 on completion
  for (std::size_t t = 1; t < result.knowledge.size(); ++t) {
    EXPECT_GE(result.knowledge[t], result.knowledge[t - 1]);
  }
}

TEST(Sim, TraceRecordsSendsAndReceives) {
  const auto sol = solved_fig4();
  SimOptions options;
  options.record_trace = true;
  const auto result = simulate(sol.instance.tree().as_graph(), sol.schedule,
                               sol.instance.initial(), options);
  EXPECT_EQ(result.trace.empty(), false);
  std::size_t sends = 0;
  std::size_t receives = 0;
  for (const auto& e : result.trace) {
    (e.kind == SimEvent::Kind::kSend ? sends : receives) += 1;
  }
  EXPECT_EQ(sends, sol.schedule.transmission_count());
  EXPECT_EQ(receives, sol.schedule.delivery_count());
}

TEST(Sim, DroppedTransmissionBreaksCompletion) {
  const auto sol = solved_fig4();
  // Drop the root's very first downward relay: the network can no longer
  // complete (no retransmission in a fixed schedule).
  SimOptions options;
  options.drop.emplace_back(1, sol.instance.tree().root());
  const auto result = simulate(sol.instance.tree().as_graph(), sol.schedule,
                               sol.instance.initial(), options);
  EXPECT_FALSE(result.completed);
  std::size_t total_missing = 0;
  for (const auto m : result.missing) total_missing += m;
  EXPECT_GT(total_missing, 0u);
}

TEST(Sim, DropOfLeafUpSendStarvesEveryoneElse) {
  // Dropping a leaf's only up transmission leaves exactly its message
  // missing everywhere else.
  const auto g = graph::path(5);
  const auto sol = gossip::solve_gossip(g);
  const auto& labels = sol.instance.labels();
  // Find a leaf with lip (sends at t=0).
  graph::Vertex leaf = graph::kNoVertex;
  for (graph::Vertex v = 0; v < 5; ++v) {
    if (sol.instance.tree().is_leaf(v) && labels.lip_count(v) == 1) leaf = v;
  }
  ASSERT_NE(leaf, graph::kNoVertex);
  SimOptions options;
  options.drop.emplace_back(0, leaf);
  const auto result = simulate(sol.instance.tree().as_graph(), sol.schedule,
                               sol.instance.initial(), options);
  EXPECT_FALSE(result.completed);
  for (graph::Vertex v = 0; v < 5; ++v) {
    if (v == leaf) {
      EXPECT_EQ(result.missing[v], 0u);  // the leaf itself still learns all
    } else {
      EXPECT_GE(result.missing[v], 1u);  // others never see its message
    }
  }
}

TEST(Sim, EmptyScheduleOnSingleton) {
  const auto result = simulate(graph::Graph(1), model::Schedule());
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.total_time, 0u);
}

TEST(Sim, CustomInitialAssignment) {
  model::Schedule s;
  s.add(0, {1, 0, {1}});
  s.add(0, {0, 1, {0}});
  const auto result = simulate(graph::path(2), s, {1, 0});
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace mg::sim
