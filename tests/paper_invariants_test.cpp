// Literal verification of the §3.2 step windows on random trees: every
// transmission and receipt of the ConcurrentUpDown schedule is matched
// against the time windows the paper assigns to steps (U1)-(U4) and
// (D1)-(D3).  This pins the implementation to the paper's text, not merely
// to "some valid n + r schedule".
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/rng.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

struct Windows : ::testing::TestWithParam<std::uint64_t> {
  Instance make_instance() const {
    Rng rng(GetParam());
    const auto n = static_cast<graph::Vertex>(3 + rng.below(45));
    Rng tree_rng(GetParam() * 977 + 3);
    return Instance(
        tree::root_tree_graph(graph::random_tree(n, tree_rng), 0));
  }
};

TEST_P(Windows, EverySendAndReceiptLandsInAPaperWindow) {
  const auto instance = make_instance();
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  const graph::Vertex n = tree.vertex_count();
  const auto schedule = concurrent_updown(instance);

  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      const graph::Vertex v = tx.sender;
      const std::size_t i = labels.label(v);
      const std::size_t j = labels.subtree_end(v);
      const std::size_t k = tree.level(v);
      const std::size_t w = labels.lip_count(v);

      bool to_parent = false;
      bool to_children = false;
      for (graph::Vertex r : tx.receivers) {
        (r == (tree.is_root(v) ? graph::kNoVertex : tree.parent(v))
             ? to_parent
             : to_children) = true;
      }

      if (to_parent) {
        // (U3): the lip leaves at time 0; (U4): rips m at time m - k.
        if (t == 0 && w == 1 && tx.message == i) {
          // (U3), valid.
        } else {
          EXPECT_GE(tx.message, i + w) << "rip range at v=" << v;
          EXPECT_LE(tx.message, j);
          EXPECT_EQ(t, tx.message - k) << "(U4) time at v=" << v;
        }
      }
      if (to_children) {
        const bool body = labels.is_body(v, tx.message);
        if (body) {
          // (D3): message m in [i, j] at time m - k, except the i == k
          // delay of the own message to j - k + 1.
          if (tx.message == i && i == k) {
            EXPECT_EQ(t, j - k + 1) << "(D3) i==k delay at v=" << v;
          } else {
            EXPECT_EQ(t, tx.message - k) << "(D3) time at v=" << v;
          }
        } else {
          // (D2): o-messages relayed within [2, i-k-1] or [j-k+1, n+k].
          const bool first_window = t >= 2 && i >= k + 1 && t <= i - k - 1;
          const bool second_window = t >= j - k + 1 && t <= n + k;
          EXPECT_TRUE(first_window || second_window)
              << "(D2) window at v=" << v << " t=" << t
              << " msg=" << tx.message;
        }
      }

      // Receipt windows.
      for (graph::Vertex r : tx.receivers) {
        const std::size_t ri = labels.label(r);
        const std::size_t rj = labels.subtree_end(r);
        const std::size_t rk = tree.level(r);
        const std::size_t arrive = t + 1;
        if (!tree.is_root(r) && tree.parent(r) == v) {
          // (D1): o-messages from the parent arrive within [2, i-k+1] or
          // [j-k+3, n+k].
          EXPECT_FALSE(labels.is_body(r, tx.message))
              << "parent must never send r its own subtree's message";
          const bool first = arrive >= 2 && ri >= rk + 1 &&
                             arrive <= ri - rk + 1;
          const bool second = arrive >= rj - rk + 3 && arrive <= n + rk;
          EXPECT_TRUE(first || second)
              << "(D1) window at r=" << r << " arrive=" << arrive;
        } else {
          // Child-to-parent: (U1) lookahead at time 1, (U2) r-messages at
          // times i-k+2 .. j-k (the s-message itself never arrives at r).
          EXPECT_TRUE(labels.is_body(r, tx.message));
          if (tx.message == ri + 1 && arrive == 1) {
            // (U1), valid.
          } else {
            EXPECT_GE(tx.message, ri + 1) << "(U2) range at r=" << r;
            EXPECT_LE(tx.message, rj);
            EXPECT_EQ(arrive, tx.message - rk)
                << "(U2) time at r=" << r << " msg=" << tx.message;
          }
        }
      }
    }
  }
}

TEST_P(Windows, RootReceivesSequentially) {
  // Lemma 2 at the root: message m >= 1 arrives exactly at time m.
  const auto instance = make_instance();
  const auto& tree = instance.tree();
  const auto schedule = concurrent_updown(instance);
  const graph::Vertex root = tree.root();
  std::vector<std::size_t> arrival(instance.vertex_count(), 0);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      for (graph::Vertex r : tx.receivers) {
        if (r == root) arrival[tx.message] = t + 1;
      }
    }
  }
  for (model::Message m = 1; m < instance.vertex_count(); ++m) {
    EXPECT_EQ(arrival[m], m);
  }
}

TEST_P(Windows, EveryVertexLastReceiptIsMessageZeroAtNPlusK) {
  // Theorem 1's completion structure: each non-root vertex receives the
  // root's message (label 0) at exactly time n + level.
  const auto instance = make_instance();
  const auto& tree = instance.tree();
  const graph::Vertex n = instance.vertex_count();
  const auto schedule = concurrent_updown(instance);
  std::vector<std::size_t> zero_arrival(n, 0);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      if (tx.message != 0) continue;
      for (graph::Vertex r : tx.receivers) zero_arrival[r] = t + 1;
    }
  }
  for (graph::Vertex v = 0; v < n; ++v) {
    if (tree.is_root(v)) continue;
    EXPECT_EQ(zero_arrival[v], n + tree.level(v)) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, Windows,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace mg::gossip
