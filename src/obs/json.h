// Minimal JSON writer — just enough for the machine-readable artifacts
// this library emits (metric snapshots, BENCH_*.json rows, trace streams).
// No external dependency; the obs tests round-trip its output through an
// equally minimal parser to pin the grammar down.
//
// The writer is a streaming state machine: begin/end object or array,
// key(), and the value() overloads; commas, quoting, escaping, and
// (optional) indentation are handled internally.  Misuse (a value where a
// key is required, unbalanced end calls) trips an MG_EXPECTS contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mg::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \, and control characters become escape sequences.
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// Writes to `out`; `pretty` adds newlines and two-space indentation.
  explicit JsonWriter(std::ostream& out, bool pretty = true);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must produce its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// Non-finite doubles (NaN, ±Inf) are emitted as null — JSON has no
  /// tokens for them and an aborted artifact would be worse.
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key(name) + value(v) shorthand.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once the single root value is complete and all scopes are closed.
  [[nodiscard]] bool done() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value(bool is_key);
  void newline_indent();

  std::ostream& out_;
  bool pretty_;
  bool root_written_ = false;
  bool expect_value_ = false;  // a key was just written
  std::vector<Scope> scopes_;
  std::vector<bool> first_in_scope_;
};

}  // namespace mg::obs
