# Empty compiler generated dependencies file for fig1_cycle.
# This may be replaced when dependencies are built.
