// The churn stream shrinker, plus the regression cases it pinned.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "churn/feed.h"
#include "churn/solver.h"
#include "churn_shrinker.h"
#include "graph/dynamic.h"
#include "graph/generators.h"
#include "tree/incremental.h"
#include "tree/spanning_tree.h"

namespace mg {
namespace {

using churn::ChurnEvent;
using churn::EventKind;
using graph::Graph;
using graph::Vertex;

bool maintained_tree_diverges(const Graph& g0,
                              const std::vector<ChurnEvent>& events) {
  graph::DynamicGraph g(g0);
  tree::IncrementalTree maintained(g0);
  for (const auto& event : events) {
    const auto [u, v] = churn::apply_event(g, event);
    switch (event.kind) {
      case EventKind::kAddEdge:
        (void)maintained.on_edge_added(g.snapshot(), u, v);
        break;
      case EventKind::kRemoveEdge:
        (void)maintained.on_edge_removed(g.snapshot(), u, v);
        break;
      default:
        (void)maintained.on_node_event(g.snapshot());
        break;
    }
  }
  const tree::RootedTree fresh = tree::min_depth_spanning_tree(g.snapshot());
  if (fresh.root() != maintained.tree().root()) return true;
  for (Vertex w = 0; w < fresh.vertex_count(); ++w) {
    if (fresh.parent(w) != maintained.tree().parent(w)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pinned regression (shrunk by hand with the machinery below during
// development): on the path 0-1-2-3-4 the center is 2 (radius 2).
// Inserting {1, 3} leaves every distance *from the center* unchanged — a
// naive "root distances unchanged => noop" fast path accepts it — but it
// drops ecc(1) to 2, so the smallest-id minimum-eccentricity center is now
// vertex 1 and the maintained tree must recenter to stay byte-identical.
// ---------------------------------------------------------------------------
TEST(ChurnShrinker, PinnedPathShortcutRecentersTheTree) {
  const Graph g0 = graph::path(5);
  const std::vector<ChurnEvent> stream = {
      {EventKind::kAddEdge, 1, 3, 0},
  };
  EXPECT_FALSE(maintained_tree_diverges(g0, stream));

  graph::DynamicGraph g(g0);
  tree::IncrementalTree maintained(g0);
  ASSERT_EQ(maintained.center(), 2u);
  g.add_edge(1, 3);
  const auto report = maintained.on_edge_added(g.snapshot(), 1, 3);
  EXPECT_EQ(maintained.center(), 1u)
      << "ecc(1) dropped to the radius: smallest-id tie-break moves the "
         "center";
  EXPECT_EQ(report.path, tree::MaintenancePath::kRecenter);
}

// Pinned regression: a chord insertion that rewrites distances (subtree
// repair) followed by removing an original tree edge — the maintained
// tree must stay byte-identical through both, whichever paths absorb them.
TEST(ChurnShrinker, PinnedCycleChordThenRemovalStaysIdentical) {
  const Graph g0 = graph::cycle(8);
  const std::vector<ChurnEvent> stream = {
      {EventKind::kAddEdge, 0, 4, 0},
      {EventKind::kRemoveEdge, 0, 1, 1},
  };
  EXPECT_FALSE(maintained_tree_diverges(g0, stream));
}

// The shrinker itself: plant a stream whose failure is "edge {2, 5} ever
// present", bury the trigger among unrelated events, and check the
// machinery reduces to exactly the planted prefix and elides the noise.
TEST(ChurnShrinker, BisectsToMinimalReproducingPrefix) {
  const Graph g0 = graph::grid(4, 4);
  const std::vector<ChurnEvent> stream = {
      {EventKind::kAddEdge, 0, 5, 0},   // noise
      {EventKind::kAddEdge, 1, 6, 1},   // noise
      {EventKind::kAddEdge, 2, 5, 2},   // trigger
      {EventKind::kAddEdge, 3, 6, 3},   // never reached by the shrink
      {EventKind::kRemoveEdge, 0, 5, 4},
  };
  const test::FailurePredicate planted =
      [](const Graph& start, const std::vector<ChurnEvent>& events) {
        graph::DynamicGraph g(start);
        for (const auto& event : events) (void)churn::apply_event(g, event);
        return g.has_edge(2, 5);
      };

  const test::ShrinkResult shrunk =
      test::shrink_churn_stream(g0, stream, planted);
  ASSERT_TRUE(shrunk.reproduced);
  ASSERT_EQ(shrunk.events.size(), 1u) << "noise events must be elided";
  EXPECT_EQ(shrunk.events[0].kind, EventKind::kAddEdge);
  EXPECT_EQ(shrunk.events[0].u, 2u);
  EXPECT_EQ(shrunk.events[0].v, 5u);

  const std::string snippet =
      test::regression_snippet(shrunk, "graph::grid(4, 4)");
  EXPECT_NE(snippet.find("kAddEdge, 2, 5"), std::string::npos) << snippet;
  EXPECT_NE(snippet.find("1 of 5 events"), std::string::npos) << snippet;
}

// Elision must respect legality: a removal depending on an earlier
// insertion cannot lose that insertion, even when the predicate would
// still "fail" on the illegal stream.
TEST(ChurnShrinker, ElisionKeepsDependentEventsLegal) {
  const Graph g0 = graph::grid(4, 4);
  const std::vector<ChurnEvent> stream = {
      {EventKind::kAddEdge, 0, 5, 0},
      {EventKind::kRemoveEdge, 0, 5, 1},  // depends on the insertion
  };
  const test::FailurePredicate planted =
      [](const Graph& /*start*/, const std::vector<ChurnEvent>& events) {
        return !events.empty() &&
               events.back().kind == EventKind::kRemoveEdge;
      };
  const test::ShrinkResult shrunk =
      test::shrink_churn_stream(g0, stream, planted);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_EQ(shrunk.events.size(), 2u)
      << "the insertion is load-bearing and must survive";
}

// A stream that never fails reports reproduced == false.
TEST(ChurnShrinker, NonFailingStreamIsReportedAsSuch) {
  const Graph g0 = graph::grid(4, 4);
  churn::FeedOptions options;
  options.events = 12;
  options.seed = 3;
  const auto feed = churn::uniform_feed(g0, options);
  const test::ShrinkResult shrunk = test::shrink_churn_stream(
      g0, feed.events, maintained_tree_diverges);
  EXPECT_FALSE(shrunk.reproduced)
      << "differential battery is green: the shrinker has nothing to do";
  EXPECT_TRUE(shrunk.events.empty());
}

}  // namespace
}  // namespace mg
