// Plain-text table formatter used by the benchmark harness to print the
// paper's tables (Tables 1-4) and the rounds-vs-bounds series in a layout
// matching the paper's row/column structure.
#pragma once

#include <string>
#include <vector>

namespace mg {

/// Column-aligned ASCII table.  Rows may be added cell-by-cell; the widths
/// are computed at render time.  The first row added is treated as the
/// header when `render` is called with a separator.
class TextTable {
 public:
  /// Starts a new row; subsequent `cell` calls append to it.
  void new_row();

  void cell(const std::string& value);
  void cell(long long value);
  void cell(unsigned long long value);
  void cell(int value);
  void cell(std::size_t value);
  void cell(double value, int precision = 2);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table.  When `header_separator` is true a dashed rule is
  /// inserted after the first row.
  [[nodiscard]] std::string render(bool header_separator = true) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mg
