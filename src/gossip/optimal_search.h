// Budgeted exact search for gossip schedules of a given total time on
// small networks, used to certify the paper's existence claims: gossiping
// on the Petersen graph (Fig. 2) in n - 1 = 9 rounds, and on the N3-class
// witness (Fig. 3) in n - 1 rounds under multicast but not under the
// telephone model.
//
// The search walks rounds depth-first.  Within a round it assigns each
// processor at most one incoming (sender, message) pair subject to the
// model rules; deliveries of already-held messages are pruned WLOG (any
// schedule stays valid when useless deliveries are dropped).  The key
// pruning: a processor missing q messages with only q receive slots left
// must receive a *new* message in every remaining round.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "graph/hamiltonian.h"
#include "model/schedule.h"
#include "model/validator.h"

namespace mg::gossip {

struct ExactSearchOptions {
  model::ModelVariant variant = model::ModelVariant::kMulticast;
  std::uint64_t node_budget = 20'000'000;
};

struct ExactSearchResult {
  graph::SearchStatus status = graph::SearchStatus::kExhausted;
  model::Schedule schedule;  ///< populated when status == kFound
  std::uint64_t nodes_explored = 0;
};

/// Decides (within budget) whether a gossip schedule with total
/// communication time <= `max_time` exists on `g` (messages = processor
/// ids).  Requires 2 <= n <= 64.
[[nodiscard]] ExactSearchResult exact_gossip_search(
    const graph::Graph& g, std::size_t max_time,
    const ExactSearchOptions& options = {});

}  // namespace mg::gossip
