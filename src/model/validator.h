// Independent checker for communication schedules against a communication
// model.  Every schedule produced by every algorithm in this library is
// validated by this module in the test suite; it shares no code with the
// schedule generators, so agreement is meaningful evidence of correctness.
//
// The rules enforced are the selected `CommModel`'s (comm_model.h); under
// the default multicast model they are exactly the paper's (§1), per
// round t:
//   1. every receiver appears in at most one D set (rule 1) — for
//      exclusive-receiver models; under a broadcast-channel model
//      (radio/beep) simultaneous arrivals are legal but *collide*: the
//      receiver decodes nothing, and a transmitting processor hears
//      nothing (half-duplex);
//   2. all sender indices are distinct (rule 2);
//   3. every receiver is adjacent to its sender in the network — unless
//      the model addresses by id (direct);
//   4. no processor sends to itself;
//   5. the sender holds the message at send time — where the hold set
//      h_l(t) includes messages received at time t (receive happens before
//      send: a message sent at t-1 arrives at t and may be forwarded at t);
//   6. the model's capacity/addressing shape holds: |D| = 1 under
//      telephone, D = N(sender) under radio/beep;
//   7. (optional) completion: after the last arrival every processor holds
//      all n messages — under the model's delivery rule, so collided
//      arrivals do not count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/comm_model.h"
#include "model/schedule.h"

namespace mg::model {

/// Which communication model to enforce (legacy selector; the general
/// mechanism is `ValidatorOptions::model`).
enum class ModelVariant : std::uint8_t {
  kMulticast,  ///< D may be any neighbor subset (the paper's model)
  kTelephone,  ///< |D| = 1 (the restricted unicasting model)
};

struct ValidatorOptions {
  ModelVariant variant = ModelVariant::kMulticast;
  /// Require every processor to end holding all n messages (gossip
  /// completion).  Disable to validate partial schedules (e.g. broadcast).
  bool require_completion = true;
  /// Communication model to validate against; overrides `variant` when
  /// set.  nullptr = the variant's built-in (multicast or telephone).
  const CommModel* model = nullptr;
};

struct ValidationReport {
  bool ok = false;
  std::string error;  ///< empty when ok; otherwise the first violation

  /// Per-processor earliest time its hold set became complete (only
  /// meaningful when ok && require_completion).
  std::vector<std::size_t> completion_time;

  /// Latest receive time observed (== schedule total_time()).
  std::size_t total_time = 0;

  /// Deliveries lost to receiver-side collisions (superimposed arrivals or
  /// a half-duplex transmitter) — always 0 under exclusive-receiver
  /// models, where simultaneous arrivals are a rule violation instead.
  std::size_t collided = 0;
};

/// Validates `schedule` on network `g`.  `initial[v]` is the message
/// initially held by processor v; pass an empty vector for the identity
/// assignment (processor v holds message v).
[[nodiscard]] ValidationReport validate_schedule(
    const graph::Graph& g, const Schedule& schedule,
    const std::vector<Message>& initial = {},
    const ValidatorOptions& options = {});

/// Generalized form: processor v initially holds the set `initial_sets[v]`
/// and the message universe is 0..message_count-1 (the weighted and
/// repeated-gossip extensions need several messages per processor and more
/// messages than processors).  Completion means every processor holds all
/// `message_count` messages.
[[nodiscard]] ValidationReport validate_schedule_general(
    const graph::Graph& g, const Schedule& schedule,
    const std::vector<std::vector<Message>>& initial_sets,
    std::size_t message_count, const ValidatorOptions& options = {});

/// Validates that `schedule` broadcasts `source`'s message to every
/// processor (adjacency/conflict rules as above; completion means everyone
/// holds that one message).
[[nodiscard]] ValidationReport validate_broadcast(
    const graph::Graph& g, const Schedule& schedule, graph::Vertex source);

}  // namespace mg::model
