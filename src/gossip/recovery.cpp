#include "gossip/recovery.h"

#include <algorithm>
#include <utility>

#include "model/validator.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "support/contracts.h"

namespace mg::gossip {

using model::Message;

namespace {

constexpr std::uint32_t kNoComponent = static_cast<std::uint32_t>(-1);

/// Connected components of the alive-induced subgraph, plus each
/// component's knowledge closure (the union of its members' hold sets) —
/// the most any flood inside the component can deliver.
struct SurvivorClosure {
  std::vector<std::uint32_t> component;  ///< kNoComponent for dead vertices
  std::vector<DynamicBitset> closure;    ///< indexed by component id
};

SurvivorClosure survivor_closure(const graph::Graph& g,
                                 const std::vector<DynamicBitset>& holds,
                                 const std::vector<char>& alive) {
  const graph::Vertex n = g.vertex_count();
  const std::size_t message_count = n == 0 ? 0 : holds[0].size();
  SurvivorClosure result;
  result.component.assign(n, kNoComponent);
  std::vector<graph::Vertex> queue;
  for (graph::Vertex start = 0; start < n; ++start) {
    if (!alive[start] || result.component[start] != kNoComponent) continue;
    const auto id = static_cast<std::uint32_t>(result.closure.size());
    result.closure.emplace_back(message_count);
    result.component[start] = id;
    queue.assign(1, start);
    while (!queue.empty()) {
      const graph::Vertex v = queue.back();
      queue.pop_back();
      result.closure[id] |= holds[v];  // word-parallel union
      for (graph::Vertex u : g.neighbors(v)) {
        if (alive[u] && result.component[u] == kNoComponent) {
          result.component[u] = id;
          queue.push_back(u);
        }
      }
    }
  }
  return result;
}

/// Pairs still deliverable: live vertices below their component closure.
std::size_t outstanding_pairs(const SurvivorClosure& sc,
                              const std::vector<DynamicBitset>& holds,
                              const std::vector<char>& alive) {
  std::size_t outstanding = 0;
  for (std::size_t v = 0; v < holds.size(); ++v) {
    if (!alive[v]) continue;
    outstanding += sc.closure[sc.component[v]].count() - holds[v].count();
  }
  return outstanding;
}

}  // namespace

std::vector<std::vector<Message>> holds_to_initial_sets(
    const std::vector<DynamicBitset>& holds) {
  std::vector<std::vector<Message>> sets(holds.size());
  for (std::size_t v = 0; v < holds.size(); ++v) {
    for (std::size_t m = 0; m < holds[v].size(); ++m) {
      if (holds[v].test(m)) sets[v].push_back(static_cast<Message>(m));
    }
  }
  return sets;
}

model::Schedule partial_completion_schedule(const graph::Graph& g,
                                            const std::vector<DynamicBitset>&
                                                holds,
                                            const std::vector<char>& alive) {
  const graph::Vertex n = g.vertex_count();
  MG_EXPECTS(holds.size() == n);
  const std::size_t message_count = n == 0 ? 0 : holds[0].size();
  for (const auto& h : holds) MG_EXPECTS(h.size() == message_count);
  std::vector<char> live = alive;
  if (live.empty()) live.assign(n, 1);
  MG_EXPECTS(live.size() == n);

  const SurvivorClosure sc = survivor_closure(g, holds, live);
  std::vector<DynamicBitset> state = holds;
  std::size_t outstanding = outstanding_pairs(sc, state, live);

  model::Schedule schedule;
  std::size_t t = 0;
  const std::size_t safety_limit = message_count * n + 8;
  std::vector<char> receiving(n, 0);
  std::vector<std::pair<graph::Vertex, Message>> arrivals;
  while (outstanding > 0) {
    MG_ASSERT_MSG(t < safety_limit, "greedy completion failed to converge");
    std::fill(receiving.begin(), receiving.end(), 0);
    arrivals.clear();

    for (graph::Vertex v = 0; v < n; ++v) {
      if (!live[v]) continue;
      // Pick the held message wanted by the most currently-free live
      // neighbors.  Any message v holds is inside its neighbors' closure
      // (same component), so "u misses m" is exactly "u wants m".
      Message best_message = 0;
      std::vector<graph::Vertex> best_receivers;
      // Candidate messages: those missing from at least one free neighbor.
      // Iterate neighbors' missing bits rather than all messages.
      std::vector<Message> candidates;
      for (graph::Vertex u : g.neighbors(v)) {
        if (!live[u] || receiving[u]) continue;
        for (std::size_t m = 0; m < message_count; ++m) {
          if (state[v].test(m) && !state[u].test(m)) {
            candidates.push_back(static_cast<Message>(m));
          }
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      for (Message m : candidates) {
        std::vector<graph::Vertex> receivers;
        for (graph::Vertex u : g.neighbors(v)) {
          if (live[u] && !receiving[u] && !state[u].test(m)) {
            receivers.push_back(u);
          }
        }
        if (receivers.size() > best_receivers.size()) {
          best_receivers = std::move(receivers);
          best_message = m;
        }
      }
      if (best_receivers.empty()) continue;
      for (graph::Vertex u : best_receivers) {
        receiving[u] = 1;
        arrivals.emplace_back(u, best_message);
      }
      schedule.add(t, {best_message, v, std::move(best_receivers)});
    }

    MG_ASSERT_MSG(!arrivals.empty(),
                  "no progress toward the achievable closure");
    for (const auto& [u, m] : arrivals) {
      state[u].set(m);
      --outstanding;
    }
    ++t;
  }
  schedule.trim();
  return schedule;
}

model::Schedule greedy_completion_schedule(
    const graph::Graph& g, const std::vector<DynamicBitset>& holds) {
  const graph::Vertex n = g.vertex_count();
  MG_EXPECTS(holds.size() == n);
  const std::size_t message_count = n == 0 ? 0 : holds[0].size();
  for (const auto& h : holds) MG_EXPECTS(h.size() == message_count);

  // Every message must be known somewhere, or completion is impossible.
  for (std::size_t m = 0; m < message_count; ++m) {
    bool known = false;
    for (graph::Vertex v = 0; v < n && !known; ++v) known = holds[v].test(m);
    MG_EXPECTS_MSG(known, "a message is known to no processor");
  }

  // Full completion further requires every component to reach every
  // message; on a connected graph this follows from the check above.
  const std::vector<char> live(n, 1);
  const SurvivorClosure sc = survivor_closure(g, holds, live);
  for (const auto& closure : sc.closure) {
    MG_EXPECTS_MSG(closure.count() == message_count,
                   "disconnected network leaves a message unreachable");
  }

  return partial_completion_schedule(g, holds, live);
}

RecoveryOutcome solve_with_recovery(const graph::Graph& g,
                                    const fault::FaultPlan& plan,
                                    const RecoveryOptions& options) {
  RecoveryOutcome out(solve_gossip(g, options.algorithm));
  const graph::Graph tree = out.base.instance.tree().as_graph();
  const graph::Vertex n = g.vertex_count();
  const std::size_t message_count = n;

  // Phase 1: the offline schedule meets the fabric.
  sim::SimOptions base_options;
  base_options.faults = &plan;
  out.faulty_run = sim::simulate(tree, out.base.schedule,
                                 out.base.instance.initial(), base_options);

  std::vector<DynamicBitset> holds = out.faulty_run.final_holds;
  std::size_t clock = out.base.schedule.round_count();  // absolute round

  // Phase 2: bounded self-healing.  Each attempt replans a greedy
  // completion flood on the current survivor graph and executes it under
  // the continuing fault plan; holds only grow, so attempts converge
  // toward the achievable closure (or exhaust the budget trying).
  while (out.attempts < options.max_attempts) {
    MG_OBS_SPAN(attempt_span, "recovery.attempt");
    MG_OBS_SCOPE_HIST(attempt_hist, "recovery.attempt_ns");
    const std::vector<char> alive = plan.alive_at(clock, n);
    model::Schedule repair = partial_completion_schedule(g, holds, alive);
    if (repair.round_count() == 0) break;  // achievable closure reached

    if (options.extra_round_budget > 0) {
      if (out.extra_rounds >= options.extra_round_budget) break;
      const std::size_t remaining =
          options.extra_round_budget - out.extra_rounds;
      if (repair.round_count() > remaining) {
        model::Schedule truncated;
        for (std::size_t t = 0; t < remaining; ++t) {
          for (const auto& tx : repair.round(t)) truncated.add(t, tx);
        }
        repair = std::move(truncated);
      }
    }

    // The repair must itself be a legal multicast schedule (rules only;
    // completion is checked on the final state, not per attempt).
    model::ValidatorOptions validator_options;
    validator_options.require_completion = false;
    const auto repair_report = model::validate_schedule_general(
        g, repair, holds_to_initial_sets(holds), message_count,
        validator_options);
    out.repairs_valid = out.repairs_valid && repair_report.ok;

    sim::SimOptions repair_options;
    if (options.faults_during_recovery) {
      repair_options.faults = &plan;
      repair_options.fault_round_offset = clock;
    }
    const sim::SimResult run =
        sim::simulate_from_holds(g, repair, holds, repair_options);
    holds = run.final_holds;

    const std::size_t repair_rounds = repair.round_count();
    out.repairs.push_back(std::move(repair));
    out.extra_rounds += repair_rounds;
    clock += repair_rounds;
    ++out.attempts;
    MG_OBS_ADD("recovery.invocations", 1);
    MG_OBS_ADD("recovery.extra_rounds", repair_rounds);
  }

  // Phase 3: the report.  `recovered` compares against the achievable
  // closure of the final survivor graph; `coverage` is the fraction of
  // (live processor, message) pairs actually held.
  const std::vector<char> alive = plan.alive_at(clock, n);
  const SurvivorClosure sc = survivor_closure(g, holds, alive);
  out.missing.assign(n, 0);
  std::size_t live_count = 0;
  std::size_t held_pairs = 0;
  out.complete = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    out.missing[v] = message_count - holds[v].count();
    if (!alive[v]) {
      out.crashed.push_back(v);
      continue;
    }
    ++live_count;
    held_pairs += holds[v].count();
    if (out.missing[v] != 0) out.complete = false;
  }
  out.recovered = outstanding_pairs(sc, holds, alive) == 0;
  out.coverage = live_count == 0
                     ? 0.0
                     : static_cast<double>(held_pairs) /
                           (static_cast<double>(live_count) *
                            static_cast<double>(message_count));
  if (live_count == 0) out.complete = false;
  return out;
}

}  // namespace mg::gossip
