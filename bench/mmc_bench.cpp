// Extension bench: the MultiMessage Multicasting frame ([12]-[14]).  The
// paper: "The gossiping problem is a restricted version of the multimessage
// multicasting problem; however, all the previous algorithms ... are for a
// set of architectures."  On the fully connected architecture the greedy
// MMC scheduler solves the gossip restriction exactly at the degree bound
// d = n - 1 and stays near d on random demand matrices.
#include <algorithm>
#include <cstdio>

#include "mmc/greedy.h"
#include "mmc/problem.h"
#include "support/rng.h"
#include "support/table.h"

namespace {

mg::mmc::MmcInstance random_instance(mg::graph::Vertex n,
                                     std::size_t messages,
                                     std::size_t max_fanout,
                                     std::uint64_t seed) {
  using namespace mg;
  Rng rng(seed);
  std::vector<mmc::MmcMessage> list;
  for (std::size_t id = 0; id < messages; ++id) {
    mmc::MmcMessage message;
    message.id = static_cast<model::Message>(id);
    message.source = static_cast<graph::Vertex>(rng.below(n));
    std::vector<graph::Vertex> all;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (v != message.source) all.push_back(v);
    }
    rng.shuffle(all);
    const std::size_t fanout =
        std::min<std::size_t>(1 + rng.below(max_fanout), all.size());
    message.destinations.assign(all.begin(),
                                all.begin() +
                                    static_cast<std::ptrdiff_t>(fanout));
    std::sort(message.destinations.begin(), message.destinations.end());
    list.push_back(std::move(message));
  }
  return mg::mmc::MmcInstance(n, std::move(list));
}

}  // namespace

int main() {
  using namespace mg;
  TextTable table;
  table.new_row();
  for (const char* h : {"instance", "n", "messages", "degree d (LB)",
                        "greedy rounds", "rounds/d", "valid"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  auto row = [&](const std::string& name, const mmc::MmcInstance& instance) {
    const auto schedule = mmc::greedy_mmc_schedule(instance);
    const auto problem = instance.check(schedule);
    all_ok = all_ok && problem.empty();
    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(instance.processor_count()));
    table.cell(instance.message_count());
    table.cell(instance.degree());
    table.cell(schedule.total_time());
    table.cell(static_cast<double>(schedule.total_time()) /
                   static_cast<double>(instance.degree()),
               2);
    table.cell(problem.empty() ? std::string("yes") : problem);
  };

  for (graph::Vertex n : {8u, 16u, 32u}) {
    row("gossip restriction " + std::to_string(n),
        mmc::MmcInstance::gossip_restriction(n));
  }
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    row("random n=16 k<=4 #" + std::to_string(seed),
        random_instance(16, 48, 4, seed));
    row("random n=16 k<=15 #" + std::to_string(seed),
        random_instance(16, 32, 15, seed + 100));
    row("random n=24 k<=6 #" + std::to_string(seed),
        random_instance(24, 96, 6, seed + 200));
  }

  std::printf(
      "Greedy MultiMessage Multicasting on the fully connected network\n"
      "(degree d = max per-processor send/receive load; every schedule\n"
      "needs >= d rounds):\n\n%s\nall schedules legal and covering: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
