# Empty compiler generated dependencies file for broadcast_bench.
# This may be replaced when dependencies are built.
