// Experiments B1-B3: total communication time of Simple (Lemma 1), the
// greedy UpDown (ref [15]) and ConcurrentUpDown (Theorem 1) across graph
// families and sizes, against the paper's closed forms and bounds.  The
// shape to verify: ConcurrentUpDown == n + r exactly, Simple == 2n + r - 3
// exactly, UpDown in between (occasionally matching n - 1 on shallow
// trees), everything >= n - 1, ratio to OPT <= (n + n/2)/(n - 1).
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "gossip/bounds.h"
#include "gossip/simple.h"
#include "gossip/solve.h"
#include "gossip/updown.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  struct Family {
    std::string name;
    std::function<graph::Graph(graph::Vertex)> make;
  };
  Rng rng(0xbeef);
  const std::vector<Family> families = {
      {"line", [](graph::Vertex n) { return graph::path(n); }},
      {"cycle", [](graph::Vertex n) { return graph::cycle(n); }},
      {"star", [](graph::Vertex n) { return graph::star(n); }},
      {"binary tree", [](graph::Vertex n) { return graph::k_ary_tree(n, 2); }},
      {"grid s*s", [](graph::Vertex s) { return graph::grid(s, s); }},
      {"torus s*s", [](graph::Vertex s) { return graph::torus(s, s); }},
      {"hypercube 2^s",
       [](graph::Vertex s) { return graph::hypercube(std::min(s, 10u)); }},
      {"caterpillar", [](graph::Vertex s) { return graph::caterpillar(s, 3); }},
      {"random gnp",
       [&rng](graph::Vertex n) {
         return graph::random_connected_gnp(
             n, 3.0 / static_cast<double>(n), rng);
       }},
      {"random geometric",
       [&rng](graph::Vertex n) { return graph::random_geometric(n, 0.2, rng); }},
  };

  TextTable table;
  table.new_row();
  for (const char* h :
       {"family", "knob", "n", "r", "n-1", "ConcUpDown", "n+r", "UpDown",
        "n+3r-2", "Simple", "2n+r-3", "ratio"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& family : families) {
    for (graph::Vertex knob : {4u, 6u, 10u, 16u, 24u}) {
      const auto g = family.make(knob);
      const auto n = g.vertex_count();
      const auto concurrent = gossip::solve_gossip(g);
      const auto updown = gossip::solve_gossip(g, gossip::Algorithm::kUpDown);
      const auto simple = gossip::solve_gossip(g, gossip::Algorithm::kSimple);
      all_ok = all_ok && concurrent.report.ok && updown.report.ok &&
               simple.report.ok;
      const std::size_t r = concurrent.instance.radius();

      table.new_row();
      table.cell(family.name);
      table.cell(static_cast<std::size_t>(knob));
      table.cell(static_cast<std::size_t>(n));
      table.cell(r);
      table.cell(gossip::trivial_lower_bound(n));
      table.cell(concurrent.schedule.total_time());
      table.cell(gossip::concurrent_updown_time(n, r));
      table.cell(updown.schedule.total_time());
      table.cell(gossip::updown_time_bound(n, r));
      table.cell(simple.schedule.total_time());
      table.cell(gossip::simple_total_time(n, r));
      table.cell(static_cast<double>(concurrent.schedule.total_time()) /
                     static_cast<double>(gossip::trivial_lower_bound(n)),
                 3);

      if (concurrent.schedule.total_time() !=
              gossip::concurrent_updown_time(n, r) ||
          simple.schedule.total_time() != gossip::simple_total_time(n, r)) {
        all_ok = false;
      }
    }
  }

  std::printf(
      "B1-B3: total communication time vs the paper's closed forms\n"
      "(ConcUpDown must equal n+r, Simple must equal 2n+r-3; UpDown is the\n"
      "greedy two-phase reconstruction, bound n+3r-2 from the paper's "
      "phases)\n\n%s\nall schedules valid and closed forms matched: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
