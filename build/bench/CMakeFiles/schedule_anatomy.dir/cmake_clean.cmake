file(REMOVE_RECURSE
  "CMakeFiles/schedule_anatomy.dir/schedule_anatomy.cpp.o"
  "CMakeFiles/schedule_anatomy.dir/schedule_anatomy.cpp.o.d"
  "schedule_anatomy"
  "schedule_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
