#include "sim/network_sim.h"

#include <algorithm>
#include <bit>

#include "obs/registry.h"
#include "obs/span.h"
#include "support/bitset.h"
#include "support/contracts.h"

namespace mg::sim {

namespace {

/// Shared execution core.  `hold` is the time-0 knowledge state (one bitset
/// of `message_count` bits per node); completion means every node holds all
/// `message_count` messages.
SimResult run_simulation(const graph::Graph& g,
                         const model::Schedule& schedule,
                         std::vector<DynamicBitset> hold,
                         std::size_t message_count,
                         const SimOptions& options) {
  MG_OBS_SPAN(sim_span, "sim.simulate");
  MG_OBS_SCOPE_HIST(sim_hist, "sim.run_ns");
  const Vertex n = g.vertex_count();
  MG_EXPECTS(hold.size() == n);
  SimResult result;
  result.completion_time.assign(n, 0);
  result.missing.assign(n, 0);

  // Fault sources: the legacy (round, sender) list folds into an O(1) hash
  // set — one lookup per scheduled transmission, however many faults the
  // plan carries — and a FaultPlan supplies the richer models.  Plan
  // queries use absolute rounds (offset + local round) so recovery runs
  // experience the same fabric the base run did.
  fault::DropSet legacy_drops;
  for (const auto& [round, sender] : options.drop) {
    legacy_drops.insert(round, sender);
  }
  const fault::FaultPlan* plan =
      options.faults != nullptr && !options.faults->empty() ? options.faults
                                                            : nullptr;
  const std::size_t offset = options.fault_round_offset;
  const bool collisions =
      options.comm != nullptr && options.comm->collision_loss();
  // Round-stamped channel state for the collision verdict, sized only when
  // a collision-loss model is active — the default path allocates nothing.
  std::vector<std::size_t> last_tx(collisions ? n : 0, SIZE_MAX);
  std::vector<std::size_t> heard_round(collisions ? n : 0, SIZE_MAX);
  std::vector<std::uint8_t> heard_count(collisions ? n : 0, 0);

  std::vector<std::size_t> known(n, 0);
  std::size_t total_known = 0;
  for (Vertex v = 0; v < n; ++v) {
    known[v] = hold[v].count();
    total_known += known[v];
  }

  // Causal stamps for sink events: a process-unique id per transmission
  // that hits the wire, and per (node, message) the id of the first emitted
  // delivery — the happens-before parent of any later relay by that node
  // (0 = held initially).  Allocated only when a sink observes the run; the
  // sink-free paths pay nothing.
  std::uint64_t next_trace = 0;
  std::vector<std::uint64_t> first_arrival(
      options.sink != nullptr ? static_cast<std::size_t>(n) * message_count
                              : 0,
      0);

  const std::size_t rounds = schedule.round_count();
  const std::size_t horizon =
      rounds + (plan != nullptr ? plan->max_extra_delay() : 0);

  // Deliveries land at send round + 1 + edge delay (receive-before-send):
  // buffer arrivals by time and apply them before that round's sends.
  std::vector<std::vector<std::pair<Vertex, Message>>> in_flight(horizon + 1);
  auto apply_arrivals = [&](std::size_t receive_time) {
    for (const auto& [r, m] : in_flight[receive_time]) {
      if (!hold[r].test(m)) {
        hold[r].set(m);
        ++known[r];
        ++total_known;
        if (known[r] == message_count) {
          result.completion_time[r] = receive_time;
        }
      }
    }
    in_flight[receive_time].clear();
  };

  std::uint64_t deliveries = 0;
  result.knowledge.push_back(total_known);  // state at time 0
  for (std::size_t t = 0; t < rounds; ++t) {
    if (t > 0) {
      apply_arrivals(t);
      result.knowledge.push_back(total_known);  // state at time t
    }
    const std::size_t abs_t = offset + t;
    if (collisions) {
      // Channel pre-pass: who actually transmits this round (the same
      // crash/drop/hold verdicts as the delivery loop below — all pure
      // queries) and how many transmissions each receiver hears.
      for (const auto& tx : schedule.round(t)) {
        if (plan != nullptr && plan->crashed(tx.sender, abs_t)) continue;
        if (legacy_drops.contains(t, tx.sender) ||
            (plan != nullptr && plan->drops(abs_t, tx.sender))) {
          continue;
        }
        if (!hold[tx.sender].test(tx.message)) continue;
        last_tx[tx.sender] = t;
        for (Vertex r : tx.receivers) {
          if (heard_round[r] != t) {
            heard_round[r] = t;
            heard_count[r] = 0;
          }
          if (heard_count[r] < 2) ++heard_count[r];
        }
      }
    }
    for (const auto& tx : schedule.round(t)) {
      const Vertex first_receiver =
          tx.receivers.empty() ? tx.sender : tx.receivers.front();
      if (plan != nullptr && plan->crashed(tx.sender, abs_t)) {
        ++result.crashed_sends;
        if (options.sink != nullptr) {
          options.sink->on_event({"crash", t, tx.sender, tx.message,
                                  first_receiver, tx.receivers.size()});
        }
        continue;
      }
      if (legacy_drops.contains(t, tx.sender) ||
          (plan != nullptr && plan->drops(abs_t, tx.sender))) {
        ++result.injected_drops;
        if (options.sink != nullptr) {
          options.sink->on_event({"drop", t, tx.sender, tx.message,
                                  first_receiver, tx.receivers.size()});
        }
        continue;
      }
      if (!hold[tx.sender].test(tx.message)) {
        ++result.skipped_sends;  // fault cascade: nothing to forward
        if (options.sink != nullptr) {
          options.sink->on_event({"skip", t, tx.sender, tx.message,
                                  first_receiver, tx.receivers.size()});
        }
        continue;
      }
      if (options.record_trace) {
        result.trace.push_back(
            {SimEvent::Kind::kSend, t, tx.sender, tx.message, first_receiver});
      }
      std::uint64_t send_trace = 0;
      if (options.sink != nullptr) {
        send_trace = ++next_trace;
        options.sink->on_event(
            {"send", t, tx.sender, tx.message, first_receiver,
             tx.receivers.size(), send_trace,
             first_arrival[static_cast<std::size_t>(tx.sender) *
                               message_count +
                           tx.message]});
      }
      for (Vertex r : tx.receivers) {
        if (collisions && (last_tx[r] == t || heard_count[r] >= 2)) {
          // heard_round[r] == t is guaranteed: this very transmission was
          // counted in the pre-pass.  The receiver decodes nothing — either
          // it was itself transmitting (half-duplex) or >= 2 transmissions
          // superimposed.
          ++result.collided_receives;
          if (options.sink != nullptr) {
            options.sink->on_event(
                {"collide", t, r, tx.message, tx.sender, 0});
          }
          continue;
        }
        const std::size_t arrival =
            t + 1 +
            (plan != nullptr ? plan->extra_delay(tx.sender, r) : 0);
        if (plan != nullptr && plan->crashed(r, offset + arrival)) {
          ++result.lost_receives;  // receiver dead (or dies in flight)
          if (options.sink != nullptr) {
            options.sink->on_event(
                {"lost", arrival, r, tx.message, tx.sender, 0});
          }
          continue;
        }
        result.total_time = std::max(result.total_time, arrival);
        if (options.record_trace) {
          result.trace.push_back(
              {SimEvent::Kind::kReceive, arrival, r, tx.message, tx.sender});
        }
        if (options.sink != nullptr) {
          options.sink->on_event({"receive", arrival, r, tx.message,
                                  tx.sender, 0, send_trace});
          const std::size_t fa =
              static_cast<std::size_t>(r) * message_count + tx.message;
          if (first_arrival[fa] == 0 && !hold[r].test(tx.message)) {
            first_arrival[fa] = send_trace;
          }
        }
        ++deliveries;
        in_flight[arrival].emplace_back(r, tx.message);
      }
    }
  }
  // Drain: arrivals at and past the last send round (delays can push the
  // final deliveries past the schedule's own horizon).
  for (std::size_t t = std::max<std::size_t>(rounds, 1); t <= horizon; ++t) {
    apply_arrivals(t);
    result.knowledge.push_back(total_known);  // state at time t
  }

  result.completed = true;
  for (Vertex v = 0; v < n; ++v) {
    result.missing[v] = message_count - known[v];
    if (result.missing[v] != 0) result.completed = false;
  }
  if (options.keep_final_holds) result.final_holds = std::move(hold);

  MG_OBS_ADD("sim.runs", 1);
  MG_OBS_ADD("sim.deliveries", deliveries);
  MG_OBS_ADD("sim.dropped_transmissions", result.injected_drops);
  MG_OBS_ADD("sim.skipped_sends", result.skipped_sends);
  if (result.collided_receives > 0) {
    MG_OBS_ADD("sim.collided_receives", result.collided_receives);
  }
  if (result.injected_drops > 0) {
    MG_OBS_ADD("fault.injected_drops", result.injected_drops);
  }
  if (plan != nullptr && plan->has_crashes()) {
    MG_OBS_ADD("fault.crashes", plan->crashes_before(offset + rounds));
  }
  if (result.completed && !result.completion_time.empty()) {
    MG_OBS_ADD("sim.completion_round",
               *std::max_element(result.completion_time.begin(),
                                 result.completion_time.end()));
  }
  return result;
}

/// Word-at-a-time execution core.  Same semantics, events and counters as
/// `run_simulation` (the bit core above is kept verbatim as the oracle;
/// sim_core_test pins full-result equality), but the hold state is one
/// contiguous n x W uint64 matrix (W = ceil(message_count / 64)): a
/// delivery is a single OR + popcount-free knowledge update, initial
/// knowledge is popcounted word-wise, and in-flight arrivals live in a
/// reused modular ring instead of a horizon-sized vector-of-vectors.  The
/// allocation profile is O(1) vectors per run however large n gets.
SimResult run_simulation_words(const graph::Graph& g,
                               const model::CompiledSchedule& schedule,
                               std::vector<std::uint64_t> hold,
                               std::size_t message_count,
                               std::vector<std::size_t> known,
                               const SimOptions& options) {
  MG_OBS_SPAN(sim_span, "sim.simulate");
  MG_OBS_SCOPE_HIST(sim_hist, "sim.run_ns");
  const Vertex n = g.vertex_count();
  const std::size_t words = (message_count + 63) / 64;
  MG_EXPECTS(hold.size() == static_cast<std::size_t>(n) * words);
  MG_EXPECTS(known.size() == n);
  SimResult result;
  result.completion_time.assign(n, 0);
  result.missing.assign(n, 0);

  fault::DropSet legacy_drops;
  for (const auto& [round, sender] : options.drop) {
    legacy_drops.insert(round, sender);
  }
  const fault::FaultPlan* plan =
      options.faults != nullptr && !options.faults->empty() ? options.faults
                                                            : nullptr;
  const std::size_t offset = options.fault_round_offset;
  const bool collisions =
      options.comm != nullptr && options.comm->collision_loss();
  // Round-stamped channel state for the collision verdict, sized only when
  // a collision-loss model is active — the default path allocates nothing.
  std::vector<std::size_t> last_tx(collisions ? n : 0, SIZE_MAX);
  std::vector<std::size_t> heard_round(collisions ? n : 0, SIZE_MAX);
  std::vector<std::uint8_t> heard_count(collisions ? n : 0, 0);
  const auto sender_holds_message = [&](Vertex v, Message m) {
    return ((hold[static_cast<std::size_t>(v) * words + (m >> 6)] >>
             (m & 63)) &
            1) != 0;
  };

  std::size_t total_known = 0;
  for (Vertex v = 0; v < n; ++v) total_known += known[v];

  // Causal stamps for sink events — character-for-character the bit core's
  // scheme (sim_core_test pins byte-identical JSONL between the cores).
  std::uint64_t next_trace = 0;
  std::vector<std::uint64_t> first_arrival(
      options.sink != nullptr ? static_cast<std::size_t>(n) * message_count
                              : 0,
      0);

  const std::size_t rounds = schedule.round_count();
  const std::size_t max_delay = plan != nullptr ? plan->max_extra_delay() : 0;
  const std::size_t horizon = rounds + max_delay;

  // Arrival buckets in a modular ring: when time t is applied every
  // pending arrival lies in [t, t + max_delay + 1], so max_delay + 2 slots
  // never collide — and the buckets are reused across the whole run.  The
  // size is rounded up to a power of two so the per-delivery index is a
  // mask, not a hardware division.
  const std::size_t ring_size = std::bit_ceil(max_delay + 2);
  const std::size_t ring_mask = ring_size - 1;
  std::vector<std::vector<std::pair<Vertex, Message>>> ring(ring_size);
  std::uint64_t word_ops = 0;  // delivery ORs applied to the hold matrix
  auto apply_arrivals = [&](std::size_t receive_time) {
    auto& bucket = ring[receive_time & ring_mask];
    for (const auto& [r, m] : bucket) {
      std::uint64_t& w =
          hold[static_cast<std::size_t>(r) * words + (m >> 6)];
      const std::uint64_t mask = std::uint64_t{1} << (m & 63);
      ++word_ops;
      if ((w & mask) == 0) {
        w |= mask;
        ++known[r];
        ++total_known;
        if (known[r] == message_count) {
          result.completion_time[r] = receive_time;
        }
      }
    }
    bucket.clear();
  };

  std::uint64_t deliveries = 0;
  const bool has_legacy_drops = !legacy_drops.empty();
  result.knowledge.reserve(rounds + 1);
  result.knowledge.push_back(total_known);  // state at time 0

  // Fault-free, untraced runs — the repeated-runner configuration — take a
  // stripped copy of the round loop below with the plan/drop/trace/sink
  // branches statically absent.  Identical events and counters; the
  // general loop is the reference and sim_core_test pins the equality.
  const bool fast_path = plan == nullptr && !has_legacy_drops &&
                         options.sink == nullptr && !options.record_trace &&
                         !collisions;
  if (fast_path) {
    for (std::size_t t = 0; t < rounds; ++t) {
      if (t > 0) {
        apply_arrivals(t);
        result.knowledge.push_back(total_known);  // state at time t
      }
      auto& bucket = ring[(t + 1) & ring_mask];
      for (const auto& tx : schedule.round(t)) {
        MG_EXPECTS(tx.sender < n);
        MG_EXPECTS(tx.message < message_count);
        const bool sender_holds =
            (hold[static_cast<std::size_t>(tx.sender) * words +
                  (tx.message >> 6)] >>
             (tx.message & 63)) &
            1;
        if (!sender_holds) {
          ++result.skipped_sends;  // fault cascade: nothing to forward
          continue;
        }
        const auto receivers = schedule.receivers(tx);
        for (Vertex r : receivers) {
          MG_EXPECTS(r < n);
          bucket.emplace_back(r, tx.message);
        }
        deliveries += receivers.size();
        if (!receivers.empty()) {
          result.total_time = std::max(result.total_time, t + 1);
        }
      }
    }
  }
  for (std::size_t t = 0; !fast_path && t < rounds; ++t) {
    if (t > 0) {
      apply_arrivals(t);
      result.knowledge.push_back(total_known);  // state at time t
    }
    const std::size_t abs_t = offset + t;
    if (collisions) {
      // Channel pre-pass: who actually transmits this round (the same
      // crash/drop/hold verdicts as the delivery loop below — all pure
      // queries) and how many transmissions each receiver hears.
      for (const auto& tx : schedule.round(t)) {
        if (plan != nullptr && plan->crashed(tx.sender, abs_t)) continue;
        if ((has_legacy_drops && legacy_drops.contains(t, tx.sender)) ||
            (plan != nullptr && plan->drops(abs_t, tx.sender))) {
          continue;
        }
        if (!sender_holds_message(tx.sender, tx.message)) continue;
        last_tx[tx.sender] = t;
        for (Vertex r : schedule.receivers(tx)) {
          if (heard_round[r] != t) {
            heard_round[r] = t;
            heard_count[r] = 0;
          }
          if (heard_count[r] < 2) ++heard_count[r];
        }
      }
    }
    for (const auto& tx : schedule.round(t)) {
      const auto receivers = schedule.receivers(tx);
      const Vertex first_receiver =
          receivers.empty() ? tx.sender : receivers.front();
      if (plan != nullptr && plan->crashed(tx.sender, abs_t)) {
        ++result.crashed_sends;
        if (options.sink != nullptr) {
          options.sink->on_event({"crash", t, tx.sender, tx.message,
                                  first_receiver, receivers.size()});
        }
        continue;
      }
      if ((has_legacy_drops && legacy_drops.contains(t, tx.sender)) ||
          (plan != nullptr && plan->drops(abs_t, tx.sender))) {
        ++result.injected_drops;
        if (options.sink != nullptr) {
          options.sink->on_event({"drop", t, tx.sender, tx.message,
                                  first_receiver, receivers.size()});
        }
        continue;
      }
      MG_EXPECTS(tx.sender < n);
      MG_EXPECTS(tx.message < message_count);
      const bool sender_holds =
          (hold[static_cast<std::size_t>(tx.sender) * words +
                (tx.message >> 6)] >>
           (tx.message & 63)) &
          1;
      if (!sender_holds) {
        ++result.skipped_sends;  // fault cascade: nothing to forward
        if (options.sink != nullptr) {
          options.sink->on_event({"skip", t, tx.sender, tx.message,
                                  first_receiver, receivers.size()});
        }
        continue;
      }
      if (options.record_trace) {
        result.trace.push_back(
            {SimEvent::Kind::kSend, t, tx.sender, tx.message, first_receiver});
      }
      std::uint64_t send_trace = 0;
      if (options.sink != nullptr) {
        send_trace = ++next_trace;
        options.sink->on_event(
            {"send", t, tx.sender, tx.message, first_receiver,
             receivers.size(), send_trace,
             first_arrival[static_cast<std::size_t>(tx.sender) *
                               message_count +
                           tx.message]});
      }
      for (Vertex r : receivers) {
        MG_EXPECTS(r < n);
        if (collisions && (last_tx[r] == t || heard_count[r] >= 2)) {
          // heard_round[r] == t is guaranteed: this very transmission was
          // counted in the pre-pass.  The receiver decodes nothing — either
          // it was itself transmitting (half-duplex) or >= 2 transmissions
          // superimposed.
          ++result.collided_receives;
          if (options.sink != nullptr) {
            options.sink->on_event(
                {"collide", t, r, tx.message, tx.sender, 0});
          }
          continue;
        }
        const std::size_t arrival =
            t + 1 +
            (plan != nullptr ? plan->extra_delay(tx.sender, r) : 0);
        if (plan != nullptr && plan->crashed(r, offset + arrival)) {
          ++result.lost_receives;  // receiver dead (or dies in flight)
          if (options.sink != nullptr) {
            options.sink->on_event(
                {"lost", arrival, r, tx.message, tx.sender, 0});
          }
          continue;
        }
        result.total_time = std::max(result.total_time, arrival);
        if (options.record_trace) {
          result.trace.push_back(
              {SimEvent::Kind::kReceive, arrival, r, tx.message, tx.sender});
        }
        if (options.sink != nullptr) {
          options.sink->on_event({"receive", arrival, r, tx.message,
                                  tx.sender, 0, send_trace});
          const std::size_t fa =
              static_cast<std::size_t>(r) * message_count + tx.message;
          if (first_arrival[fa] == 0 &&
              !sender_holds_message(r, tx.message)) {
            first_arrival[fa] = send_trace;
          }
        }
        ++deliveries;
        ring[arrival & ring_mask].emplace_back(r, tx.message);
      }
    }
  }
  // Drain: arrivals at and past the last send round.
  for (std::size_t t = std::max<std::size_t>(rounds, 1); t <= horizon; ++t) {
    apply_arrivals(t);
    result.knowledge.push_back(total_known);  // state at time t
  }

  result.completed = true;
  for (Vertex v = 0; v < n; ++v) {
    result.missing[v] = message_count - known[v];
    if (result.missing[v] != 0) result.completed = false;
  }
  if (options.keep_final_holds) {
    result.final_holds.reserve(n);
    for (Vertex v = 0; v < n; ++v) {
      result.final_holds.push_back(DynamicBitset::from_words(
          message_count,
          {hold.begin() + static_cast<std::ptrdiff_t>(
                              static_cast<std::size_t>(v) * words),
           hold.begin() + static_cast<std::ptrdiff_t>(
                              (static_cast<std::size_t>(v) + 1) * words)}));
    }
  }

  MG_OBS_ADD("sim.runs", 1);
  MG_OBS_ADD("sim.deliveries", deliveries);
  MG_OBS_ADD("sim.words_or_ops", word_ops);
  MG_OBS_ADD("sim.dropped_transmissions", result.injected_drops);
  MG_OBS_ADD("sim.skipped_sends", result.skipped_sends);
  if (result.collided_receives > 0) {
    MG_OBS_ADD("sim.collided_receives", result.collided_receives);
  }
  if (result.injected_drops > 0) {
    MG_OBS_ADD("fault.injected_drops", result.injected_drops);
  }
  if (plan != nullptr && plan->has_crashes()) {
    MG_OBS_ADD("fault.crashes", plan->crashes_before(offset + rounds));
  }
  if (result.completed && !result.completion_time.empty()) {
    MG_OBS_ADD("sim.completion_round",
               *std::max_element(result.completion_time.begin(),
                                 result.completion_time.end()));
  }
  return result;
}

/// Flattens per-node bitsets into the word core's hold matrix + popcounts.
SimResult run_words_from_bitsets(const graph::Graph& g,
                                 const model::CompiledSchedule& schedule,
                                 const std::vector<DynamicBitset>& holds,
                                 std::size_t message_count,
                                 const SimOptions& options) {
  const Vertex n = g.vertex_count();
  const std::size_t words = (message_count + 63) / 64;
  std::vector<std::uint64_t> hold(static_cast<std::size_t>(n) * words, 0);
  std::vector<std::size_t> known(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    const auto& src = holds[v].words();
    std::copy(src.begin(), src.end(),
              hold.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(v) * words));
    known[v] = holds[v].count();
  }
  return run_simulation_words(g, schedule, std::move(hold), message_count,
                              std::move(known), options);
}

}  // namespace

SimResult simulate(const graph::Graph& g, const model::Schedule& schedule,
                   const std::vector<Message>& initial,
                   const SimOptions& options) {
  const Vertex n = g.vertex_count();
  std::vector<Message> origin(initial);
  if (origin.empty()) {
    origin.resize(n);
    for (Vertex v = 0; v < n; ++v) origin[v] = v;
  }
  MG_EXPECTS(origin.size() == n);
  if (options.core == SimCore::kBitwise) {
    std::vector<DynamicBitset> hold(n, DynamicBitset(n));
    for (Vertex v = 0; v < n; ++v) hold[v].set(origin[v]);
    return run_simulation(g, schedule, std::move(hold), n, options);
  }
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> hold(static_cast<std::size_t>(n) * words, 0);
  std::vector<std::size_t> known(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    MG_EXPECTS(origin[v] < n);
    hold[static_cast<std::size_t>(v) * words + (origin[v] >> 6)] |=
        std::uint64_t{1} << (origin[v] & 63);
    known[v] = 1;
  }
  return run_simulation_words(g, model::CompiledSchedule::compile(schedule),
                              std::move(hold), n, std::move(known), options);
}

SimResult simulate_from_holds(const graph::Graph& g,
                              const model::Schedule& schedule,
                              const std::vector<DynamicBitset>& initial_holds,
                              const SimOptions& options) {
  const Vertex n = g.vertex_count();
  MG_EXPECTS(initial_holds.size() == n);
  const std::size_t message_count = n == 0 ? 0 : initial_holds[0].size();
  for (const auto& h : initial_holds) MG_EXPECTS(h.size() == message_count);
  if (options.core == SimCore::kBitwise) {
    return run_simulation(g, schedule, initial_holds, message_count, options);
  }
  return run_words_from_bitsets(g, model::CompiledSchedule::compile(schedule),
                                initial_holds, message_count, options);
}

SimResult simulate_compiled(const graph::Graph& g,
                            const model::CompiledSchedule& schedule,
                            const std::vector<DynamicBitset>& initial_holds,
                            const SimOptions& options) {
  const Vertex n = g.vertex_count();
  MG_EXPECTS(initial_holds.size() == n);
  const std::size_t message_count = n == 0 ? 0 : initial_holds[0].size();
  for (const auto& h : initial_holds) MG_EXPECTS(h.size() == message_count);
  return run_words_from_bitsets(g, schedule, initial_holds, message_count,
                                options);
}

}  // namespace mg::sim
