file(REMOVE_RECURSE
  "CMakeFiles/mmc_bench.dir/mmc_bench.cpp.o"
  "CMakeFiles/mmc_bench.dir/mmc_bench.cpp.o.d"
  "mmc_bench"
  "mmc_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmc_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
