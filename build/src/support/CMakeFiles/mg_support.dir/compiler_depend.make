# Empty compiler generated dependencies file for mg_support.
# This may be replaced when dependencies are built.
