// §4: "In many applications, one has to execute the gossiping algorithms a
// large number of times, so that is why it is important to perform
// gossiping in a tree efficiently.  The construction of the tree is
// performed only when there is a change in the network."
//
// This module studies the steady-state cost of repeated gossiping on a
// fixed tree.  Back-to-back execution costs n + r per gossip.  But one
// gossip's schedule does not keep every send/receive slot busy in every
// round, so consecutive gossip instances can be *pipelined*: copy c of the
// schedule is shifted by c * period, where the period is the smallest shift
// at which no processor ever sends (or receives) two messages in one round
// across overlapping copies.  Messages of copy c get ids c*n + label, so
// the generalized validator can certify the combined schedule.
#pragma once

#include "gossip/instance.h"
#include "model/schedule.h"
#include "model/validator.h"

namespace mg::gossip {

/// Smallest shift S >= 1 such that any number of copies of `schedule`
/// shifted by multiples of S never make one processor send two messages or
/// receive two messages in one round.  Upper-bounded by total_time() (a
/// shift of the full length always works).
[[nodiscard]] std::size_t pipeline_period(graph::Vertex n,
                                          const model::Schedule& schedule);

struct RepeatedGossipResult {
  model::Schedule schedule;   ///< union of the shifted copies
  std::size_t copies = 0;
  std::size_t period = 0;     ///< shift between consecutive copies
  std::size_t total_time = 0;
  double amortized_time = 0;  ///< total_time / copies
  /// Initial holdings for validate_schedule_general: processor v holds
  /// message c*n + label(v) for every copy c.
  std::vector<std::vector<model::Message>> initial_sets;
  std::size_t message_count = 0;  ///< copies * n
};

/// Builds `copies` consecutive gossips on the instance's tree.  When
/// `pipelined` is false the copies run back-to-back (period = n + r); when
/// true they are packed at `pipeline_period` spacing.
[[nodiscard]] RepeatedGossipResult repeated_gossip(const Instance& instance,
                                                   std::size_t copies,
                                                   bool pipelined);

}  // namespace mg::gossip
