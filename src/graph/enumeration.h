// Exhaustive enumeration of small labeled trees via Pruefer sequences
// (Cayley: n^(n-2) labeled trees on n vertices).  Drives the exhaustive
// correctness tests ("Theorem 1 holds on EVERY tree with n <= 6") and the
// optimality-gap bench (how far is n + r from the true optimum over the
// whole tree space).
#pragma once

#include <functional>

#include "graph/graph.h"

namespace mg::graph {

/// Number of labeled trees on n vertices: n^(n-2) (1 for n <= 2).
[[nodiscard]] std::size_t labeled_tree_count(Vertex n);

/// Calls `visit` with every labeled tree on n vertices exactly once, in
/// Pruefer-sequence order.  Requires 1 <= n and n^(n-2) to fit practical
/// budgets (intended for n <= 8).  Returns the number of trees visited;
/// `visit` may return false to stop early.
std::size_t for_each_labeled_tree(
    Vertex n, const std::function<bool(const Graph&)>& visit);

/// Decodes a specific Pruefer sequence (values in [0, n)) into its tree.
[[nodiscard]] Graph tree_from_pruefer(Vertex n,
                                      std::span<const Vertex> pruefer);

}  // namespace mg::graph
