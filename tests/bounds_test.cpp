// Tests for the lower-bound helpers (§1, §4) and that the algorithms
// respect them empirically.
#include <gtest/gtest.h>

#include "gossip/bounds.h"
#include "gossip/concurrent_updown.h"
#include "gossip/instance.h"
#include "graph/generators.h"
#include "test_util.h"

namespace mg::gossip {
namespace {

TEST(Bounds, TrivialLowerBound) {
  EXPECT_EQ(trivial_lower_bound(0), 0u);
  EXPECT_EQ(trivial_lower_bound(1), 0u);
  EXPECT_EQ(trivial_lower_bound(2), 1u);
  EXPECT_EQ(trivial_lower_bound(100), 99u);
}

TEST(Bounds, OddLineLowerBound) {
  // §1's worked values: P3 -> 3, and generally n + m - 1 for n = 2m + 1.
  EXPECT_EQ(odd_line_lower_bound(3), 3u);
  EXPECT_EQ(odd_line_lower_bound(5), 6u);
  EXPECT_EQ(odd_line_lower_bound(21), 30u);
}

TEST(Bounds, ConcurrentUpdownTimeFormula) {
  EXPECT_EQ(concurrent_updown_time(1, 0), 0u);
  EXPECT_EQ(concurrent_updown_time(16, 3), 19u);
}

TEST(Bounds, ApproxRatioBound) {
  EXPECT_DOUBLE_EQ(approx_ratio_bound(1, 0), 1.0);
  // Worst case r = n/2: ratio -> 1.5 as n grows.
  EXPECT_LE(approx_ratio_bound(100, 50), 1.52);
  EXPECT_GE(approx_ratio_bound(100, 50), 1.5);
}

TEST(Bounds, AlgorithmsNeverBeatTrivialBound) {
  for (const auto& family : test::families()) {
    const auto g = family.make(7);
    const auto instance = Instance::from_network(g);
    EXPECT_GE(concurrent_updown(instance).total_time(),
              trivial_lower_bound(g.vertex_count()))
        << family.name;
  }
}

TEST(Bounds, OddLineGapIsExactlyOne) {
  // §4: "the one that our algorithm constructs is n + r"; the lower bound
  // is n + r - 1, so the gap is exactly 1 on odd lines.
  for (graph::Vertex m : {1u, 3u, 8u}) {
    const graph::Vertex n = 2 * m + 1;
    const auto instance = Instance::from_network(graph::path(n));
    EXPECT_EQ(concurrent_updown(instance).total_time() -
                  odd_line_lower_bound(n),
              1u);
  }
}

TEST(Bounds, RadiusHalfNOnWorstFamily) {
  // The ratio argument uses r <= n/2, tight on cycles/lines.
  for (graph::Vertex n : {8u, 16u}) {
    const auto instance = Instance::from_network(graph::cycle(n));
    EXPECT_EQ(instance.radius(), n / 2);
    const double ratio = static_cast<double>(
                             concurrent_updown(instance).total_time()) /
                         static_cast<double>(trivial_lower_bound(n));
    EXPECT_LE(ratio, approx_ratio_bound(n, n / 2) + 1e-12);
  }
}

}  // namespace
}  // namespace mg::gossip
