#include "obs/trace_export.h"

#include <ostream>
#include <string_view>
#include <unordered_map>

#include "obs/json.h"

namespace mg::obs {

namespace {

/// Names for the `mg::dist` kind encoding (see CausalTracer); unknown
/// codes render generically rather than failing the export.
std::string_view flow_kind_name(std::uint32_t kind) {
  switch (kind) {
    case CausalTracer::kFlowData: return "data";
    case CausalTracer::kFlowRepair: return "repair";
    case CausalTracer::kFlowDigest: return "digest";
    case CausalTracer::kFlowGrant: return "grant";
    default: return "flow";
  }
}

// One causal round renders as 1000 fake microseconds; slices occupy the
// first 800 so adjacent rounds stay visually separate, and flow endpoints
// sit mid-slice (+400) so both ends bind to their enclosing slice.
constexpr double kRoundUs = 1000.0;
constexpr double kSliceUs = 800.0;
constexpr double kAnchorUs = 400.0;

void write_span_events(JsonWriter& w,
                       const std::vector<SpanTracer::Span>& spans) {
  for (const SpanTracer::Span& span : spans) {
    w.begin_object();
    w.field("name", span.name);
    w.field("cat", "mg");
    w.field("ph", "X");  // complete event: ts + dur
    w.field("ts", static_cast<double>(span.start_ns) / 1e3);
    w.field("dur", static_cast<double>(span.end_ns - span.start_ns) / 1e3);
    w.field("pid", 1);
    w.field("tid", static_cast<std::uint64_t>(span.thread));
    w.key("args").begin_object();
    w.field("depth", static_cast<std::uint64_t>(span.depth));
    w.end_object();
    w.end_object();
  }
}

void write_flow_events(JsonWriter& w,
                       const std::vector<CausalTracer::Event>& flows) {
  std::unordered_map<std::uint64_t, const CausalTracer::Event*> by_id;
  by_id.reserve(flows.size());
  for (const CausalTracer::Event& e : flows) by_id.emplace(e.id, &e);

  for (const CausalTracer::Event& e : flows) {
    w.begin_object();
    w.field("name", flow_kind_name(e.kind));
    w.field("cat", "mg.flow");
    w.field("ph", "X");
    w.field("ts", static_cast<double>(e.time) * kRoundUs);
    w.field("dur", kSliceUs);
    w.field("pid", 2);
    w.field("tid", e.node);
    w.key("args").begin_object();
    w.field("id", e.id);
    w.field("parent", e.parent);
    w.field("message", e.message);
    w.field("fanout", e.fanout);
    w.end_object();
    w.end_object();
  }

  // One flow arrow per happens-before edge: "s" anchored inside the parent
  // slice, "f" (bp:"e" — bind to enclosing slice) inside the child's.
  // Edges whose parent fell out of the ring are skipped, not invented.
  for (const CausalTracer::Event& e : flows) {
    if (e.parent == 0) continue;
    const auto it = by_id.find(e.parent);
    if (it == by_id.end()) continue;
    const CausalTracer::Event& parent = *it->second;
    w.begin_object();
    w.field("name", "cause");
    w.field("cat", "mg.flow");
    w.field("ph", "s");
    w.field("id", e.id);
    w.field("ts", static_cast<double>(parent.time) * kRoundUs + kAnchorUs);
    w.field("pid", 2);
    w.field("tid", parent.node);
    w.end_object();
    w.begin_object();
    w.field("name", "cause");
    w.field("cat", "mg.flow");
    w.field("ph", "f");
    w.field("bp", "e");
    w.field("id", e.id);
    w.field("ts", static_cast<double>(e.time) * kRoundUs + kAnchorUs);
    w.field("pid", 2);
    w.field("tid", e.node);
    w.end_object();
  }
}

void write_document(std::ostream& out,
                    const std::vector<SpanTracer::Span>& spans,
                    const std::vector<CausalTracer::Event>& flows,
                    bool pretty) {
  JsonWriter w(out, pretty);
  w.begin_object();
  w.key("traceEvents").begin_array();
  write_span_events(w, spans);
  write_flow_events(w, flows);
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  out << '\n';
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanTracer::Span>& spans,
                        bool pretty) {
  write_document(out, spans, {}, pretty);
}

void write_chrome_trace(std::ostream& out, const SpanTracer& tracer,
                        bool pretty) {
  write_chrome_trace(out, tracer.snapshot(), pretty);
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanTracer::Span>& spans,
                        const std::vector<CausalTracer::Event>& flows,
                        bool pretty) {
  write_document(out, spans, flows, pretty);
}

}  // namespace mg::obs
