// Processor actors for the distributed online execution of §4.
//
// Each `ProcessorActor` is one processor: it owns its hold set, its local
// decision rule, and its recovery-protocol state, and it touches nothing
// global — the runtime only ever hands it its own inbox.  Two decision
// rules exist:
//
//  * `OnlineRule` — the paper's §4 claim made literal: the actor's entire
//    main-phase behaviour is computed from `(i, j, k, n)` (plus the
//    locally-known parent/child ids) via `gossip::OnlineProcessor`.  No
//    schedule is ever shipped to the actor; the ConcurrentUpDown schedule
//    *emerges* from n independent actors exchanging messages.
//
//  * `TimetableRule` — the weaker dissemination reading of §4 ("each
//    processor may send its messages at the specified times") used for the
//    algorithms without a closed-form local rule (Simple, UpDown,
//    Telephone): the actor receives only its *own* rows of the centrally
//    computed schedule.  The runtime still enforces the physical constraint
//    that an actor cannot forward a message it never received, so fault
//    cascades emerge exactly as in `sim::simulate`.
//
// Decentralized recovery (after the planned horizon) is a three-subround
// digest / grant / data cycle per repair round — every decision is local:
//
//  1. digest — every live actor multicasts its hold bitmap to its network
//     neighbors.  A neighbor whose digest is missing is presumed crashed
//     (heartbeat failure detection).
//  2. grant — an actor still missing messages picks the neighbor whose
//     digest offers the most of them (ties: lowest id), and reserves it
//     with a grant naming one wanted message (lowest id offered).  One
//     grant per receiver per cycle, so data-round D sets are disjoint by
//     construction — the emergent repair schedule is model-valid.
//  3. data — each granted actor sends the message requested by the most of
//     its granters (ties: lowest id) to exactly the granters that requested
//     it.  Every data round delivers at least one new (processor, message)
//     pair per granted sender, so the protocol reaches each surviving
//     component's achievable closure in finitely many rounds; quiescence
//     (no grants anywhere) is exactly closure, mirroring
//     `gossip::partial_completion_schedule`'s semantics without its
//     coordinator.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dist/mailbox.h"
#include "gossip/online.h"
#include "model/schedule.h"
#include "support/bitset.h"

namespace mg::dist {

/// A processor's per-round decision procedure.  `observe` sees every data
/// arrival (time, message, came-from-parent); `decide` is called once per
/// main-phase round after all of that round's arrivals were observed.
class LocalRule {
 public:
  virtual ~LocalRule() = default;
  virtual void observe(std::size_t t, model::Message m, bool from_parent) = 0;
  [[nodiscard]] virtual std::optional<model::Transmission> decide(
      std::size_t t) = 0;
};

/// The §4 online rule: ConcurrentUpDown from `(i, j, k, n)` alone.
class OnlineRule final : public LocalRule {
 public:
  explicit OnlineRule(gossip::LocalInfo info) : proc_(std::move(info)) {}

  void observe(std::size_t t, model::Message m, bool from_parent) override {
    proc_.deliver(t, m, from_parent);
  }

  [[nodiscard]] std::optional<model::Transmission> decide(
      std::size_t t) override {
    return proc_.send_at(t);
  }

 private:
  gossip::OnlineProcessor proc_;
};

/// The dissemination rule: the actor's own (t, message, D) rows of a
/// centrally computed schedule, replayed at the specified times.
class TimetableRule final : public LocalRule {
 public:
  /// Extracts the rows whose sender is `self` from `schedule`.
  TimetableRule(const model::Schedule& schedule, graph::Vertex self);

  void observe(std::size_t, model::Message, bool) override {}

  [[nodiscard]] std::optional<model::Transmission> decide(
      std::size_t t) override;

 private:
  std::vector<std::pair<std::size_t, model::Transmission>> rows_;
  std::size_t next_ = 0;
};

/// What an actor wants to put on the wire this round; the runtime applies
/// the fault plan, stamps trace ids, and routes it.
struct Outbox {
  std::optional<model::Transmission> data;  ///< main-phase or recovery data
  bool skipped = false;  ///< rule fired but the message was never received
  std::vector<Envelope> control;            ///< digests / grants
  std::vector<graph::Vertex> control_to;    ///< parallel to `control`
  /// Causal parent of `data`: the trace id of the arrival that first gave
  /// this actor the message it is sending (0 = held initially).
  std::uint64_t data_cause = 0;
  /// Causal parent of the `control` batch: for a digest fan-out, the most
  /// recent hold-changing data arrival; for a grant, the chosen digest.
  std::uint64_t control_cause = 0;
};

class ProcessorActor {
 public:
  /// `neighbors` are the *network* neighbors (recovery routes around lossy
  /// tree branches, like the central repair builder).  `initial` is the
  /// message this processor starts with — its DFS label, NOT its vertex id.
  ProcessorActor(graph::Vertex self, graph::Vertex n, model::Message initial,
                 std::vector<graph::Vertex> neighbors,
                 std::unique_ptr<LocalRule> rule);

  [[nodiscard]] graph::Vertex id() const { return self_; }
  [[nodiscard]] const DynamicBitset& holds() const { return holds_; }
  [[nodiscard]] std::size_t missing() const {
    return static_cast<std::size_t>(n_) - holds_.count();
  }
  [[nodiscard]] bool complete() const { return missing() == 0; }

  /// Main phase, one round: absorb this round's inbox, then decide.
  [[nodiscard]] Outbox step_main(std::size_t t,
                                 const std::vector<Envelope>& inbox);

  /// Tail of the main phase: absorb arrivals without deciding (the final
  /// sends of an R-round schedule arrive at time R, past the last decide).
  void absorb(std::size_t t, const std::vector<Envelope>& inbox);

  /// Recovery-phase absorption: fold data arrivals into the hold set
  /// without feeding the (retired) main-phase rule.
  void learn(const std::vector<Envelope>& inbox);

  // --- recovery subrounds (each reads the previous subround's inbox) ------

  /// Subround 1: multicast own hold bitmap to every network neighbor.
  [[nodiscard]] Outbox step_digest();

  /// Subround 2: read neighbor digests, reserve the best offering neighbor.
  [[nodiscard]] Outbox step_grant(const std::vector<Envelope>& inbox);

  /// Subround 3: read grants, serve the most-requested message.
  [[nodiscard]] Outbox step_data(const std::vector<Envelope>& inbox);

  /// True when the last `step_grant` found nothing to want from any live
  /// neighbor — this actor's local quiescence vote.
  [[nodiscard]] bool quiescent() const { return quiescent_; }

  /// Trace id of the arrival that first delivered `m` here (0 = initial
  /// message or not yet held) — the causal parent of any later relay.
  [[nodiscard]] std::uint64_t first_trace(model::Message m) const {
    return first_trace_[m];
  }

 private:
  graph::Vertex self_;
  graph::Vertex n_;
  std::vector<graph::Vertex> neighbors_;
  std::unique_ptr<LocalRule> rule_;
  DynamicBitset holds_;
  /// first_trace_[m]: trace id of the first data arrival carrying m.
  std::vector<std::uint64_t> first_trace_;
  /// Most recent hold-changing data arrival — the digest's causal parent.
  std::uint64_t last_trace_ = 0;
  bool quiescent_ = true;
};

}  // namespace mg::dist
