// The online churn driver: owns the mutable topology and keeps the whole
// downstream pipeline — min-depth spanning tree, compiled gossip schedule,
// engine cache — consistent with it after every event, at incremental cost
// whenever the certificates allow.
//
// Per event, `apply` runs four steps:
//   1. *mutate*     — apply the event to the `DynamicGraph`;
//   2. *invalidate* — evict exactly the pre-mutation fingerprint from the
//      attached `engine::Engine` (fingerprint-delta invalidation: one
//      entry, not the cache);
//   3. *retree*     — incremental `IncrementalTree` maintenance (noop /
//      parent patch / subtree repair / recenter / full rebuild, see
//      tree/incremental.h);
//   4. *reschedule* — edge events patch the compiled schedule via
//      `gossip::patch_schedule`; node events, patches that fail to
//      complete, and patches whose total time drifts past
//      `stale_factor * (n + r)` re-anchor with a full solve on the
//      maintained tree (no second center search).
// Every decision is mirrored into `churn.solver.*` obs counters; the
// differential battery replays feeds through this class and cross-checks
// each step against the from-scratch pipeline.
#pragma once

#include <cstdint>

#include "churn/feed.h"
#include "engine/engine.h"
#include "gossip/patch.h"
#include "gossip/solve.h"
#include "graph/dynamic.h"
#include "model/schedule.h"
#include "tree/incremental.h"

namespace mg::churn {

struct ChurnSolverOptions {
  gossip::Algorithm algorithm = gossip::Algorithm::kConcurrentUpDown;
  tree::IncrementalTreeOptions tree;
  graph::DynamicGraphOptions graph;
  /// Re-anchor (full re-solve) when the patched schedule's total time
  /// exceeds stale_factor * (n + r), the Theorem 1 bound for a fresh
  /// solve on the current topology.
  double stale_factor = 2.0;
};

/// What `apply` did for one event.
struct ApplyReport {
  ChurnEvent event;
  tree::MaintenanceReport tree_report;
  bool patched = false;   ///< schedule updated by splicing a repair
  bool resolved = false;  ///< schedule rebuilt by a full solve
  std::size_t invalidated = 0;   ///< engine entries evicted
  std::size_t schedule_time = 0; ///< patched/resolved schedule total time
  std::size_t fresh_bound = 0;   ///< n + r on the mutated topology
};

struct ChurnSolverStats {
  std::uint64_t events = 0;
  std::uint64_t patches = 0;
  std::uint64_t resolves = 0;
  std::uint64_t invalidated = 0;
};

class ChurnSolver {
 public:
  /// Solves gossip on `g0` once (the initial compiled schedule), then
  /// stands by for events.  `engine` (optional) receives fingerprint-delta
  /// invalidations; `pool` (optional) accelerates full rebuilds.
  explicit ChurnSolver(graph::Graph g0, ChurnSolverOptions options = {},
                       engine::Engine* engine = nullptr,
                       ThreadPool* pool = nullptr);

  ApplyReport apply(const ChurnEvent& event);

  [[nodiscard]] const graph::DynamicGraph& graph() const { return graph_; }
  [[nodiscard]] const tree::IncrementalTree& tree() const { return tree_; }
  [[nodiscard]] const model::Schedule& schedule() const { return schedule_; }
  /// Initial hold assignment matching `schedule()`'s message ids.
  [[nodiscard]] const std::vector<model::Message>& initial() const {
    return initial_;
  }
  [[nodiscard]] const ChurnSolverStats& stats() const { return stats_; }

 private:
  void resolve();  ///< full solve from the maintained tree

  ChurnSolverOptions options_;
  engine::Engine* engine_ = nullptr;
  ThreadPool* pool_ = nullptr;
  graph::DynamicGraph graph_;
  tree::IncrementalTree tree_;
  model::Schedule schedule_;
  std::vector<model::Message> initial_;
  ChurnSolverStats stats_;
};

}  // namespace mg::churn
