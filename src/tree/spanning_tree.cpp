#include "tree/spanning_tree.h"

#include <algorithm>

#include "graph/properties.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "support/contracts.h"
#include "support/thread_pool.h"

namespace mg::tree {

RootedTree RootedTree::from_parents(Vertex root, std::vector<Vertex> parent) {
  const auto n = static_cast<Vertex>(parent.size());
  MG_EXPECTS(n >= 1);
  MG_EXPECTS(root < n);
  MG_EXPECTS_MSG(parent[root] == graph::kNoVertex,
                 "root must have no parent");

  RootedTree t;
  t.root_ = root;
  t.parent_ = std::move(parent);
  t.children_.assign(n, {});
  for (Vertex v = 0; v < n; ++v) {
    if (v == root) continue;
    MG_EXPECTS_MSG(t.parent_[v] < n, "non-root vertex missing a parent");
    t.children_[t.parent_[v]].push_back(v);  // ascending since v ascends
  }

  // Levels via preorder walk; also validates acyclicity/reachability.
  t.level_.assign(n, 0);
  std::vector<Vertex> stack{root};
  Vertex visited = 0;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    ++visited;
    for (Vertex c : t.children_[v]) {
      t.level_[c] = t.level_[v] + 1;
      t.height_ = std::max(t.height_, t.level_[c]);
      stack.push_back(c);
    }
  }
  MG_EXPECTS_MSG(visited == n, "parent array does not encode a single tree");
  return t;
}

std::vector<Vertex> RootedTree::preorder() const {
  std::vector<Vertex> order;
  order.reserve(vertex_count());
  std::vector<Vertex> stack{root_};
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    order.push_back(v);
    const auto& kids = children_[v];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

Graph RootedTree::as_graph() const {
  graph::GraphBuilder b(vertex_count());
  for (Vertex v = 0; v < vertex_count(); ++v) {
    if (v != root_) b.add_edge(v, parent_[v]);
  }
  return b.build();
}

RootedTree bfs_tree(const Graph& g, Vertex root) {
  MG_OBS_SCOPE_TIMER(bfs_timer, "tree.bfs_ns");
  MG_OBS_SPAN(bfs_span, "tree.bfs");
  const Vertex n = g.vertex_count();
  MG_EXPECTS(root < n);
  std::vector<Vertex> parent(n, graph::kNoVertex);
  std::vector<char> seen(n, 0);
  std::vector<Vertex> frontier{root};
  std::vector<Vertex> next;
  seen[root] = 1;
  std::uint64_t edge_visits = 0;  // directed adjacency entries scanned
  while (!frontier.empty()) {
    next.clear();
    for (Vertex u : frontier) {
      edge_visits += g.degree(u);
      for (Vertex v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = 1;
          parent[v] = u;
          next.push_back(v);
        }
      }
    }
    // Frontier kept sorted so each child's parent is its smallest-id
    // neighbor in the previous level (deterministic construction).
    std::sort(next.begin(), next.end());
    frontier.swap(next);
  }
  MG_EXPECTS_MSG(std::count(seen.begin(), seen.end(), 1) == n,
                 "bfs_tree requires a connected graph");
  MG_OBS_ADD("tree.bfs_edge_visits", edge_visits);
  MG_OBS_ADD("tree.bfs_runs", 1);
  return RootedTree::from_parents(root, std::move(parent));
}

RootedTree min_depth_spanning_tree(const Graph& g, ThreadPool* pool) {
  MG_OBS_SCOPE_TIMER(build_timer, "tree.min_depth_build_ns");
  MG_OBS_SPAN(build_span, "tree.min_depth_spanning_tree");
  MG_OBS_ADD("tree.min_depth_builds", 1);
  graph::Metrics metrics;
  {
    MG_OBS_SCOPE_TIMER(center_timer, "tree.center_scan_ns");
    MG_OBS_SPAN(center_span, "tree.center_scan");
    metrics = graph::compute_metrics(g, pool);
  }
  RootedTree t = bfs_tree(g, metrics.center);
  MG_ENSURES(t.height() == metrics.radius);
  return t;
}

RootedTree root_tree_graph(const Graph& g, Vertex root) {
  MG_EXPECTS_MSG(graph::is_tree(g), "root_tree_graph requires a tree");
  return bfs_tree(g, root);
}

}  // namespace mg::tree
