// Tests for the exact schedule search and the Fig. 2 / Fig. 3 claims it
// certifies: multicast gossip in n - 1 rounds exists on the N3 witness and
// on the Petersen graph, while the telephone model provably cannot match it
// on the witness.
#include <gtest/gtest.h>

#include "gossip/optimal_search.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/contracts.h"

namespace mg::gossip {
namespace {

using graph::SearchStatus;

ExactSearchOptions telephone_options() {
  ExactSearchOptions options;
  options.variant = model::ModelVariant::kTelephone;
  return options;
}

TEST(ExactSearch, TriangleInTwoRounds) {
  const auto result = exact_gossip_search(graph::complete(3), 2);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  EXPECT_TRUE(model::validate_schedule(graph::complete(3), result.schedule).ok);
  EXPECT_LE(result.schedule.total_time(), 2u);
}

TEST(ExactSearch, NothingBelowTrivialBound) {
  EXPECT_EQ(exact_gossip_search(graph::complete(3), 1).status,
            SearchStatus::kExhausted);
  EXPECT_EQ(exact_gossip_search(graph::complete(4), 2).status,
            SearchStatus::kExhausted);
}

TEST(ExactSearch, PathOfThreeNeedsNPlusRMinusOne) {
  // §1's introduction example: the 3-line cannot finish in 2 rounds but can
  // in 3 = n + r - 1.
  EXPECT_EQ(exact_gossip_search(graph::path(3), 2).status,
            SearchStatus::kExhausted);
  const auto result = exact_gossip_search(graph::path(3), 3);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  EXPECT_TRUE(model::validate_schedule(graph::path(3), result.schedule).ok);
}

TEST(ExactSearch, CycleAchievesTrivialBound) {
  const auto result = exact_gossip_search(graph::cycle(5), 4);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  EXPECT_TRUE(model::validate_schedule(graph::cycle(5), result.schedule).ok);
}

TEST(ExactSearch, N3WitnessMulticastInNMinusOne) {
  // Fig. 3's claim, on our witness: gossiping completes in n - 1 = 4
  // rounds under the multicast model...
  const auto g = graph::n3_witness();
  const auto result = exact_gossip_search(g, 4);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  const auto report = model::validate_schedule(g, result.schedule);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(result.schedule.total_time(), 4u);
}

TEST(ExactSearch, N3WitnessTelephoneCannot) {
  // ...but not under the telephone model (pigeonhole on the bipartition).
  const auto g = graph::n3_witness();
  const auto result = exact_gossip_search(g, 4, telephone_options());
  EXPECT_EQ(result.status, SearchStatus::kExhausted);
}

TEST(ExactSearch, N3WitnessCertificateSchedule) {
  // The hand-built 4-round multicast certificate from DESIGN.md, verified
  // against the independent validator.  Parts {0,1} and {2,3,4}.
  const auto g = graph::n3_witness();
  model::Schedule s;
  s.add(0, {2, 2, {0}});
  s.add(0, {3, 3, {1}});
  s.add(0, {0, 0, {3, 4}});
  s.add(0, {1, 1, {2}});
  s.add(1, {4, 4, {0, 1}});
  s.add(1, {0, 0, {2}});
  s.add(1, {1, 1, {3, 4}});
  s.add(2, {2, 2, {1}});
  s.add(2, {3, 3, {0}});
  s.add(2, {4, 0, {2, 3}});
  s.add(2, {3, 1, {4}});
  s.add(3, {1, 2, {0}});
  s.add(3, {0, 3, {1}});
  s.add(3, {3, 0, {2}});
  s.add(3, {2, 1, {3, 4}});
  const auto report = model::validate_schedule(g, s);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(s.total_time(), 4u);
}

TEST(ExactSearch, StarCannotReachTrivialBound) {
  // A degree-1 vertex forces > n - 1 (its neighbor cannot feed it a new
  // message every round *and* export its message in time).
  EXPECT_EQ(exact_gossip_search(graph::star(4), 3).status,
            SearchStatus::kExhausted);
}

TEST(ExactSearch, PetersenNMinusOneMulticast) {
  // Fig. 2's claim: the Petersen graph gossips in n - 1 = 9 rounds.
  const auto g = graph::petersen();
  const auto result = exact_gossip_search(g, 9);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  const auto report = model::validate_schedule(g, result.schedule);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(result.schedule.total_time(), 9u);
}

TEST(ExactSearch, PetersenNMinusOneTelephone) {
  // The stronger published claim: 9 rounds even under the telephone model.
  const auto g = graph::petersen();
  const auto result = exact_gossip_search(g, 9, telephone_options());
  ASSERT_EQ(result.status, SearchStatus::kFound);
  EXPECT_TRUE(result.schedule.is_telephone());
  model::ValidatorOptions vopts;
  vopts.variant = model::ModelVariant::kTelephone;
  EXPECT_TRUE(model::validate_schedule(g, result.schedule, {}, vopts).ok);
}

TEST(ExactSearch, EvenLinesBeatTheOddLineBoundPattern) {
  // Beyond the paper (it only analyzes odd lines): on even lines the
  // optimum is n + r - 2, one below the odd-line n + r - 1 pattern --
  // the two near-center vertices share the gathering role.
  EXPECT_EQ(exact_gossip_search(graph::path(4), 3).status,
            SearchStatus::kExhausted);
  EXPECT_EQ(exact_gossip_search(graph::path(4), 4).status,
            SearchStatus::kFound);  // n + r - 2 = 4
  ExactSearchOptions options;
  options.node_budget = 30'000'000;
  EXPECT_EQ(exact_gossip_search(graph::path(6), 6, options).status,
            SearchStatus::kExhausted);
  EXPECT_EQ(exact_gossip_search(graph::path(6), 7, options).status,
            SearchStatus::kFound);  // n + r - 2 = 7
}

TEST(ExactSearch, BudgetCapReported) {
  ExactSearchOptions options;
  options.node_budget = 5;
  const auto result = exact_gossip_search(graph::petersen(), 9, options);
  EXPECT_EQ(result.status, SearchStatus::kBudget);
}

TEST(ExactSearch, FoundSchedulesAlwaysValidate) {
  for (graph::Vertex n : {4u, 5u, 6u}) {
    const auto g = graph::complete(n);
    const auto result = exact_gossip_search(g, n - 1);
    ASSERT_EQ(result.status, SearchStatus::kFound) << n;
    const auto report = model::validate_schedule(g, result.schedule);
    EXPECT_TRUE(report.ok) << report.error;
  }
}

TEST(ExactSearch, SizePreconditions) {
  EXPECT_THROW((void)exact_gossip_search(graph::Graph(1), 1),
               ContractViolation);
}

}  // namespace
}  // namespace mg::gossip
