# Empty dependencies file for repeated_test.
# This may be replaced when dependencies are built.
