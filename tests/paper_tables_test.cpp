// Literal reproduction of the paper's Tables 1-4: the per-vertex schedules
// of the vertices holding messages 0, 1, 4 and 8 in the Fig. 5 tree under
// ConcurrentUpDown.  Blank cells are std::nullopt.
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/timetable.h"
#include "graph/named.h"

namespace mg::gossip {
namespace {

using Row = std::vector<std::optional<model::Message>>;

constexpr auto kBlank = std::nullopt;

Row row(std::initializer_list<std::optional<model::Message>> cells,
        std::size_t horizon = 20) {
  Row r(cells);
  r.resize(horizon, kBlank);
  return r;
}

struct PaperTables : ::testing::Test {
  Instance instance = Instance::from_network(graph::fig4_network());
  model::Schedule schedule = concurrent_updown(instance);
};

TEST_F(PaperTables, TableOneRootVertex) {
  // Table 1: the vertex with message 0.  Receives 1..15 from children at
  // times 1..15; sends 1..15 to children at 1..15 and 0 at 16.
  const auto t = vertex_timetable(instance, schedule, 0);
  Row expect_recv = row({kBlank});
  Row expect_send = row({kBlank});
  for (model::Message m = 1; m <= 15; ++m) {
    expect_recv[m] = m;
    expect_send[m] = m;
  }
  expect_send[16] = 0;
  EXPECT_EQ(t.receive_from_child, expect_recv);
  EXPECT_EQ(t.send_to_children, expect_send);
  // The root has no parent rows.
  EXPECT_EQ(t.receive_from_parent, row({}));
  EXPECT_EQ(t.send_to_parent, row({}));
}

TEST_F(PaperTables, TableTwoVertexOne) {
  // Table 2: the vertex with message 1 (i=1, j=3, k=1).
  const auto t = vertex_timetable(instance, schedule, 1);
  // Receive from parent: 4..15 at times 5..16, 0 at 17.
  Row expect_rp = row({});
  for (model::Message m = 4; m <= 15; ++m) expect_rp[m + 1] = m;
  expect_rp[17] = 0;
  EXPECT_EQ(t.receive_from_parent, expect_rp);
  // Receive from child: 2 at 1, 3 at 2.
  EXPECT_EQ(t.receive_from_child, row({kBlank, 2, 3}));
  // Send to parent: 1 at 0, 2 at 1, 3 at 2.
  EXPECT_EQ(t.send_to_parent, row({1, 2, 3}));
  // Send to children: 2 at 1, 3 at 2, 1 at 3 (i == k delay), then 4..15 at
  // 5..16 and 0 at 17.
  Row expect_sc = row({kBlank, 2, 3, 1});
  for (model::Message m = 4; m <= 15; ++m) expect_sc[m + 1] = m;
  expect_sc[17] = 0;
  EXPECT_EQ(t.send_to_children, expect_sc);
}

TEST_F(PaperTables, TableThreeVertexFour) {
  // Table 3: the vertex with message 4 (i=4, j=10, k=1); o-messages 2 and 3
  // are the delayed ones (received at i-k=3 and i-k+1=4, sent at j-k+1=10
  // and j-k+2=11).
  const auto t = vertex_timetable(instance, schedule, 4);
  // Receive from parent: 1,2,3 at 2,3,4; 11..15 at 12..16; 0 at 17.
  Row expect_rp = row({kBlank, kBlank, 1, 2, 3});
  for (model::Message m = 11; m <= 15; ++m) expect_rp[m + 1] = m;
  expect_rp[17] = 0;
  EXPECT_EQ(t.receive_from_parent, expect_rp);
  // Receive from child: 5 at 1 (lookahead), 6..10 at 5..9.
  Row expect_rc = row({kBlank, 5});
  for (model::Message m = 6; m <= 10; ++m) {
    expect_rc[m - 1] = m;  // i - k + 2 = 5 for m = 6
  }
  EXPECT_EQ(t.receive_from_child, expect_rc);
  // Send to parent: 4..10 at 3..9.
  Row expect_sp = row({});
  for (model::Message m = 4; m <= 10; ++m) expect_sp[m - 1] = m;
  EXPECT_EQ(t.send_to_parent, expect_sp);
  // Send to children: 1 at 2; 4..10 at 3..9; 2,3 at 10,11; 11..15 at
  // 12..16; 0 at 17.
  Row expect_sc = row({kBlank, kBlank, 1});
  for (model::Message m = 4; m <= 10; ++m) expect_sc[m - 1] = m;
  expect_sc[10] = 2;
  expect_sc[11] = 3;
  for (model::Message m = 11; m <= 15; ++m) expect_sc[m + 1] = m;
  expect_sc[17] = 0;
  EXPECT_EQ(t.send_to_children, expect_sc);
}

TEST_F(PaperTables, TableFourVertexEight) {
  // Table 4: the vertex with message 8 (i=8, j=10, k=2); o-messages 6 and 7
  // are the delayed ones ("it is more complex since messages 6 and 7 are
  // the ones delayed at the node").
  const auto t = vertex_timetable(instance, schedule, 8);
  // Receive from parent: 1 at 3; 4,5,6,7 at 4..7; 2,3 at 11,12; 11..15 at
  // 13..17; 0 at 18.
  Row expect_rp = row({kBlank, kBlank, kBlank, 1, 4, 5, 6, 7});
  expect_rp[11] = 2;
  expect_rp[12] = 3;
  for (model::Message m = 11; m <= 15; ++m) expect_rp[m + 2] = m;
  expect_rp[18] = 0;
  EXPECT_EQ(t.receive_from_parent, expect_rp);
  // Receive from child: 9 at 1 (lookahead), 10 at 8 (= i - k + 2).
  Row expect_rc = row({kBlank, 9});
  expect_rc[8] = 10;
  EXPECT_EQ(t.receive_from_child, expect_rc);
  // Send to parent: 8,9,10 at 6,7,8.
  Row expect_sp = row({});
  for (model::Message m = 8; m <= 10; ++m) expect_sp[m - 2] = m;
  EXPECT_EQ(t.send_to_parent, expect_sp);
  // Send to children: 1 at 3; 4,5 at 4,5; 8,9,10 at 6,7,8; 6,7 at 9,10
  // (delayed); 2,3 at 11,12; 11..15 at 13..17; 0 at 18.
  Row expect_sc = row({kBlank, kBlank, kBlank, 1, 4, 5, 8, 9, 10, 6, 7});
  expect_sc[11] = 2;
  expect_sc[12] = 3;
  for (model::Message m = 11; m <= 15; ++m) expect_sc[m + 2] = m;
  expect_sc[18] = 0;
  EXPECT_EQ(t.send_to_children, expect_sc);
}

TEST_F(PaperTables, RenderedTablesContainHeaders) {
  const auto t = vertex_timetable(instance, schedule, 4);
  const std::string text = render_timetable(t);
  EXPECT_NE(text.find("Time"), std::string::npos);
  EXPECT_NE(text.find("Receive from Parent"), std::string::npos);
  EXPECT_NE(text.find("Send to Children"), std::string::npos);
}

TEST_F(PaperTables, TotalTimeIsNPlusR) {
  EXPECT_EQ(schedule.total_time(), 19u);
}

}  // namespace
}  // namespace mg::gossip
