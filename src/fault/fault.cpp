#include "fault/fault.h"

namespace mg::fault {

namespace {

/// SplitMix64 finalizer: a high-quality 64 -> 64 bit mix, the same
/// avalanche stage support/rng.h uses for seeding.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

double FaultPlan::coin(std::size_t round, graph::Vertex sender) const {
  // Distinct golden-ratio-derived multipliers keep (round, sender) pairs
  // from aliasing; the finalizer supplies the avalanche.
  std::uint64_t x = seed_;
  x ^= mix64(static_cast<std::uint64_t>(round) + 0x9e3779b97f4a7c15ULL);
  x ^= mix64((static_cast<std::uint64_t>(sender) << 32) ^
             0xd1b54a32d192ed03ULL);
  return static_cast<double>(mix64(x) >> 11) * 0x1.0p-53;
}

std::size_t FaultPlan::crashes_before(std::size_t horizon) const {
  std::size_t count = 0;
  for (const auto& [v, round] : crashes_) {
    (void)v;
    if (round < horizon) ++count;
  }
  return count;
}

std::vector<char> FaultPlan::alive_at(std::size_t t, graph::Vertex n) const {
  std::vector<char> alive(n, 1);
  for (const auto& [v, round] : crashes_) {
    if (v < n && round <= t) alive[v] = 0;
  }
  return alive;
}

}  // namespace mg::fault
