// Procedure UpDown (Gonzalez 2000, sketched in §3.2): like Simple, all
// messages are pushed to the root (message m arrives at time m), but the
// downward propagation starts concurrently as messages reach the root
// instead of waiting until time n - 2.  Messages that would collide with
// the reserved up-phase slots get "stuck" and are delivered afterwards —
// the paper's second phase.  The paper states the two phases take n - 1 + r
// and 2(r - 1) + 1 steps; this greedy reconstruction meets that bound on
// every family we benchmark (asserted as <= n + 3r - 2 in the tests).
#pragma once

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

[[nodiscard]] model::Schedule updown_gossip(const Instance& instance);

/// The paper's two-phase bound (n - 1 + r) + (2(r - 1) + 1) = n + 3r - 2
/// (0 when n == 1).
[[nodiscard]] constexpr std::size_t updown_time_bound(std::size_t n,
                                                      std::size_t r) {
  return n <= 1 ? 0 : n + 3 * r - 2;
}

}  // namespace mg::gossip
