// Scale benchmark — the machine-readable large-n artifact (BENCH_scale.json).
//
// Measures the million-node pipeline end to end: graph construction,
// minimum-depth spanning tree (hybrid center finding at scale), broadcast
// schedule synthesis, and word-parallel simulation, over the standard
// interconnect families (2D/3D torus, hypercube, 2D grid, random
// d-regular) at n in {1e4, 1e5, 1e6}.  Full gossip is Theta(n^2) deliveries by counting
// (every processor must receive n-1 messages), so the large-n rows run the
// O(n)-schedule broadcast collective with a one-message universe; full
// n + r gossip (Theorem 1) is exercised on dedicated small-n rows.
//
// Gated sections (the process exits nonzero on violation):
//   * center A/B — hybrid `find_center` vs the exhaustive n-BFS sweep on a
//     2D grid, the distance-spread case the pruned scan is built for; both
//     must agree on the radius and the hybrid must be >= 10x faster
//     (n ~ 1e5, or 1e4 under --quick).
//   * family rows — every row must simulate to completion with
//     total_time == height (broadcast from the tree root finishes in
//     exactly ecc(root) rounds; height == radius when center-rooted).
//   * gossip rows — ConcurrentUpDown must validate, complete, and meet the
//     Theorem 1 budget total_time <= n + r.
//   * thread scaling — exhaustive center over pools of 1/2/4/8 workers;
//     the 4-thread sweep must be >= 1.5x the serial one (only asserted
//     when the host has >= 4 hardware threads).
//   * peak RSS — VmHWM must stay under 2048 MB (Linux; skipped elsewhere).
//
// Where each family's tree root comes from (see docs/SCALING.md §2):
//   * tori and hypercubes are vertex-transitive — every vertex is a center,
//     so their rows root at vertex 0 analytically (center_mode
//     "transitive"); no exact certificate-based scan can beat Theta(n)
//     BFSes when all eccentricities are equal.
//   * random regular graphs concentrate eccentricities into a 2-3 value
//     band (expander-like), which defeats bound pruning the same way —
//     their rows also root at vertex 0 (center_mode "root0") and the
//     height gate pins ecc(0) instead of the radius.
//   * 2D grids spread eccentricities by a factor of 2, the hybrid's
//     favorable case — their rows pay for an exact center (center_mode
//     "hybrid") and report the scan's BFS/pruned counters.
//
//   scale_bench [--out FILE] [--seed N] [--quick]
//
// --out     output path (default BENCH_scale.json)
// --seed    random-regular generator seed (default 42)
// --quick   1e4-tier rows only, smaller A/B and scaling sweeps (CI smoke)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gossip/broadcast.h"
#include "gossip/solve.h"
#include "graph/center.h"
#include "graph/generators.h"
#include "model/compiled.h"
#include "obs/json.h"
#include "sim/network_sim.h"
#include "support/bitset.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"
#include "tree/spanning_tree.h"

namespace {

using namespace mg;

/// Peak resident set size in MB from /proc/self/status (VmHWM); 0.0 when
/// the platform has no procfs.
double peak_rss_mb() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
#endif
  return 0.0;
}

/// The broadcast schedule carries the source vertex as its message id; the
/// simulation rows run a one-message universe (message_count == 1, one
/// word per node), so the id is rewritten to 0.  Round structure, senders
/// and receiver sets are untouched.
model::Schedule single_message(const model::Schedule& schedule) {
  model::Schedule out;
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const model::Transmission& tx : schedule.round(t)) {
      out.add(t, {0, tx.sender, tx.receivers});
    }
  }
  return out;
}

struct FamilyRow {
  std::string family;
  std::string center_mode;  // "transitive", "root0" or "hybrid"
  std::uint64_t n = 0;
  std::uint64_t edges = 0;
  std::uint64_t height = 0;         // tree height == ecc(root); == radius
                                    // when the tree is center-rooted
  std::uint64_t center_bfs = 0;     // BFS sweeps spent locating the center
  std::uint64_t center_pruned = 0;  // candidates eliminated by bounds
  double gen_ms = 0.0;
  double tree_ms = 0.0;
  double solve_ms = 0.0;
  double sim_ms = 0.0;
  bool ok = false;
};

/// One end-to-end pipeline run: build the graph, root a minimum-height
/// tree, synthesize the broadcast schedule, execute it on the word core.
/// center_mode "hybrid" locates an exact center with the pruned scan;
/// anything else roots at vertex 0 (see the header comment).
template <typename MakeGraph>
FamilyRow run_family_row(const std::string& family,
                         const std::string& center_mode, ThreadPool& pool,
                         MakeGraph make) {
  FamilyRow row;
  row.family = family;
  row.center_mode = center_mode;

  Stopwatch watch;
  const graph::Graph g = make();
  row.gen_ms = watch.millis();
  row.n = g.vertex_count();
  row.edges = g.edge_count();

  watch.restart();
  tree::RootedTree t = [&] {
    if (center_mode != "hybrid") return tree::bfs_tree(g, 0);
    graph::CenterOptions options;
    options.mode = graph::CenterMode::kHybrid;
    const graph::CenterResult found = graph::find_center(g, &pool, options);
    row.center_bfs = found.bfs_runs;
    row.center_pruned = found.pruned;
    return tree::bfs_tree(g, found.center);
  }();
  row.tree_ms = watch.millis();
  row.height = t.height();

  watch.restart();
  const model::Schedule schedule =
      single_message(gossip::multicast_broadcast(g, t.root()));
  const model::CompiledSchedule compiled =
      model::CompiledSchedule::compile(schedule);
  row.solve_ms = watch.millis();

  std::vector<DynamicBitset> holds(g.vertex_count(), DynamicBitset(1));
  holds[t.root()].set(0);
  sim::SimOptions options;
  options.keep_final_holds = false;  // n bitsets dwarf the run at 1e6
  watch.restart();
  const sim::SimResult result =
      sim::simulate_compiled(g, compiled, holds, options);
  row.sim_ms = watch.millis();

  // Broadcast from the root completes in exactly ecc(root) = height
  // rounds — processor v receives at time dist(root, v).
  row.ok = result.completed && result.total_time == row.height;
  return row;
}

int run(const std::string& out_path, std::uint64_t seed, bool quick) {
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "scale_bench: cannot open %s for writing\n",
                 out_path.c_str());
    return 2;
  }
  ThreadPool pool;
  bool all_ok = true;

  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("suite", "scale");
  w.field("seed", static_cast<std::uint64_t>(seed));
  w.field("quick", quick);
  w.field("threads", static_cast<std::uint64_t>(pool.thread_count()));

  // --- Center A/B: hybrid vs exhaustive on a 2D grid ------------------
  // The grid is the pruned scan's favorable (and honest) case: corner
  // eccentricities are twice the center's, so the double-sweep bounds
  // certify most of the graph away.  Families without distance spread
  // (tori, hypercubes, random regular) cannot be pruned exactly and are
  // rooted analytically instead — see the header comment.
  {
    const graph::Vertex rows_dim = quick ? 100 : 316;
    const graph::Vertex cols_dim = quick ? 100 : 317;
    const graph::Graph g = graph::grid(rows_dim, cols_dim);
    const graph::Vertex n = g.vertex_count();

    graph::CenterOptions exhaustive;
    exhaustive.mode = graph::CenterMode::kExhaustive;
    Stopwatch watch;
    const graph::CenterResult full = graph::find_center(g, &pool, exhaustive);
    const double exhaustive_ms = watch.millis();

    graph::CenterOptions hybrid;
    hybrid.mode = graph::CenterMode::kHybrid;
    watch.restart();
    const graph::CenterResult fast = graph::find_center(g, &pool, hybrid);
    const double hybrid_ms = watch.millis();

    constexpr double kCenterGate = 10.0;
    const double speedup = hybrid_ms > 0.0 ? exhaustive_ms / hybrid_ms : 0.0;
    const bool ok =
        full.radius == fast.radius && speedup >= kCenterGate;
    all_ok = all_ok && ok;

    w.key("center_ab").begin_object();
    w.field("family", std::string("grid2d/") + std::to_string(rows_dim) +
                          "x" + std::to_string(cols_dim));
    w.field("n", static_cast<std::uint64_t>(n));
    w.field("exhaustive_ms", exhaustive_ms);
    w.field("exhaustive_bfs", full.bfs_runs);
    w.field("hybrid_ms", hybrid_ms);
    w.field("hybrid_bfs", fast.bfs_runs);
    w.field("hybrid_pruned", fast.pruned);
    w.field("radius", static_cast<std::uint64_t>(full.radius));
    w.field("radius_agree", full.radius == fast.radius);
    w.field("speedup", speedup);
    w.field("speedup_gate", kCenterGate);
    w.field("ok", ok);
    w.end_object();
    std::printf(
        "center A/B n=%u: exhaustive %.0f ms (%llu BFS), hybrid %.1f ms "
        "(%llu BFS), %.1fx %s\n",
        n, exhaustive_ms, static_cast<unsigned long long>(full.bfs_runs),
        hybrid_ms, static_cast<unsigned long long>(fast.bfs_runs), speedup,
        ok ? "ok" : "VIOLATION");
  }

  // --- Family rows: the end-to-end pipeline at scale -------------------
  w.key("rows").begin_array();
  std::vector<FamilyRow> rows;
  const auto emit = [&](FamilyRow row) {
    w.begin_object();
    w.field("family", row.family);
    w.field("center_mode", row.center_mode);
    w.field("n", row.n);
    w.field("edges", row.edges);
    w.field("height", row.height);
    if (row.center_mode == "hybrid") {
      w.field("center_bfs", row.center_bfs);
      w.field("center_pruned", row.center_pruned);
    }
    w.field("gen_ms", row.gen_ms);
    w.field("tree_ms", row.tree_ms);
    w.field("solve_ms", row.solve_ms);
    w.field("sim_ms", row.sim_ms);
    w.field("ok", row.ok);
    w.end_object();
    std::printf(
        "%-22s n=%-8llu h=%-5llu gen %8.1f  tree %8.1f  solve %8.1f  "
        "sim %8.1f ms  %s\n",
        row.family.c_str(), static_cast<unsigned long long>(row.n),
        static_cast<unsigned long long>(row.height), row.gen_ms, row.tree_ms,
        row.solve_ms, row.sim_ms, row.ok ? "ok" : "VIOLATION");
    all_ok = all_ok && row.ok;
    rows.push_back(std::move(row));
  };

  emit(run_family_row("torus2d/100x100", "transitive", pool,
                      [] { return graph::torus(100, 100); }));
  emit(run_family_row("torus3d/22^3", "transitive", pool,
                      [] { return graph::torus3d(22, 22, 22); }));
  emit(run_family_row("hypercube/d=13", "transitive", pool,
                      [] { return graph::hypercube(13); }));
  emit(run_family_row("grid2d/100x100", "hybrid", pool,
                      [] { return graph::grid(100, 100); }));
  emit(run_family_row("random_regular/d=3/1e4", "root0", pool, [&] {
    Rng rng(seed + 1);
    return graph::random_regular_configuration(10'000, 3, rng);
  }));
  if (!quick) {
    emit(run_family_row("torus2d/316x317", "transitive", pool,
                        [] { return graph::torus(316, 317); }));
    emit(run_family_row("torus3d/46^3", "transitive", pool,
                        [] { return graph::torus3d(46, 46, 46); }));
    emit(run_family_row("hypercube/d=17", "transitive", pool,
                        [] { return graph::hypercube(17); }));
    emit(run_family_row("grid2d/316x317", "hybrid", pool,
                        [] { return graph::grid(316, 317); }));
    emit(run_family_row("random_regular/d=3/1e5", "root0", pool, [&] {
      Rng rng(seed + 2);
      return graph::random_regular_configuration(100'000, 3, rng);
    }));
    emit(run_family_row("torus2d/1000x1000", "transitive", pool,
                        [] { return graph::torus(1000, 1000); }));
    emit(run_family_row("torus3d/100^3", "transitive", pool,
                        [] { return graph::torus3d(100, 100, 100); }));
    emit(run_family_row("hypercube/d=20", "transitive", pool,
                        [] { return graph::hypercube(20); }));
    emit(run_family_row("grid2d/1000x1000", "hybrid", pool,
                        [] { return graph::grid(1000, 1000); }));
    emit(run_family_row("random_regular/d=3/1e6", "root0", pool, [&] {
      Rng rng(seed + 3);
      return graph::random_regular_configuration(1'000'000, 3, rng);
    }));
  }
  w.end_array();

  // --- Small-n full gossip: Theorem 1 at the n^2 wall ------------------
  // Full gossip needs n(n-1) deliveries no matter the schedule, so its
  // rows stop where quadratic memory starts to bite; the point here is
  // that ConcurrentUpDown still validates and meets n + r end to end.
  w.key("gossip_rows").begin_array();
  {
    std::vector<graph::Vertex> sizes{512};
    if (!quick) sizes.push_back(2048);
    for (const graph::Vertex n : sizes) {
      Rng rng(seed + 4);
      Stopwatch watch;
      const graph::Graph g = graph::random_regular_configuration(n, 3, rng);
      const gossip::Solution solution =
          gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown, &pool);
      const double solve_ms = watch.millis();
      const std::size_t radius = solution.instance.tree().height();
      const graph::Graph tree = solution.instance.tree().as_graph();
      watch.restart();
      const sim::SimResult result =
          sim::simulate(tree, solution.schedule, solution.instance.initial());
      const double sim_ms = watch.millis();
      const bool ok = solution.report.ok && result.completed &&
                      result.total_time <= n + radius;
      all_ok = all_ok && ok;
      w.begin_object();
      w.field("family", "random_regular/d=3");
      w.field("algorithm", "concurrent_updown");
      w.field("n", static_cast<std::uint64_t>(n));
      w.field("radius", static_cast<std::uint64_t>(radius));
      w.field("total_time", static_cast<std::uint64_t>(result.total_time));
      w.field("budget_n_plus_r", static_cast<std::uint64_t>(n + radius));
      w.field("solve_ms", solve_ms);
      w.field("sim_ms", sim_ms);
      w.field("ok", ok);
      w.end_object();
      std::printf("gossip n=%u: %zu rounds vs n+r=%zu, solve %.1f  sim %.1f "
                  "ms  %s\n",
                  n, result.total_time, n + radius, solve_ms, sim_ms,
                  ok ? "ok" : "VIOLATION");
    }
  }
  w.end_array();

  // --- Thread scaling: exhaustive center over growing pools ------------
  {
    const graph::Vertex n = quick ? 10'000 : 30'000;
    Rng rng(seed + 5);
    const graph::Graph g = graph::random_regular_configuration(n, 3, rng);
    graph::CenterOptions exhaustive;
    exhaustive.mode = graph::CenterMode::kExhaustive;

    const unsigned hw = std::thread::hardware_concurrency();
    double serial_ms = 0.0;
    double four_ms = 0.0;
    w.key("thread_scaling").begin_object();
    w.field("n", static_cast<std::uint64_t>(n));
    w.field("hardware_concurrency", static_cast<std::uint64_t>(hw));
    w.key("sweep").begin_array();
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool scoped(threads);
      Stopwatch watch;
      const graph::CenterResult found =
          graph::find_center(g, &scoped, exhaustive);
      const double ms = watch.millis();
      if (threads == 1) serial_ms = ms;
      if (threads == 4) four_ms = ms;
      w.begin_object();
      w.field("threads", static_cast<std::uint64_t>(threads));
      w.field("ms", ms);
      w.field("speedup", ms > 0.0 ? serial_ms / ms : 0.0);
      w.field("radius", static_cast<std::uint64_t>(found.radius));
      w.end_object();
    }
    w.end_array();
    constexpr double kScalingGate = 1.5;
    const double speedup4 = four_ms > 0.0 ? serial_ms / four_ms : 0.0;
    const bool gated = hw >= 4;  // single-core CI cannot scale by fiat
    const bool ok = !gated || speedup4 >= kScalingGate;
    all_ok = all_ok && ok;
    w.field("speedup_at_4", speedup4);
    w.field("speedup_gate", kScalingGate);
    w.field("gate_applied", gated);
    w.field("ok", ok);
    w.end_object();
    std::printf("thread scaling n=%u: 4-thread speedup %.2fx%s %s\n", n,
                speedup4, gated ? " (gate 1.5x)" : " (gate skipped)",
                ok ? "ok" : "VIOLATION");
  }

  // --- Peak RSS --------------------------------------------------------
  {
    constexpr double kRssBudgetMb = 2048.0;
    const double rss = peak_rss_mb();
    const bool measured = rss > 0.0;
    const bool ok = !measured || rss <= kRssBudgetMb;
    all_ok = all_ok && ok;
    w.key("peak_rss").begin_object();
    w.field("mb", rss);
    w.field("budget_mb", kRssBudgetMb);
    w.field("measured", measured);
    w.field("ok", ok);
    w.end_object();
    std::printf("peak RSS %.0f MB (budget %.0f) %s\n", rss, kRssBudgetMb,
                ok ? "ok" : "VIOLATION");
  }

  w.end_object();
  out << '\n';
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  if (!all_ok) {
    std::fprintf(stderr,
                 "scale_bench: gate violation (incomplete broadcast, radius "
                 "mismatch, speedup under gate, or RSS over budget)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  std::uint64_t seed = 42;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: scale_bench [--out FILE] [--seed N] [--quick]\n");
      return 2;
    }
  }
  return run(out_path, seed, quick);
}
