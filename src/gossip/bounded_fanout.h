// k-port interpolation between the paper's two communication models.
//
// The multicast model lets one send reach arbitrarily many neighbors; the
// telephone model caps it at one.  Real routers and NICs sit in between
// (c-port multicast).  `bounded_fanout_gossip` runs the greedy concurrent
// up/down tree gossip with every downward transmission limited to at most
// `fanout_cap` receivers:
//
//   * cap = 1            -> the telephone baseline (telephone.h),
//   * cap >= max children -> the greedy UpDown reconstruction (updown.h),
//   * the sweep in bench/fanout_sweep quantifies how much multicast width
//     the n + r result actually needs.
//
// The fixed up phase is Simple's (already unicast): the vertex at level k
// holding subtree message m forwards it at time m - k, so the root receives
// message m at time m.  The down phase is a greedy store-and-forward relay
// with per-child delivery tracking, avoiding the reserved up-phase slots.
#pragma once

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

/// Unlimited fanout sentinel.
inline constexpr graph::Vertex kUnboundedFanout =
    static_cast<graph::Vertex>(-1);

/// Greedy tree gossip with downward multicasts capped at `fanout_cap`
/// receivers (>= 1).  The schedule is feasible and complete on the
/// instance's tree; with cap 1 it satisfies `Schedule::is_telephone()`.
[[nodiscard]] model::Schedule bounded_fanout_gossip(
    const Instance& instance, graph::Vertex fanout_cap = kUnboundedFanout);

}  // namespace mg::gossip
