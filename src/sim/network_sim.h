// Round-based network simulator.  Where the model validator *enforces* the
// communication rules, the simulator *executes* a schedule and reports what
// the network observes: per-node knowledge curves, completion times, an
// event trace, and behaviour under injected faults.  Faults come from a
// composable `fault::FaultPlan` (seeded probabilistic link drops,
// deterministic drop sets, crash-stop processors, per-edge delivery delay);
// gossip completion then degrades, which the adversarial fault tests
// assert, and `gossip::solve_with_recovery` repairs.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "graph/graph.h"
#include "model/comm_model.h"
#include "model/compiled.h"
#include "model/schedule.h"
#include "obs/trace.h"
#include "support/bitset.h"

namespace mg::sim {

using graph::Vertex;
using model::Message;

/// Execution core selection.  Both cores are event-for-event identical
/// (same results, traces, sink streams and counters — pinned by
/// sim_core_test's differential sweep); kBitwise is the original
/// bitset-per-node implementation kept as the oracle.
enum class SimCore : std::uint8_t {
  /// Flat word-at-a-time core: one contiguous n x ceil(mc/64) uint64 hold
  /// matrix, schedule compiled to CSR, deliveries as single-word OR with
  /// popcount-maintained knowledge counters.  The default.
  kWordParallel,
  /// Legacy core: one DynamicBitset per node, per-bit test/set.
  kBitwise,
};

struct SimOptions {
  /// Which execution core runs the schedule.
  SimCore core = SimCore::kWordParallel;
  /// When false, `SimResult::final_holds` is left empty — at million-node
  /// scale materializing n bitsets can dwarf the simulation itself, and
  /// callers that only want completion/timing can skip it.
  bool keep_final_holds = true;
  /// Record the full send/receive event trace (O(deliveries) memory).
  bool record_trace = false;
  /// Transmissions to drop, addressed as (round, sender).  Every matching
  /// transmission is suppressed entirely (no receiver gets the message).
  /// Folded into an O(1) hash set at simulation start; kept as a vector
  /// for construction convenience and backward compatibility — richer
  /// fault models (probabilistic drops, crashes, delays) go in `faults`.
  std::vector<std::pair<std::size_t, Vertex>> drop;
  /// Composable fault model applied to the run; nullptr = fault-free.
  const fault::FaultPlan* faults = nullptr;
  /// Absolute round of this schedule's round 0 from the fault plan's point
  /// of view.  `solve_with_recovery` sets this so faults keep firing at
  /// plan-absolute rounds while recovery schedules execute after the base
  /// schedule's horizon.
  std::size_t fault_round_offset = 0;
  /// Streaming alternative to record_trace: every send/receive event is
  /// pushed here as it happens ("send" carries the fan-out |D|), and so is
  /// every fault loss — "drop" (link drop), "crash" (sender dead), "skip"
  /// (sender never received the message: a drop's downstream cascade) and
  /// "lost" (receiver dead at arrival).  Fault kinds carry the same fields
  /// as the send/receive they suppressed, so a round-timeline sink (see
  /// gossip/timeline.h) can attribute every loss to its round.  Works
  /// independently of record_trace; nullptr disables streaming.
  obs::TraceSink* sink = nullptr;
  /// Communication model the network executes under; nullptr = the paper's
  /// multicast model.  Exclusive-receiver models (multicast, telephone,
  /// direct) all execute identically — the simulator applies deliveries, it
  /// does not re-check legality (that is the validator's job).  Under a
  /// collision-loss model (radio, beep) a delivery is destroyed when the
  /// receiver transmitted in the same round (half-duplex) or hears more
  /// than one transmission: counted in `collided_receives`, streamed to the
  /// sink as "collide" at the send round.  Collisions are judged at the
  /// send round, before per-edge delay faults displace arrival times — a
  /// collision is a channel event, not a delivery event.
  const model::CommModel* comm = nullptr;
};

struct SimEvent {
  enum class Kind : std::uint8_t { kSend, kReceive };
  Kind kind = Kind::kSend;
  std::size_t time = 0;
  Vertex node = 0;
  Message message = 0;
  Vertex peer = 0;  ///< first receiver for kSend; sender for kReceive
};

struct SimResult {
  /// True when every node ends holding all messages.
  bool completed = false;
  /// Latest receive time of a delivered (non-dropped, non-lost)
  /// transmission; includes per-edge delay.
  std::size_t total_time = 0;
  /// Per-node earliest time the hold set became complete (0 if never).
  std::vector<std::size_t> completion_time;
  /// knowledge[t] = total number of (node, message) pairs known at time t;
  /// one entry per time unit through the last arrival.
  std::vector<std::size_t> knowledge;
  /// Per-node count of messages still missing at the end.
  std::vector<std::size_t> missing;
  /// Transmissions skipped because the sender did not hold the message —
  /// the downstream cascade of an injected drop.
  std::size_t skipped_sends = 0;
  /// Transmissions suppressed by the fault model (deterministic +
  /// probabilistic link drops, including the legacy `drop` list).
  std::size_t injected_drops = 0;
  /// Transmissions suppressed because the sender had crashed.
  std::size_t crashed_sends = 0;
  /// Point-to-point deliveries lost because the receiver was dead (or died
  /// in flight) at arrival time.
  std::size_t lost_receives = 0;
  /// Deliveries destroyed by receiver-side collisions (superimposed
  /// arrivals or a half-duplex transmitter) — always 0 unless
  /// `SimOptions::comm` is a collision-loss model.
  std::size_t collided_receives = 0;
  /// Final per-node hold sets (bit m = node knows message m) — the input
  /// for gossip recovery after a faulty run.
  std::vector<DynamicBitset> final_holds;
  std::vector<SimEvent> trace;  ///< populated when record_trace
};

/// Executes `schedule` on network `g`.  `initial[v]` is the message held by
/// v at time 0 (empty = identity).  Unlike the validator this does not
/// enforce the conflict rules — pair it with validate_schedule when the
/// schedule's legality is in question.  It does apply the physical
/// constraint that a node cannot transmit a message it never received, so
/// injected drops cascade realistically (`skipped_sends`).
[[nodiscard]] SimResult simulate(const graph::Graph& g,
                                 const model::Schedule& schedule,
                                 const std::vector<Message>& initial = {},
                                 const SimOptions& options = {});

/// Same execution semantics, but starting from arbitrary per-node hold
/// *sets* (`initial_holds[v]` has one bit per message).  This is the form
/// recovery needs: a repair schedule resumes from the degraded state a
/// faulty run left behind.  Completion means every node holds all
/// `initial_holds[0].size()` messages.
[[nodiscard]] SimResult simulate_from_holds(
    const graph::Graph& g, const model::Schedule& schedule,
    const std::vector<DynamicBitset>& initial_holds,
    const SimOptions& options = {});

/// Word-parallel execution of an already-compiled schedule — the repeated
/// runner's fast path (compile once, simulate under many fault plans).
/// `options.core` is ignored: this entry point is the word core.
[[nodiscard]] SimResult simulate_compiled(
    const graph::Graph& g, const model::CompiledSchedule& schedule,
    const std::vector<DynamicBitset>& initial_holds,
    const SimOptions& options = {});

}  // namespace mg::sim
