// Experiment T1-T4: regenerate the paper's Tables 1-4 — the per-vertex
// ConcurrentUpDown schedules of the vertices holding messages 0, 1, 4 and 8
// in the Fig. 5 tree.  Output layout mirrors the published tables; the test
// suite (paper_tables_test) asserts the same rows cell by cell.
#include <cstdio>

#include "gossip/concurrent_updown.h"
#include "gossip/timetable.h"
#include "graph/named.h"
#include "model/validator.h"

int main() {
  using namespace mg;
  const auto network = graph::fig4_network();
  const auto instance = gossip::Instance::from_network(network);
  const auto schedule = gossip::concurrent_updown(instance);

  const auto report = model::validate_schedule(
      instance.tree().as_graph(), schedule, instance.initial());
  std::printf(
      "ConcurrentUpDown on the Fig. 4 network (n = %u, r = %u)\n"
      "schedule valid: %s   total communication time: %zu (paper: n + r = "
      "%u)\n\n",
      instance.vertex_count(), instance.radius(),
      report.ok ? "yes" : report.error.c_str(), schedule.total_time(),
      instance.vertex_count() + instance.radius());

  const struct {
    graph::Vertex vertex;
    const char* title;
  } tables[] = {
      {0, "Table 1: schedule for the vertex with the message labeled 0"},
      {1, "Table 2: schedule for the vertex with the message labeled 1"},
      {4, "Table 3: schedule for the vertex with the message labeled 4"},
      {8, "Table 4: schedule for the vertex with the message labeled 8"},
  };
  for (const auto& [vertex, title] : tables) {
    std::printf("%s\n", title);
    const auto timetable = gossip::vertex_timetable(instance, schedule, vertex);
    std::printf("%s\n", gossip::render_timetable(timetable).c_str());
  }
  return report.ok ? 0 : 1;
}
