#include "graph/named.h"

#include "graph/generators.h"
#include "support/contracts.h"

namespace mg::graph {

Graph n1_cycle(Vertex n) { return cycle(n); }

Graph petersen() {
  GraphBuilder b(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  for (Vertex v = 0; v < 5; ++v) {
    b.add_edge(v, (v + 1) % 5);
    b.add_edge(5 + v, 5 + (v + 2) % 5);
    b.add_edge(v, 5 + v);
  }
  return b.build();
}

Graph n3_witness() {
  // K_{2,3}: parts {0, 1} and {2, 3, 4}.  Non-Hamiltonian (unbalanced
  // bipartite).  Multicast gossiping completes in n - 1 = 4 rounds (a
  // certificate schedule is exercised in tests/bench); telephone gossiping
  // cannot: in an (n-1)-round schedule every vertex must receive a new
  // message every round, so all three of {2,3,4} must send every round into
  // only two receivers {0,1} -- pigeonhole.
  return complete_bipartite(2, 3);
}

Graph fig5_tree() {
  GraphBuilder b(16);
  const Edge tree_edges[] = {
      {0, 1},  {1, 2},  {1, 3},                      // first subtree [1,3]
      {0, 4},  {4, 5},  {5, 6},  {5, 7},             // second subtree [4,10]
      {4, 8},  {8, 9},  {8, 10},
      {0, 11}, {11, 12}, {12, 13}, {11, 14}, {11, 15}  // third subtree [11,15]
  };
  for (const auto& [u, v] : tree_edges) b.add_edge(u, v);
  return b.build();
}

Graph fig4_network() {
  GraphBuilder b(16);
  for (const auto& [u, v] : fig5_tree().edges()) b.add_edge(u, v);
  // Within-level cross edges: they leave every BFS level (and therefore the
  // canonical minimum-depth spanning tree rooted at processor 0) unchanged
  // while making the network a genuine non-tree graph of radius 3.
  const Edge cross_edges[] = {{1, 4}, {4, 11}, {5, 8}, {2, 3},
                              {6, 7}, {9, 10}, {12, 14}};
  for (const auto& [u, v] : cross_edges) b.add_edge(u, v);
  return b.build();
}

}  // namespace mg::graph
