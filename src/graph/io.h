// Text serialization for graphs: a whitespace edge-list format for
// persistence/interchange and Graphviz DOT export for inspecting the
// example networks and their spanning trees.
#pragma once

#include <string>

#include "graph/graph.h"

namespace mg::graph {

/// Serializes as "n m" on the first line then one "u v" pair per edge.
[[nodiscard]] std::string to_edge_list(const Graph& g);

/// Parses the `to_edge_list` format.  Throws std::invalid_argument on
/// malformed input (bad counts, out-of-range endpoints, self-loops).
[[nodiscard]] Graph from_edge_list(const std::string& text);

/// Graphviz `graph { ... }` rendering with optional per-vertex labels
/// (vertex id is used when `labels` is empty).
[[nodiscard]] std::string to_dot(const Graph& g,
                                 const std::vector<std::string>& labels = {});

}  // namespace mg::graph
