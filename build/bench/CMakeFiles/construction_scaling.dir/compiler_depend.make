# Empty compiler generated dependencies file for construction_scaling.
# This may be replaced when dependencies are built.
