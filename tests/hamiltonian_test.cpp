// Tests for the exact Hamiltonian-circuit search used by the Fig. 1-3
// benches.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/hamiltonian.h"
#include "graph/named.h"

namespace mg::graph {
namespace {

void expect_valid_circuit(const Graph& g, const std::vector<Vertex>& circuit) {
  ASSERT_EQ(circuit.size(), g.vertex_count());
  std::vector<char> seen(g.vertex_count(), 0);
  for (std::size_t p = 0; p < circuit.size(); ++p) {
    EXPECT_FALSE(seen[circuit[p]]) << "vertex repeated";
    seen[circuit[p]] = 1;
    EXPECT_TRUE(g.has_edge(circuit[p], circuit[(p + 1) % circuit.size()]));
  }
}

TEST(Hamiltonian, CycleHasCircuit) {
  const Graph g = cycle(9);
  const auto result = find_hamiltonian_circuit(g);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  expect_valid_circuit(g, result.circuit);
}

TEST(Hamiltonian, PathHasNone) {
  EXPECT_EQ(find_hamiltonian_circuit(path(6)).status,
            SearchStatus::kExhausted);
}

TEST(Hamiltonian, StarHasNone) {
  EXPECT_EQ(find_hamiltonian_circuit(star(6)).status,
            SearchStatus::kExhausted);
}

TEST(Hamiltonian, CompleteGraphHasCircuit) {
  const Graph g = complete(7);
  const auto result = find_hamiltonian_circuit(g);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  expect_valid_circuit(g, result.circuit);
}

TEST(Hamiltonian, EvenGridHasCircuit) {
  const Graph g = grid(4, 5);
  const auto result = find_hamiltonian_circuit(g);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  expect_valid_circuit(g, result.circuit);
}

TEST(Hamiltonian, OddOddGridHasNone) {
  // Bipartite with unequal parts (13 vs 12) -> no Hamiltonian circuit.
  EXPECT_EQ(find_hamiltonian_circuit(grid(5, 5)).status,
            SearchStatus::kExhausted);
}

TEST(Hamiltonian, PetersenFamouslyHasNone) {
  EXPECT_EQ(find_hamiltonian_circuit(petersen()).status,
            SearchStatus::kExhausted);
}

TEST(Hamiltonian, N3WitnessHasNone) {
  EXPECT_EQ(find_hamiltonian_circuit(n3_witness()).status,
            SearchStatus::kExhausted);
}

TEST(Hamiltonian, HypercubeHasCircuit) {
  // Gray-code order is a Hamiltonian circuit of Q_d.
  const Graph g = hypercube(4);
  const auto result = find_hamiltonian_circuit(g);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  expect_valid_circuit(g, result.circuit);
}

TEST(Hamiltonian, TorusHasCircuit) {
  const Graph g = torus(4, 4);
  const auto result = find_hamiltonian_circuit(g);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  expect_valid_circuit(g, result.circuit);
}

TEST(Hamiltonian, BudgetExhaustionReported) {
  // A tiny budget cannot finish a nontrivial search.
  const auto result = find_hamiltonian_circuit(grid(6, 6), 10);
  EXPECT_EQ(result.status, SearchStatus::kBudget);
  EXPECT_LE(result.nodes_explored, 10u);
}

TEST(Hamiltonian, CompleteBipartiteBalancedVsUnbalanced) {
  const auto balanced = find_hamiltonian_circuit(complete_bipartite(3, 3));
  ASSERT_EQ(balanced.status, SearchStatus::kFound);
  EXPECT_EQ(find_hamiltonian_circuit(complete_bipartite(2, 3)).status,
            SearchStatus::kExhausted);
}

}  // namespace
}  // namespace mg::graph
