#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/contracts.h"

namespace mg::graph {

Graph path(Vertex n) {
  MG_EXPECTS(n >= 1);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(Vertex n) {
  MG_EXPECTS(n >= 3);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph complete(Vertex n) {
  MG_EXPECTS(n >= 1);
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph complete_bipartite(Vertex a, Vertex b) {
  MG_EXPECTS(a >= 1 && b >= 1);
  GraphBuilder builder(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return builder.build();
}

Graph star(Vertex n) {
  MG_EXPECTS(n >= 2);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph wheel(Vertex n) {
  MG_EXPECTS(n >= 4);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v + 1 == n ? 1 : v + 1);
  }
  return b.build();
}

namespace {

/// Emits a CSR graph directly from a per-vertex neighbor enumeration —
/// `fn(v, out)` appends v's neighbors to `out` (any order; sorted here).
/// O(m) with no edge-list intermediate, the construction path that keeps
/// million-node generators allocation-lean.  The result is identical to
/// the equivalent `from_edges` build (asserted by generators_test on small
/// instances).
template <typename NeighborFn>
Graph build_csr(Vertex n, NeighborFn&& fn) {
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Vertex> adjacency;
  std::vector<Vertex> local;
  local.reserve(8);
  for (Vertex v = 0; v < n; ++v) {
    local.clear();
    fn(v, local);
    std::sort(local.begin(), local.end());
    offsets[v + 1] = offsets[v] + local.size();
    adjacency.insert(adjacency.end(), local.begin(), local.end());
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

}  // namespace

Graph grid(Vertex rows, Vertex cols) {
  MG_EXPECTS(rows >= 1 && cols >= 1);
  const std::size_t total = static_cast<std::size_t>(rows) * cols;
  MG_EXPECTS(total <= static_cast<std::size_t>(kNoVertex));
  return build_csr(static_cast<Vertex>(total),
                   [rows, cols](Vertex v, std::vector<Vertex>& out) {
                     const Vertex r = v / cols;
                     const Vertex c = v % cols;
                     if (r > 0) out.push_back(v - cols);
                     if (c > 0) out.push_back(v - 1);
                     if (c + 1 < cols) out.push_back(v + 1);
                     if (r + 1 < rows) out.push_back(v + cols);
                   });
}

Graph torus(Vertex rows, Vertex cols) {
  MG_EXPECTS(rows >= 3 && cols >= 3);
  const std::size_t total = static_cast<std::size_t>(rows) * cols;
  MG_EXPECTS(total <= static_cast<std::size_t>(kNoVertex));
  return build_csr(static_cast<Vertex>(total),
                   [rows, cols](Vertex v, std::vector<Vertex>& out) {
                     const Vertex r = v / cols;
                     const Vertex c = v % cols;
                     out.push_back((r == 0 ? rows - 1 : r - 1) * cols + c);
                     out.push_back(r * cols + (c == 0 ? cols - 1 : c - 1));
                     out.push_back(r * cols + (c + 1 == cols ? 0 : c + 1));
                     out.push_back((r + 1 == rows ? 0 : r + 1) * cols + c);
                   });
}

Graph torus3d(Vertex x, Vertex y, Vertex z) {
  MG_EXPECTS(x >= 3 && y >= 3 && z >= 3);
  const std::size_t total = static_cast<std::size_t>(x) * y * z;
  MG_EXPECTS(total <= static_cast<std::size_t>(kNoVertex));
  // Vertex v = (i * y + j) * z + k for coordinates (i, j, k).
  return build_csr(static_cast<Vertex>(total),
                   [x, y, z](Vertex v, std::vector<Vertex>& out) {
                     const Vertex k = v % z;
                     const Vertex j = (v / z) % y;
                     const Vertex i = v / (y * z);
                     auto id = [y, z](Vertex a, Vertex b, Vertex c) {
                       return (a * y + b) * z + c;
                     };
                     out.push_back(id(i == 0 ? x - 1 : i - 1, j, k));
                     out.push_back(id(i + 1 == x ? 0 : i + 1, j, k));
                     out.push_back(id(i, j == 0 ? y - 1 : j - 1, k));
                     out.push_back(id(i, j + 1 == y ? 0 : j + 1, k));
                     out.push_back(id(i, j, k == 0 ? z - 1 : k - 1));
                     out.push_back(id(i, j, k + 1 == z ? 0 : k + 1));
                   });
}

Graph hypercube(unsigned dim) {
  MG_EXPECTS(dim >= 1 && dim <= 24);
  const Vertex n = Vertex{1} << dim;
  return build_csr(n, [dim](Vertex v, std::vector<Vertex>& out) {
    for (unsigned bit = 0; bit < dim; ++bit) {
      out.push_back(v ^ (Vertex{1} << bit));
    }
  });
}

Graph k_ary_tree(Vertex n, Vertex k) {
  MG_EXPECTS(n >= 1 && k >= 1);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / k);
  return b.build();
}

Graph caterpillar(Vertex spine, Vertex legs) {
  MG_EXPECTS(spine >= 1);
  const Vertex n = spine + spine * legs;
  GraphBuilder b(n);
  for (Vertex s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  for (Vertex s = 0; s < spine; ++s) {
    for (Vertex leg = 0; leg < legs; ++leg) {
      b.add_edge(s, spine + s * legs + leg);
    }
  }
  return b.build();
}

Graph binomial_tree(unsigned order) {
  MG_EXPECTS(order <= 20);
  const Vertex n = Vertex{1} << order;
  GraphBuilder b(n);
  // B_k = two copies of B_{k-1}; the second copy's root (offset 2^{k-1})
  // hangs off vertex 0.  Iterating over doubling offsets builds the classic
  // recursive structure with vertex v's parent at v minus its highest bit.
  for (Vertex v = 1; v < n; ++v) {
    Vertex high = v;
    high |= high >> 1;
    high |= high >> 2;
    high |= high >> 4;
    high |= high >> 8;
    high |= high >> 16;
    high = (high >> 1) + 1;  // highest set bit of v
    b.add_edge(v, v - high);
  }
  return b.build();
}

Graph lollipop(Vertex clique, Vertex tail) {
  MG_EXPECTS(clique >= 1);
  const Vertex n = clique + tail;
  GraphBuilder b(n);
  for (Vertex u = 0; u < clique; ++u) {
    for (Vertex v = u + 1; v < clique; ++v) b.add_edge(u, v);
  }
  for (Vertex t = 0; t < tail; ++t) {
    b.add_edge(clique + t - 1 < clique ? clique - 1 : clique + t - 1,
               clique + t);
  }
  return b.build();
}

Graph random_tree(Vertex n, Rng& rng) {
  MG_EXPECTS(n >= 1);
  if (n == 1) return Graph(1);
  if (n == 2) return path(2);
  // Decode a uniform Pruefer sequence of length n-2.
  std::vector<Vertex> pruefer(n - 2);
  for (auto& p : pruefer) p = static_cast<Vertex>(rng.below(n));
  std::vector<Vertex> degree(n, 1);
  for (Vertex p : pruefer) ++degree[p];
  GraphBuilder b(n);
  // Standard decoding with a moving pointer over the smallest leaf.
  Vertex ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  Vertex leaf = ptr;
  for (Vertex p : pruefer) {
    b.add_edge(leaf, p);
    if (--degree[p] == 1 && p < ptr) {
      leaf = p;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  b.add_edge(leaf, n - 1);
  return b.build();
}

Graph random_connected_gnp(Vertex n, double p, Rng& rng) {
  MG_EXPECTS(n >= 1);
  MG_EXPECTS(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.chance(p)) edges.emplace_back(u, v);
    }
  }
  // Overlay a uniform random spanning tree so the sample is connected.
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), Vertex{0});
  rng.shuffle(order);
  for (Vertex idx = 1; idx < n; ++idx) {
    const auto anchor = static_cast<Vertex>(rng.below(idx));
    edges.emplace_back(order[idx], order[anchor]);
  }
  return Graph::from_edges(n, edges);
}

Graph random_geometric(Vertex n, double radius, Rng& rng) {
  MG_EXPECTS(n >= 1);
  MG_EXPECTS(radius > 0.0);
  std::vector<std::pair<double, double>> points(n);
  for (auto& [x, y] : points) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  std::vector<Edge> edges;
  const double r2 = radius * radius;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const double dx = points[u].first - points[v].first;
      const double dy = points[u].second - points[v].second;
      if (dx * dx + dy * dy <= r2) edges.emplace_back(u, v);
    }
  }
  // Connectivity guard: chain vertices in x-order so the graph stays
  // connected even for sub-critical radii (documented substitution for
  // "deployments are provisioned to be connected").
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), Vertex{0});
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return points[a].first < points[b].first;
  });
  for (Vertex idx = 0; idx + 1 < n; ++idx) {
    edges.emplace_back(order[idx], order[idx + 1]);
  }
  return Graph::from_edges(n, edges);
}

Graph random_regular(Vertex n, Vertex d, Rng& rng) {
  MG_EXPECTS(n >= 3 && d >= 2 && d < n);
  MG_EXPECTS_MSG((static_cast<std::size_t>(n) * d) % 2 == 0,
                 "n*d must be even");
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex copy = 0; copy < d; ++copy) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  std::vector<Edge> edges;
  for (std::size_t idx = 0; idx + 1 < stubs.size(); idx += 2) {
    if (stubs[idx] != stubs[idx + 1]) {
      edges.emplace_back(stubs[idx], stubs[idx + 1]);
    }
  }
  // Connectivity guard: a spanning cycle (keeps the graph near-regular).
  for (Vertex v = 0; v < n; ++v) {
    edges.emplace_back(v, static_cast<Vertex>((v + 1) % n));
  }
  return Graph::from_edges(n, edges);
}

Graph random_regular_configuration(Vertex n, Vertex d, Rng& rng) {
  MG_EXPECTS(n >= 4 && d >= 3 && d < n);
  MG_EXPECTS_MSG((static_cast<std::size_t>(n) * d) % 2 == 0,
                 "n*d must be even");
  const std::size_t stub_count = static_cast<std::size_t>(n) * d;
  std::vector<Vertex> stubs(stub_count);
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Vertex> adjacency(stub_count);
  std::vector<std::size_t> cursor(n);
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> frontier;
  std::vector<Vertex> next;
  // Rejection sampling: for fixed d >= 3 a uniform pairing is simple with
  // probability bounded away from zero and then a.a.s. connected, so a
  // handful of attempts suffice; the cap only guards degenerate inputs.
  for (int attempt = 0; attempt < 256; ++attempt) {
    for (std::size_t i = 0; i < stub_count; ++i) {
      stubs[i] = static_cast<Vertex>(i / d);
    }
    rng.shuffle(stubs);

    // Every vertex has exactly d stubs, so the CSR shape is fixed.
    for (Vertex v = 0; v < n; ++v) {
      offsets[v + 1] = offsets[v] + d;
      cursor[v] = offsets[v];
    }
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stub_count; i += 2) {
      const Vertex u = stubs[i];
      const Vertex w = stubs[i + 1];
      if (u == w) {
        simple = false;
        break;
      }
      adjacency[cursor[u]++] = w;
      adjacency[cursor[w]++] = u;
    }
    if (!simple) continue;
    for (Vertex v = 0; v < n && simple; ++v) {
      const auto begin =
          adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      const auto end =
          adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      std::sort(begin, end);  // d entries: O(d log d) per vertex
      simple = std::adjacent_find(begin, end) == end;
    }
    if (!simple) continue;

    // Connectivity over the candidate CSR before committing to it.
    dist.assign(n, static_cast<std::uint32_t>(-1));
    frontier.assign(1, 0);
    dist[0] = 0;
    Vertex reached = 1;
    while (!frontier.empty()) {
      next.clear();
      for (Vertex u : frontier) {
        for (std::size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
          const Vertex w = adjacency[i];
          if (dist[w] == static_cast<std::uint32_t>(-1)) {
            dist[w] = dist[u] + 1;
            next.push_back(w);
            ++reached;
          }
        }
      }
      frontier.swap(next);
    }
    if (reached != n) continue;
    return Graph::from_csr(std::move(offsets), std::move(adjacency));
  }
  mg::detail::contract_fail("invariant", "attempt < 256", __FILE__, __LINE__,
                            "configuration model failed to produce a simple "
                            "connected d-regular graph");
}

}  // namespace mg::graph
