// §3.2 DFS message labeling: messages are labeled in depth-first-search
// preorder starting at the root (label 0) so that the messages originating
// in the subtree of a vertex with label i form the contiguous block
// [i, j].  Every scheduling decision of the paper's algorithms is a
// function of (i, j, k) — this module computes them.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/spanning_tree.h"

namespace mg::tree {

/// Message label; message `l` originates at the vertex with DFS label `l`.
using Label = std::uint32_t;

/// DFS preorder labeling of a rooted tree plus the subtree label intervals.
class DfsLabeling {
 public:
  explicit DfsLabeling(const RootedTree& tree);

  /// DFS label (= label of the message originating at `v`); the paper's i.
  [[nodiscard]] Label label(Vertex v) const { return label_[v]; }

  /// Vertex holding the message with the given label.
  [[nodiscard]] Vertex vertex_of(Label label) const { return vertex_[label]; }

  /// Largest label in the subtree rooted at `v`; the paper's j.  The
  /// subtree's messages are exactly [label(v), subtree_end(v)].
  [[nodiscard]] Label subtree_end(Vertex v) const { return end_[v]; }

  /// Number of messages (= vertices) in the subtree of `v`.
  [[nodiscard]] std::uint32_t subtree_size(Vertex v) const {
    return end_[v] - label_[v] + 1;
  }

  /// True when message `m` originates inside the subtree of `v`
  /// (a *b-message* of `v`); otherwise it is an *o-message* of `v`.
  [[nodiscard]] bool is_body(Vertex v, Label m) const {
    return label_[v] <= m && m <= end_[v];
  }

  /// The paper's w at `v`: 1 when v's start message i is the *lookahead in
  /// parent* (lip) message, i.e. i = i' + 1 where i' is the parent's label
  /// (equivalently: v is its parent's first child in DFS order); 0 for the
  /// root or later siblings.
  [[nodiscard]] std::uint32_t lip_count(Vertex v) const;

  /// The child of `v` whose subtree contains message `m`.
  /// Precondition: `m` is a b-message of `v` other than v's own.
  [[nodiscard]] Vertex child_owning(Vertex v, Label m) const;

 private:
  const RootedTree* tree_;
  std::vector<Label> label_;   // vertex -> label (i)
  std::vector<Vertex> vertex_; // label -> vertex
  std::vector<Label> end_;     // vertex -> j
};

}  // namespace mg::tree
