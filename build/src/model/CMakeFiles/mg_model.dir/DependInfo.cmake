
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/schedule.cpp" "src/model/CMakeFiles/mg_model.dir/schedule.cpp.o" "gcc" "src/model/CMakeFiles/mg_model.dir/schedule.cpp.o.d"
  "/root/repo/src/model/stats.cpp" "src/model/CMakeFiles/mg_model.dir/stats.cpp.o" "gcc" "src/model/CMakeFiles/mg_model.dir/stats.cpp.o.d"
  "/root/repo/src/model/validator.cpp" "src/model/CMakeFiles/mg_model.dir/validator.cpp.o" "gcc" "src/model/CMakeFiles/mg_model.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
