file(REMOVE_RECURSE
  "CMakeFiles/validator_fuzz_test.dir/validator_fuzz_test.cpp.o"
  "CMakeFiles/validator_fuzz_test.dir/validator_fuzz_test.cpp.o.d"
  "validator_fuzz_test"
  "validator_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
