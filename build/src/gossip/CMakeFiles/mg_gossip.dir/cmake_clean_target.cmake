file(REMOVE_RECURSE
  "libmg_gossip.a"
)
