// Tests for rooted trees, BFS trees and the §3.1 minimum-depth spanning
// tree construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "support/contracts.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "tree/spanning_tree.h"

namespace mg::tree {
namespace {

TEST(RootedTree, FromParentsBasics) {
  // 0 -> {1, 2}, 1 -> {3}
  const auto t = RootedTree::from_parents(
      0, {graph::kNoVertex, 0, 0, 1});
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.vertex_count(), 4u);
  EXPECT_EQ(t.parent(3), 1u);
  EXPECT_TRUE(t.is_leaf(2));
  EXPECT_FALSE(t.is_leaf(1));
  EXPECT_EQ(t.level(0), 0u);
  EXPECT_EQ(t.level(3), 2u);
  EXPECT_EQ(t.height(), 2u);
  const auto kids = t.children(0);
  EXPECT_EQ(std::vector<graph::Vertex>(kids.begin(), kids.end()),
            (std::vector<graph::Vertex>{1, 2}));
}

TEST(RootedTree, SingleVertex) {
  const auto t = RootedTree::from_parents(0, {graph::kNoVertex});
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_TRUE(t.is_root(0));
}

TEST(RootedTree, RejectsCycle) {
  // 1 and 2 parent each other: not reachable from root 0.
  EXPECT_THROW(RootedTree::from_parents(0, {graph::kNoVertex, 2, 1}),
               ContractViolation);
}

TEST(RootedTree, RejectsRootWithParent) {
  EXPECT_THROW(RootedTree::from_parents(0, {1, 0}), ContractViolation);
}

TEST(RootedTree, PreorderVisitsParentFirst) {
  const auto t = RootedTree::from_parents(
      0, {graph::kNoVertex, 0, 1, 1, 0});
  const auto order = t.preorder();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0u);
  // preorder: 0, 1, 2, 3, 4 with children ordered by id
  EXPECT_EQ(order, (std::vector<graph::Vertex>{0, 1, 2, 3, 4}));
}

TEST(RootedTree, AsGraphRoundTrip) {
  const auto t = RootedTree::from_parents(
      1, {1, graph::kNoVertex, 1, 2});
  const auto g = t.as_graph();
  EXPECT_TRUE(graph::is_tree(g));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(BfsTree, PathFromEnd) {
  const auto t = bfs_tree(graph::path(5), 0);
  EXPECT_EQ(t.height(), 4u);
  for (graph::Vertex v = 1; v < 5; ++v) EXPECT_EQ(t.parent(v), v - 1);
}

TEST(BfsTree, LevelsMatchBfsDistances) {
  const auto g = graph::grid(4, 6);
  const auto t = bfs_tree(g, 3);
  const auto dist = graph::bfs_distances(g, 3);
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(t.level(v), dist[v]);
  }
}

TEST(BfsTree, ParentIsSmallestIdInPreviousLevel) {
  // In K4 from root 0, all of 1..3 have parent 0; in C4 from 0, vertex 2
  // has two level-1 neighbors {1, 3} and must pick 1.
  const auto t = bfs_tree(graph::cycle(4), 0);
  EXPECT_EQ(t.parent(2), 1u);
}

TEST(BfsTree, ParentPropertyPinnedAcross32SeededGraphs) {
  // Pin of the sort-free construction: for every non-root vertex the
  // parent must be exactly the smallest-id neighbor in the previous BFS
  // level, and the CSR child lists must mirror the parent array in
  // ascending order.  This is the identity the per-level-sort
  // implementation guaranteed; any drift would silently re-root gossip
  // schedules everywhere.
  Rng rng(0x5EEDED5ULL);
  for (int i = 0; i < 32; ++i) {
    const auto n = static_cast<graph::Vertex>(rng.range(6, 70));
    const graph::Graph g =
        (i % 3 == 0) ? graph::random_tree(n, rng)
        : (i % 3 == 1)
            ? graph::random_connected_gnp(n, 4.0 / static_cast<double>(n),
                                          rng)
            : graph::random_geometric(n, 0.35, rng);
    const auto root = static_cast<graph::Vertex>(rng.below(n));
    const auto t = bfs_tree(g, root);
    const auto dist = graph::bfs_distances(g, root);
    for (graph::Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(t.level(v), dist[v]) << "graph " << i << " vertex " << v;
      if (v == root) continue;
      graph::Vertex expected = graph::kNoVertex;
      for (graph::Vertex u : g.neighbors(v)) {
        if (dist[u] + 1 == dist[v] && u < expected) expected = u;
      }
      ASSERT_EQ(t.parent(v), expected) << "graph " << i << " vertex " << v;
    }
    for (graph::Vertex v = 0; v < n; ++v) {
      const auto kids = t.children(v);
      ASSERT_TRUE(std::is_sorted(kids.begin(), kids.end()));
      for (graph::Vertex c : kids) ASSERT_EQ(t.parent(c), v);
    }
  }
}

TEST(BfsTree, DisconnectedRejected) {
  EXPECT_THROW(bfs_tree(graph::Graph(3), 0), ContractViolation);
}

TEST(MinDepthTree, HeightEqualsRadius) {
  Rng rng(17);
  const std::vector<graph::Graph> graphs = {
      graph::path(11),     graph::cycle(10),      graph::grid(5, 7),
      graph::star(9),      graph::hypercube(4),   graph::petersen(),
      graph::random_connected_gnp(40, 0.1, rng),
  };
  for (const auto& g : graphs) {
    const auto metrics = graph::compute_metrics(g);
    const auto t = min_depth_spanning_tree(g);
    EXPECT_EQ(t.height(), metrics.radius);
    EXPECT_TRUE(graph::is_tree(t.as_graph()));
    EXPECT_EQ(t.as_graph().vertex_count(), g.vertex_count());
  }
}

TEST(MinDepthTree, OddLineRootsAtCenter) {
  // §4: the minimum-depth spanning tree of an odd line is rooted at the
  // center processor with two line subtrees.
  const auto t = min_depth_spanning_tree(graph::path(9));
  EXPECT_EQ(t.root(), 4u);
  EXPECT_EQ(t.height(), 4u);
  EXPECT_EQ(t.children(4).size(), 2u);
}

TEST(MinDepthTree, ParallelConstructionIdentical) {
  ThreadPool pool(4);
  const auto g = graph::grid(8, 9);
  const auto seq = min_depth_spanning_tree(g);
  const auto par = min_depth_spanning_tree(g, &pool);
  EXPECT_EQ(seq.root(), par.root());
  EXPECT_EQ(seq.as_graph(), par.as_graph());
}

TEST(MinDepthTree, ParallelDeterminismPinnedAcross32SeededGraphs) {
  // Determinism pin for the engine's schedule cache: a cached schedule is
  // only byte-identical to a fresh solve if the parallel eccentricity
  // sweep can never drift from the serial one — same root, same parents,
  // same levels, same height, on every graph.  Pool sizes beyond the
  // vertex count exercise the empty-chunk edge of the work split.
  ThreadPool pool4(4);
  ThreadPool pool1(1);
  Rng rng(0x7123EEDULL);
  for (int i = 0; i < 32; ++i) {
    const auto n = static_cast<graph::Vertex>(rng.range(8, 60));
    graph::Graph g = (i % 3 == 0)
                         ? graph::random_tree(n, rng)
                         : (i % 3 == 1)
                               ? graph::random_connected_gnp(
                                     n, 4.0 / static_cast<double>(n), rng)
                               : graph::random_geometric(n, 0.3, rng);
    const auto serial = min_depth_spanning_tree(g);
    for (ThreadPool* pool : {&pool1, &pool4}) {
      const auto parallel = min_depth_spanning_tree(g, pool);
      ASSERT_EQ(parallel.vertex_count(), serial.vertex_count());
      EXPECT_EQ(parallel.root(), serial.root()) << "graph " << i;
      EXPECT_EQ(parallel.height(), serial.height()) << "graph " << i;
      for (graph::Vertex v = 0; v < serial.vertex_count(); ++v) {
        ASSERT_EQ(parallel.parent(v), serial.parent(v))
            << "graph " << i << " vertex " << v;
        ASSERT_EQ(parallel.level(v), serial.level(v))
            << "graph " << i << " vertex " << v;
      }
    }
  }
}

TEST(MinDepthTree, TreeInputReturnsItsOwnCenter) {
  const auto g = graph::k_ary_tree(15, 2);
  const auto t = min_depth_spanning_tree(g);
  EXPECT_EQ(t.as_graph(), g);  // spanning tree of a tree is the tree
}

TEST(RootTreeGraph, RootsAtRequestedVertex) {
  const auto g = graph::path(5);
  const auto t = root_tree_graph(g, 2);
  EXPECT_EQ(t.root(), 2u);
  EXPECT_EQ(t.height(), 2u);
  EXPECT_THROW(root_tree_graph(graph::cycle(4), 0), ContractViolation);
}

}  // namespace
}  // namespace mg::tree
