#include "churn/solver.h"

#include <utility>

#include "gossip/instance.h"
#include "obs/registry.h"
#include "support/contracts.h"

namespace mg::churn {

ChurnSolver::ChurnSolver(graph::Graph g0, ChurnSolverOptions options,
                         engine::Engine* engine, ThreadPool* pool)
    : options_(options),
      engine_(engine),
      pool_(pool),
      graph_(std::move(g0), options.graph),
      tree_(graph_.snapshot(), options.tree, pool) {
  resolve();
}

void ChurnSolver::resolve() {
  // The maintained tree is already a minimum-depth spanning tree of the
  // current topology, so a re-anchor pays only the schedule construction —
  // never a second center search.
  gossip::Instance instance(tree_.tree());
  schedule_ = gossip::run_algorithm(instance, options_.algorithm);
  initial_ = instance.initial();
  ++stats_.resolves;
  MG_OBS_ADD("churn.solver.resolves", 1);
}

ApplyReport ChurnSolver::apply(const ChurnEvent& event) {
  MG_OBS_SCOPE_TIMER(apply_timer, "churn.solver.apply_ns");
  ApplyReport report;
  report.event = event;

  // 2. Fingerprint-delta invalidation targets the *pre-mutation* graph:
  // that is the entry the mutation made stale.
  const std::uint64_t old_fingerprint =
      engine_ ? engine::graph_fingerprint(graph_.snapshot()) : 0;

  // 1. Mutate.
  const auto [u, v] = apply_event(graph_, event);
  const graph::Graph& g = graph_.snapshot();

  if (engine_ != nullptr) {
    report.invalidated = engine_->invalidate(old_fingerprint);
    stats_.invalidated += report.invalidated;
  }

  // 3. Incremental tree maintenance.
  {
    MG_OBS_SCOPE_HIST(retree_hist, "churn.retree_ns");
    switch (event.kind) {
      case EventKind::kAddEdge:
        report.tree_report = tree_.on_edge_added(g, u, v);
        break;
      case EventKind::kRemoveEdge:
        report.tree_report = tree_.on_edge_removed(g, u, v);
        break;
      case EventKind::kAddNode:
      case EventKind::kRemoveNode:
        report.tree_report = tree_.on_node_event(g);
        break;
    }
  }

  // 4. Reschedule: patch edge deltas, re-anchor everything else.
  report.fresh_bound =
      static_cast<std::size_t>(g.vertex_count()) + tree_.radius();
  const bool node_event = event.kind == EventKind::kAddNode ||
                          event.kind == EventKind::kRemoveNode;
  {
    MG_OBS_SCOPE_HIST(patch_hist, "churn.patch_ns");
    if (node_event) {
      // The vertex universe (and the message-id space) changed: the old
      // schedule is not patchable, by construction.
      resolve();
      report.resolved = true;
    } else {
      gossip::PatchResult patch =
          gossip::patch_schedule(g, schedule_, initial_);
      const double stale_limit =
          options_.stale_factor * static_cast<double>(report.fresh_bound);
      if (!patch.complete ||
          static_cast<double>(patch.schedule.total_time()) > stale_limit) {
        // Accumulated repairs drifted past the staleness budget (or the
        // patch could not complete): re-anchor on the maintained tree.
        resolve();
        report.resolved = true;
        MG_OBS_ADD("churn.solver.reanchors", 1);
      } else {
        schedule_ = std::move(patch.schedule);
        report.patched = true;
        ++stats_.patches;
        MG_OBS_ADD("churn.solver.patches", 1);
      }
    }
  }
  report.schedule_time = schedule_.total_time();

  ++stats_.events;
  MG_OBS_ADD("churn.solver.events", 1);
  return report;
}

}  // namespace mg::churn
