// Differential property test: three independent implementations look at
// every schedule — the generator (algorithm), the model validator (rule
// checker), and the network simulator (executor).  For seeded random
// connected graphs x all four algorithms they must agree on acceptance,
// completion, and timing:
//
//   sim completion round == schedule makespan == validator last arrival
//
// The validator and simulator share no code with the generators (and
// little with each other), so agreement across >= 50 random instances is
// strong evidence none of the three is quietly wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/network_sim.h"
#include "support/rng.h"

namespace mg {
namespace {

constexpr gossip::Algorithm kAlgorithms[] = {
    gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
    gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

graph::Graph make_graph(std::uint64_t seed) {
  Rng rng(0xd1ffULL * (seed + 1));
  // 5..48 vertices, family rotating with the seed.
  const auto n = static_cast<graph::Vertex>(5 + (seed * 7) % 44);
  switch (seed % 4) {
    case 0:
      return graph::random_connected_gnp(n, 3.0 / static_cast<double>(n),
                                         rng);
    case 1:
      return graph::random_tree(n, rng);
    case 2:
      return graph::random_geometric(n, 0.3, rng);
    default:
      return graph::random_connected_gnp(n, 0.5, rng);
  }
}

TEST(Differential, GeneratorValidatorSimulatorAgree) {
  constexpr std::uint64_t kGraphs = 56;  // acceptance floor is 50
  for (std::uint64_t seed = 0; seed < kGraphs; ++seed) {
    const graph::Graph g = make_graph(seed);
    ASSERT_TRUE(graph::is_connected(g)) << "seed " << seed;

    for (const gossip::Algorithm algorithm : kAlgorithms) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " n=" +
                   std::to_string(g.vertex_count()) + " " +
                   gossip::algorithm_name(algorithm));

      // 1. The validator accepts the schedule.
      const gossip::Solution sol = gossip::solve_gossip(g, algorithm);
      ASSERT_TRUE(sol.report.ok) << sol.report.error;

      // 2. The simulator executes it to completion on the tree network.
      const graph::Graph tree = sol.instance.tree().as_graph();
      const sim::SimResult run =
          sim::simulate(tree, sol.schedule, sol.instance.initial());
      ASSERT_TRUE(run.completed);
      EXPECT_EQ(std::count(run.missing.begin(), run.missing.end(), 0u),
                static_cast<std::ptrdiff_t>(g.vertex_count()));

      // 3. All three timing views coincide.
      const std::size_t makespan = sol.schedule.total_time();
      EXPECT_EQ(run.total_time, makespan);
      EXPECT_EQ(sol.report.total_time, makespan);

      const std::size_t sim_completion = *std::max_element(
          run.completion_time.begin(), run.completion_time.end());
      const std::size_t validator_completion =
          *std::max_element(sol.report.completion_time.begin(),
                            sol.report.completion_time.end());
      EXPECT_EQ(sim_completion, validator_completion);
      if (algorithm == gossip::Algorithm::kSimple) {
        // Simple's down phase runs on fixed slots through 2n + r - 3 by
        // definition; when the unique deepest leaf is the last DFS label,
        // the final slot re-delivers a message its receiver already holds,
        // so completion may precede the makespan by exactly one round.
        EXPECT_GE(sim_completion + 1, makespan);
        EXPECT_LE(sim_completion, makespan);
      } else {
        EXPECT_EQ(sim_completion, makespan)
            << "schedule has redundant trailing deliveries";
      }
    }
  }
}

}  // namespace
}  // namespace mg
