// Differential churn battery (ISSUE 8 headline): replay seeded churn
// streams — 4 graph families x 8 seeds x 3 churn rates, rotating the three
// feed generators — and after *every* event cross-check the incremental
// pipeline against the from-scratch one:
//
//   * the maintained `IncrementalTree` is byte-identical (root, parent
//     array, levels, height) to a fresh `min_depth_spanning_tree` of the
//     mutated graph.  All battery sizes sit far below
//     `CenterOptions::exhaustive_threshold`, so the from-scratch center is
//     the smallest-id minimum-eccentricity vertex and identity is exact;
//   * the solver's current schedule passes the independent model validator
//     (completion required) and the word-parallel simulator;
//   * total time honors the staleness contract: patched schedules stay
//     within stale_factor * (n + r), and every re-anchor restores the exact
//     Theorem 1 bound n + r.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "churn/feed.h"
#include "churn/solver.h"
#include "model/validator.h"
#include "sim/network_sim.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg {
namespace {

using churn::ChurnFeed;
using churn::FeedOptions;
using graph::Graph;
using graph::Vertex;

void expect_tree_identical(const Graph& g, const tree::RootedTree& got) {
  const tree::RootedTree want = tree::min_depth_spanning_tree(g);
  ASSERT_EQ(want.vertex_count(), got.vertex_count());
  ASSERT_EQ(want.root(), got.root());
  ASSERT_EQ(want.height(), got.height());
  for (Vertex v = 0; v < want.vertex_count(); ++v) {
    ASSERT_EQ(want.parent(v), got.parent(v)) << "parent of " << v;
    ASSERT_EQ(want.level(v), got.level(v)) << "level of " << v;
  }
}

void expect_schedule_sound(const Graph& g, const churn::ChurnSolver& solver,
                           const churn::ApplyReport& report) {
  const auto validation = model::validate_schedule(
      g, solver.schedule(), solver.initial(), {});
  ASSERT_TRUE(validation.ok) << validation.error;

  sim::SimOptions sim_options;
  sim_options.core = sim::SimCore::kWordParallel;
  const auto run = sim::simulate(g, solver.schedule(), solver.initial(),
                                 sim_options);
  ASSERT_TRUE(run.completed);
  ASSERT_EQ(run.total_time, solver.schedule().total_time());

  // fresh_bound is the Theorem 1 bound n + r for the *current* topology.
  const auto bound = static_cast<double>(report.fresh_bound);
  ASSERT_LE(static_cast<double>(solver.schedule().total_time()),
            2.0 * bound + 1e-9);
  if (report.resolved) {
    ASSERT_LE(solver.schedule().total_time(), report.fresh_bound);
  }
}

ChurnFeed make_feed(const Graph& g0, std::size_t shape,
                    const FeedOptions& options) {
  switch (shape % 3) {
    case 0:
      return churn::uniform_feed(g0, options);
    case 1:
      return churn::hotspot_feed(g0, options);
    default:
      return churn::partition_heal_feed(g0, options);
  }
}

void run_stream(const std::string& family, Vertex knob, std::uint64_t seed,
                std::uint64_t horizon, std::size_t shape) {
  Graph g0;
  for (const auto& f : test::families()) {
    if (f.name == family) g0 = f.make(knob);
  }
  ASSERT_GE(g0.vertex_count(), 4u);

  FeedOptions options;
  options.events = 32;
  options.seed = seed;
  options.horizon_rounds = horizon;
  options.allow_node_events = (shape % 3) == 0;  // uniform feeds only
  const ChurnFeed feed = make_feed(g0, shape, options);
  ASSERT_FALSE(feed.events.empty());

  churn::ChurnSolver solver(g0);
  for (std::size_t i = 0; i < feed.events.size(); ++i) {
    const churn::ChurnEvent& event = feed.events[i];
    SCOPED_TRACE(family + " seed=" + std::to_string(seed) +
                 " horizon=" + std::to_string(horizon) + " event#" +
                 std::to_string(i) + " " +
                 churn::event_kind_name(event.kind) + "(" +
                 std::to_string(event.u) + "," + std::to_string(event.v) +
                 ")");
    const churn::ApplyReport report = solver.apply(event);
    const Graph& g = solver.graph().snapshot();
    expect_tree_identical(g, solver.tree().tree());
    expect_schedule_sound(g, solver, report);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class ChurnDifferential
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(ChurnDifferential, TreeAndScheduleMatchFromScratchAfterEveryEvent) {
  const auto [family, seed] = GetParam();
  Vertex knob = 48;
  if (std::string(family) == "grid") knob = 7;  // 7x7 = 49 vertices
  // Three churn rates: the same event budget spread over ~600, ~150 and
  // ~30 rounds (slow / moderate / violent churn), rotating the generator
  // shape so every family meets every feed kind.
  const std::uint64_t horizons[] = {600, 150, 30};
  for (std::size_t rate = 0; rate < 3; ++rate) {
    run_stream(family, knob, seed * 3 + rate, horizons[rate],
               static_cast<std::size_t>(seed + rate));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Battery, ChurnDifferential,
    ::testing::Combine(::testing::Values("cycle", "grid", "random_gnp",
                                         "random_geometric"),
                       ::testing::Range<std::uint64_t>(0, 8)),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

// The maintainer's stats must show the incremental paths actually firing —
// a battery that silently full-rebuilds every event would still pass the
// identity checks but prove nothing about incrementality.
TEST(ChurnDifferential, IncrementalPathsActuallyFire) {
  const Graph g0 = graph::grid(9, 9);
  FeedOptions options;
  options.events = 64;
  options.seed = 7;
  const ChurnFeed feed = churn::uniform_feed(g0, options);
  churn::ChurnSolver solver(g0);
  for (const auto& event : feed.events) (void)solver.apply(event);
  const auto& stats = solver.tree().stats();
  EXPECT_EQ(stats.events, feed.events.size());
  EXPECT_GT(stats.noop + stats.parent_patch + stats.subtree_repair +
                stats.recenter,
            stats.full_rebuild)
      << "incremental paths should dominate full rebuilds under uniform "
         "edge churn";
  EXPECT_GT(solver.stats().patches, 0u);
}

}  // namespace
}  // namespace mg
