#include "gossip/classification.h"

#include "support/contracts.h"

namespace mg::gossip {

Role classify(const DfsLabeling& labels, Vertex v, Label m) {
  const Label i = labels.label(v);
  const Label j = labels.subtree_end(v);
  if (m < i || m > j) return Role::kOther;
  if (m == i) return Role::kStart;
  if (m == i + 1) return Role::kLookahead;
  return Role::kRemaining;
}

bool is_lip(const RootedTree& tree, const DfsLabeling& labels, Vertex v,
            Label m) {
  MG_EXPECTS(!tree.is_root(v));
  const Label i = labels.label(v);
  return m == i && labels.lip_count(v) == 1;
}

bool is_rip(const RootedTree& tree, const DfsLabeling& labels, Vertex v,
            Label m) {
  MG_EXPECTS(!tree.is_root(v));
  const Label i = labels.label(v);
  const Label j = labels.subtree_end(v);
  const Label first_rip = i + labels.lip_count(v);
  return m >= first_rip && m <= j;
}

}  // namespace mg::gossip
