file(REMOVE_RECURSE
  "libmg_sim.a"
)
