// Experiment B5 (§3.1/§4 complexity claims), on google-benchmark:
//   * "finding a minimum-depth spanning tree ... takes O(mn) time" — the
//     n-BFS sweep, sequential and thread-pool parallel;
//   * "all the other steps of the algorithm to construct the schedule take
//     O(n) time" per processor — schedule construction scaling;
//   * validator throughput (the test oracle's own cost).
#include <benchmark/benchmark.h>

#include <cmath>

#include "gossip/concurrent_updown.h"
#include "gossip/instance.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "model/validator.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "tree/spanning_tree.h"

namespace {

using namespace mg;

graph::Graph make_geometric(graph::Vertex n) {
  Rng rng(0xabc + n);
  return graph::random_geometric(n, 2.0 / std::sqrt(static_cast<double>(n)),
                                 rng);
}

void BM_SingleBfsTree(benchmark::State& state) {
  const auto g = make_geometric(static_cast<graph::Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree::bfs_tree(g, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleBfsTree)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_MinDepthTreeSequential(benchmark::State& state) {
  const auto g = make_geometric(static_cast<graph::Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree::min_depth_spanning_tree(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinDepthTreeSequential)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

void BM_MinDepthTreeParallel(benchmark::State& state) {
  const auto g = make_geometric(static_cast<graph::Vertex>(state.range(0)));
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree::min_depth_spanning_tree(g, &pool));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinDepthTreeParallel)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->UseRealTime()
    ->Complexity();

void BM_ScheduleConstruction(benchmark::State& state) {
  // Schedule construction alone, on a prebuilt tree: the paper's O(n)
  // per-processor claim shows as near-linear total work (the schedule
  // object itself has Theta(n^2) deliveries, dominating at scale).
  Rng rng(1);
  const auto g = graph::random_tree(
      static_cast<graph::Vertex>(state.range(0)), rng);
  const gossip::Instance instance(tree::root_tree_graph(g, 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::concurrent_updown(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleConstruction)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

void BM_ValidatorThroughput(benchmark::State& state) {
  Rng rng(2);
  const auto g = graph::random_tree(
      static_cast<graph::Vertex>(state.range(0)), rng);
  const gossip::Instance instance(tree::root_tree_graph(g, 0));
  const auto schedule = gossip::concurrent_updown(instance);
  const auto tree_graph = instance.tree().as_graph();
  const auto initial = instance.initial();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::validate_schedule(tree_graph, schedule, initial));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ValidatorThroughput)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

void BM_EndToEndSolve(benchmark::State& state) {
  const auto g = make_geometric(static_cast<graph::Vertex>(state.range(0)));
  for (auto _ : state) {
    auto instance = gossip::Instance::from_network(g);
    benchmark::DoNotOptimize(gossip::concurrent_updown(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EndToEndSolve)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

}  // namespace
