// Experiment B4 (§2): broadcasting under the multicast model is optimal —
// the schedule built by BFS flooding completes in exactly the source's
// eccentricity, for every family and several sources.
#include <cstdio>
#include <functional>

#include "gossip/broadcast.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "model/validator.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(7);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"line 33", graph::path(33)},
      {"cycle 32", graph::cycle(32)},
      {"grid 8x8", graph::grid(8, 8)},
      {"star 50", graph::star(50)},
      {"hypercube 6", graph::hypercube(6)},
      {"petersen", graph::petersen()},
      {"random gnp 100", graph::random_connected_gnp(100, 0.05, rng)},
      {"random geometric 100", graph::random_geometric(100, 0.18, rng)},
  };

  TextTable table;
  table.new_row();
  for (const char* h : {"network", "source", "eccentricity",
                        "broadcast rounds", "deliveries", "max fanout",
                        "optimal?"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    for (graph::Vertex source :
         {graph::Vertex{0}, static_cast<graph::Vertex>(g.vertex_count() / 2)}) {
      const auto schedule = gossip::multicast_broadcast(g, source);
      const auto report = model::validate_broadcast(g, schedule, source);
      const auto ecc = graph::eccentricity(g, source);
      const bool optimal =
          report.ok && ecc && schedule.total_time() == *ecc;
      all_ok = all_ok && optimal;
      table.new_row();
      table.cell(name);
      table.cell(static_cast<std::size_t>(source));
      table.cell(static_cast<std::size_t>(ecc.value_or(0)));
      table.cell(schedule.total_time());
      table.cell(schedule.delivery_count());
      table.cell(schedule.max_fanout());
      table.cell(std::string(optimal ? "yes" : "NO"));
    }
  }

  std::printf(
      "B4 / §2: optimal multicast broadcast (time == source eccentricity)\n\n"
      "%s\nall broadcasts optimal: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
