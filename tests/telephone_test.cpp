// Tests for the telephone (unicast) baseline: validity under the
// restricted model and the multicast advantage it demonstrates (§2).
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/telephone.h"
#include "graph/generators.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

TEST(Telephone, ScheduleIsUnicastAndValid) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = telephone_gossip(instance);
  EXPECT_TRUE(schedule.is_telephone());
  test::expect_valid_gossip(instance, schedule,
                            model::ModelVariant::kTelephone);
}

TEST(Telephone, ValidAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 6u, 10u}) {
      const auto instance = Instance::from_network(family.make(knob));
      const auto schedule = telephone_gossip(instance);
      const auto report = test::expect_valid_gossip(
          instance, schedule, model::ModelVariant::kTelephone);
      ASSERT_TRUE(report.ok) << family.name << " knob=" << knob;
    }
  }
}

TEST(Telephone, MulticastBeatsTelephoneOnStars) {
  // On a star the hub must serve each leaf separately under the telephone
  // model: Theta(n^2) vs n + 1 for multicast.
  const auto instance = Instance::from_network(graph::star(12));
  const auto phone = telephone_gossip(instance).total_time();
  const auto multi = concurrent_updown(instance).total_time();
  EXPECT_EQ(multi, 13u);  // n + r = 12 + 1
  EXPECT_GE(phone, 2u * multi);
}

TEST(Telephone, AtLeastLoadBound) {
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(8));
    EXPECT_GE(telephone_gossip(instance).total_time(),
              telephone_tree_load_bound(instance))
        << family.name;
  }
}

TEST(Telephone, OnAPathTelephoneIsCompetitive) {
  // Degree <= 2 means multicast buys little: the telephone time stays
  // within a small constant of n + r.
  const auto instance = Instance::from_network(graph::path(21));
  const auto phone = telephone_gossip(instance).total_time();
  EXPECT_LE(phone, 3 * (21 + instance.radius()));
}

TEST(Telephone, LoadBoundStar) {
  const auto instance = Instance::from_network(graph::star(10));
  // Hub owes each of 9 children the 9 messages outside their subtree:
  EXPECT_EQ(telephone_tree_load_bound(instance), 81u);
}

TEST(Telephone, TrivialSizes) {
  const auto one =
      Instance(tree::RootedTree::from_parents(0, {graph::kNoVertex}));
  EXPECT_EQ(telephone_gossip(one).total_time(), 0u);
}

}  // namespace
}  // namespace mg::gossip
