#include "sim/network_sim.h"

#include <algorithm>

#include "obs/registry.h"
#include "support/bitset.h"
#include "support/contracts.h"

namespace mg::sim {

SimResult simulate(const graph::Graph& g, const model::Schedule& schedule,
                   const std::vector<Message>& initial,
                   const SimOptions& options) {
  const Vertex n = g.vertex_count();
  SimResult result;
  result.completion_time.assign(n, 0);
  result.missing.assign(n, 0);

  std::vector<Message> origin(initial);
  if (origin.empty()) {
    origin.resize(n);
    for (Vertex v = 0; v < n; ++v) origin[v] = v;
  }
  MG_EXPECTS(origin.size() == n);

  std::vector<DynamicBitset> hold(n, DynamicBitset(n));
  std::vector<std::size_t> known(n, 1);
  for (Vertex v = 0; v < n; ++v) hold[v].set(origin[v]);

  auto dropped = [&](std::size_t t, Vertex sender) {
    return std::find(options.drop.begin(), options.drop.end(),
                     std::make_pair(t, sender)) != options.drop.end();
  };

  std::size_t total_known = n;
  result.knowledge.push_back(total_known);

  // Deliveries land at t + 1 (receive-before-send): buffer the round's
  // arrivals and apply them before the next round's sends.
  std::vector<std::pair<Vertex, Message>> in_flight;
  auto apply_arrivals = [&](std::size_t receive_time) {
    for (const auto& [r, m] : in_flight) {
      if (!hold[r].test(m)) {
        hold[r].set(m);
        ++known[r];
        ++total_known;
        if (known[r] == n) result.completion_time[r] = receive_time;
      }
    }
    in_flight.clear();
  };

  std::uint64_t deliveries = 0;
  std::uint64_t dropped_txs = 0;
  const std::size_t rounds = schedule.round_count();
  for (std::size_t t = 0; t < rounds; ++t) {
    apply_arrivals(t);
    if (t > 0) result.knowledge.push_back(total_known);  // state at time t
    for (const auto& tx : schedule.round(t)) {
      if (dropped(t, tx.sender)) {
        ++dropped_txs;
        continue;
      }
      if (!hold[tx.sender].test(tx.message)) {
        ++result.skipped_sends;  // fault cascade: nothing to forward
        continue;
      }
      if (options.record_trace) {
        result.trace.push_back({SimEvent::Kind::kSend, t, tx.sender,
                                tx.message,
                                tx.receivers.empty() ? tx.sender
                                                     : tx.receivers.front()});
      }
      if (options.sink != nullptr) {
        options.sink->on_event(
            {"send", t, tx.sender, tx.message,
             tx.receivers.empty() ? tx.sender : tx.receivers.front(),
             tx.receivers.size()});
      }
      for (Vertex r : tx.receivers) {
        result.total_time = std::max(result.total_time, t + 1);
        if (options.record_trace) {
          result.trace.push_back(
              {SimEvent::Kind::kReceive, t + 1, r, tx.message, tx.sender});
        }
        if (options.sink != nullptr) {
          options.sink->on_event({"receive", t + 1, r, tx.message, tx.sender,
                                  0});
        }
        ++deliveries;
        in_flight.emplace_back(r, tx.message);
      }
    }
  }
  apply_arrivals(rounds);
  if (rounds > 0) result.knowledge.push_back(total_known);

  result.completed = true;
  for (Vertex v = 0; v < n; ++v) {
    result.missing[v] = n - known[v];
    if (result.missing[v] != 0) result.completed = false;
  }
  result.final_holds = std::move(hold);

  MG_OBS_ADD("sim.runs", 1);
  MG_OBS_ADD("sim.deliveries", deliveries);
  MG_OBS_ADD("sim.dropped_transmissions", dropped_txs);
  MG_OBS_ADD("sim.skipped_sends", result.skipped_sends);
  if (result.completed && !result.completion_time.empty()) {
    MG_OBS_ADD("sim.completion_round",
               *std::max_element(result.completion_time.begin(),
                                 result.completion_time.end()));
  }
  return result;
}

}  // namespace mg::sim
