// Exact Hamiltonian-circuit search.  §1 of the paper motivates gossiping
// via Hamiltonian circuits (Fig. 1): when a circuit exists, rotating every
// message along it solves gossiping in the optimal n - 1 rounds.  Deciding
// existence is NP-complete, so this is a budgeted exact backtracking search
// used on small instances (benches F1-F3) and on structured families.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace mg::graph {

/// Tri-state outcome of a budgeted exact search.
enum class SearchStatus : std::uint8_t {
  kFound,      ///< a witness was found
  kExhausted,  ///< the full space was searched; no witness exists
  kBudget,     ///< the node budget ran out before the search finished
};

struct HamiltonianResult {
  SearchStatus status = SearchStatus::kExhausted;
  /// When status == kFound: the circuit as a vertex sequence of length n
  /// (implicitly closing back to the first vertex).
  std::vector<Vertex> circuit;
  std::uint64_t nodes_explored = 0;
};

/// Backtracking search with degree-2 pruning and a node budget.
/// Requires a connected graph with n >= 3.
[[nodiscard]] HamiltonianResult find_hamiltonian_circuit(
    const Graph& g, std::uint64_t node_budget = 50'000'000);

}  // namespace mg::graph
