# Empty compiler generated dependencies file for telephone_test.
# This may be replaced when dependencies are built.
