file(REMOVE_RECURSE
  "CMakeFiles/repeated_test.dir/repeated_test.cpp.o"
  "CMakeFiles/repeated_test.dir/repeated_test.cpp.o.d"
  "repeated_test"
  "repeated_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
