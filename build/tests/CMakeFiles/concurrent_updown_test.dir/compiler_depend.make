# Empty compiler generated dependencies file for concurrent_updown_test.
# This may be replaced when dependencies are built.
