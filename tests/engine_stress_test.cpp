// Concurrency stress battery for `mg::engine::Engine`.
//
// 8 client threads x 1k mixed hot/cold requests hammer an engine whose
// schedule cache holds only 8 entries, so eviction churns constantly while
// hits, misses, and single-flight joins interleave.  The accounting
// identity `hits + misses == requests` (checked against both the engine's
// own counters and the `engine.*` mg::obs counters) proves no request was
// lost and no solve was duplicated or double-counted.  This binary runs
// under the ThreadSanitizer CI leg — the point is the interleavings, not
// the arithmetic.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "obs/registry.h"
#include "support/rng.h"

namespace mg::engine {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kRequestsPerThread = 1000;
constexpr std::size_t kDistinctGraphs = 32;
constexpr std::size_t kHotGraphs = 4;

/// 32 structurally distinct small graphs; indices 0..3 are the "hot" set.
std::vector<graph::Graph> make_graph_pool() {
  std::vector<graph::Graph> pool;
  pool.reserve(kDistinctGraphs);
  Rng rng(0x57BE55ULL);
  for (std::size_t i = 0; i < kDistinctGraphs; ++i) {
    const auto n = static_cast<graph::Vertex>(10 + i);
    switch (i % 4) {
      case 0:
        pool.push_back(graph::cycle(n));
        break;
      case 1:
        pool.push_back(graph::random_tree(n, rng));
        break;
      case 2:
        pool.push_back(graph::random_connected_gnp(
            n, 3.0 / static_cast<double>(n), rng));
        break;
      default:
        pool.push_back(graph::path(n));
        break;
    }
  }
  return pool;
}

TEST(EngineStress, EightThreadsAgainstEightEntryCache) {
#if MG_OBS_ENABLED
  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);
  registry.reset();
#endif
  const std::vector<graph::Graph> pool = make_graph_pool();
  Engine engine(EngineOptions{.cache_capacity = 8, .shards = 4,
                              .threads = 2});

  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(0xC11E17ULL + t);
      for (std::size_t i = 0; i < kRequestsPerThread; ++i) {
        std::size_t index;
        if (i < kDistinctGraphs / kThreads) {
          // Deterministic opening sweep: across the 8 threads every one
          // of the 32 graphs is requested at least once.
          index = t * (kDistinctGraphs / kThreads) + i;
        } else if (rng.chance(0.7)) {
          index = rng.below(kHotGraphs);  // hot set: mostly hits
        } else {
          index = rng.below(kDistinctGraphs);  // cold tail: evictions
        }
        const gossip::Algorithm algorithm =
            rng.chance(0.25) ? gossip::Algorithm::kSimple
                             : gossip::Algorithm::kConcurrentUpDown;
        const ResultPtr result = engine.solve(pool[index], algorithm);
        // gtest EXPECTs are not reliable off the main thread; tally.
        if (result == nullptr || !result->report.ok) {
          failures.fetch_add(1, std::memory_order_relaxed);
        } else if (algorithm == gossip::Algorithm::kConcurrentUpDown &&
                   result->schedule.total_time() !=
                       result->vertex_count + result->radius) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(completed.load(), kThreads * kRequestsPerThread);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, kThreads * kRequestsPerThread);
  // No lost and no duplicated solves: every request is exactly one of a
  // hit (cache or coalesced join) or a miss (it executed the solve).
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  // The opening sweep touched all 32 keys, so at least that many misses;
  // the 8-entry cache guarantees churn.
  EXPECT_GE(stats.misses, kDistinctGraphs);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.inflight_coalesced, stats.hits);
  EXPECT_LE(engine.cache_size(), 8u);

#if MG_OBS_ENABLED
  // The obs mirror must agree exactly with the engine's own accounting.
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("engine.requests"), stats.requests);
  EXPECT_EQ(snap.counter("engine.cache.hits") +
                snap.counter("engine.cache.misses"),
            stats.requests);
  EXPECT_EQ(snap.counter("engine.cache.hits"), stats.hits);
  EXPECT_EQ(snap.counter("engine.cache.misses"), stats.misses);
  EXPECT_EQ(snap.counter("engine.cache.evictions"), stats.evictions);
  EXPECT_EQ(snap.counter("engine.cache.inflight_coalesced"),
            stats.inflight_coalesced);
#endif
}

TEST(EngineStress, IdenticalColdMissesSingleFlight) {
  // All threads release together against one cold key: exactly one solve
  // may execute, everyone else joins it (as a coalesced or cache hit).
  const graph::Graph g = graph::grid(12, 12);  // slow enough to pile on
  Engine engine(EngineOptions{.cache_capacity = 4, .shards = 2,
                              .threads = 1});
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const ResultPtr result = engine.solve(g);
      if (result == nullptr || !result->report.ok) failures.fetch_add(1);
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, kThreads);
  EXPECT_EQ(stats.misses, 1u);  // single-flight: one solve, ever
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(EngineStress, ConcurrentBatchesShareOneCache) {
  // Two threads submit overlapping batches through the engine's own pool
  // while a third hammers solve() directly — the three entry points must
  // agree on one consistent set of counters.
  const std::vector<graph::Graph> pool = make_graph_pool();
  Engine engine(EngineOptions{.cache_capacity = 8, .shards = 4,
                              .threads = 2});
  std::vector<Request> batch;
  for (std::size_t rep = 0; rep < 4; ++rep) {
    for (std::size_t i = 0; i < kDistinctGraphs; ++i) {
      batch.push_back(Request{pool[i], gossip::Algorithm::kConcurrentUpDown});
    }
  }
  std::atomic<std::uint64_t> failures{0};
  auto submit = [&] {
    const auto results = engine.solve_batch(batch);
    for (const auto& result : results) {
      if (result == nullptr || !result->report.ok) failures.fetch_add(1);
    }
  };
  std::thread a(submit);
  std::thread b(submit);
  std::thread c([&] {
    Rng rng(0xD1AECEULL);
    for (std::size_t i = 0; i < 200; ++i) {
      const auto& g = pool[rng.below(kDistinctGraphs)];
      const ResultPtr result = engine.solve(g);
      if (result == nullptr || !result->report.ok) failures.fetch_add(1);
    }
  });
  a.join();
  b.join();
  c.join();

  EXPECT_EQ(failures.load(), 0u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, 2 * batch.size() + 200);
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  EXPECT_GE(stats.misses, kDistinctGraphs);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace mg::engine
