// Extension bench (§4: "one has to execute the gossiping algorithms a
// large number of times"): steady-state throughput of repeated gossiping.
// Back-to-back execution costs n + r per gossip; pipelining consecutive
// gossips at the minimal conflict-free period cuts the amortized cost to
// the period, which approaches the n - 1 receive-capacity floor.
#include <cstdio>

#include "gossip/repeated.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(4);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"fig4", graph::fig4_network()},
      {"line 21", graph::path(21)},
      {"star 20", graph::star(20)},
      {"grid 5x5", graph::grid(5, 5)},
      {"hypercube 5", graph::hypercube(5)},
      {"binary tree 31", graph::k_ary_tree(31, 2)},
      {"random tree 40", graph::random_tree(40, rng)},
  };
  constexpr std::size_t kCopies = 8;

  TextTable table;
  table.new_row();
  for (const char* h :
       {"network", "n", "r", "single (n+r)", "period", "floor n-1",
        "8x back-to-back", "8x pipelined", "amortized", "speedup"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto instance = gossip::Instance::from_network(g);
    const auto plain = gossip::repeated_gossip(instance, kCopies, false);
    const auto packed = gossip::repeated_gossip(instance, kCopies, true);
    const auto report = model::validate_schedule_general(
        instance.tree().as_graph(), packed.schedule, packed.initial_sets,
        packed.message_count);
    all_ok = all_ok && report.ok;
    if (!report.ok) std::printf("%s: %s\n", name.c_str(), report.error.c_str());

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(static_cast<std::size_t>(instance.radius()));
    table.cell(static_cast<std::size_t>(g.vertex_count()) +
               instance.radius());
    table.cell(packed.period);
    table.cell(static_cast<std::size_t>(g.vertex_count()) - 1);
    table.cell(plain.total_time);
    table.cell(packed.total_time);
    table.cell(packed.amortized_time, 2);
    table.cell(static_cast<double>(plain.total_time) /
                   static_cast<double>(packed.total_time),
               2);
  }

  std::printf(
      "Pipelined repeated gossip (8 consecutive gossips on a fixed tree):\n\n"
      "%s\nall combined schedules valid under the model: %s\n\n"
      "Finding: the minimal conflict-free period almost always equals the\n"
      "single-gossip time n + r -- ConcurrentUpDown already keeps the\n"
      "deepest leaves' receive slots busy in a near-contiguous block, so\n"
      "there is no idle capacity for a second gossip to slot into (only\n"
      "depth-1 trees such as stars leave a sliver).  Repeated gossiping\n"
      "therefore costs n + r per instance, amortizing the O(mn) tree\n"
      "construction exactly as §4 prescribes, and the throughput floor\n"
      "1/(n-1) set by receive capacity is approached within r+1 rounds.\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
