#include "obs/trace_export.h"

#include <ostream>

#include "obs/json.h"

namespace mg::obs {

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanTracer::Span>& spans,
                        bool pretty) {
  JsonWriter w(out, pretty);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const SpanTracer::Span& span : spans) {
    w.begin_object();
    w.field("name", span.name);
    w.field("cat", "mg");
    w.field("ph", "X");  // complete event: ts + dur
    w.field("ts", static_cast<double>(span.start_ns) / 1e3);
    w.field("dur", static_cast<double>(span.end_ns - span.start_ns) / 1e3);
    w.field("pid", 1);
    w.field("tid", static_cast<std::uint64_t>(span.thread));
    w.key("args").begin_object();
    w.field("depth", static_cast<std::uint64_t>(span.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  out << '\n';
}

void write_chrome_trace(std::ostream& out, const SpanTracer& tracer,
                        bool pretty) {
  write_chrome_trace(out, tracer.snapshot(), pretty);
}

}  // namespace mg::obs
