// Engine throughput — the machine-readable serving benchmark
// (BENCH_engine.json).
//
// Drives `mg::engine::Engine` with a zipf-skewed request stream over named
// and seeded random connected graphs (gossip-as-a-service traffic: a few
// hot topologies, a long cold tail) and records requests/sec at 1/2/4/8
// worker threads plus a warm-vs-cold cache comparison.  The process exits
// nonzero when a gate fails, so the bench doubles as a regression gate for
// the engine:
//
//  * correctness — every run must satisfy hits + misses == requests, every
//    result must validate, and ConcurrentUpDown results must take exactly
//    n + r rounds;
//  * warm cache — warm-cache throughput must be >= --min-warm (default 5x)
//    the cold all-miss throughput;
//  * parallel speedup — 4-thread throughput must be >= --min-speedup
//    (default 1.5x) the 1-thread throughput.  Enforced only when the host
//    has >= 4 hardware threads (or --force-speedup-gate): on a 1-core
//    container a CPU-bound speedup is physically impossible, and a gate
//    that can never pass there would only teach people to ignore it.  The
//    measured value is always reported.
//
//   engine_throughput [--out FILE] [--seed N] [--quick]
//                     [--min-warm X] [--min-speedup X] [--force-speedup-gate]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using namespace mg;

struct NamedGraph {
  std::string name;
  graph::Graph graph;
};

/// Named paper/interconnect topologies + seeded random graphs: the
/// distinct universe the zipf stream draws from.
std::vector<NamedGraph> make_universe(bool quick, std::uint64_t seed) {
  std::vector<NamedGraph> universe;
  universe.push_back({"cycle/16", graph::cycle(16)});
  universe.push_back({"petersen", graph::petersen()});
  universe.push_back({"grid/4x5", graph::grid(4, 5)});
  universe.push_back({"hypercube/4", graph::hypercube(4)});
  if (!quick) {
    universe.push_back({"cycle/48", graph::cycle(48)});
    universe.push_back({"grid/8x8", graph::grid(8, 8)});
    universe.push_back({"hypercube/6", graph::hypercube(6)});
    universe.push_back({"torus/6x6", graph::torus(6, 6)});
  }
  Rng rng(seed);
  const std::size_t random_count = quick ? 16 : 56;
  const graph::Vertex base = quick ? 20 : 32;
  const graph::Vertex span = quick ? 3 : 12;
  for (std::size_t i = 0; i < random_count; ++i) {
    const auto n =
        static_cast<graph::Vertex>(base + span * (i % 8) + i / 8);
    if (i % 2 == 0) {
      universe.push_back(
          {"gnp/" + std::to_string(i),
           graph::random_connected_gnp(n, 3.0 / static_cast<double>(n),
                                       rng)});
    } else {
      universe.push_back(
          {"geo/" + std::to_string(i), graph::random_geometric(n, 0.3, rng)});
    }
  }
  return universe;
}

/// Zipf(s) sampler over 0..k-1 via the precomputed CDF; rank is assigned
/// to universe indices through a seeded shuffle so "hot" is arbitrary.
class ZipfStream {
 public:
  ZipfStream(std::size_t k, double exponent, Rng& rng) : order_(k) {
    for (std::size_t i = 0; i < k; ++i) order_[i] = i;
    rng.shuffle(order_);
    cdf_.reserve(k);
    double total = 0.0;
    for (std::size_t rank = 0; rank < k; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t draw(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto rank =
        static_cast<std::size_t>(std::distance(cdf_.begin(), it));
    return order_[std::min(rank, order_.size() - 1)];
  }

 private:
  std::vector<std::size_t> order_;
  std::vector<double> cdf_;
};

gossip::Algorithm pick_algorithm(Rng& rng) {
  if (!rng.chance(0.25)) return gossip::Algorithm::kConcurrentUpDown;
  switch (rng.below(3)) {
    case 0:
      return gossip::Algorithm::kSimple;
    case 1:
      return gossip::Algorithm::kUpDown;
    default:
      return gossip::Algorithm::kTelephone;
  }
}

/// Correctness sweep over a finished run: accounting identity, validation,
/// and the Theorem 1 round count for ConcurrentUpDown results.
bool check_run(const engine::Engine& eng,
               const std::vector<engine::Request>& requests,
               const std::vector<engine::ResultPtr>& results) {
  const engine::EngineStats stats = eng.stats();
  if (stats.hits + stats.misses != stats.requests) {
    std::fprintf(stderr,
                 "engine_throughput: accounting broken (hits %llu + misses "
                 "%llu != requests %llu)\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.requests));
    return false;
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i] == nullptr || !results[i]->report.ok) {
      std::fprintf(stderr, "engine_throughput: request %zu invalid\n", i);
      return false;
    }
    if (requests[i].algorithm == gossip::Algorithm::kConcurrentUpDown &&
        results[i]->schedule.total_time() !=
            results[i]->vertex_count + results[i]->radius) {
      std::fprintf(stderr,
                   "engine_throughput: request %zu broke Theorem 1\n", i);
      return false;
    }
  }
  return true;
}

int run(const std::string& out_path, std::uint64_t seed, bool quick,
        double min_warm, double min_speedup, bool force_speedup_gate) {
  const std::vector<NamedGraph> universe = make_universe(quick, seed);
  const std::size_t k = universe.size();
  const std::size_t stream_length = quick ? 600 : 4000;
  const double zipf_exponent = 1.1;
  const unsigned hardware = std::thread::hardware_concurrency();

  // One shared request stream so every thread count replays identical
  // traffic: zipf-skewed graph choice, mostly-ConcurrentUpDown algorithms.
  Rng rng(seed ^ 0x5f12ea7ULL);
  const ZipfStream zipf(k, zipf_exponent, rng);
  std::vector<engine::Request> stream;
  stream.reserve(stream_length);
  for (std::size_t i = 0; i < stream_length; ++i) {
    stream.push_back(engine::Request{universe[zipf.draw(rng)].graph,
                                     pick_algorithm(rng)});
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "engine_throughput: cannot open %s for writing\n",
                 out_path.c_str());
    return 2;
  }
  obs::Registry::global().set_enabled(true);

  bool all_ok = true;

  // ---- warm vs cold: the cache pays for itself -------------------------
  // Cold: every distinct graph once, all misses.  Warm: the same requests
  // again (repeated for clock resolution), all hits.
  double cold_rps = 0.0;
  double warm_rps = 0.0;
  obs::HistogramSnapshot cold_hist;
  obs::HistogramSnapshot warm_hist;
  {
    engine::Engine eng(engine::EngineOptions{
        .cache_capacity = 4 * k, .shards = 8, .threads = 1});
    std::vector<engine::Request> once;
    once.reserve(k);
    for (const auto& [name, g] : universe) {
      once.push_back(engine::Request{g, gossip::Algorithm::kConcurrentUpDown});
    }
    obs::Registry::global().reset();
    Stopwatch cold_watch;
    const auto cold_results = eng.solve_batch(once);
    cold_rps = static_cast<double>(k) / cold_watch.seconds();
    cold_hist = obs::Registry::global().snapshot().histogram(
        "engine.request_ns");
    all_ok = all_ok && check_run(eng, once, cold_results);

    const std::size_t reps = 100;
    obs::Registry::global().reset();
    Stopwatch warm_watch;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto warm_results = eng.solve_batch(once);
      if (rep == 0) all_ok = all_ok && check_run(eng, once, warm_results);
    }
    warm_rps = static_cast<double>(reps * k) / warm_watch.seconds();
    warm_hist = obs::Registry::global().snapshot().histogram(
        "engine.request_ns");
    const engine::EngineStats stats = eng.stats();
    if (stats.misses != k) {  // every repeat must be a hit
      std::fprintf(stderr, "engine_throughput: warm pass re-solved\n");
      all_ok = false;
    }
  }
  const double warm_over_cold = warm_rps / cold_rps;
  const bool warm_ok = warm_over_cold >= min_warm;
  all_ok = all_ok && warm_ok;
  std::printf("warm vs cold: %.0f rps warm, %.0f rps cold (%.1fx, gate "
              ">= %.1fx) %s\n",
              warm_rps, cold_rps, warm_over_cold, min_warm,
              warm_ok ? "ok" : "VIOLATION");
  std::printf("request latency: cold p50=%llu p99=%llu ns, warm p50=%llu "
              "p99=%llu ns\n",
              static_cast<unsigned long long>(cold_hist.p50),
              static_cast<unsigned long long>(cold_hist.p99),
              static_cast<unsigned long long>(warm_hist.p50),
              static_cast<unsigned long long>(warm_hist.p99));

  // ---- thread scaling over the zipf stream -----------------------------
  struct ScalingRow {
    std::size_t threads = 0;
    double rps = 0.0;
    double wall_seconds = 0.0;
    engine::EngineStats stats;
    obs::HistogramSnapshot request_hist;
  };
  std::vector<ScalingRow> scaling;
  const std::size_t cache_capacity = std::max<std::size_t>(8, k / 2);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    engine::Engine eng(engine::EngineOptions{
        .cache_capacity = cache_capacity, .shards = 8, .threads = threads});
    obs::Registry::global().reset();
    Stopwatch watch;
    const auto results = eng.solve_batch(stream);
    ScalingRow row;
    row.threads = threads;
    row.wall_seconds = watch.seconds();
    row.rps = static_cast<double>(stream.size()) / row.wall_seconds;
    row.stats = eng.stats();
    row.request_hist =
        obs::Registry::global().snapshot().histogram("engine.request_ns");
    all_ok = all_ok && check_run(eng, stream, results);
    scaling.push_back(row);
    std::printf(
        "threads=%zu  %8.0f req/s  hits=%llu misses=%llu coalesced=%llu "
        "evictions=%llu\n",
        threads, row.rps, static_cast<unsigned long long>(row.stats.hits),
        static_cast<unsigned long long>(row.stats.misses),
        static_cast<unsigned long long>(row.stats.inflight_coalesced),
        static_cast<unsigned long long>(row.stats.evictions));
  }
  const double speedup_4t = scaling[2].rps / scaling[0].rps;
  const bool speedup_gate_enforced = force_speedup_gate || hardware >= 4;
  const bool speedup_ok = !speedup_gate_enforced || speedup_4t >= min_speedup;
  all_ok = all_ok && speedup_ok;
  std::printf("4-thread speedup over serial: %.2fx (gate >= %.2fx, %s) %s\n",
              speedup_4t, min_speedup,
              speedup_gate_enforced
                  ? "enforced"
                  : "reported only: < 4 hardware threads",
              speedup_ok ? "ok" : "VIOLATION");

  // ---- BENCH_engine.json ----------------------------------------------
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("suite", "engine");
  w.field("seed", seed);
  w.field("quick", quick);
  w.field("hardware_concurrency", static_cast<std::uint64_t>(hardware));
  w.key("workload").begin_object();
  w.field("distinct_graphs", static_cast<std::uint64_t>(k));
  w.field("stream_length", static_cast<std::uint64_t>(stream_length));
  w.field("zipf_exponent", zipf_exponent);
  w.field("cache_capacity", static_cast<std::uint64_t>(cache_capacity));
  w.field("shards", static_cast<std::uint64_t>(8));
  w.end_object();
  w.key("warm_vs_cold").begin_object();
  w.field("cold_rps", cold_rps);
  w.field("warm_rps", warm_rps);
  w.field("cold_ns_p50", cold_hist.p50);
  w.field("cold_ns_p99", cold_hist.p99);
  w.field("warm_ns_p50", warm_hist.p50);
  w.field("warm_ns_p99", warm_hist.p99);
  w.field("warm_over_cold", warm_over_cold);
  w.field("min_factor", min_warm);
  w.field("pass", warm_ok);
  w.end_object();
  w.key("scaling").begin_array();
  for (const ScalingRow& row : scaling) {
    w.begin_object();
    w.field("threads", static_cast<std::uint64_t>(row.threads));
    w.field("requests_per_second", row.rps);
    w.field("wall_seconds", row.wall_seconds);
    w.field("requests", row.stats.requests);
    w.field("hits", row.stats.hits);
    w.field("misses", row.stats.misses);
    w.field("inflight_coalesced", row.stats.inflight_coalesced);
    w.field("evictions", row.stats.evictions);
    w.field("request_ns_p50", row.request_hist.p50);
    w.field("request_ns_p99", row.request_hist.p99);
    w.end_object();
  }
  w.end_array();
  w.key("speedup").begin_object();
  w.field("speedup_4t", speedup_4t);
  w.field("min_speedup", min_speedup);
  w.field("gate_enforced", speedup_gate_enforced);
  w.field("pass", speedup_ok);
  w.end_object();
  w.field("pass", all_ok);
  w.end_object();
  out << '\n';

  std::printf("wrote %s (%zu distinct graphs, stream of %zu)\n",
              out_path.c_str(), k, stream_length);
  if (!all_ok) {
    std::fprintf(stderr, "engine_throughput: gate failed\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::uint64_t seed = 42;
  bool quick = false;
  double min_warm = 5.0;
  double min_speedup = 1.5;
  bool force_speedup_gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-warm") == 0 && i + 1 < argc) {
      min_warm = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--force-speedup-gate") == 0) {
      force_speedup_gate = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: engine_throughput [--out FILE] [--seed N] "
                   "[--quick] [--min-warm X] [--min-speedup X] "
                   "[--force-speedup-gate]\n");
      return 2;
    }
  }
  return run(out_path, seed, quick, min_warm, min_speedup,
             force_speedup_gate);
}
