// Fuzz-style schedule shrinker for communication-model failures: when a
// scheduler × model × seed combination produces a schedule the model
// validator rejects (or any other deterministic predicate flags), reduce it
// to a minimal reproducing schedule before anyone has to read it.  Same
// two-phase recipe as churn_shrinker.h:
//
//   1. *round-prefix bisection* — every round prefix of a schedule is
//      itself a schedule, and validator failures are prefix-monotone (the
//      validator rejects at the first offending transmission), so
//      binary-search the shortest failing prefix;
//   2. *transmission elision* — walk the surviving prefix's transmissions
//      backwards and drop every transmission whose removal keeps the
//      schedule failing (unlike a churn stream, the trigger need not be the
//      last transmission — the validator stops at the first offender, which
//      can sit mid-round — so every position is tried and the predicate
//      alone decides; a sub-multiset of a schedule is always structurally
//      legal, so there is no legality re-check either).
//
// `regression_snippet` renders the survivor as a paste-able C++ builder;
// shrunk cases get pinned in model_shrinker_test.cpp.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"

namespace mg::test {

/// True when `schedule` on `g` reproduces the failure under investigation.
/// Must be deterministic.
using ScheduleFailurePredicate = std::function<bool(
    const graph::Graph& g, const model::Schedule& schedule)>;

struct ScheduleShrinkResult {
  model::Schedule schedule;  ///< minimal reproducing schedule
  std::size_t original_rounds = 0;
  std::size_t original_transmissions = 0;
  bool reproduced = false;  ///< false: the full schedule never failed
};

/// The first `rounds` rounds of `schedule`.
inline model::Schedule schedule_prefix(const model::Schedule& schedule,
                                       std::size_t rounds) {
  model::Schedule out;
  for (std::size_t t = 0; t < rounds && t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) out.add(t, tx);
  }
  return out;
}

/// `schedule` with the transmission at flat position `skip` removed (flat
/// order: rounds ascending, transmissions in round order).
inline model::Schedule elide_transmission(const model::Schedule& schedule,
                                          std::size_t skip) {
  model::Schedule out;
  std::size_t flat = 0;
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      if (flat++ != skip) out.add(t, tx);
    }
  }
  out.trim();
  return out;
}

inline ScheduleShrinkResult shrink_schedule(
    const graph::Graph& g, model::Schedule schedule,
    const ScheduleFailurePredicate& fails) {
  ScheduleShrinkResult result;
  result.original_rounds = schedule.round_count();
  result.original_transmissions = schedule.transmission_count();
  if (!fails(g, schedule)) return result;  // reproduced stays false
  result.reproduced = true;

  // Phase 1: shortest failing round prefix, by bisection.
  std::size_t lo = 1;
  std::size_t hi = schedule.round_count();  // known to fail
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails(g, schedule_prefix(schedule, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  schedule = schedule_prefix(schedule, hi);

  // Phase 2: elide transmissions, backwards so earlier removals never
  // shift a position still to be tried.
  for (std::size_t i = schedule.transmission_count(); i-- > 0;) {
    if (schedule.transmission_count() <= 1) break;
    model::Schedule shorter = elide_transmission(schedule, i);
    if (fails(g, shorter)) schedule = std::move(shorter);
  }

  result.schedule = std::move(schedule);
  return result;
}

/// Renders a shrunk schedule as a paste-able C++ regression case.
inline std::string regression_snippet(const ScheduleShrinkResult& shrunk,
                                      const std::string& graph_expr) {
  std::ostringstream out;
  out << "// shrunk model regression: "
      << shrunk.schedule.transmission_count() << " of "
      << shrunk.original_transmissions << " transmissions, "
      << shrunk.schedule.round_count() << " of " << shrunk.original_rounds
      << " rounds\n";
  out << "const graph::Graph g = " << graph_expr << ";\n";
  out << "model::Schedule schedule;\n";
  for (std::size_t t = 0; t < shrunk.schedule.round_count(); ++t) {
    for (const auto& tx : shrunk.schedule.round(t)) {
      out << "schedule.add(" << t << ", {" << tx.message << ", " << tx.sender
          << ", {";
      for (std::size_t i = 0; i < tx.receivers.size(); ++i) {
        if (i > 0) out << ", ";
        out << tx.receivers[i];
      }
      out << "}});\n";
    }
  }
  return out.str();
}

}  // namespace mg::test
