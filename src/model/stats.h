// Schedule anatomy: per-round activity, utilization against the model's
// capacity (each processor may send one and receive one message per round),
// and fan-out distribution.  Used by the schedule_anatomy bench to show the
// up/down pipeline structure of the §3.2 algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"

namespace mg::model {

struct RoundActivity {
  std::size_t senders = 0;     ///< processors transmitting this round
  std::size_t receivers = 0;   ///< processors receiving this round
  std::size_t deliveries = 0;  ///< point-to-point deliveries (sum |D|)
};

struct ScheduleStats {
  std::size_t rounds = 0;          ///< schedule total time
  std::size_t transmissions = 0;   ///< (m, l, D) tuples
  std::size_t deliveries = 0;      ///< sum of |D|
  std::size_t max_fanout = 0;
  double mean_fanout = 0.0;
  /// Fraction of the (n processors x rounds) receive capacity used.
  double receive_utilization = 0.0;
  /// Fraction of the send capacity used.
  double send_utilization = 0.0;
  /// Busy-round counts per processor.
  std::vector<std::size_t> sends_per_processor;
  std::vector<std::size_t> receives_per_processor;
  /// Round-by-round activity (index = send time).
  std::vector<RoundActivity> per_round;
  /// fanout_histogram[f] = number of transmissions with |D| == f.
  std::vector<std::size_t> fanout_histogram;
};

/// Computes anatomy statistics for a schedule over an n-processor network.
[[nodiscard]] ScheduleStats compute_stats(graph::Vertex n,
                                          const Schedule& schedule);

}  // namespace mg::model
