#include "graph/center.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/properties.h"
#include "support/contracts.h"
#include "support/thread_pool.h"

namespace mg::graph {

namespace {

/// Reusable level-synchronous BFS state: one allocation per slot for the
/// whole scan instead of three per source.
struct BfsScratch {
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> frontier;
  std::vector<Vertex> next;
};

struct BfsOutcome {
  std::uint32_t ecc = 0;
  Vertex reached = 0;
};

BfsOutcome run_bfs(const Graph& g, Vertex source, BfsScratch& s) {
  const Vertex n = g.vertex_count();
  s.dist.assign(n, kUnreachable);
  s.frontier.clear();
  s.frontier.push_back(source);
  s.dist[source] = 0;
  BfsOutcome out;
  out.reached = 1;
  std::uint32_t level = 0;
  while (!s.frontier.empty()) {
    ++level;
    s.next.clear();
    for (Vertex u : s.frontier) {
      for (Vertex v : g.neighbors(u)) {
        if (s.dist[v] == kUnreachable) {
          s.dist[v] = level;
          s.next.push_back(v);
          ++out.reached;
        }
      }
    }
    if (!s.next.empty()) out.ecc = level;
    s.frontier.swap(s.next);
  }
  return out;
}

std::size_t slot_count(const Graph& g, ThreadPool* pool) {
  if (pool == nullptr || pool->thread_count() <= 1) return 1;
  // No point spinning up more slots than sources.
  return std::min<std::size_t>(pool->thread_count(), g.vertex_count());
}

CenterResult exhaustive_center(const Graph& g, ThreadPool* pool) {
  const Vertex n = g.vertex_count();
  const std::size_t slots = slot_count(g, pool);
  std::vector<std::uint32_t> ecc(n, 0);
  std::vector<BfsScratch> scratch(slots);
  auto sweep_slot = [&](std::size_t slot) {
    BfsScratch& s = scratch[slot];
    for (Vertex v = static_cast<Vertex>(slot); v < n;
         v += static_cast<Vertex>(slots)) {
      const BfsOutcome out = run_bfs(g, v, s);
      MG_EXPECTS_MSG(out.reached == n, "find_center requires connectivity");
      ecc[v] = out.ecc;
    }
  };
  if (slots > 1) {
    pool->parallel_for(slots, sweep_slot);
  } else {
    sweep_slot(0);
  }

  CenterResult result;
  result.bfs_runs = n;
  result.radius = kUnreachable;
  for (Vertex v = 0; v < n; ++v) {
    if (ecc[v] < result.radius) {
      result.radius = ecc[v];
      result.center = v;
    }
    result.diameter_lb = std::max(result.diameter_lb, ecc[v]);
  }
  return result;
}

CenterResult hybrid_center(const Graph& g, ThreadPool* pool,
                           const CenterOptions& options) {
  const Vertex n = g.vertex_count();
  const std::size_t slots = slot_count(g, pool);
  std::vector<BfsScratch> scratch(slots);

  CenterResult result;
  result.used_hybrid = true;
  result.radius = kUnreachable;

  std::vector<std::uint32_t> lower(n, 0);
  std::vector<std::uint32_t> upper(n, kUnreachable);
  std::vector<char> evaluated(n, 0);

  // Bound refresh from one evaluated source (BFS triangle inequality).
  auto absorb = [&](std::uint32_t ecc, const std::vector<std::uint32_t>& d) {
    for (Vertex v = 0; v < n; ++v) {
      const std::uint32_t lo = std::max(d[v], ecc - d[v]);
      if (lo > lower[v]) lower[v] = lo;
      const std::uint32_t up = d[v] + ecc;
      if (up < upper[v]) upper[v] = up;
    }
  };
  auto improve = [&](Vertex v, std::uint32_t ecc) {
    result.diameter_lb = std::max(result.diameter_lb, ecc);
    if (ecc < result.radius) {  // strict: ties never move the center
      result.radius = ecc;
      result.center = v;
    }
  };
  // Evaluates a reference vertex serially; returns its distance vector.
  auto evaluate_ref = [&](Vertex v) {
    const BfsOutcome out = run_bfs(g, v, scratch[0]);
    MG_EXPECTS_MSG(out.reached == n, "find_center requires connectivity");
    ++result.bfs_runs;
    evaluated[v] = 1;
    improve(v, out.ecc);
    absorb(out.ecc, scratch[0].dist);
    return std::pair<std::uint32_t, std::vector<std::uint32_t>>(
        out.ecc, scratch[0].dist);
  };
  auto farthest = [&](const std::vector<std::uint32_t>& d) {
    Vertex arg = 0;
    for (Vertex v = 1; v < n; ++v) {
      if (d[v] > d[arg]) arg = v;  // smallest id on ties
    }
    return arg;
  };

  // Reference sweeps: 0 -> a (farthest) -> b (double sweep), a-b geodesic
  // midpoint m, then the vertex farthest from m.  Repeats are skipped.
  const auto [ecc0, dist0] = evaluate_ref(0);
  const Vertex a = farthest(dist0);
  std::vector<std::uint32_t> dist_a = dist0;
  std::uint32_t ecc_a = ecc0;
  if (evaluated[a] == 0) std::tie(ecc_a, dist_a) = evaluate_ref(a);
  const Vertex b = farthest(dist_a);
  std::vector<std::uint32_t> dist_b = dist_a;
  if (evaluated[b] == 0) dist_b = evaluate_ref(b).second;

  // Midpoint: among vertices on an a-b geodesic (d(a,v) + d(v,b) equals the
  // double-sweep bound), the one most balanced between the endpoints;
  // smallest id on ties.  On grids this lands near the true center and the
  // resulting L bounds prune nearly everything.
  Vertex mid = a;
  std::uint32_t mid_key = kUnreachable;
  for (Vertex v = 0; v < n; ++v) {
    if (dist_a[v] + dist_b[v] != ecc_a) continue;
    const std::uint32_t key = std::max(dist_a[v], dist_b[v]);
    if (key < mid_key) {
      mid_key = key;
      mid = v;
    }
  }
  std::vector<std::uint32_t> dist_m = dist_a;
  if (evaluated[mid] == 0) {
    dist_m = evaluate_ref(mid).second;
  }
  const Vertex far_m = farthest(dist_m);
  if (evaluated[far_m] == 0) evaluate_ref(far_m);

  // Candidate scan: unevaluated vertices ordered by the frozen (L, U, id).
  std::vector<Vertex> order;
  order.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    if (evaluated[v] == 0) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](Vertex x, Vertex y) {
    if (lower[x] != lower[y]) return lower[x] < lower[y];
    if (upper[x] != upper[y]) return upper[x] < upper[y];
    return x < y;
  });
  std::vector<std::uint32_t> frozen(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) frozen[i] = lower[order[i]];

  const std::size_t block_cap = std::max<std::uint32_t>(1, options.block_size);
  std::vector<Vertex> block;
  block.reserve(block_cap);
  std::vector<std::uint32_t> block_ecc;
  std::vector<std::vector<std::uint32_t>> block_dist;
  std::uint64_t bound_updates = 0;

  std::size_t i = 0;
  while (i < order.size()) {
    // The order is sorted by frozen L and L only grows, so once the frozen
    // bound reaches the running best the whole tail is certified away.
    if (frozen[i] >= result.radius) {
      result.pruned += order.size() - i;
      break;
    }
    block.clear();
    while (i < order.size() && block.size() < block_cap &&
           frozen[i] < result.radius) {
      const Vertex v = order[i];
      ++i;
      if (lower[v] >= result.radius) {
        ++result.pruned;
        continue;
      }
      block.push_back(v);
    }
    if (block.empty()) continue;

    const std::size_t batch = block.size();
    block_ecc.assign(batch, 0);
    block_dist.assign(batch, {});
    // Which evaluations also refresh bounds (first `budget` overall); fixed
    // before the parallel section so the decision is thread-independent.
    auto keeps_dist = [&](std::size_t j) {
      return bound_updates + j < options.bound_update_budget;
    };
    auto eval_slot = [&](std::size_t slot) {
      BfsScratch& s = scratch[slot];
      for (std::size_t j = slot; j < batch; j += slots) {
        const BfsOutcome out = run_bfs(g, block[j], s);
        block_ecc[j] = out.ecc;
        if (keeps_dist(j)) block_dist[j] = s.dist;
      }
    };
    if (slots > 1 && batch > 1) {
      pool->parallel_for(slots, eval_slot);
    } else {
      eval_slot(0);
    }
    result.bfs_runs += batch;

    // Serial application in candidate order: thread-count invariant.
    for (std::size_t j = 0; j < batch; ++j) {
      evaluated[block[j]] = 1;
      improve(block[j], block_ecc[j]);
      if (keeps_dist(j)) absorb(block_ecc[j], block_dist[j]);
    }
    bound_updates += std::min<std::uint64_t>(
        batch, options.bound_update_budget > bound_updates
                   ? options.bound_update_budget - bound_updates
                   : 0);
  }

  MG_ENSURES(result.center != kNoVertex);
  return result;
}

}  // namespace

CenterResult find_center(const Graph& g, ThreadPool* pool,
                         const CenterOptions& options) {
  const Vertex n = g.vertex_count();
  MG_EXPECTS(n >= 1);
  const bool hybrid =
      options.mode == CenterMode::kHybrid ||
      (options.mode == CenterMode::kAuto && n > options.exhaustive_threshold);
  return hybrid ? hybrid_center(g, pool, options)
                : exhaustive_center(g, pool);
}

}  // namespace mg::graph
