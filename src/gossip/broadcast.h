// §2: broadcasting under the multicast model is trivially optimal — at
// time 0 the source multicasts to all its neighbors; afterwards every
// processor that just received the message multicasts it to the neighbors
// that still lack it, with ties (two candidate senders for one receiver)
// broken offline.  Processor v receives the message exactly at time
// dist(source, v), so the total communication time equals the source's
// eccentricity.
#pragma once

#include "graph/graph.h"
#include "model/schedule.h"

namespace mg::gossip {

/// Optimal multicast broadcast schedule from `source` on a connected graph.
/// The schedule carries only message id `source`.
[[nodiscard]] model::Schedule multicast_broadcast(const graph::Graph& g,
                                                  graph::Vertex source);

}  // namespace mg::gossip
