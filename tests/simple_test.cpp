// Tests for procedure Simple (Lemma 1): feasibility, completion and the
// exact 2n + r - 3 total communication time.
#include <gtest/gtest.h>

#include "gossip/simple.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/bitset.h"
#include "support/rng.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

TEST(Simple, Fig4ExactTime) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = simple_gossip(instance);
  test::expect_valid_gossip(instance, schedule);
  EXPECT_EQ(schedule.total_time(), 2u * 16 + 3 - 3);
}

TEST(Simple, RootReceivesMessageMAtTimeM) {
  // "message i >= 1 is received by the root at time i."
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = simple_gossip(instance);
  const auto root = instance.tree().root();
  std::vector<std::size_t> arrival(16, 0);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      for (graph::Vertex r : tx.receivers) {
        if (r == root && arrival[tx.message] == 0) {
          arrival[tx.message] = t + 1;
        }
      }
    }
  }
  for (model::Message m = 1; m < 16; ++m) EXPECT_EQ(arrival[m], m) << m;
}

TEST(Simple, DownPhaseStartsAtNMinusTwo) {
  // "At time n-2, message 0 is sent from the root to all its children."
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = simple_gossip(instance);
  const auto root = instance.tree().root();
  bool found = false;
  for (const auto& tx : schedule.round(14)) {  // n - 2 == 14
    if (tx.sender == root && tx.message == 0) {
      found = true;
      EXPECT_EQ(tx.receivers.size(), instance.tree().children(root).size());
    }
  }
  EXPECT_TRUE(found);
}

TEST(Simple, LemmaOneTimeAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 5u, 9u}) {
      const auto g = family.make(knob);
      const auto instance = Instance::from_network(g);
      const auto schedule = simple_gossip(instance);
      const auto report = test::expect_valid_gossip(instance, schedule);
      ASSERT_TRUE(report.ok) << family.name;
      EXPECT_EQ(schedule.total_time(),
                simple_total_time(g.vertex_count(), instance.radius()))
          << family.name << " knob=" << knob;
    }
  }
}

TEST(Simple, TrivialSizes) {
  EXPECT_EQ(simple_gossip(Instance(tree::RootedTree::from_parents(
                              0, {graph::kNoVertex})))
                .total_time(),
            0u);
  const auto two = Instance(
      tree::RootedTree::from_parents(0, {graph::kNoVertex, 0}));
  const auto schedule = simple_gossip(two);
  EXPECT_EQ(schedule.total_time(), 2u);  // 2n + r - 3 = 2
  test::expect_valid_gossip(two, schedule);
}

TEST(Simple, ClosedFormHelper) {
  EXPECT_EQ(simple_total_time(1, 0), 0u);
  EXPECT_EQ(simple_total_time(16, 3), 32u);
  EXPECT_EQ(simple_total_time(7, 3), 14u);
}

TEST(Simple, WorksOnDeepChain) {
  const auto instance =
      Instance(tree::root_tree_graph(graph::path(31), 0));  // height 30
  const auto schedule = simple_gossip(instance);
  test::expect_valid_gossip(instance, schedule);
  EXPECT_EQ(schedule.total_time(), 2u * 31 + 30 - 3);
}

TEST(Simple, RedundantFinalSlotTrimsAway) {
  // Regression pin for the PR 1 differential-test finding: Simple's down
  // phase runs on fixed slots through 2n + r - 3 by definition, so when
  // the unique deepest leaf carries the last DFS label the final slot
  // re-delivers a message its receiver already holds.  On this seeded
  // tree the redundancy is real: every final-round transmission is
  // removable, Schedule::trim() then drops the emptied round, and the
  // shorter schedule still completes — strictly under the Lemma 1 time.
  Rng rng(0xd1ffULL * 45);
  const auto g = graph::random_tree(5, rng);
  const auto instance = Instance::from_network(g);
  const auto schedule = simple_gossip(instance);
  const std::size_t makespan = schedule.total_time();
  const std::size_t n = instance.vertex_count();
  ASSERT_EQ(makespan, simple_total_time(n, instance.radius()));
  ASSERT_GE(makespan, 1u);

  // Replay knowledge through the next-to-last round.
  const auto initial = instance.initial();
  std::vector<DynamicBitset> holds(n, DynamicBitset(n));
  for (graph::Vertex v = 0; v < n; ++v) holds[v].set(initial[v]);
  for (std::size_t t = 0; t + 1 < makespan; ++t) {
    for (const auto& tx : schedule.round(t)) {
      for (const graph::Vertex r : tx.receivers) holds[r].set(tx.message);
    }
  }

  // The pinned finding: the whole final round is redundant.
  for (const auto& tx : schedule.round(makespan - 1)) {
    for (const graph::Vertex r : tx.receivers) {
      EXPECT_TRUE(holds[r].test(tx.message))
          << "final slot delivers something new; pin is stale";
    }
  }

  // Rebuild without it; trim() must remove the emptied trailing round.
  model::Schedule trimmed(makespan);
  for (std::size_t t = 0; t + 1 < makespan; ++t) {
    for (const auto& tx : schedule.round(t)) trimmed.add(t, tx);
  }
  EXPECT_EQ(trimmed.round_count(), makespan);
  trimmed.trim();
  EXPECT_EQ(trimmed.round_count(), makespan - 1);
  EXPECT_LT(trimmed.total_time(), makespan);
  EXPECT_LE(trimmed.total_time(), simple_total_time(n, instance.radius()));
  test::expect_valid_gossip(instance, trimmed);
}

TEST(Simple, UnicastUpMulticastDown) {
  const auto instance = Instance::from_network(graph::star(8));
  const auto schedule = simple_gossip(instance);
  EXPECT_EQ(schedule.max_fanout(), 7u);  // root multicasts to all children
}

}  // namespace
}  // namespace mg::gossip
