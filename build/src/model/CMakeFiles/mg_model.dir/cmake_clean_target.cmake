file(REMOVE_RECURSE
  "libmg_model.a"
)
