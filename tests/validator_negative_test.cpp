// Negative-path validator tests: each test takes a *valid*
// ConcurrentUpDown schedule, applies one targeted corruption, and asserts
// that the validator rejects it with the distinct reason for that rule —
// so a validator regression that starts accepting bad schedules (or
// misattributing errors) is caught, not just the happy path.
#include <gtest/gtest.h>

#include <string>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/schedule.h"
#include "model/validator.h"

namespace mg {
namespace {

using gossip::Algorithm;
using model::Schedule;
using model::Transmission;

struct Fixture {
  gossip::Solution sol;
  graph::Graph tree;
  std::vector<model::Message> initial;

  explicit Fixture(const graph::Graph& g)
      : sol(gossip::solve_gossip(g, Algorithm::kConcurrentUpDown)),
        tree(sol.instance.tree().as_graph()),
        initial(sol.instance.initial()) {
    EXPECT_TRUE(sol.report.ok) << sol.report.error;
  }

  [[nodiscard]] model::ValidationReport validate(
      const Schedule& schedule,
      model::ModelVariant variant = model::ModelVariant::kMulticast) const {
    model::ValidatorOptions options;
    options.variant = variant;
    return model::validate_schedule(tree, schedule, initial, options);
  }
};

/// Copies `s` with `edit(t, tx)` applied to every transmission.
template <typename Edit>
Schedule rewrite(const Schedule& s, Edit&& edit) {
  Schedule out;
  for (std::size_t t = 0; t < s.round_count(); ++t) {
    for (const Transmission& tx : s.round(t)) {
      Transmission copy = tx;
      edit(t, copy);
      out.add(t, std::move(copy));
    }
  }
  return out;
}

/// True when `v` sends some message in round `t` of `s`.
bool sends_in_round(const Schedule& s, std::size_t t, graph::Vertex v) {
  for (const Transmission& tx : s.round(t)) {
    if (tx.sender == v) return true;
  }
  return false;
}

TEST(ValidatorNegative, DuplicateReceiverInOneRound) {
  const Fixture f(graph::star(8));

  // Find a round where some receiver x has a neighbor w that is idle as a
  // sender; w additionally sending its own message to x makes x receive
  // twice that round.  w always holds its origin message, and stays
  // adjacent, so no earlier rule can fire instead.
  bool corrupted = false;
  for (std::size_t t = 0; t < f.sol.schedule.round_count() && !corrupted;
       ++t) {
    for (const Transmission& tx : f.sol.schedule.round(t)) {
      for (const graph::Vertex x : tx.receivers) {
        for (const graph::Vertex w : f.tree.neighbors(x)) {
          if (w == tx.sender || sends_in_round(f.sol.schedule, t, w)) {
            continue;
          }
          Schedule bad = f.sol.schedule;
          bad.add(t, Transmission{f.initial[w], w, {x}});
          const auto report = f.validate(bad);
          EXPECT_FALSE(report.ok);
          EXPECT_NE(report.error.find("receives two messages in one round"),
                    std::string::npos)
              << report.error;
          corrupted = true;
          break;
        }
        if (corrupted) break;
      }
      if (corrupted) break;
    }
  }
  ASSERT_TRUE(corrupted) << "no corruptible (round, receiver) pair found";
}

TEST(ValidatorNegative, NonAdjacentSend) {
  const Fixture f(graph::star(8));

  // Retarget the first transmission at a non-neighbor of its sender.
  bool corrupted = false;
  const Schedule bad = rewrite(f.sol.schedule, [&](std::size_t, auto& tx) {
    if (corrupted) return;
    for (graph::Vertex y = 0; y < f.tree.vertex_count(); ++y) {
      if (y != tx.sender && !f.tree.has_edge(tx.sender, y)) {
        tx.receivers = {y};
        corrupted = true;
        return;
      }
    }
  });
  ASSERT_TRUE(corrupted) << "no non-adjacent retarget found";
  const auto report = f.validate(bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("not adjacent to sender"), std::string::npos)
      << report.error;
}

TEST(ValidatorNegative, SendBeforeHold) {
  const Fixture f(graph::fig4_network());

  // In round 0 every processor holds exactly its own message; an idle
  // processor w sending some *other* message is a hold violation (checked
  // before any receiver rule, so the reason is unambiguous).
  graph::Vertex w = graph::kNoVertex;
  for (graph::Vertex v = 0; v < f.tree.vertex_count(); ++v) {
    if (!sends_in_round(f.sol.schedule, 0, v)) {
      w = v;
      break;
    }
  }
  ASSERT_NE(w, graph::kNoVertex) << "every processor sends in round 0";
  const model::Message foreign =
      f.initial[w == 0 ? 1 : 0];  // a message w does not hold at time 0
  ASSERT_NE(foreign, f.initial[w]);
  Schedule bad = f.sol.schedule;
  bad.add(0, Transmission{foreign, w, {f.tree.neighbors(w).front()}});
  const auto report = f.validate(bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("sender does not hold the message"),
            std::string::npos)
      << report.error;
}

TEST(ValidatorNegative, MulticastRejectedUnderTelephoneModel) {
  const Fixture f(graph::star(8));

  // On a star the down phase must multicast (fan-out > 1), so the very
  // same schedule that passes the multicast model violates |D| = 1.
  ASSERT_GE(f.sol.schedule.max_fanout(), 2u);
  const auto report =
      f.validate(f.sol.schedule, model::ModelVariant::kTelephone);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("multicast under telephone model"),
            std::string::npos)
      << report.error;
}

TEST(ValidatorNegative, ErrorReasonsAreDistinct) {
  // The four corruption modes above must be distinguishable by substring;
  // guard the message wording the other tests rely on.
  const std::vector<std::string> reasons = {
      "receives two messages in one round",
      "not adjacent to sender",
      "sender does not hold the message",
      "multicast under telephone model",
  };
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    for (std::size_t j = i + 1; j < reasons.size(); ++j) {
      EXPECT_EQ(reasons[i].find(reasons[j]), std::string::npos);
      EXPECT_EQ(reasons[j].find(reasons[i]), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace mg
