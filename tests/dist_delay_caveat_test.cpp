// Pins the known modeling gap documented in docs/DISTRIBUTED.md: per-edge
// *delay* faults break the synchronous unit-delay model the strict §4
// online rule is defined for.  A delayed o-stream arrival makes an
// OnlineProcessor's relay plan locally inconsistent — two messages landing
// on one send slot — which the runtime surfaces as skipped sends, a
// permanently stalled main phase, and an emergent schedule that diverges
// from the central one.  These tests pin that failure shape (so a future
// "fix" must consciously revisit the model, not drift into it) and pin the
// approved mitigations: the decentralized recovery protocol completes the
// gossip after the horizon, and the test batteries' delay × timetable
// pairing behaves the same way.
#include <gtest/gtest.h>

#include <cstddef>

#include "dist/runtime.h"
#include "fault/fault.h"
#include "gossip/solve.h"
#include "graph/generators.h"

namespace mg {
namespace {

/// The delay plan the probes below share: two delayed edges, enough to
/// displace the o-stream on any spanning tree of these small graphs.
fault::FaultPlan delay_plan(const graph::Graph& g) {
  fault::FaultPlan plan;
  const auto edges = g.edges();
  plan.delay(edges[1].first, edges[1].second, 2);
  plan.delay(edges[3].first, edges[3].second, 1);
  return plan;
}

// Baseline sanity: with no faults the online rule completes inside the
// central horizon with no recovery needed — it is the *delays* that break
// it, not the decentralized execution.
TEST(DistDelayCaveat, OnlineRuleCompletesWithoutDelays) {
  const graph::Graph g = graph::cycle(10);
  const gossip::Solution central =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(central.report.ok) << central.report.error;

  dist::RuntimeOptions options;
  options.recover = false;
  dist::ActorRuntime runtime(central.instance, g, options);
  runtime.use_online_rule();
  const dist::RunReport report = runtime.run(central.schedule.total_time());
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.skipped_sends, 0u);
}

// The caveat itself: under per-edge delays the strict online rule stalls.
// The stall is permanent — granting extra main rounds does not raise
// coverage, because the relay plan is inconsistent, not merely late — and
// manifests as skipped sends plus an emergent schedule that diverges from
// the central ConcurrentUpDown schedule.
TEST(DistDelayCaveat, DelaysStallStrictOnlineRulePermanently) {
  const graph::Graph g = graph::cycle(10);
  const gossip::Solution central =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(central.report.ok) << central.report.error;
  const fault::FaultPlan plan = delay_plan(g);
  const std::size_t horizon = central.schedule.total_time();

  double stalled_coverage = -1.0;
  for (std::size_t extra = 0; extra <= 6; extra += 3) {
    SCOPED_TRACE("extra rounds: " + std::to_string(extra));
    dist::RuntimeOptions options;
    options.faults = &plan;
    options.recover = false;
    dist::ActorRuntime runtime(central.instance, g, options);
    runtime.use_online_rule();
    const dist::RunReport report = runtime.run(horizon + extra);

    EXPECT_FALSE(report.complete);
    EXPECT_LT(report.coverage, 1.0);
    EXPECT_GT(report.skipped_sends, 0u);  // the inconsistent relay plan

    const dist::VerifyReport verify = dist::verify_against_schedule(
        central.schedule, report.emergent, g.vertex_count(),
        central.instance.radius());
    EXPECT_FALSE(verify.match);

    // Coverage plateaus: a short grace window lets already-in-flight
    // (delayed) arrivals land, but beyond it extra horizon cannot repair
    // an inconsistent plan.
    if (extra > 3) {
      EXPECT_EQ(report.coverage, stalled_coverage);
    }
    stalled_coverage = report.coverage;
  }
}

// The supported mitigation inside the runtime: the decentralized recovery
// protocol runs after the horizon and completes the gossip that the
// delayed main phase could not.
TEST(DistDelayCaveat, RecoveryRescuesOnlineRuleUnderDelays) {
  for (const bool grid : {false, true}) {
    const graph::Graph g = grid ? graph::grid(3, 4) : graph::cycle(10);
    SCOPED_TRACE(grid ? "grid(3,4)" : "cycle(10)");
    const gossip::Solution central =
        gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
    ASSERT_TRUE(central.report.ok) << central.report.error;
    const fault::FaultPlan plan = delay_plan(g);

    dist::RuntimeOptions options;
    options.faults = &plan;
    dist::ActorRuntime runtime(central.instance, g, options);
    runtime.use_online_rule();
    const dist::RunReport report = runtime.run(central.schedule.total_time());

    EXPECT_TRUE(report.complete);
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(report.coverage, 1.0);
    // Recovery did real work — the main phase alone was not enough.
    EXPECT_GT(report.recovery_rounds, 0u);
  }
}

// The test batteries' approved pairing — delay plans with timetable rules —
// has the same shape: the timetable main phase also cannot absorb delays
// (arrivals displace past planned send slots), and recovery completes it.
// Pinning both rules keeps the docs' guidance honest: the pairing is about
// recovery semantics staying well-defined, not about timetables dodging
// the delay problem.
TEST(DistDelayCaveat, TimetableUnderDelaysAlsoLeansOnRecovery) {
  const graph::Graph g = graph::cycle(10);
  const gossip::Solution central =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(central.report.ok) << central.report.error;
  const fault::FaultPlan plan = delay_plan(g);
  const std::size_t horizon = central.schedule.total_time();

  {
    dist::RuntimeOptions options;
    options.faults = &plan;
    options.recover = false;
    dist::ActorRuntime runtime(central.instance, g, options);
    runtime.use_timetable(central.schedule);
    const dist::RunReport report = runtime.run(horizon);
    EXPECT_FALSE(report.complete);
    EXPECT_GT(report.skipped_sends, 0u);
  }
  {
    dist::RuntimeOptions options;
    options.faults = &plan;
    dist::ActorRuntime runtime(central.instance, g, options);
    runtime.use_timetable(central.schedule);
    const dist::RunReport report = runtime.run(horizon);
    EXPECT_TRUE(report.complete);
    EXPECT_GT(report.recovery_rounds, 0u);
  }
}

}  // namespace
}  // namespace mg
