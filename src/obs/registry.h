// Process-wide metric registry.
//
// Instrumented code asks the registry for a named Counter or Timer;
// references stay valid for the registry's lifetime, so hot paths may cache
// them.  Two independent off switches keep the cost bounded:
//
//  * compile time — building with MG_OBS_ENABLED=0 (CMake option -DMG_OBS=OFF)
//    turns every MG_OBS_* macro below into nothing;
//  * run time — Registry::set_enabled(false) makes counter()/timer() hand
//    back shared scratch cells without touching the name maps or the mutex,
//    so an instrumented binary can null out its observability per process
//    (the "null registry").  `bench_main --sanity` measures both paths.
//
// snapshot() / write_json() export every named metric for the bench runner
// and the perf-trajectory files (BENCH_*.json).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mg::obs {

struct TimerSnapshot {
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
};

/// Point-in-time copy of every named metric, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, TimerSnapshot>> timers;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of a counter by exact name (0 when absent).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  /// Summary of a histogram by exact name (all-zero when absent).
  [[nodiscard]] HistogramSnapshot histogram(std::string_view name) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every MG_OBS_* macro reports into.
  static Registry& global();

  /// Runtime kill switch: while disabled, counter()/timer() return shared
  /// scratch cells (no lock, no allocation) and snapshots stay empty.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Named metric accessors; create on first use.  The returned references
  /// live as long as the registry (reset() zeroes values, never removes).
  Counter& counter(std::string_view name);
  Timer& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every registered metric (names stay registered).
  void reset();

  [[nodiscard]] Snapshot snapshot() const;

  /// Writes the snapshot as a JSON object
  /// {"counters": {...}, "timers": {name: {"total_ns": .., "count": ..}},
  ///  "histograms": {name: {"count": .., "p50": .., "p99": .., ...}}}.
  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

 private:
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  Counter scratch_counter_;  // sink while disabled
  Timer scratch_timer_;
  Histogram scratch_histogram_;
};

}  // namespace mg::obs

// Compile-time switch; the build defines MG_OBS_ENABLED=0/1 on the mg_obs
// target (PUBLIC, so every linkee agrees).  Default on for plain includes.
#ifndef MG_OBS_ENABLED
#define MG_OBS_ENABLED 1
#endif

#if MG_OBS_ENABLED
/// Adds `delta` to the named global counter.
#define MG_OBS_ADD(name, delta) \
  ::mg::obs::Registry::global().counter(name).add(delta)
/// Times the enclosing scope into the named global timer.  `var` names the
/// guard object (must be unique in the scope).
#define MG_OBS_SCOPE_TIMER(var, name) \
  ::mg::obs::ScopeTimer var(::mg::obs::Registry::global().timer(name))
/// Records `value` into the named global histogram.
#define MG_OBS_HIST(name, value) \
  ::mg::obs::Registry::global().histogram(name).record(value)
/// Times the enclosing scope (ns) into the named global histogram — the
/// quantile-capturing sibling of MG_OBS_SCOPE_TIMER.
#define MG_OBS_SCOPE_HIST(var, name) \
  ::mg::obs::ScopeHist var(::mg::obs::Registry::global().histogram(name))
#else
#define MG_OBS_ADD(name, delta) ((void)0)
#define MG_OBS_SCOPE_TIMER(var, name) ((void)0)
#define MG_OBS_HIST(name, value) ((void)0)
#define MG_OBS_SCOPE_HIST(var, name) ((void)0)
#endif
