# Empty compiler generated dependencies file for mg_tree.
# This may be replaced when dependencies are built.
