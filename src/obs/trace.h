// Streaming trace interface.
//
// Producers (today: sim::simulate) push one TraceEvent per send/receive as
// it happens, so a trace can be observed, counted, or serialized without
// buffering the whole run in memory the way SimResult::trace does.  The
// event fields are plain integers — obs stays independent of the graph and
// schedule types, and any subsystem can adopt the interface.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

#include "obs/json.h"

namespace mg::obs {

struct TraceEvent {
  /// Producer-defined kind.  sim::simulate emits "send" and "receive",
  /// plus one event per fault loss: "drop" (link drop suppressed the
  /// send), "crash" (sender dead), "skip" (sender never held the message)
  /// and "lost" (receiver dead at arrival).
  std::string_view kind;
  std::uint64_t time = 0;     ///< round / time unit
  std::uint64_t node = 0;     ///< acting processor
  std::uint64_t message = 0;  ///< message id
  std::uint64_t peer = 0;     ///< first receiver for sends; sender otherwise
  std::uint64_t fanout = 0;   ///< |D| for send-like kinds; 0 otherwise
  /// Causal stamps (0 = unstamped): `trace` is the logical transmission's
  /// process-unique id ("send") or the delivering transmission's id
  /// ("receive"); `cause` is the id of the transmission whose arrival made
  /// this send informative — the happens-before parent the causal tracer
  /// and `dist::critical_path` follow.
  std::uint64_t trace = 0;
  std::uint64_t cause = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Counts events per kind — the cheapest possible sink.
class CountingTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override {
    ++total_;
    if (event.kind == "send") ++sends_;
    if (event.kind == "receive") ++receives_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t sends() const { return sends_; }
  [[nodiscard]] std::uint64_t receives() const { return receives_; }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t receives_ = 0;
};

/// Serializes each event as one JSON object per line (JSONL), the standard
/// machine-readable trace format for offline analysis.
class JsonLinesTraceSink final : public TraceSink {
 public:
  explicit JsonLinesTraceSink(std::ostream& out) : out_(out) {}

  void on_event(const TraceEvent& event) override {
    JsonWriter w(out_, /*pretty=*/false);
    w.begin_object();
    w.field("kind", event.kind);
    w.field("time", event.time);
    w.field("node", event.node);
    w.field("message", event.message);
    w.field("peer", event.peer);
    if (event.fanout != 0) w.field("fanout", event.fanout);
    if (event.trace != 0) w.field("trace", event.trace);
    if (event.cause != 0) w.field("cause", event.cause);
    w.end_object();
    out_ << '\n';
  }

 private:
  std::ostream& out_;
};

}  // namespace mg::obs
