#include "gossip/telephone.h"

#include "gossip/bounded_fanout.h"
#include "obs/span.h"
#include "support/contracts.h"

namespace mg::gossip {

model::Schedule telephone_gossip(const Instance& instance) {
  MG_OBS_SPAN(algo_span, "gossip.telephone");
  // The telephone model is the fanout-1 case of the greedy up/down engine:
  // the up phase is unicast by construction and every downward relay is
  // capped at a single receiver.
  model::Schedule schedule = bounded_fanout_gossip(instance, 1);
  MG_ENSURES(schedule.is_telephone());
  return schedule;
}

std::size_t telephone_tree_load_bound(const Instance& instance) {
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  const graph::Vertex n = tree.vertex_count();
  std::size_t bound = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    std::size_t load = 0;
    for (graph::Vertex c : tree.children(v)) {
      load += n - labels.subtree_size(c);
    }
    bound = std::max(bound, load);
  }
  return bound;
}

}  // namespace mg::gossip
