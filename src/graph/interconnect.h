// Classic interconnection-network topologies from the gossiping literature
// (the survey families of [7], [17]): de Bruijn, Kautz, shuffle-exchange,
// cube-connected cycles, butterfly (wrapped), circulant and chordal-ring
// graphs.  The paper's algorithm works on *any* network (§2: "The algorithm
// for the gossiping problem in this paper works for any arbitrary
// network"), so these families extend the benchmark coverage to the
// networks the prior work specialized in.
#pragma once

#include "graph/graph.h"

namespace mg::graph {

/// Undirected de Bruijn graph B(2, dim) on 2^dim vertices: u ~ (2u + b)
/// mod 2^dim for b in {0, 1}.  Requires 2 <= dim <= 20.
[[nodiscard]] Graph de_bruijn(unsigned dim);

/// Undirected Kautz graph K(2, dim) on 3 * 2^(dim-1) vertices (neighbors by
/// the standard successor rule on words without repeated letters).
/// Requires 2 <= dim <= 16.
[[nodiscard]] Graph kautz(unsigned dim);

/// Shuffle-exchange network on 2^dim vertices: shuffle edges u ~ rot(u) and
/// exchange edges u ~ u^1.  Requires 2 <= dim <= 20.
[[nodiscard]] Graph shuffle_exchange(unsigned dim);

/// Cube-connected cycles CCC(dim): each hypercube corner becomes a
/// dim-cycle; 3-regular, dim * 2^dim vertices.  Requires 3 <= dim <= 16.
[[nodiscard]] Graph cube_connected_cycles(unsigned dim);

/// Wrapped butterfly BF(dim): dim * 2^dim vertices (level, row), level
/// arithmetic mod dim, 4-regular.  Requires 3 <= dim <= 16.
[[nodiscard]] Graph wrapped_butterfly(unsigned dim);

/// Circulant graph C_n(S): vertex v adjacent to v +- s for each s in
/// `offsets`.  Requires n >= 3, each 1 <= s <= n/2.
[[nodiscard]] Graph circulant(Vertex n, std::span<const Vertex> offsets);

/// Chordal ring: cycle plus chords v ~ v + chord for even v (a classic
/// sparse gossip topology).  Requires n >= 6 even, 3 <= chord < n odd.
[[nodiscard]] Graph chordal_ring(Vertex n, Vertex chord);

}  // namespace mg::graph
