// Scheduler adapters across communication models.
//
// Every algorithm in src/gossip emits schedules that are legal under the
// paper's multicast model.  `adapt_schedule` re-targets such a schedule to
// any built-in `CommModel` by *legalization*: each multicast round expands
// into a block of model-legal sub-rounds that performs the same intended
// deliveries, with a barrier between blocks so the receive-before-send
// dependency structure of the source schedule is preserved round for round.
//
//  * multicast — identity.
//  * direct    — identity: adjacency is the only multicast rule direct
//    addressing relaxes, so every multicast-legal schedule is direct-legal.
//  * telephone — round t becomes max |D| sub-rounds; sub-round k carries
//    each transmission's k-th receiver as a unicast (senders stay distinct,
//    and the source round's disjoint D sets keep receivers distinct).
//  * radio / beep — each transmission (m, l, D) becomes the
//    full-neighborhood broadcast (m, l, N(l)); transmissions of one source
//    round are greedily packed into sub-rounds such that every *intended*
//    receiver r in D hears exactly one transmitting neighbor and is not
//    itself transmitting.  A transmission always fits alone in a fresh
//    sub-round (D is a subset of N(l)), so legalization never fails; bonus
//    deliveries to unintended neighbors are harmless extra knowledge, and
//    collisions at unintended receivers are legal losses.
//
// Legalization is intentionally round-count *monotone*: each source round
// costs >= 1 sub-round, which is what makes the cross-model dominance
// gates of bench/model_matrix hold by construction (see docs/MODELS.md for
// which orderings are instance-dependent instead).
//
// Where legalization is wasteful (or, for degraded partial schedules,
// cannot complete), two model-native greedy schedulers build gossip
// schedules from scratch:
//
//  * `direct_ring_schedule` — the virtual-ring systolic all-gather: node i
//    forwards, in round t, the message originating at ring position
//    i - t to node i + 1.  Completes in the optimal n - 1 rounds on any
//    topology, because direct addressing does not care about edges.
//  * `radio_greedy_schedule` — collision-free greedy flooding: per round,
//    admit transmitters in decreasing useful-delivery order subject to a
//    2-hop independence rule (closed neighborhoods of admitted senders
//    pairwise disjoint), which guarantees every neighbor of an admitted
//    sender decodes.  At least the best candidate is admitted each round,
//    so the schedule completes on every connected graph.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "model/comm_model.h"
#include "model/schedule.h"

namespace mg::model {

struct AdaptResult {
  Schedule schedule;  ///< legal under the target model
  /// Structural rounds (== schedule.total_time()); multiply by
  /// `CommModel::round_cost` for model time.
  std::size_t structural_rounds = 0;
  /// Model time units: structural_rounds * round_cost(n).
  std::size_t model_rounds = 0;
  /// Sub-rounds added beyond the source schedule's round count.
  std::size_t stretch = 0;
};

/// Re-targets `schedule` (multicast-legal on `g`) to `model`.  The result
/// performs every intended delivery of the source schedule, in source-round
/// order, and is legal under the target model's validator.
[[nodiscard]] AdaptResult adapt_schedule(const graph::Graph& g,
                                         const Schedule& schedule,
                                         const CommModel& model);

/// Virtual-ring systolic all-gather under direct addressing: n - 1 rounds,
/// one unicast per node per round, no edge constraints.  `initial[v]` is
/// the message held by v at time 0 (empty = identity).
[[nodiscard]] Schedule direct_ring_schedule(
    graph::Vertex n, const std::vector<Message>& initial = {});

/// Greedy collision-free flooding for the radio/beep structure: every
/// transmission reaches the sender's full neighborhood, admitted senders
/// have pairwise-disjoint closed neighborhoods.  Completes gossip on any
/// connected graph; rounds are not bounded by a closed form (reported, not
/// gated, in the bench).  `initial[v]` as above.
[[nodiscard]] Schedule radio_greedy_schedule(
    const graph::Graph& g, const std::vector<Message>& initial = {});

}  // namespace mg::model
