// Experiment B8 (§2): "multicasting is a much more efficient way to
// communicate".  Quantified: the greedy telephone (unicast) gossip on the
// same minimum-depth tree vs ConcurrentUpDown.  The advantage factor grows
// with the tree's branching (hubs must serve children one at a time) and
// vanishes on paths (degree 2).
#include <cstdio>

#include "gossip/solve.h"
#include "gossip/telephone.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(3);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"line 25", graph::path(25)},
      {"cycle 24", graph::cycle(24)},
      {"caterpillar 8x3", graph::caterpillar(8, 3)},
      {"binary tree 31", graph::k_ary_tree(31, 2)},
      {"ternary tree 40", graph::k_ary_tree(40, 3)},
      {"star 24", graph::star(24)},
      {"star 48", graph::star(48)},
      {"grid 5x5", graph::grid(5, 5)},
      {"hypercube 5", graph::hypercube(5)},
      {"random gnp 40", graph::random_connected_gnp(40, 0.1, rng)},
  };

  TextTable table;
  table.new_row();
  for (const char* h :
       {"network", "n", "r", "multicast (n+r)", "telephone", "factor",
        "telephone load bound", "max fanout used"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto multicast = gossip::solve_gossip(g);
    const auto phone = gossip::solve_gossip(g, gossip::Algorithm::kTelephone);
    all_ok = all_ok && multicast.report.ok && phone.report.ok;

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(static_cast<std::size_t>(multicast.instance.radius()));
    table.cell(multicast.schedule.total_time());
    table.cell(phone.schedule.total_time());
    table.cell(static_cast<double>(phone.schedule.total_time()) /
                   static_cast<double>(multicast.schedule.total_time()),
               2);
    table.cell(gossip::telephone_tree_load_bound(multicast.instance));
    table.cell(multicast.schedule.max_fanout());
  }

  std::printf(
      "B8 / §2: telephone (unicast) vs multicast gossip on the same tree\n\n"
      "%s\nall valid: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
