// Tests for the §3.2 DFS labeling: preorder labels, subtree intervals,
// lip-counts and owner lookup.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/named.h"
#include "support/contracts.h"
#include "support/rng.h"
#include "tree/labeling.h"
#include "tree/spanning_tree.h"

namespace mg::tree {
namespace {

RootedTree fig5() {
  return min_depth_spanning_tree(graph::fig4_network());
}

TEST(Labeling, RootGetsLabelZeroAndFullInterval) {
  const auto t = fig5();
  const DfsLabeling labels(t);
  EXPECT_EQ(labels.label(t.root()), 0u);
  EXPECT_EQ(labels.subtree_end(t.root()), 15u);
  EXPECT_EQ(labels.subtree_size(t.root()), 16u);
}

TEST(Labeling, LabelsArePermutation) {
  Rng rng(3);
  const auto g = graph::random_tree(40, rng);
  const auto t = root_tree_graph(g, 0);
  const DfsLabeling labels(t);
  std::vector<char> seen(40, 0);
  for (graph::Vertex v = 0; v < 40; ++v) {
    const auto l = labels.label(v);
    ASSERT_LT(l, 40u);
    EXPECT_FALSE(seen[l]);
    seen[l] = 1;
    EXPECT_EQ(labels.vertex_of(l), v);
  }
}

TEST(Labeling, SubtreeIntervalsAreContiguousAndNested) {
  Rng rng(8);
  const auto g = graph::random_tree(60, rng);
  const auto t = root_tree_graph(g, 0);
  const DfsLabeling labels(t);
  for (graph::Vertex v = 0; v < 60; ++v) {
    const auto i = labels.label(v);
    const auto j = labels.subtree_end(v);
    EXPECT_LE(i, j);
    // Children partition (i, j].
    Label next = i + 1;
    for (graph::Vertex c : t.children(v)) {
      EXPECT_EQ(labels.label(c), next);
      next = labels.subtree_end(c) + 1;
    }
    EXPECT_EQ(next, j + 1);
  }
}

TEST(Labeling, LabelAtLeastLevel) {
  // Used implicitly by every time formula: i >= k.
  Rng rng(12);
  const auto g = graph::random_tree(50, rng);
  const auto t = root_tree_graph(g, 0);
  const DfsLabeling labels(t);
  for (graph::Vertex v = 0; v < 50; ++v) {
    EXPECT_GE(labels.label(v), t.level(v));
  }
}

TEST(Labeling, LipCountMarksFirstChildren) {
  const auto t = fig5();
  const DfsLabeling labels(t);
  EXPECT_EQ(labels.lip_count(0), 0u);   // root
  EXPECT_EQ(labels.lip_count(1), 1u);   // first child of root
  EXPECT_EQ(labels.lip_count(4), 0u);   // second child of root
  EXPECT_EQ(labels.lip_count(5), 1u);   // first child of 4
  EXPECT_EQ(labels.lip_count(8), 0u);   // second child of 4
  EXPECT_EQ(labels.lip_count(12), 1u);  // first child of 11
}

TEST(Labeling, ExactlyOneLipPerNonLeafVertex) {
  Rng rng(77);
  const auto g = graph::random_tree(45, rng);
  const auto t = root_tree_graph(g, 0);
  const DfsLabeling labels(t);
  for (graph::Vertex v = 0; v < 45; ++v) {
    std::size_t lips = 0;
    for (graph::Vertex c : t.children(v)) lips += labels.lip_count(c);
    EXPECT_EQ(lips, t.is_leaf(v) ? 0u : 1u);
  }
}

TEST(Labeling, IsBodyMatchesInterval) {
  const auto t = fig5();
  const DfsLabeling labels(t);
  EXPECT_TRUE(labels.is_body(4, 4));
  EXPECT_TRUE(labels.is_body(4, 10));
  EXPECT_FALSE(labels.is_body(4, 3));
  EXPECT_FALSE(labels.is_body(4, 11));
}

TEST(Labeling, ChildOwningFindsTheRightSubtree) {
  const auto t = fig5();
  const DfsLabeling labels(t);
  EXPECT_EQ(labels.child_owning(0, 7), 4u);
  EXPECT_EQ(labels.child_owning(0, 13), 11u);
  EXPECT_EQ(labels.child_owning(4, 9), 8u);
  EXPECT_EQ(labels.child_owning(4, 5), 5u);
}

TEST(Labeling, ChildOwningRejectsOwnAndOther) {
  const auto t = fig5();
  const DfsLabeling labels(t);
  EXPECT_THROW((void)labels.child_owning(4, 4), ContractViolation);
  EXPECT_THROW((void)labels.child_owning(4, 12), ContractViolation);
}

TEST(Labeling, PathTreeLabelsFollowTheChain) {
  const auto t = root_tree_graph(graph::path(6), 0);
  const DfsLabeling labels(t);
  for (graph::Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(labels.label(v), v);
    EXPECT_EQ(labels.subtree_end(v), 5u);
  }
}

}  // namespace
}  // namespace mg::tree
