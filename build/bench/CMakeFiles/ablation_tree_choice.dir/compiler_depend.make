# Empty compiler generated dependencies file for ablation_tree_choice.
# This may be replaced when dependencies are built.
