file(REMOVE_RECURSE
  "CMakeFiles/mg_model.dir/schedule.cpp.o"
  "CMakeFiles/mg_model.dir/schedule.cpp.o.d"
  "CMakeFiles/mg_model.dir/stats.cpp.o"
  "CMakeFiles/mg_model.dir/stats.cpp.o.d"
  "CMakeFiles/mg_model.dir/validator.cpp.o"
  "CMakeFiles/mg_model.dir/validator.cpp.o.d"
  "libmg_model.a"
  "libmg_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
