#include "gossip/patch.h"

#include <algorithm>
#include <utility>

#include "gossip/recovery.h"
#include "obs/registry.h"
#include "sim/network_sim.h"
#include "support/bitset.h"
#include "support/contracts.h"

namespace mg::gossip {

namespace {

/// The filter+replay pass shared by both entry points: walk the old
/// schedule round by round, tracking exact hold state under the *new*
/// topology, and keep only transmissions the mutated network can carry
/// AND whose sender actually holds the message.  The second condition is
/// the cascade: striking one transmission starves its receivers, which
/// silently invalidates their own later sends — the validator enforces
/// rule 5, so the patch must strike those too, transitively.
///
/// Receive-before-send semantics match the validator and simulator: a
/// message arriving at time t may be forwarded at time t.
PatchResult filter_and_replay(const graph::Graph& g,
                              const model::Schedule& old_schedule,
                              std::vector<DynamicBitset> holds) {
  const graph::Vertex n = g.vertex_count();
  const std::size_t message_count = holds.empty() ? 0 : holds[0].size();
  PatchResult result;

  std::vector<std::pair<graph::Vertex, model::Message>> arrivals;
  std::vector<std::pair<graph::Vertex, model::Message>> next_arrivals;
  for (std::size_t t = 0; t < old_schedule.round_count(); ++t) {
    for (const auto& [receiver, message] : arrivals) {
      holds[receiver].set(message);
    }
    arrivals.clear();
    for (const model::Transmission& tx : old_schedule.round(t)) {
      if (tx.sender >= n || tx.message >= message_count ||
          !holds[tx.sender].test(tx.message)) {
        ++result.dropped_transmissions;
        continue;
      }
      model::Transmission kept;
      kept.message = tx.message;
      kept.sender = tx.sender;
      kept.receivers.reserve(tx.receivers.size());
      for (graph::Vertex r : tx.receivers) {
        if (r < n && g.has_edge(tx.sender, r)) {
          kept.receivers.push_back(r);
        } else {
          ++result.trimmed_receivers;
        }
      }
      if (kept.receivers.empty()) {
        ++result.dropped_transmissions;
        continue;
      }
      for (graph::Vertex r : kept.receivers) {
        next_arrivals.emplace_back(r, kept.message);
      }
      result.schedule.add(t, std::move(kept));
    }
    std::swap(arrivals, next_arrivals);
    next_arrivals.clear();
  }
  for (const auto& [receiver, message] : arrivals) {
    holds[receiver].set(message);
  }
  result.schedule.trim();
  result.base_rounds = result.schedule.total_time();

  result.complete =
      std::all_of(holds.begin(), holds.end(),
                  [](const DynamicBitset& h) { return h.all(); });
  if (!result.complete) {
    // Repair: greedy completion from the exact degraded state, spliced
    // after the filtered horizon.  On a connected graph every message is
    // still known somewhere (its origin holds it from time 0), so the
    // achievable closure is everything and the repair completes.
    const model::Schedule repair = partial_completion_schedule(g, holds);
    result.repair_rounds = repair.total_time();
    sim::SimOptions sim_options;
    sim_options.keep_final_holds = false;
    const sim::SimResult check =
        sim::simulate_from_holds(g, repair, holds, sim_options);
    result.complete = check.completed;
    result.schedule.append(repair, result.base_rounds);
  }

  MG_OBS_ADD("churn.patch.calls", 1);
  if (result.trimmed_receivers > 0) {
    MG_OBS_ADD("churn.patch.trimmed_receivers", result.trimmed_receivers);
  }
  if (result.dropped_transmissions > 0) {
    MG_OBS_ADD("churn.patch.dropped_transmissions",
               result.dropped_transmissions);
  }
  if (result.repair_rounds > 0) {
    MG_OBS_ADD("churn.patch.repairs", 1);
    MG_OBS_ADD("churn.patch.repair_rounds", result.repair_rounds);
  }
  return result;
}

}  // namespace

PatchResult patch_schedule(const graph::Graph& g,
                           const model::Schedule& old_schedule,
                           const std::vector<model::Message>& initial) {
  MG_OBS_SCOPE_TIMER(patch_timer, "churn.patch_ns");
  const graph::Vertex n = g.vertex_count();
  MG_EXPECTS(initial.empty() || initial.size() == n);
  std::vector<DynamicBitset> holds(n, DynamicBitset(n));
  for (graph::Vertex v = 0; v < n; ++v) {
    holds[v].set(initial.empty() ? v : initial[v]);
  }
  return filter_and_replay(g, old_schedule, std::move(holds));
}

PatchResult patch_schedule_from_holds(
    const graph::Graph& g, const model::Schedule& old_schedule,
    const std::vector<DynamicBitset>& initial_holds) {
  MG_OBS_SCOPE_TIMER(patch_timer, "churn.patch_ns");
  MG_EXPECTS(initial_holds.size() == g.vertex_count());
  return filter_and_replay(g, old_schedule, initial_holds);
}

}  // namespace mg::gossip
