// Adversarial tests of the validator itself: start from a known-valid
// ConcurrentUpDown schedule and apply random single-point mutations; the
// validator must reject every mutation that actually breaks a rule and
// keep accepting benign ones.  This guards the test oracle the whole suite
// leans on.
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "model/validator.h"
#include "support/rng.h"

namespace mg::model {
namespace {

struct Mutation {
  Schedule schedule;
  bool must_be_invalid = false;
};

/// Applies one random mutation; returns the mutated schedule and whether
/// it is guaranteed to violate a rule.
Mutation mutate(const Schedule& base, Rng& rng, graph::Vertex n) {
  // Pick a random transmission.
  std::vector<std::pair<std::size_t, std::size_t>> index;
  for (std::size_t t = 0; t < base.round_count(); ++t) {
    for (std::size_t e = 0; e < base.round(t).size(); ++e) {
      index.emplace_back(t, e);
    }
  }
  const auto [t, e] = index[rng.below(index.size())];

  Schedule mutated;
  const auto copy_all_except = [&](auto&& replace) {
    for (std::size_t tt = 0; tt < base.round_count(); ++tt) {
      for (std::size_t ee = 0; ee < base.round(tt).size(); ++ee) {
        if (tt == t && ee == e) {
          replace(tt, base.round(tt)[ee]);
        } else {
          mutated.add(tt, base.round(tt)[ee]);
        }
      }
    }
  };

  switch (rng.below(4)) {
    case 0: {
      // Drop the transmission entirely: the gossip cannot complete (every
      // ConcurrentUpDown transmission delivers at least one new message).
      copy_all_except([&](std::size_t, const Transmission&) {});
      return {std::move(mutated), true};
    }
    case 1: {
      // Duplicate it in the same round: the sender sends twice.
      copy_all_except([&](std::size_t tt, const Transmission& original) {
        mutated.add(tt, original);
        mutated.add(tt, original);
      });
      return {std::move(mutated), true};
    }
    case 2: {
      // Retarget one receiver to the sender itself: self-delivery.
      copy_all_except([&](std::size_t tt, const Transmission& original) {
        Transmission changed = original;
        changed.receivers[0] = original.sender;
        std::sort(changed.receivers.begin(), changed.receivers.end());
        changed.receivers.erase(std::unique(changed.receivers.begin(),
                                            changed.receivers.end()),
                                changed.receivers.end());
        mutated.add(tt, changed);
      });
      return {std::move(mutated), true};
    }
    default: {
      // Replace the message with one the sender provably does not hold at
      // time t: a message from OUTSIDE its subtree before any arrives
      // (only safe to assert at t == 0 for non-root senders); otherwise
      // fall back to the drop mutation.
      if (t == 0) {
        copy_all_except([&](std::size_t tt, const Transmission& original) {
          Transmission changed = original;
          changed.message = (original.message + n / 2) % n;
          mutated.add(tt, changed);
        });
        return {std::move(mutated), true};
      }
      copy_all_except([&](std::size_t, const Transmission&) {});
      return {std::move(mutated), true};
    }
  }
}

TEST(ValidatorFuzz, MutationsAreCaught) {
  Rng rng(20260706);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n = static_cast<graph::Vertex>(5 + rng.below(30));
    Rng graph_rng(rng());
    const auto g = graph::random_connected_gnp(
        n, 3.0 / static_cast<double>(n), graph_rng);
    const auto sol = gossip::solve_gossip(g);
    ASSERT_TRUE(sol.report.ok);
    const auto tree_graph = sol.instance.tree().as_graph();
    const auto initial = sol.instance.initial();

    auto mutation = mutate(sol.schedule, rng, n);
    const auto report =
        validate_schedule(tree_graph, mutation.schedule, initial);
    if (mutation.must_be_invalid) {
      EXPECT_FALSE(report.ok)
          << "trial " << trial << ": mutation slipped through";
    }
  }
}

TEST(ValidatorFuzz, TimeShiftForwardPreservesRulesButDelaysCausality) {
  // Shifting a whole valid schedule one round later keeps it valid (all
  // relative timings preserved).
  const auto g = graph::grid(3, 4);
  const auto sol = gossip::solve_gossip(g);
  Schedule shifted;
  for (std::size_t t = 0; t < sol.schedule.round_count(); ++t) {
    for (const auto& tx : sol.schedule.round(t)) shifted.add(t + 1, tx);
  }
  const auto report = validate_schedule(sol.instance.tree().as_graph(),
                                        shifted, sol.instance.initial());
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(shifted.total_time(), sol.schedule.total_time() + 1);
}

TEST(ValidatorFuzz, TimeShiftBackwardBreaksCausality) {
  // Pulling every round one earlier makes some forward come before its
  // arrival (the relay chains are tight), so the validator must object.
  const auto g = graph::grid(3, 4);
  const auto sol = gossip::solve_gossip(g);
  Schedule shifted;
  for (std::size_t t = 1; t < sol.schedule.round_count(); ++t) {
    for (const auto& tx : sol.schedule.round(t)) shifted.add(t - 1, tx);
  }
  // Round-0 transmissions are dropped; even so the earlier rounds now
  // forward messages before receipt.
  const auto report = validate_schedule(sol.instance.tree().as_graph(),
                                        shifted, sol.instance.initial());
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("does not hold"), std::string::npos)
      << report.error;
}

TEST(ValidatorFuzz, ReceiverSwapAcrossRoundsCaught) {
  // Moving one multicast a round earlier collides with that round's
  // receive slots or breaks causality; across many seeds the validator
  // must never accept a move that creates a double receive.
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<graph::Vertex>(6 + rng.below(20));
    Rng graph_rng(rng());
    const auto g = graph::random_connected_gnp(
        n, 3.0 / static_cast<double>(n), graph_rng);
    const auto sol = gossip::solve_gossip(g);
    ASSERT_TRUE(sol.report.ok);
    if (sol.instance.radius() < 2) continue;  // depth-1: the move can stay
                                              // legal (root holds msg 0)

    // Move the last round's transmission into round 0.
    Schedule moved;
    const std::size_t last = sol.schedule.round_count() - 1;
    for (std::size_t t = 0; t < sol.schedule.round_count(); ++t) {
      for (const auto& tx : sol.schedule.round(t)) {
        moved.add(t == last ? 0 : t, tx);
      }
    }
    const auto report = validate_schedule(sol.instance.tree().as_graph(),
                                          moved, sol.instance.initial());
    // The last round relays message 0 down at depth >= 1, long after its
    // arrival -- moving it to round 0 always breaks the hold rule (or a
    // receive slot).  Either way: invalid.
    EXPECT_FALSE(report.ok) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mg::model
