file(REMOVE_RECURSE
  "CMakeFiles/tables_1_to_4.dir/tables_1_to_4.cpp.o"
  "CMakeFiles/tables_1_to_4.dir/tables_1_to_4.cpp.o.d"
  "tables_1_to_4"
  "tables_1_to_4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_1_to_4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
