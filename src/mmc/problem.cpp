#include "mmc/problem.h"

#include <algorithm>

#include "graph/generators.h"
#include "model/validator.h"
#include "support/contracts.h"

namespace mg::mmc {

MmcInstance::MmcInstance(graph::Vertex processors,
                         std::vector<MmcMessage> messages)
    : n_(processors), messages_(std::move(messages)) {
  MG_EXPECTS(n_ >= 2);
  std::vector<std::size_t> sends(n_, 0);
  std::vector<std::size_t> receptions(n_, 0);
  for (std::size_t idx = 0; idx < messages_.size(); ++idx) {
    auto& message = messages_[idx];
    MG_EXPECTS_MSG(message.id == idx, "message ids must be dense 0..k-1");
    MG_EXPECTS(message.source < n_);
    MG_EXPECTS_MSG(!message.destinations.empty(),
                   "a message needs at least one destination");
    MG_EXPECTS(std::is_sorted(message.destinations.begin(),
                              message.destinations.end()));
    ++sends[message.source];
    for (graph::Vertex d : message.destinations) {
      MG_EXPECTS(d < n_);
      MG_EXPECTS_MSG(d != message.source, "no self-destinations");
      ++receptions[d];
    }
  }
  for (graph::Vertex v = 0; v < n_; ++v) {
    degree_ = std::max({degree_, sends[v], receptions[v]});
  }
}

std::vector<std::vector<model::Message>> MmcInstance::initial_sets() const {
  std::vector<std::vector<model::Message>> sets(n_);
  for (const auto& message : messages_) {
    sets[message.source].push_back(message.id);
  }
  return sets;
}

std::string MmcInstance::check(const model::Schedule& schedule) const {
  model::ValidatorOptions options;
  options.require_completion = false;  // coverage is message-specific
  const auto report = model::validate_schedule_general(
      graph::complete(n_), schedule, initial_sets(), message_count(),
      options);
  if (!report.ok) return report.error;

  // Coverage: every message reaches every destination.
  std::vector<std::vector<char>> delivered(message_count(),
                                           std::vector<char>(n_, 0));
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      for (graph::Vertex r : tx.receivers) delivered[tx.message][r] = 1;
    }
  }
  for (const auto& message : messages_) {
    for (graph::Vertex d : message.destinations) {
      if (!delivered[message.id][d]) {
        return "message " + std::to_string(message.id) +
               " never reaches destination " + std::to_string(d);
      }
    }
  }
  return {};
}

MmcInstance MmcInstance::gossip_restriction(graph::Vertex n) {
  std::vector<MmcMessage> messages;
  for (graph::Vertex v = 0; v < n; ++v) {
    MmcMessage message;
    message.id = v;
    message.source = v;
    for (graph::Vertex d = 0; d < n; ++d) {
      if (d != v) message.destinations.push_back(d);
    }
    messages.push_back(std::move(message));
  }
  return MmcInstance(n, std::move(messages));
}

}  // namespace mg::mmc
