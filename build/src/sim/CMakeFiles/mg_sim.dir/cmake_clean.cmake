file(REMOVE_RECURSE
  "CMakeFiles/mg_sim.dir/network_sim.cpp.o"
  "CMakeFiles/mg_sim.dir/network_sim.cpp.o.d"
  "CMakeFiles/mg_sim.dir/randomized.cpp.o"
  "CMakeFiles/mg_sim.dir/randomized.cpp.o.d"
  "libmg_sim.a"
  "libmg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
