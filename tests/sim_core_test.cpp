// Differential test for the two simulator cores: the word-parallel core
// (flat uint64 hold matrix, compiled schedule, single-word ORs) must be
// event-for-event identical to the legacy bitwise core — same completion,
// timing, knowledge curves, fault counters, final holds, buffered trace
// and streamed sink events — across the seeded random sweep x all four
// gossip algorithms x fault plans (probabilistic drops, crash-stop,
// per-edge delay).  The bitwise core is the oracle: it is the pre-existing
// implementation the library's results were pinned against.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/fault.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "model/compiled.h"
#include "obs/trace.h"
#include "sim/network_sim.h"
#include "support/rng.h"

namespace mg {
namespace {

constexpr gossip::Algorithm kAlgorithms[] = {
    gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
    gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

graph::Graph make_graph(std::uint64_t seed) {
  Rng rng(0xd1ffULL * (seed + 1));
  const auto n = static_cast<graph::Vertex>(5 + (seed * 7) % 44);
  switch (seed % 4) {
    case 0:
      return graph::random_connected_gnp(n, 3.0 / static_cast<double>(n),
                                         rng);
    case 1:
      return graph::random_tree(n, rng);
    case 2:
      return graph::random_geometric(n, 0.3, rng);
    default:
      return graph::random_connected_gnp(n, 0.5, rng);
  }
}

/// A fault plan keyed off the seed: fault-free, drops only, or the full
/// mix of drops + a crash + per-edge delays.
fault::FaultPlan make_plan(std::uint64_t seed, const graph::Graph& g) {
  fault::FaultPlan plan;
  const graph::Vertex n = g.vertex_count();
  switch (seed % 3) {
    case 0:
      break;  // fault-free
    case 1:
      plan.drop_rate(0.15).seed(seed * 77 + 1);
      break;
    default:
      plan.drop_rate(0.05).seed(seed * 77 + 1);
      plan.crash(n / 2, 3);
      plan.delay(0, g.neighbors(0).front(), 2);
      plan.delay(n - 1, g.neighbors(n - 1).front(), 1);
      break;
  }
  return plan;
}

/// Full structural equality of two SimResults, trace included.
void expect_equal(const sim::SimResult& bit, const sim::SimResult& word) {
  EXPECT_EQ(bit.completed, word.completed);
  EXPECT_EQ(bit.total_time, word.total_time);
  EXPECT_EQ(bit.completion_time, word.completion_time);
  EXPECT_EQ(bit.knowledge, word.knowledge);
  EXPECT_EQ(bit.missing, word.missing);
  EXPECT_EQ(bit.skipped_sends, word.skipped_sends);
  EXPECT_EQ(bit.injected_drops, word.injected_drops);
  EXPECT_EQ(bit.crashed_sends, word.crashed_sends);
  EXPECT_EQ(bit.lost_receives, word.lost_receives);
  EXPECT_EQ(bit.final_holds, word.final_holds);
  ASSERT_EQ(bit.trace.size(), word.trace.size());
  for (std::size_t i = 0; i < bit.trace.size(); ++i) {
    EXPECT_EQ(bit.trace[i].kind, word.trace[i].kind) << "event " << i;
    EXPECT_EQ(bit.trace[i].time, word.trace[i].time) << "event " << i;
    EXPECT_EQ(bit.trace[i].node, word.trace[i].node) << "event " << i;
    EXPECT_EQ(bit.trace[i].message, word.trace[i].message) << "event " << i;
    EXPECT_EQ(bit.trace[i].peer, word.trace[i].peer) << "event " << i;
  }
}

TEST(SimCore, WordMatchesBitwiseAcrossSweep) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const graph::Graph g = make_graph(seed);
    const fault::FaultPlan plan = make_plan(seed, g);
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " n=" +
                   std::to_string(g.vertex_count()) + " " +
                   gossip::algorithm_name(algorithm));
      const gossip::Solution sol = gossip::solve_gossip(g, algorithm);
      const graph::Graph tree = sol.instance.tree().as_graph();

      std::ostringstream bit_jsonl;
      std::ostringstream word_jsonl;
      obs::JsonLinesTraceSink bit_sink(bit_jsonl);
      obs::JsonLinesTraceSink word_sink(word_jsonl);

      sim::SimOptions bit_options;
      bit_options.core = sim::SimCore::kBitwise;
      bit_options.record_trace = true;
      bit_options.faults = plan.empty() ? nullptr : &plan;
      bit_options.sink = &bit_sink;
      const sim::SimResult bit =
          sim::simulate(tree, sol.schedule, sol.instance.initial(),
                        bit_options);

      sim::SimOptions word_options = bit_options;
      word_options.core = sim::SimCore::kWordParallel;
      word_options.sink = &word_sink;
      const sim::SimResult word =
          sim::simulate(tree, sol.schedule, sol.instance.initial(),
                        word_options);

      expect_equal(bit, word);
      // Streamed sinks see byte-identical JSONL, fault events included.
      EXPECT_EQ(bit_jsonl.str(), word_jsonl.str());
    }
  }
}

TEST(SimCore, FromHoldsMatchesBitwise) {
  // Degraded-start runs (the recovery path): both cores resume from the
  // same partial hold sets and must land in the same state.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const graph::Graph g = make_graph(seed);
    const graph::Vertex n = g.vertex_count();
    const gossip::Solution sol =
        gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
    const graph::Graph tree = sol.instance.tree().as_graph();

    // Partial knowledge: node v starts holding the messages with
    // id <= v (a deterministic ragged start).
    std::vector<DynamicBitset> holds(n, DynamicBitset(n));
    for (graph::Vertex v = 0; v < n; ++v) {
      for (graph::Vertex m = 0; m <= v; ++m) holds[v].set(m);
    }
    const fault::FaultPlan plan = make_plan(seed + 100, g);

    sim::SimOptions bit_options;
    bit_options.core = sim::SimCore::kBitwise;
    bit_options.faults = plan.empty() ? nullptr : &plan;
    const sim::SimResult bit =
        sim::simulate_from_holds(tree, sol.schedule, holds, bit_options);

    sim::SimOptions word_options = bit_options;
    word_options.core = sim::SimCore::kWordParallel;
    const sim::SimResult word =
        sim::simulate_from_holds(tree, sol.schedule, holds, word_options);
    expect_equal(bit, word);
  }
}

TEST(SimCore, CompiledEntryPointMatchesSchedule) {
  // simulate_compiled (compile once, run many) == simulate on the same
  // inputs, and the compiled schedule round-trips the schedule's counts.
  const graph::Graph g = make_graph(3);
  const gossip::Solution sol =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  const graph::Graph tree = sol.instance.tree().as_graph();
  const model::CompiledSchedule compiled =
      model::CompiledSchedule::compile(sol.schedule);
  EXPECT_EQ(compiled.round_count(), sol.schedule.round_count());
  EXPECT_EQ(compiled.transmission_count(), sol.schedule.transmission_count());
  EXPECT_EQ(compiled.delivery_count(), sol.schedule.delivery_count());

  const graph::Vertex n = g.vertex_count();
  std::vector<DynamicBitset> holds(n, DynamicBitset(n));
  const std::vector<model::Message> initial = sol.instance.initial();
  for (graph::Vertex v = 0; v < n; ++v) holds[v].set(initial[v]);

  const sim::SimResult via_schedule =
      sim::simulate(tree, sol.schedule, initial);
  const sim::SimResult via_compiled =
      sim::simulate_compiled(tree, compiled, holds);
  expect_equal(via_schedule, via_compiled);
  EXPECT_TRUE(via_compiled.completed);
}

TEST(SimCore, KeepFinalHoldsOff) {
  // Both cores honor keep_final_holds = false by leaving final_holds
  // empty while everything else is unchanged.
  const graph::Graph g = make_graph(5);
  const gossip::Solution sol =
      gossip::solve_gossip(g, gossip::Algorithm::kSimple);
  const graph::Graph tree = sol.instance.tree().as_graph();
  for (const sim::SimCore core :
       {sim::SimCore::kBitwise, sim::SimCore::kWordParallel}) {
    sim::SimOptions options;
    options.core = core;
    options.keep_final_holds = false;
    const sim::SimResult result =
        sim::simulate(tree, sol.schedule, sol.instance.initial(), options);
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(result.final_holds.empty());
  }
}

TEST(SimCore, LegacyDropListMatches) {
  // The legacy SimOptions::drop list (round, sender) must suppress the
  // same transmissions on both cores.
  const graph::Graph g = make_graph(7);
  const gossip::Solution sol =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  const graph::Graph tree = sol.instance.tree().as_graph();

  // Drop the first and last rounds' first transmissions — pairs that are
  // guaranteed to match real sends.
  sim::SimOptions bit_options;
  bit_options.core = sim::SimCore::kBitwise;
  const std::size_t last = sol.schedule.round_count() - 1;
  ASSERT_FALSE(sol.schedule.round(0).empty());
  ASSERT_FALSE(sol.schedule.round(last).empty());
  bit_options.drop = {{0, sol.schedule.round(0).front().sender},
                      {last, sol.schedule.round(last).front().sender}};
  const sim::SimResult bit =
      sim::simulate(tree, sol.schedule, sol.instance.initial(), bit_options);

  sim::SimOptions word_options = bit_options;
  word_options.core = sim::SimCore::kWordParallel;
  const sim::SimResult word =
      sim::simulate(tree, sol.schedule, sol.instance.initial(), word_options);
  expect_equal(bit, word);
  EXPECT_GT(bit.injected_drops, 0u);
}

}  // namespace
}  // namespace mg
