file(REMOVE_RECURSE
  "CMakeFiles/line_optimal_test.dir/line_optimal_test.cpp.o"
  "CMakeFiles/line_optimal_test.dir/line_optimal_test.cpp.o.d"
  "line_optimal_test"
  "line_optimal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_optimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
