#include "tree/incremental.h"

#include <algorithm>

#include "graph/properties.h"
#include "obs/registry.h"
#include "support/contracts.h"

namespace mg::tree {

namespace {

using graph::Graph;
using graph::kNoVertex;
using graph::kUnreachable;
using graph::Vertex;

/// True when u and v share a neighbor (sorted-list intersection), i.e.
/// their distance in the graph *without* a direct edge is exactly 2.
bool have_common_neighbor(const Graph& g, Vertex u, Vertex v) {
  const auto nu = g.neighbors(u);
  const auto nv = g.neighbors(v);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) return true;
    if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// BFS distance from `src` to `dst` with the direct edge {src, dst}
/// excluded — the length of the detour a fresh edge {src, dst} shortcuts.
/// Precondition: the graph stays connected without that edge... the caller
/// only probes after mutating a graph that was connected before the edge
/// appeared, so a finite detour always exists.
std::uint32_t detour_distance(const Graph& g, Vertex src, Vertex dst) {
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::vector<Vertex> frontier{src};
  std::vector<Vertex> next;
  dist[src] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (Vertex x : frontier) {
      for (Vertex y : g.neighbors(x)) {
        if ((x == src && y == dst) || (x == dst && y == src)) continue;
        if (dist[y] != kUnreachable) continue;
        if (y == dst) return depth;
        dist[y] = depth;
        next.push_back(y);
      }
    }
    frontier.swap(next);
  }
  MG_EXPECTS_MSG(false, "detour probe on a graph the new edge disconnects");
  return kUnreachable;
}

std::uint32_t exact_eccentricity(const Graph& g, Vertex v) {
  const auto ecc = graph::eccentricity(g, v);
  MG_EXPECTS_MSG(ecc.has_value(), "eccentricity probe on disconnected graph");
  return *ecc;
}

}  // namespace

const char* maintenance_path_name(MaintenancePath path) {
  switch (path) {
    case MaintenancePath::kNoop:
      return "noop";
    case MaintenancePath::kParentPatch:
      return "parent_patch";
    case MaintenancePath::kSubtreeRepair:
      return "subtree_repair";
    case MaintenancePath::kRecenter:
      return "recenter";
    case MaintenancePath::kFullRebuild:
      return "full_rebuild";
  }
  return "unknown";
}

IncrementalTree::IncrementalTree(const graph::Graph& g,
                                 IncrementalTreeOptions options,
                                 ThreadPool* pool)
    : options_(options),
      pool_(pool),
      tree_(min_depth_spanning_tree(g, pool, options.center)) {
  adopt_tree();
  MaintenanceReport ignored;
  seed_bounds(g, ignored);
}

void IncrementalTree::adopt_tree() {
  const Vertex n = tree_.vertex_count();
  center_ = tree_.root();
  radius_ = tree_.height();
  dist_.resize(n);
  parent_.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    dist_[v] = tree_.level(v);
    parent_[v] = tree_.parent(v);
  }
}

void IncrementalTree::seed_bounds(const graph::Graph& g,
                                  MaintenanceReport& report) {
  // Certified lower bounds from four reference sweeps: the center (its
  // distance vector is dist_, no BFS needed), the double-sweep pair
  // (a = farthest from center, b = farthest from a), and the 4-sweep pick
  // farthest from both.  For every reference r the BFS triangle inequality
  // gives ecc(w) >= max(d(r,w), ecc(r) - d(r,w)); references themselves
  // get their exact eccentricity.
  const Vertex n = static_cast<Vertex>(dist_.size());
  ecc_lb_.assign(n, 0);
  for (Vertex w = 0; w < n; ++w) {
    ecc_lb_[w] = std::max(dist_[w], radius_ - dist_[w]);
  }
  ecc_lb_[center_] = radius_;
  if (n < 2) return;
  Vertex a = 0;
  for (Vertex w = 0; w < n; ++w) {
    if (dist_[w] > dist_[a]) a = w;
  }
  const auto da = graph::bfs_distances(g, a);
  ++report.bfs_runs;
  std::uint32_t ecc_a = 0;
  Vertex b = a;
  for (Vertex w = 0; w < n; ++w) {
    if (da[w] > ecc_a) {
      ecc_a = da[w];
      b = w;
    }
  }
  const auto db = graph::bfs_distances(g, b);
  ++report.bfs_runs;
  std::uint32_t ecc_b = 0;
  for (Vertex w = 0; w < n; ++w) ecc_b = std::max(ecc_b, db[w]);
  for (Vertex w = 0; w < n; ++w) {
    ecc_lb_[w] = std::max({ecc_lb_[w], da[w], ecc_a - da[w], db[w],
                           ecc_b - db[w]});
  }
  ecc_lb_[a] = ecc_a;
  ecc_lb_[b] = ecc_b;

  // Third reference: the vertex farthest from *both* ends of the diameter
  // path (the classic 4-sweep pick).  a and b certify vertices off their
  // shared geodesic band but leave the band itself at the loose equality
  // L == ecc/2; a reference on the *other* diagonal cuts through it, which
  // is what keeps the deletion rescan's candidate set under budget on
  // distance-spread graphs (e.g. grids).
  Vertex a2 = 0;
  for (Vertex w = 0; w < n; ++w) {
    if (std::min(da[w], db[w]) > std::min(da[a2], db[a2])) a2 = w;
  }
  const auto da2 = graph::bfs_distances(g, a2);
  ++report.bfs_runs;
  std::uint32_t ecc_a2 = 0;
  for (Vertex w = 0; w < n; ++w) ecc_a2 = std::max(ecc_a2, da2[w]);
  for (Vertex w = 0; w < n; ++w) {
    ecc_lb_[w] = std::max({ecc_lb_[w], da2[w], ecc_a2 - da2[w]});
  }
  ecc_lb_[a2] = ecc_a2;
}

void IncrementalTree::rebuild_rooted_tree() {
  tree_ = RootedTree::from_parents(center_, std::vector<Vertex>(parent_));
}

void IncrementalTree::finish(const MaintenanceReport& report) {
  ++stats_.events;
  stats_.bfs_runs += report.bfs_runs;
  stats_.candidate_evals += report.candidates;
  MG_OBS_ADD("churn.tree.events", 1);
  switch (report.path) {
    case MaintenancePath::kNoop:
      ++stats_.noop;
      MG_OBS_ADD("churn.tree.noop", 1);
      break;
    case MaintenancePath::kParentPatch:
      ++stats_.parent_patch;
      MG_OBS_ADD("churn.tree.parent_patch", 1);
      break;
    case MaintenancePath::kSubtreeRepair:
      ++stats_.subtree_repair;
      MG_OBS_ADD("churn.tree.subtree_repair", 1);
      break;
    case MaintenancePath::kRecenter:
      ++stats_.recenter;
      MG_OBS_ADD("churn.tree.recenter", 1);
      break;
    case MaintenancePath::kFullRebuild:
      ++stats_.full_rebuild;
      MG_OBS_ADD("churn.tree.full_rebuild", 1);
      break;
  }
  if (report.bfs_runs > 0) MG_OBS_ADD("churn.tree.bfs_runs", report.bfs_runs);
  if (report.candidates > 0) {
    MG_OBS_ADD("churn.tree.candidate_evals", report.candidates);
  }
  // The paper's invariant, in every mode: the maintained tree has least
  // possible height, i.e. height == ecc(center) == the exact radius.
  MG_ENSURES(tree_.height() == radius_);
}

MaintenanceReport IncrementalTree::full_rebuild(const graph::Graph& g,
                                                MaintenanceReport report) {
  tree_ = min_depth_spanning_tree(g, pool_, options_.center);
  adopt_tree();
  seed_bounds(g, report);
  report.path = MaintenancePath::kFullRebuild;
  report.touched = g.vertex_count();
  return report;
}

void IncrementalTree::reference_sweep(const graph::Graph& g, Vertex r,
                                      MaintenanceReport& report) {
  const auto dr = graph::bfs_distances(g, r);
  ++report.bfs_runs;
  const Vertex n = g.vertex_count();
  std::uint32_t ecc = 0;
  for (Vertex w = 0; w < n; ++w) ecc = std::max(ecc, dr[w]);
  for (Vertex w = 0; w < n; ++w) {
    ecc_lb_[w] = std::max({ecc_lb_[w], dr[w], ecc - dr[w]});
  }
  ecc_lb_[r] = ecc;
}

Vertex IncrementalTree::rescan_center(const graph::Graph& g,
                                      std::uint32_t new_radius_c,
                                      MaintenanceReport& report,
                                      std::uint32_t& best_ecc) {
  // Re-floor every certified bound with the fresh center distances and
  // collect every vertex the certificate no longer excludes from beating
  // (or out-tie-breaking) the center.
  const Vertex n = g.vertex_count();
  std::vector<Vertex> candidates;
  for (Vertex w = 0; w < n; ++w) {
    const std::uint32_t lb =
        std::max({ecc_lb_[w], dist_[w], new_radius_c - dist_[w]});
    ecc_lb_[w] = lb;
    if (w != center_ &&
        (lb < new_radius_c || (lb == new_radius_c && w < center_))) {
      candidates.push_back(w);
    }
  }
  ecc_lb_[center_] = new_radius_c;

  if (candidates.size() > options_.candidate_budget) return kNoVertex;

  // Exact re-evaluation, ascending vertex id — exactly the exhaustive
  // tie-break: the smallest-id vertex of minimum eccentricity wins.
  best_ecc = new_radius_c;
  Vertex best_v = center_;
  for (Vertex w : candidates) {
    const std::uint32_t ecc = exact_eccentricity(g, w);
    ++report.bfs_runs;
    ++report.candidates;
    ecc_lb_[w] = ecc;
    if (ecc < best_ecc || (ecc == best_ecc && w < best_v)) {
      best_ecc = ecc;
      best_v = w;
    }
  }
  return best_v;
}

void IncrementalTree::reminimize_parents(const graph::Graph& g) {
  std::vector<Vertex> frontier = affected_;
  for (Vertex w : affected_) {
    for (Vertex y : g.neighbors(w)) frontier.push_back(y);
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  for (Vertex w : frontier) {
    if (w == center_) continue;
    Vertex best_parent = kNoVertex;
    for (Vertex y : g.neighbors(w)) {
      if (dist_[y] + 1 == dist_[w]) {
        best_parent = y;  // sorted neighbors: first hit is smallest id
        break;
      }
    }
    MG_EXPECTS_MSG(best_parent != kNoVertex,
                   "repaired BFS levels lost a parent witness");
    parent_[w] = best_parent;
  }
}

MaintenanceReport IncrementalTree::on_node_event(const graph::Graph& g) {
  MaintenanceReport report = full_rebuild(g, {});
  finish(report);
  return report;
}

MaintenanceReport IncrementalTree::on_edge_added(const graph::Graph& g,
                                                 graph::Vertex u,
                                                 graph::Vertex v) {
  MaintenanceReport report;
  const Vertex n = g.vertex_count();
  if (n != dist_.size() || n < 2) {
    report = full_rebuild(g, report);
    finish(report);
    return report;
  }
  MG_EXPECTS(u < n && v < n);
  MG_EXPECTS_MSG(g.has_edge(u, v), "report insertions after mutating");

  // Certified savings bound: inserting {u, v} can lower any distance — and
  // therefore any eccentricity — by at most s = d_old(u, v) - 1, the
  // length of the detour the edge replaces.
  std::uint32_t detour;
  if (have_common_neighbor(g, u, v)) {
    detour = 2;
  } else {
    detour = detour_distance(g, u, v);
    ++report.bfs_runs;
  }
  const std::uint32_t savings = detour - 1;

  const std::uint32_t du = dist_[u];
  const std::uint32_t dv = dist_[v];
  const std::uint32_t diff = du > dv ? du - dv : dv - du;

  std::uint32_t new_radius_c = radius_;  // ecc(center) after the insertion
  affected_.clear();
  if (diff >= 2) {
    // The edge shortcuts the BFS from the center: propagate the
    // improvement from the deeper endpoint.  Distances only decrease, so
    // the wave is confined to the region the shortcut actually reaches.
    const Vertex hi = du > dv ? u : v;
    const Vertex lo = du > dv ? v : u;
    std::vector<char> improved(n, 0);
    dist_[hi] = dist_[lo] + 1;
    improved[hi] = 1;
    affected_.push_back(hi);
    queue_.clear();
    queue_.push_back(hi);
    std::size_t head = 0;
    while (head < queue_.size()) {
      const Vertex x = queue_[head++];
      const std::uint32_t dx = dist_[x];
      for (Vertex y : g.neighbors(x)) {
        if (dist_[y] > dx + 1) {
          dist_[y] = dx + 1;
          if (!improved[y]) {
            improved[y] = 1;
            affected_.push_back(y);
          }
          queue_.push_back(y);
        }
      }
    }
    new_radius_c = 0;
    for (Vertex w = 0; w < n; ++w) {
      new_radius_c = std::max(new_radius_c, dist_[w]);
    }
  }

  // Decay every certified bound by the savings — the worst case over all
  // pairs — then re-certify with fresh reference sweeps from both
  // endpoints on the mutated graph: the real distance change concentrates
  // around the new edge, and exact post-mutation references there prune
  // most of the pessimism right back.
  for (Vertex w = 0; w < n; ++w) {
    ecc_lb_[w] = ecc_lb_[w] > savings ? ecc_lb_[w] - savings : 0;
  }
  reference_sweep(g, u, report);
  reference_sweep(g, v, report);
  std::uint32_t best = new_radius_c;
  const Vertex best_v = rescan_center(g, new_radius_c, report, best);
  if (best_v == kNoVertex) {
    report = full_rebuild(g, report);
    finish(report);
    return report;
  }

  if (best_v != center_) {
    tree_ = bfs_tree(g, best_v);
    ++report.bfs_runs;
    adopt_tree();
    MG_ENSURES(radius_ == best);
    ecc_lb_[center_] = radius_;
    report.path = MaintenancePath::kRecenter;
    report.touched = n;
    finish(report);
    return report;
  }

  radius_ = new_radius_c;
  if (diff <= 1) {
    // Levels are untouched; the only from-scratch difference possible is
    // the deeper endpoint adopting the new neighbor as a smaller-id
    // parent.
    bool changed = false;
    if (dv == du + 1 && u < parent_[v]) {
      parent_[v] = u;
      changed = true;
    } else if (du == dv + 1 && v < parent_[u]) {
      parent_[u] = v;
      changed = true;
    }
    if (changed) {
      rebuild_rooted_tree();
      report.path = MaintenancePath::kParentPatch;
      report.touched = 1;
    } else {
      report.path = MaintenancePath::kNoop;
    }
  } else {
    reminimize_parents(g);
    rebuild_rooted_tree();
    report.path = MaintenancePath::kSubtreeRepair;
    report.touched = affected_.size();
  }
  finish(report);
  return report;
}

MaintenanceReport IncrementalTree::on_edge_removed(const graph::Graph& g,
                                                   graph::Vertex u,
                                                   graph::Vertex v) {
  MaintenanceReport report;
  const Vertex n = g.vertex_count();
  if (n != dist_.size() || n < 2) {
    report = full_rebuild(g, report);
    finish(report);
    return report;
  }
  MG_EXPECTS(u < n && v < n);
  MG_EXPECTS_MSG(!g.has_edge(u, v), "report removals after mutating");

  // Deletions only *increase* eccentricities, so while ecc(center) is
  // provably unchanged the center keeps its title (every smaller-id vertex
  // was strictly worse and only got worse) and `ecc_lb_` stays valid.
  std::uint32_t du = dist_[u];
  std::uint32_t dv = dist_[v];
  if (du == dv) {
    // A same-level edge lies on no shortest path from the center: the BFS
    // distance vector, the parent choices, and the radius all survive.
    report.path = MaintenancePath::kNoop;
    finish(report);
    return report;
  }
  if (du > dv) {
    std::swap(u, v);
    std::swap(du, dv);
  }
  // dv == du + 1: the deeper endpoint needs another previous-level witness
  // or its own distance (and possibly its whole subtree's) grows.
  Vertex witness = kNoVertex;
  for (Vertex x : g.neighbors(v)) {
    if (dist_[x] == du) {
      witness = x;  // sorted neighbors: first hit is smallest id
      break;
    }
  }
  if (witness != kNoVertex) {
    if (parent_[v] == u) {
      parent_[v] = witness;
      rebuild_rooted_tree();
      report.path = MaintenancePath::kParentPatch;
      report.touched = 1;
    } else {
      report.path = MaintenancePath::kNoop;
    }
    finish(report);
    return report;
  }

  // The deeper endpoint lost its last previous-level witness, so its BFS
  // level grows — and the growth cascades strictly downward: a vertex
  // keeps its level iff it keeps an *unaffected* previous-level witness,
  // so affectedness at level d depends only on level d - 1 and one
  // level-ordered sweep settles the whole affected set.
  std::vector<char> affected(n, 0);
  affected_.clear();
  std::vector<Vertex> level_now{v};
  std::vector<Vertex> level_next;
  std::uint32_t level = dv;
  while (!level_now.empty()) {
    std::sort(level_now.begin(), level_now.end());
    level_now.erase(std::unique(level_now.begin(), level_now.end()),
                    level_now.end());
    level_next.clear();
    for (Vertex w : level_now) {
      bool has_witness = false;
      for (Vertex x : g.neighbors(w)) {
        if (dist_[x] + 1 == level && !affected[x]) {
          has_witness = true;
          break;
        }
      }
      if (has_witness) continue;
      affected[w] = 1;
      affected_.push_back(w);
      for (Vertex y : g.neighbors(w)) {
        if (dist_[y] == level + 1) level_next.push_back(y);
      }
    }
    level_now.swap(level_next);
    ++level;
  }

  // Repair: new distances for the affected region by a bucketed
  // label-setting pass seeded from its unaffected boundary (whose
  // distances are exact and unchanged).  Level 1 is never affected — the
  // center itself is its witness — so the boundary is non-empty whenever
  // the graph stays connected.
  std::vector<std::vector<Vertex>> buckets(
      static_cast<std::size_t>(n) + 2);
  for (Vertex w : affected_) {
    std::uint32_t base = kUnreachable;
    for (Vertex x : g.neighbors(w)) {
      if (!affected[x]) base = std::min(base, dist_[x] + 1);
    }
    dist_[w] = base;
    if (base <= n) buckets[base].push_back(w);
  }
  for (std::uint32_t d = 0; d + 1 < buckets.size(); ++d) {
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const Vertex w = buckets[d][i];
      if (dist_[w] != d) continue;  // stale entry, relaxed since
      for (Vertex y : g.neighbors(w)) {
        if (affected[y] && dist_[y] > d + 1) {
          dist_[y] = d + 1;
          buckets[d + 1].push_back(y);
        }
      }
    }
  }
  for (Vertex w : affected_) {
    MG_EXPECTS_MSG(dist_[w] < n, "edge removal disconnected the graph");
  }

  // ecc(center) may have grown past a rival's: re-derive it exactly from
  // the repaired distance vector, then run the same certificate scan as
  // insertions (savings = 0 — deletion bounds are still valid, distances
  // from the center only re-floor them).
  std::uint32_t new_radius_c = 0;
  for (Vertex w = 0; w < n; ++w) {
    new_radius_c = std::max(new_radius_c, dist_[w]);
  }
  // Deletion bounds are still valid (eccentricities only grew); one fresh
  // sweep from the endpoint whose level moved re-certifies its region
  // before the scan.
  reference_sweep(g, v, report);
  std::uint32_t best = new_radius_c;
  const Vertex best_v = rescan_center(g, new_radius_c, report, best);
  if (best_v == kNoVertex) {
    report = full_rebuild(g, report);
    finish(report);
    return report;
  }
  if (best_v != center_) {
    tree_ = bfs_tree(g, best_v);
    ++report.bfs_runs;
    adopt_tree();
    MG_ENSURES(radius_ == best);
    ecc_lb_[center_] = radius_;
    report.path = MaintenancePath::kRecenter;
    report.touched = n;
    finish(report);
    return report;
  }

  radius_ = new_radius_c;
  reminimize_parents(g);
  rebuild_rooted_tree();
  report.path = MaintenancePath::kSubtreeRepair;
  report.touched = affected_.size();
  finish(report);
  return report;
}

}  // namespace mg::tree
