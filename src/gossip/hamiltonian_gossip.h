// §1 / Fig. 1: when the network has a Hamiltonian circuit, gossiping is
// solved optimally in n - 1 rounds by rotation — in round 0 every processor
// sends its own message to its clockwise neighbor, and in every later round
// it forwards the message it just received.  The schedule is unicast, so it
// is optimal under the telephone model too.
#pragma once

#include <optional>

#include "graph/graph.h"
#include "graph/hamiltonian.h"
#include "model/schedule.h"

namespace mg::gossip {

/// Builds the n-1-round rotation schedule along the given circuit (a
/// permutation of 0..n-1; consecutive vertices, and last-to-first, must be
/// adjacent in `g`).  Message ids are processor ids.
[[nodiscard]] model::Schedule rotation_schedule(
    const graph::Graph& g, const std::vector<graph::Vertex>& circuit);

/// Searches for a Hamiltonian circuit (budgeted exact backtracking) and, if
/// one is found, returns the optimal rotation schedule.
[[nodiscard]] std::optional<model::Schedule> hamiltonian_gossip(
    const graph::Graph& g, std::uint64_t node_budget = 50'000'000);

}  // namespace mg::gossip
