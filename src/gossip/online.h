// §4 online adaptation: "The only global information they need is the
// value of i, j, and k.  Once this information is disseminated throughout
// the network, each processor may send its messages at the specified
// times."
//
// `OnlineProcessor` encapsulates one processor: it is constructed from
// purely local information (its own labels, level, parent/child ids and
// the children's subtree intervals) and decides every transmission from
// that plus the messages it has observed arriving.  `run_online` executes
// the distributed protocol round by round; the resulting global schedule
// is identical to the offline ConcurrentUpDown schedule (asserted by the
// test suite and the online-vs-offline bench).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

/// Everything processor `self` knows before the protocol starts.
struct LocalInfo {
  std::uint32_t n = 0;          ///< number of processors (and messages)
  graph::Vertex self = 0;
  tree::Label i = 0;            ///< own DFS label / own message id
  tree::Label j = 0;            ///< last label in own subtree
  std::uint32_t k = 0;          ///< level in the tree
  bool has_parent = false;
  /// True when this vertex is its parent's first DFS child (i = i' + 1),
  /// i.e. its own message is the parent's lip-message.  One locally known
  /// bit: the processor's label is one more than its parent's.
  bool first_child = false;
  graph::Vertex parent = graph::kNoVertex;
  std::vector<graph::Vertex> children;                     ///< DFS order
  std::vector<std::pair<tree::Label, tree::Label>> child_intervals;
};

/// Extracts `LocalInfo` for vertex `v` (the dissemination step).
[[nodiscard]] LocalInfo local_info_for(const Instance& instance,
                                       graph::Vertex v);

/// One processor executing ConcurrentUpDown from local information.
class OnlineProcessor {
 public:
  explicit OnlineProcessor(LocalInfo info);

  /// Observes message `m` arriving at time `t`.  `from_parent` distinguishes
  /// the o-message stream (which triggers the dynamic (D2) relays) from
  /// child deliveries.
  void deliver(std::size_t t, model::Message m, bool from_parent);

  /// The transmission this processor performs at time `t`, if any.  Must be
  /// called after all `deliver(t, ...)` calls for the same `t` (receive
  /// happens before send within a round).
  [[nodiscard]] std::optional<model::Transmission> send_at(std::size_t t);

  [[nodiscard]] const LocalInfo& info() const { return info_; }

 private:
  void plan(std::size_t t, model::Message m, bool to_parent,
            std::vector<graph::Vertex> down_receivers);

  struct Planned {
    model::Message message = 0;
    bool to_parent = false;
    std::vector<graph::Vertex> down_receivers;
  };

  LocalInfo info_;
  std::uint32_t w_ = 0;
  std::map<std::size_t, Planned> planned_;
};

/// Runs all processors round by round and returns the emergent global
/// schedule (message ids are DFS labels, as for the offline algorithms).
[[nodiscard]] model::Schedule run_online(const Instance& instance);

}  // namespace mg::gossip
