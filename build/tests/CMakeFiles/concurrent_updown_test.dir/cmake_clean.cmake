file(REMOVE_RECURSE
  "CMakeFiles/concurrent_updown_test.dir/concurrent_updown_test.cpp.o"
  "CMakeFiles/concurrent_updown_test.dir/concurrent_updown_test.cpp.o.d"
  "concurrent_updown_test"
  "concurrent_updown_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_updown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
