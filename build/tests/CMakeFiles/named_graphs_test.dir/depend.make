# Empty dependencies file for named_graphs_test.
# This may be replaced when dependencies are built.
