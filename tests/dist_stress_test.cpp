// Concurrency stress battery for the `mg::dist` runtime — the test the TSAN
// CI leg hammers.  Many actors step on a real worker pool while the mailbox
// bus takes concurrent posts behind its stripe locks; the assertions are
// (1) accounting identities: the RunReport tallies equal both the emergent
//     schedule's own arithmetic and the `dist.*` observability counters,
// (2) determinism: for a fixed seed the emergent execution is bit-identical
//     across reruns and across worker counts,
// (3) the recovery control plane stays race-free under threads + live
//     faults.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "dist/runtime.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "model/schedule.h"
#include "obs/registry.h"

namespace mg::dist {
namespace {

/// Sum of transmissions / point-to-point deliveries a schedule implies.
struct ScheduleTally {
  std::size_t sends = 0;
  std::size_t deliveries = 0;
};

ScheduleTally tally(const model::Schedule& schedule) {
  ScheduleTally t;
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      ++t.sends;
      t.deliveries += tx.receivers.size();
    }
  }
  return t;
}

TEST(DistStress, ManyActorsManyThreadsAccountingIdentities) {
  const graph::Graph g = graph::grid(8, 8);  // 64 actors
  RuntimeOptions options;
  options.threads = 8;

#if MG_OBS_ENABLED
  const obs::Snapshot before = obs::Registry::global().snapshot();
#endif
  const DistOutcome outcome =
      run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
  ASSERT_TRUE(outcome.verify.match) << outcome.verify.detail;
  ASSERT_TRUE(outcome.run.complete);

  // (1a) RunReport tallies == the emergent schedule's own arithmetic.
  const ScheduleTally emergent = tally(outcome.run.emergent);
  EXPECT_EQ(outcome.run.messages, emergent.sends);
  EXPECT_EQ(outcome.run.deliveries, emergent.deliveries);
  EXPECT_EQ(outcome.run.repair.round_count(), 0u);

#if MG_OBS_ENABLED
  // (1b) RunReport tallies == the dist.* counter deltas this run added.
  const obs::Snapshot after = obs::Registry::global().snapshot();
  const auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_EQ(delta("dist.runs"), 1u);
  EXPECT_EQ(delta("dist.rounds"), outcome.run.horizon);
  EXPECT_EQ(delta("dist.messages"), outcome.run.messages);
  EXPECT_EQ(delta("dist.deliveries"), outcome.run.deliveries);
  EXPECT_EQ(delta("dist.control_messages"), 0u);
  EXPECT_EQ(delta("dist.injected_drops"), 0u);
  EXPECT_EQ(delta("dist.crashed_sends"), 0u);
#endif
}

TEST(DistStress, BitIdenticalRerunsForFixedSeed) {
  const graph::Graph g = graph::grid(6, 8);
  fault::FaultPlan plan;
  plan.drop_rate(0.15).seed(21).crash(17, 10);
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    SCOPED_TRACE("bus seed " + std::to_string(seed));
    RuntimeOptions options;
    options.faults = &plan;
    options.threads = 8;
    options.seed = seed;
    const DistOutcome a =
        run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
    const DistOutcome b =
        run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
    EXPECT_TRUE(model::equivalent(a.run.emergent, b.run.emergent));
    EXPECT_TRUE(model::equivalent(a.run.repair, b.run.repair));
    EXPECT_EQ(a.run.messages, b.run.messages);
    EXPECT_EQ(a.run.deliveries, b.run.deliveries);
    EXPECT_EQ(a.run.control_messages, b.run.control_messages);
    EXPECT_EQ(a.run.recovery_rounds, b.run.recovery_rounds);
    EXPECT_EQ(a.run.injected_drops, b.run.injected_drops);
    EXPECT_DOUBLE_EQ(a.run.coverage, b.run.coverage);
  }
}

TEST(DistStress, WorkerCountNeverChangesTheExecution) {
  const graph::Graph g = graph::cycle(48);
  fault::FaultPlan plan;
  plan.drop_rate(0.1).seed(5);
  std::optional<DistOutcome> reference;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}, std::size_t{16}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RuntimeOptions options;
    options.faults = &plan;
    options.threads = threads;
    DistOutcome outcome =
        run_distributed(g, gossip::Algorithm::kUpDown, options);
    EXPECT_TRUE(outcome.run.complete);
    if (!reference.has_value()) {
      reference.emplace(std::move(outcome));
    } else {
      EXPECT_TRUE(
          model::equivalent(reference->run.emergent, outcome.run.emergent));
      EXPECT_TRUE(
          model::equivalent(reference->run.repair, outcome.run.repair));
      EXPECT_EQ(reference->run.recovery_rounds, outcome.run.recovery_rounds);
      EXPECT_EQ(reference->run.control_messages,
                outcome.run.control_messages);
    }
  }
}

TEST(DistStress, RecoveryControlPlaneUnderThreadsAndLiveFaults) {
  // Crash + heavy drops force many digest/grant/data cycles; 8 workers
  // hammer the stripe locks from both the decide and route phases.
  const graph::Graph g = graph::grid(7, 7);
  fault::FaultPlan plan;
  plan.drop_rate(0.25).seed(13).crash(24, 8);

#if MG_OBS_ENABLED
  const obs::Snapshot before = obs::Registry::global().snapshot();
#endif
  RuntimeOptions options;
  options.faults = &plan;
  options.threads = 8;
  const DistOutcome outcome =
      run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
  // Grid minus one interior vertex stays connected: full closure.
  EXPECT_TRUE(outcome.run.recovered);
  EXPECT_GT(outcome.run.recovery_rounds, 0u);
  EXPECT_GT(outcome.run.control_messages, 0u);

  const ScheduleTally main_tally = tally(outcome.run.emergent);
  const ScheduleTally repair_tally = tally(outcome.run.repair);
  EXPECT_EQ(outcome.run.messages, main_tally.sends + repair_tally.sends);

#if MG_OBS_ENABLED
  const obs::Snapshot after = obs::Registry::global().snapshot();
  const auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_EQ(delta("dist.messages"), outcome.run.messages);
  EXPECT_EQ(delta("dist.deliveries"), outcome.run.deliveries);
  EXPECT_EQ(delta("dist.control_messages"), outcome.run.control_messages);
  EXPECT_EQ(delta("dist.recovery.rounds"), outcome.run.recovery_rounds);
  EXPECT_EQ(delta("dist.injected_drops"), outcome.run.injected_drops);
  EXPECT_EQ(delta("dist.crashed_sends"), outcome.run.crashed_sends);
  EXPECT_EQ(delta("dist.lost_receives"), outcome.run.lost_receives);
#endif
}

TEST(DistStress, RepeatedThreadedRunsShareNothing) {
  // Back-to-back threaded runs on one graph must not leak state between
  // runtimes (each builds its own bus, pool, and actors).
  const graph::Graph g = graph::grid(5, 6);
  model::Schedule reference;
  for (int iteration = 0; iteration < 6; ++iteration) {
    SCOPED_TRACE("iteration " + std::to_string(iteration));
    RuntimeOptions options;
    options.threads = 8;
    const DistOutcome outcome =
        run_distributed(g, gossip::Algorithm::kTelephone, options);
    ASSERT_TRUE(outcome.verify.match) << outcome.verify.detail;
    if (iteration == 0) {
      reference = outcome.run.emergent;
    } else {
      EXPECT_TRUE(model::equivalent(reference, outcome.run.emergent));
    }
  }
}

}  // namespace
}  // namespace mg::dist
