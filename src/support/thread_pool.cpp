#include "support/thread_pool.h"

#include <atomic>
#include <exception>

#include "support/contracts.h"

namespace mg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MG_ASSERT_MSG(!stopping_, "submit on a stopping pool");
    tasks_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks =
      std::min(count, std::max<std::size_t>(1, thread_count()) * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;
  std::exception_ptr first_error;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    submit([&, begin, end] {
      std::exception_ptr error;
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mg
