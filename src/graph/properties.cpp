#include "graph/properties.h"

#include <algorithm>
#include <queue>

#include "support/contracts.h"
#include "support/thread_pool.h"

namespace mg::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  MG_EXPECTS(source < g.vertex_count());
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::vector<Vertex> frontier{source};
  std::vector<Vertex> next;
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (Vertex u : frontier) {
      for (Vertex v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::optional<std::uint32_t> eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return std::nullopt;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

Metrics compute_metrics(const Graph& g, ThreadPool* pool) {
  const Vertex n = g.vertex_count();
  MG_EXPECTS(n >= 1);
  Metrics metrics;
  metrics.eccentricity.assign(n, 0);

  // One reusable BFS scratch (dist + frontier buffers) per parallel slot
  // instead of three allocations per source; sources are strided over the
  // slots so the eccentricity array is identical for any thread count.
  struct Scratch {
    std::vector<std::uint32_t> dist;
    std::vector<Vertex> frontier;
    std::vector<Vertex> next;
  };
  const std::size_t slots =
      pool == nullptr || pool->thread_count() <= 1
          ? 1
          : std::min<std::size_t>(pool->thread_count(), n);
  std::vector<Scratch> scratch(slots);
  auto sweep_slot = [&](std::size_t slot) {
    Scratch& s = scratch[slot];
    for (Vertex source = static_cast<Vertex>(slot); source < n;
         source += static_cast<Vertex>(slots)) {
      s.dist.assign(n, kUnreachable);
      s.frontier.assign(1, source);
      s.dist[source] = 0;
      std::uint32_t level = 0;
      std::uint32_t ecc = 0;
      Vertex reached = 1;
      while (!s.frontier.empty()) {
        ++level;
        s.next.clear();
        for (Vertex u : s.frontier) {
          for (Vertex v : g.neighbors(u)) {
            if (s.dist[v] == kUnreachable) {
              s.dist[v] = level;
              s.next.push_back(v);
              ++reached;
            }
          }
        }
        if (!s.next.empty()) ecc = level;
        s.frontier.swap(s.next);
      }
      MG_EXPECTS_MSG(reached == n, "compute_metrics requires connectivity");
      metrics.eccentricity[source] = ecc;
    }
  };
  if (slots > 1) {
    pool->parallel_for(slots, sweep_slot);
  } else {
    sweep_slot(0);
  }

  metrics.radius = kUnreachable;
  metrics.diameter = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (metrics.eccentricity[v] < metrics.radius) {
      metrics.radius = metrics.eccentricity[v];
      metrics.center = v;
    }
    metrics.diameter = std::max(metrics.diameter, metrics.eccentricity[v]);
  }
  return metrics;
}

bool is_connected(const Graph& g) {
  if (g.vertex_count() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

bool is_tree(const Graph& g) {
  return g.vertex_count() >= 1 && is_connected(g) &&
         g.edge_count() == g.vertex_count() - 1;
}

bool is_bipartite(const Graph& g) {
  const Vertex n = g.vertex_count();
  std::vector<std::int8_t> color(n, -1);
  std::queue<Vertex> queue;
  for (Vertex start = 0; start < n; ++start) {
    if (color[start] != -1) continue;
    color[start] = 0;
    queue.push(start);
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop();
      for (Vertex v : g.neighbors(u)) {
        if (color[v] == -1) {
          color[v] = static_cast<std::int8_t>(1 - color[u]);
          queue.push(v);
        } else if (color[v] == color[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const Vertex n = g.vertex_count();
  if (n == 0) return stats;
  stats.min = g.degree(0);
  stats.max = g.degree(0);
  std::size_t total = 0;
  for (Vertex v = 0; v < n; ++v) {
    const Vertex d = g.degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    total += d;
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

}  // namespace mg::graph
