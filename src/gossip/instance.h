// A tree-gossip problem instance: the rooted (minimum-depth) spanning tree
// plus its DFS message labeling.  All §3.2 algorithms consume this bundle.
//
// Message ids in every schedule produced from an Instance are DFS *labels*:
// processor v initially holds message labels().label(v) (see `initial()`).
#pragma once

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"
#include "tree/labeling.h"
#include "tree/spanning_tree.h"

namespace mg {
class ThreadPool;
}

namespace mg::gossip {

class Instance {
 public:
  /// Wraps an existing rooted tree (any spanning tree; the paper's bound
  /// n + height follows whatever tree is supplied).
  explicit Instance(tree::RootedTree t)
      : tree_(std::make_unique<tree::RootedTree>(std::move(t))),
        labels_(std::make_unique<tree::DfsLabeling>(*tree_)) {}

  /// §3.1: reduces gossiping on an arbitrary connected network to the
  /// minimum-depth spanning tree, so height() == network radius.
  static Instance from_network(const graph::Graph& g,
                               ThreadPool* pool = nullptr) {
    return Instance(tree::min_depth_spanning_tree(g, pool));
  }

  [[nodiscard]] const tree::RootedTree& tree() const { return *tree_; }
  [[nodiscard]] const tree::DfsLabeling& labels() const { return *labels_; }

  [[nodiscard]] graph::Vertex vertex_count() const {
    return tree_->vertex_count();
  }

  /// Tree height r; equals the network radius for `from_network` instances.
  [[nodiscard]] std::uint32_t radius() const { return tree_->height(); }

  /// Initial hold assignment for the model validator: processor v holds the
  /// message whose id is v's DFS label.
  [[nodiscard]] std::vector<model::Message> initial() const {
    std::vector<model::Message> init(vertex_count());
    for (graph::Vertex v = 0; v < vertex_count(); ++v) {
      init[v] = labels_->label(v);
    }
    return init;
  }

 private:
  std::unique_ptr<tree::RootedTree> tree_;   // stable address: labels_
  std::unique_ptr<tree::DfsLabeling> labels_;  // holds a pointer to *tree_
};

}  // namespace mg::gossip
