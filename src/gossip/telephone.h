// Telephone (unicasting) baseline: the restricted model where each
// processor may transmit to at most ONE adjacent processor per round (§1).
// Gossiping on a tree then requires the parent to send each message to each
// child separately, so a vertex with c children spends ~c*(n - subtree)
// rounds relaying — the multicast model collapses that factor to 1, which
// is the paper's core motivation ("multicasting is a much more efficient
// way to communicate").
//
// The schedule built here is the natural greedy store-and-forward gossip:
// the fixed Simple up phase (already unicast) overlapped with a greedy
// unicast down relay.  Its length is Theta(n * max-degree) on stars, vs
// n + r for ConcurrentUpDown.
#pragma once

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

/// Greedy telephone-model gossip on the instance's tree.  The result
/// satisfies `Schedule::is_telephone()`.
[[nodiscard]] model::Schedule telephone_gossip(const Instance& instance);

/// Lower bound on telephone-model tree gossip: some vertex must deliver
/// each of its children's o-message sets one message at a time, in series
/// with receiving its own; this returns the largest such per-vertex load,
/// max_v ( sum_{c child of v} (n - subtree(c)) ), a crude but instructive
/// floor for the bench comparison.
[[nodiscard]] std::size_t telephone_tree_load_bound(const Instance& instance);

}  // namespace mg::gossip
