// Tests for every graph family generator: sizes, edge counts, degrees,
// connectivity and (where known in closed form) radius/diameter.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/properties.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace mg::graph {
namespace {

TEST(Generators, PathShape) {
  const Graph g = path(6);
  EXPECT_EQ(g.vertex_count(), 6u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_TRUE(is_tree(g));
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.diameter, 5u);
  EXPECT_EQ(m.radius, 3u);  // ceil(5/2)
}

TEST(Generators, OddPathRadiusIsHalf) {
  const Graph g = path(9);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.radius, 4u);
  EXPECT_EQ(m.center, 4u);  // the midpoint
}

TEST(Generators, CycleShape) {
  const Graph g = cycle(7);
  EXPECT_EQ(g.edge_count(), 7u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.radius, 3u);
  EXPECT_EQ(m.diameter, 3u);
}

TEST(Generators, CycleRequiresThree) {
  EXPECT_THROW(cycle(2), ContractViolation);
}

TEST(Generators, CompleteShape) {
  const Graph g = complete(6);
  EXPECT_EQ(g.edge_count(), 15u);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.radius, 1u);
  EXPECT_EQ(m.diameter, 1u);
}

TEST(Generators, CompleteBipartiteShape) {
  const Graph g = complete_bipartite(2, 3);
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, StarShape) {
  const Graph g = star(9);
  EXPECT_EQ(g.edge_count(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.radius, 1u);
  EXPECT_EQ(m.center, 0u);
  EXPECT_EQ(m.diameter, 2u);
}

TEST(Generators, WheelShape) {
  const Graph g = wheel(8);  // hub + 7-cycle
  EXPECT_EQ(g.vertex_count(), 8u);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_EQ(g.degree(0), 7u);
  for (Vertex v = 1; v < 8; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(compute_metrics(g).radius, 1u);
}

TEST(Generators, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.vertex_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 4u * 2);  // rows*(cols-1)+cols*(rows-1)
  EXPECT_TRUE(is_bipartite(g));
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.diameter, 5u);  // corner to corner
}

TEST(Generators, SingleRowGridIsPath) {
  EXPECT_EQ(grid(1, 5), path(5));
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = torus(4, 5);
  EXPECT_EQ(g.vertex_count(), 20u);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.diameter, 2u + 2u);  // floor(4/2)+floor(5/2)
  EXPECT_EQ(m.radius, m.diameter);  // vertex-transitive
}

TEST(Generators, HypercubeShape) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.vertex_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.radius, 4u);
  EXPECT_EQ(m.diameter, 4u);
}

TEST(Generators, KAryTreeIsTree) {
  for (Vertex k : {1u, 2u, 3u, 5u}) {
    const Graph g = k_ary_tree(40, k);
    EXPECT_TRUE(is_tree(g)) << "k=" << k;
  }
}

TEST(Generators, BinaryTreeRootDegree) {
  const Graph g = k_ary_tree(7, 2);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);  // parent + two children
  EXPECT_EQ(g.degree(6), 1u);  // leaf
}

TEST(Generators, CaterpillarShape) {
  const Graph g = caterpillar(4, 2);
  EXPECT_EQ(g.vertex_count(), 12u);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 3u);  // one spine neighbor + 2 legs
  EXPECT_EQ(g.degree(1), 4u);  // two spine neighbors + 2 legs
}

TEST(Generators, BinomialTreeShape) {
  const Graph g = binomial_tree(4);
  EXPECT_EQ(g.vertex_count(), 16u);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 4u);  // root of B_4 has degree 4
}

TEST(Generators, LollipopShape) {
  const Graph g = lollipop(4, 3);
  EXPECT_EQ(g.vertex_count(), 7u);
  EXPECT_EQ(g.edge_count(), 6u + 3u);
  EXPECT_EQ(g.degree(6), 1u);  // tail end
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomTreeIsUniformlyATree) {
  Rng rng(99);
  for (Vertex n : {1u, 2u, 3u, 10u, 57u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.vertex_count(), n);
    EXPECT_TRUE(is_tree(g)) << "n=" << n;
  }
}

TEST(Generators, RandomTreeDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(random_tree(30, a), random_tree(30, b));
}

TEST(Generators, RandomGnpConnected) {
  Rng rng(123);
  for (double p : {0.0, 0.05, 0.5}) {
    const Graph g = random_connected_gnp(40, p, rng);
    EXPECT_TRUE(is_connected(g)) << "p=" << p;
    EXPECT_EQ(g.vertex_count(), 40u);
  }
}

TEST(Generators, RandomGnpDensityScalesWithP) {
  Rng rng(7);
  const auto sparse = random_connected_gnp(60, 0.02, rng).edge_count();
  const auto dense = random_connected_gnp(60, 0.5, rng).edge_count();
  EXPECT_LT(sparse, dense);
}

TEST(Generators, RandomGeometricConnected) {
  Rng rng(21);
  for (double radius : {0.05, 0.2, 0.5}) {
    const Graph g = random_geometric(50, radius, rng);
    EXPECT_TRUE(is_connected(g)) << "radius=" << radius;
  }
}

TEST(Generators, RandomRegularNearRegularAndConnected) {
  Rng rng(31);
  const Graph g = random_regular(30, 4, rng);
  EXPECT_TRUE(is_connected(g));
  const auto stats = degree_stats(g);
  EXPECT_GE(stats.min, 2u);         // spanning-cycle floor
  EXPECT_LE(stats.max, 4u + 2u);    // pairing + cycle overlay
}

TEST(Generators, RandomRegularParityPrecondition) {
  Rng rng(1);
  EXPECT_THROW(random_regular(5, 3, rng), ContractViolation);
}

TEST(Generators, Torus3dShape) {
  const Graph g = torus3d(3, 4, 5);
  EXPECT_EQ(g.vertex_count(), 60u);
  EXPECT_TRUE(is_connected(g));
  const auto stats = degree_stats(g);
  // Exactly 6-regular: with every extent >= 3 the two wrap neighbors per
  // axis are always distinct.
  EXPECT_EQ(stats.min, 6u);
  EXPECT_EQ(stats.max, 6u);
  const Graph cube = torus3d(4, 4, 4);
  const auto cube_stats = degree_stats(cube);
  EXPECT_EQ(cube_stats.min, 6u);
  EXPECT_EQ(cube_stats.max, 6u);
  EXPECT_EQ(cube.edge_count(), 64u * 6u / 2u);
}

TEST(Generators, Torus3dRejectsSmallExtents) {
  EXPECT_THROW(torus3d(2, 3, 3), ContractViolation);
}

TEST(Generators, RandomRegularConfigurationExactDegree) {
  Rng rng(5);
  for (const Vertex d : {3u, 4u}) {
    const Graph g = random_regular_configuration(50, d, rng);
    EXPECT_TRUE(is_connected(g));
    const auto stats = degree_stats(g);
    EXPECT_EQ(stats.min, d) << "d=" << d;  // exactly regular, no overlay
    EXPECT_EQ(stats.max, d) << "d=" << d;
    EXPECT_EQ(g.edge_count(), 50u * d / 2u);
  }
}

TEST(Generators, RandomRegularConfigurationDeterministicPerSeed) {
  Rng a(99);
  Rng b(99);
  Rng c(100);
  const Graph first = random_regular_configuration(40, 3, a);
  EXPECT_EQ(first, random_regular_configuration(40, 3, b));
  EXPECT_NE(first, random_regular_configuration(40, 3, c));
}

TEST(Generators, RandomRegularConfigurationPreconditions) {
  Rng rng(1);
  EXPECT_THROW(random_regular_configuration(5, 3, rng), ContractViolation);
  EXPECT_THROW(random_regular_configuration(10, 2, rng), ContractViolation);
}

}  // namespace
}  // namespace mg::graph
