// Tests for the §4 online adaptation: the distributed protocol running on
// purely local information must reproduce the offline ConcurrentUpDown
// schedule exactly.
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/online.h"
#include "support/rng.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

TEST(Online, LocalInfoExtraction) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto info = local_info_for(instance, 4);
  EXPECT_EQ(info.n, 16u);
  EXPECT_EQ(info.self, 4u);
  EXPECT_EQ(info.i, 4u);
  EXPECT_EQ(info.j, 10u);
  EXPECT_EQ(info.k, 1u);
  EXPECT_TRUE(info.has_parent);
  EXPECT_FALSE(info.first_child);
  EXPECT_EQ(info.parent, 0u);
  EXPECT_EQ(info.children, (std::vector<graph::Vertex>{5, 8}));
  ASSERT_EQ(info.child_intervals.size(), 2u);
  EXPECT_EQ(info.child_intervals[0], std::make_pair(5u, 7u));
  EXPECT_EQ(info.child_intervals[1], std::make_pair(8u, 10u));
}

TEST(Online, FirstChildBit) {
  const auto instance = Instance::from_network(graph::fig4_network());
  EXPECT_TRUE(local_info_for(instance, 1).first_child);
  EXPECT_TRUE(local_info_for(instance, 5).first_child);
  EXPECT_FALSE(local_info_for(instance, 8).first_child);
  EXPECT_FALSE(local_info_for(instance, 0).has_parent);
}

TEST(Online, MatchesOfflineOnFig4) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto offline = concurrent_updown(instance);
  const auto online = run_online(instance);
  EXPECT_TRUE(model::equivalent(offline, online))
      << "offline:\n" << offline.to_string()
      << "online:\n" << online.to_string();
}

TEST(Online, MatchesOfflineAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 6u, 10u}) {
      const auto instance = Instance::from_network(family.make(knob));
      EXPECT_TRUE(model::equivalent(concurrent_updown(instance),
                                    run_online(instance)))
          << family.name << " knob=" << knob;
    }
  }
}

TEST(Online, MatchesOfflineOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const auto n = static_cast<graph::Vertex>(2 + rng.below(40));
    const auto instance =
        Instance(tree::root_tree_graph(graph::random_tree(n, rng), 0));
    EXPECT_TRUE(model::equivalent(concurrent_updown(instance),
                                  run_online(instance)))
        << "seed=" << seed << " n=" << n;
  }
}

TEST(Online, ScheduleIsValidOnItsOwn) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = run_online(instance);
  test::expect_valid_gossip(instance, schedule);
}

TEST(Online, ProcessorSendsNothingWithoutPlan) {
  const auto instance = Instance::from_network(graph::path(5));
  OnlineProcessor proc(local_info_for(instance, instance.tree().root()));
  // The root never sends at time 0 (no lip, D3 message 0 waits).
  EXPECT_FALSE(proc.send_at(0).has_value());
}

TEST(Online, DeliverTriggersRelay) {
  // A middle vertex relays an o-message from its parent the round it
  // arrives (outside the delay window).
  const auto instance = Instance::from_network(graph::path(7));
  const auto& tree = instance.tree();
  graph::Vertex middle = graph::kNoVertex;
  for (graph::Vertex v = 0; v < 7; ++v) {
    if (!tree.is_root(v) && !tree.is_leaf(v)) middle = v;
  }
  ASSERT_NE(middle, graph::kNoVertex);
  OnlineProcessor proc(local_info_for(instance, middle));
  const auto& info = proc.info();
  const std::size_t safe_time = info.n + info.k;  // last (D1) arrival slot
  proc.deliver(safe_time, 0, /*from_parent=*/true);
  const auto tx = proc.send_at(safe_time);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->message, 0u);
}

}  // namespace
}  // namespace mg::gossip
