#include "gossip/online.h"

#include <algorithm>

#include "support/contracts.h"

namespace mg::gossip {

using model::Message;
using model::Transmission;
using tree::Label;

LocalInfo local_info_for(const Instance& instance, graph::Vertex v) {
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  LocalInfo info;
  info.n = tree.vertex_count();
  info.self = v;
  info.i = labels.label(v);
  info.j = labels.subtree_end(v);
  info.k = tree.level(v);
  info.has_parent = !tree.is_root(v);
  info.first_child = info.has_parent && labels.lip_count(v) == 1;
  info.parent = info.has_parent ? tree.parent(v) : graph::kNoVertex;
  const auto kids = tree.children(v);
  info.children.assign(kids.begin(), kids.end());
  for (graph::Vertex c : info.children) {
    info.child_intervals.emplace_back(labels.label(c), labels.subtree_end(c));
  }
  return info;
}

OnlineProcessor::OnlineProcessor(LocalInfo info) : info_(std::move(info)) {
  const Label i = info_.i;
  const Label j = info_.j;
  const std::uint32_t k = info_.k;
  w_ = info_.first_child ? 1u : 0u;

  // (U3)/(U4)/(D3) are static functions of (i, j, k, w) and the children's
  // intervals: plan them now.  (D2) is dynamic (driven by arrivals).
  if (info_.has_parent) {
    // (U3): the lip-message leaves at time 0.
    if (w_ == 1) plan(0, i, /*to_parent=*/true, {});
    // (U4): rip-messages i+w..j leave at times i-k+w..j-k.
    for (Label m = i + w_; m <= j; ++m) {
      plan(m - k, m, /*to_parent=*/true, {});
    }
  }
  // (D3): b-messages go down at times i-k..j-k (message i to all children,
  // delayed to j-k+1 when i == k; others skip the owning child).
  if (!info_.children.empty()) {
    for (Label m = i; m <= j; ++m) {
      std::vector<graph::Vertex> receivers;
      if (m == i) {
        receivers = info_.children;
      } else {
        for (std::size_t c = 0; c < info_.children.size(); ++c) {
          const auto& [ci, cj] = info_.child_intervals[c];
          if (m < ci || m > cj) receivers.push_back(info_.children[c]);
        }
        if (receivers.empty()) continue;
      }
      const std::size_t t = (m == i && i == k)
                                ? static_cast<std::size_t>(j - k + 1)
                                : static_cast<std::size_t>(m - k);
      plan(t, m, /*to_parent=*/false, std::move(receivers));
    }
  }
}

void OnlineProcessor::plan(std::size_t t, Message m, bool to_parent,
                           std::vector<graph::Vertex> down_receivers) {
  auto [it, inserted] = planned_.try_emplace(t);
  Planned& p = it->second;
  if (inserted) {
    p.message = m;
  } else {
    MG_ASSERT_MSG(p.message == m,
                  "online protocol would send two messages at one time");
  }
  if (to_parent) p.to_parent = true;
  for (graph::Vertex r : down_receivers) p.down_receivers.push_back(r);
}

void OnlineProcessor::deliver(std::size_t t, Message m, bool from_parent) {
  if (!from_parent || info_.children.empty()) return;
  // (D2): relay the o-message the round it arrives, except arrivals at
  // times i-k and i-k+1 which wait until j-k+1 and j-k+2.
  const std::size_t ik = info_.i - info_.k;
  std::size_t t_send = t;
  if (t == ik) {
    t_send = info_.j - info_.k + 1;
  } else if (t == ik + 1) {
    t_send = static_cast<std::size_t>(info_.j - info_.k) + 2;
  }
  plan(t_send, m, /*to_parent=*/false, info_.children);
}

std::optional<Transmission> OnlineProcessor::send_at(std::size_t t) {
  const auto it = planned_.find(t);
  if (it == planned_.end()) return std::nullopt;
  const Planned& p = it->second;
  Transmission tx;
  tx.message = p.message;
  tx.sender = info_.self;
  tx.receivers = p.down_receivers;
  if (p.to_parent) tx.receivers.push_back(info_.parent);
  std::sort(tx.receivers.begin(), tx.receivers.end());
  tx.receivers.erase(std::unique(tx.receivers.begin(), tx.receivers.end()),
                     tx.receivers.end());
  planned_.erase(it);
  return tx;
}

model::Schedule run_online(const Instance& instance) {
  const auto& tree = instance.tree();
  const graph::Vertex n = tree.vertex_count();
  model::Schedule schedule;
  if (n <= 1) return schedule;

  std::vector<OnlineProcessor> procs;
  procs.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    procs.emplace_back(local_info_for(instance, v));
  }

  const std::size_t horizon =
      static_cast<std::size_t>(n) + instance.radius();
  // In-flight deliveries: (receiver, message, from_parent) sent last round.
  std::vector<std::tuple<graph::Vertex, Message, bool>> in_flight;
  for (std::size_t t = 0; t < horizon; ++t) {
    for (const auto& [r, m, fp] : in_flight) procs[r].deliver(t, m, fp);
    in_flight.clear();
    for (graph::Vertex v = 0; v < n; ++v) {
      auto tx = procs[v].send_at(t);
      if (!tx) continue;
      for (graph::Vertex r : tx->receivers) {
        const bool from_parent = tree.parent(r) == v;
        in_flight.emplace_back(r, tx->message, from_parent);
      }
      schedule.add(t, std::move(*tx));
    }
  }
  schedule.trim();
  return schedule;
}

}  // namespace mg::gossip
