// Chrome trace-event export for SpanTracer.
//
// Writes the "JSON Object Format" of the Trace Event spec — a single
// object with a `traceEvents` array of complete ("ph":"X") events — which
// chrome://tracing and Perfetto (ui.perfetto.dev → "Open trace file") load
// directly.  Timestamps are microseconds (double) in the tracer's own
// monotonic timebase; every span carries its thread lane and nesting depth
// (as an arg), so the rendered timeline shows the same bracketing the
// ScopeSpan guards produced.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/span.h"

namespace mg::obs {

/// Writes `spans` as one Chrome-trace JSON document.
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanTracer::Span>& spans,
                        bool pretty = true);

/// Snapshot + export shorthand for a whole tracer.
void write_chrome_trace(std::ostream& out, const SpanTracer& tracer,
                        bool pretty = true);

}  // namespace mg::obs
