// Minimal JSON reader (header-only, no dependencies).
//
// The consuming side of obs::JsonWriter: the bench regression sentinel
// parses the BENCH_*.json artifacts and the BENCH_HISTORY.jsonl rows it
// gates on, and per the no-external-dependency rule that parser lives
// here rather than in a vendored library.  Covers exactly the grammar the
// repo's writers produce — strings with escape sequences, numbers, bools,
// null, nested objects/arrays — and rejects everything else by throwing
// `JsonError` (callers present the message; there is no partial result).
// tests/json_parser.h is the gtest-flavored sibling used inside test
// binaries; keep the grammars in sync.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mg::support {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) != 0;
  }

  /// Member access; throws when absent or not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    if (kind != Kind::kObject) throw JsonError("not an object: key " + key);
    const auto it = object.find(key);
    if (it == object.end()) throw JsonError("missing key " + key);
    return it->second;
  }

  [[nodiscard]] double as_number() const {
    if (kind != Kind::kNumber) throw JsonError("not a number");
    return number;
  }

  [[nodiscard]] std::uint64_t as_u64() const {
    return static_cast<std::uint64_t>(as_number());
  }

  [[nodiscard]] const std::string& as_string() const {
    if (kind != Kind::kString) throw JsonError("not a string");
    return string;
  }

  [[nodiscard]] bool as_bool() const {
    if (kind != Kind::kBool) throw JsonError("not a bool");
    return boolean;
  }
};

/// Parses one complete JSON document; throws JsonError on malformed input
/// or trailing garbage.
inline JsonValue parse_json(std::string_view text) {
  struct Parser {
    std::string_view text;
    std::size_t pos = 0;

    [[noreturn]] void fail(const std::string& what) const {
      throw JsonError(what + " at offset " + std::to_string(pos));
    }

    void skip_ws() {
      while (pos < text.size() &&
             (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
              text[pos] == '\r')) {
        ++pos;
      }
    }

    char peek() {
      skip_ws();
      if (pos >= text.size()) fail("unexpected end of JSON");
      return text[pos];
    }

    void expect(char c) {
      if (peek() != c) fail(std::string("expected '") + c + "'");
      ++pos;
    }

    bool consume_if(char c) {
      if (peek() == c) {
        ++pos;
        return true;
      }
      return false;
    }

    void match(std::string_view word) {
      skip_ws();
      if (pos + word.size() > text.size() ||
          text.substr(pos, word.size()) != word) {
        fail("expected '" + std::string(word) + "'");
      }
      pos += word.size();
    }

    JsonValue parse_value() {
      const char c = peek();
      if (c == '{') return parse_object();
      if (c == '[') return parse_array();
      if (c == '"') {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      if (c == 't' || c == 'f') {
        match(c == 't' ? "true" : "false");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = c == 't';
        return v;
      }
      if (c == 'n') {
        match("null");
        return {};
      }
      return parse_number();
    }

    JsonValue parse_number() {
      skip_ws();
      const std::size_t start = pos;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
              text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
              text[pos] == 'e' || text[pos] == 'E')) {
        ++pos;
      }
      if (pos == start) fail("expected a number");
      JsonValue v;
      v.kind = JsonValue::Kind::kNumber;
      try {
        v.number = std::stod(std::string(text.substr(start, pos - start)));
      } catch (const std::exception&) {
        fail("malformed number");
      }
      return v;
    }

    std::string parse_string() {
      expect('"');
      std::string out;
      while (pos < text.size() && text[pos] != '"') {
        char c = text[pos++];
        if (c != '\\') {
          out += c;
          continue;
        }
        if (pos >= text.size()) fail("dangling escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("truncated \\u escape");
            unsigned code = 0;
            try {
              code = static_cast<unsigned>(
                  std::stoul(std::string(text.substr(pos, 4)), nullptr, 16));
            } catch (const std::exception&) {
              fail("malformed \\u escape");
            }
            pos += 4;
            if (code >= 0x80u) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default:
            fail("unknown escape");
        }
      }
      expect('"');
      return out;
    }

    JsonValue parse_object() {
      expect('{');
      JsonValue v;
      v.kind = JsonValue::Kind::kObject;
      if (consume_if('}')) return v;
      do {
        std::string key = parse_string();
        expect(':');
        v.object.emplace(std::move(key), parse_value());
      } while (consume_if(','));
      expect('}');
      return v;
    }

    JsonValue parse_array() {
      expect('[');
      JsonValue v;
      v.kind = JsonValue::Kind::kArray;
      if (consume_if(']')) return v;
      do {
        v.array.push_back(parse_value());
      } while (consume_if(','));
      expect(']');
      return v;
    }
  };

  Parser p{text};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage after JSON document");
  return v;
}

}  // namespace mg::support
