# Empty compiler generated dependencies file for paper_tables_test.
# This may be replaced when dependencies are built.
