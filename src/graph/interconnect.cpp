#include "graph/interconnect.h"

#include <algorithm>
#include <map>

#include "support/contracts.h"

namespace mg::graph {

Graph de_bruijn(unsigned dim) {
  MG_EXPECTS(dim >= 2 && dim <= 20);
  const Vertex n = Vertex{1} << dim;
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex b = 0; b < 2; ++b) {
      const Vertex v = ((u << 1) | b) & (n - 1);
      if (u != v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph kautz(unsigned dim) {
  MG_EXPECTS(dim >= 2 && dim <= 16);
  // Words a_1..a_dim over {0,1,2} with a_i != a_{i+1}; 3 * 2^(dim-1) of
  // them.  Enumerate and index.
  std::vector<std::vector<Vertex>> words;
  std::vector<Vertex> current;
  const auto generate = [&](auto&& self) -> void {
    if (current.size() == dim) {
      words.push_back(current);
      return;
    }
    for (Vertex letter = 0; letter < 3; ++letter) {
      if (!current.empty() && current.back() == letter) continue;
      current.push_back(letter);
      self(self);
      current.pop_back();
    }
  };
  generate(generate);

  std::map<std::vector<Vertex>, Vertex> index;
  for (Vertex id = 0; id < words.size(); ++id) index[words[id]] = id;

  std::vector<Edge> edges;
  for (Vertex id = 0; id < words.size(); ++id) {
    const auto& word = words[id];
    for (Vertex letter = 0; letter < 3; ++letter) {
      if (letter == word.back()) continue;
      std::vector<Vertex> successor(word.begin() + 1, word.end());
      successor.push_back(letter);
      const Vertex other = index.at(successor);
      if (other != id) edges.emplace_back(id, other);
    }
  }
  return Graph::from_edges(static_cast<Vertex>(words.size()), edges);
}

Graph shuffle_exchange(unsigned dim) {
  MG_EXPECTS(dim >= 2 && dim <= 20);
  const Vertex n = Vertex{1} << dim;
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    const Vertex shuffled =
        ((u << 1) | (u >> (dim - 1))) & (n - 1);  // rotate left
    if (u != shuffled) edges.emplace_back(u, shuffled);
    edges.emplace_back(u, u ^ 1);
  }
  return Graph::from_edges(n, edges);
}

Graph cube_connected_cycles(unsigned dim) {
  MG_EXPECTS(dim >= 3 && dim <= 16);
  const Vertex corners = Vertex{1} << dim;
  const Vertex n = corners * dim;
  auto id = [dim](Vertex corner, unsigned pos) {
    return corner * dim + pos;
  };
  std::vector<Edge> edges;
  for (Vertex corner = 0; corner < corners; ++corner) {
    for (unsigned pos = 0; pos < dim; ++pos) {
      edges.emplace_back(id(corner, pos), id(corner, (pos + 1) % dim));
      edges.emplace_back(id(corner, pos),
                         id(corner ^ (Vertex{1} << pos), pos));
    }
  }
  return Graph::from_edges(n, edges);
}

Graph wrapped_butterfly(unsigned dim) {
  MG_EXPECTS(dim >= 3 && dim <= 16);
  const Vertex rows = Vertex{1} << dim;
  const Vertex n = rows * dim;
  auto id = [dim](unsigned level, Vertex row) {
    return row * dim + level;
  };
  std::vector<Edge> edges;
  for (Vertex row = 0; row < rows; ++row) {
    for (unsigned level = 0; level < dim; ++level) {
      const unsigned next = (level + 1) % dim;
      edges.emplace_back(id(level, row), id(next, row));
      edges.emplace_back(id(level, row),
                         id(next, row ^ (Vertex{1} << level)));
    }
  }
  return Graph::from_edges(n, edges);
}

Graph circulant(Vertex n, std::span<const Vertex> offsets) {
  MG_EXPECTS(n >= 3);
  std::vector<Edge> edges;
  for (Vertex s : offsets) {
    MG_EXPECTS_MSG(s >= 1 && s <= n / 2, "offset out of range");
    for (Vertex v = 0; v < n; ++v) {
      const Vertex u = (v + s) % n;
      if (u != v) edges.emplace_back(v, u);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph chordal_ring(Vertex n, Vertex chord) {
  MG_EXPECTS(n >= 6 && n % 2 == 0);
  MG_EXPECTS(chord >= 3 && chord < n && chord % 2 == 1);
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % n);
    if (v % 2 == 0) edges.emplace_back(v, (v + chord) % n);
  }
  return Graph::from_edges(n, edges);
}

}  // namespace mg::graph
