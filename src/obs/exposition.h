// Telemetry exposition: transport-agnostic rendering of a registry
// Snapshot into a wire format a scraper understands.
//
// `ExpositionSink` is the interface the future mg::net daemon mounts on a
// /metrics-style endpoint: it turns a point-in-time Snapshot into bytes
// plus a content type, and knows nothing about sockets, files, or the
// sampler that produced the snapshot.  Two implementations ship:
//
//  * `PrometheusExposition` — the Prometheus text exposition format
//    (version 0.0.4): counters, timers as summaries (`_sum` / `_count`),
//    and histograms with *cumulative* `_bucket{le="..."}` series built
//    from the log-bucket bounds the Histogram already publishes
//    (HistogramSnapshot::buckets).  Metric names are sanitized
//    (`engine.cache.hits` → `mg_engine_cache_hits`), label values are
//    escaped per the spec (backslash, double quote, newline), and output
//    ordering is byte-stable across runs: the snapshot's maps are sorted
//    by name and static labels are sorted by key at construction.
//
//  * `JsonExposition` — the registry's existing JSON shape
//    ({"counters": .., "timers": .., "histograms": ..}), for consumers
//    that already parse BENCH_*.json-style documents.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace mg::obs {

/// Sanitized Prometheus metric name: every character outside
/// [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_' prefix.
/// The caller prepends its namespace prefix (e.g. "mg_").
[[nodiscard]] std::string prometheus_name(std::string_view raw);

/// Escapes a label value per the text exposition format: backslash,
/// double quote, and newline become \\, \", and \n.
[[nodiscard]] std::string prometheus_label_escape(std::string_view value);

class ExpositionSink {
 public:
  virtual ~ExpositionSink() = default;

  /// MIME type for the bytes `expose` writes.
  [[nodiscard]] virtual std::string_view content_type() const = 0;

  /// Renders `snapshot` onto `out`.
  virtual void expose(const Snapshot& snapshot, std::ostream& out) const = 0;
};

class PrometheusExposition final : public ExpositionSink {
 public:
  /// `labels` are attached to every series (sorted by key here, values
  /// escaped at write time); `prefix` must itself be a valid metric-name
  /// prefix (it is not sanitized).
  explicit PrometheusExposition(
      std::vector<std::pair<std::string, std::string>> labels = {},
      std::string prefix = "mg_");

  [[nodiscard]] std::string_view content_type() const override {
    return "text/plain; version=0.0.4; charset=utf-8";
  }

  void expose(const Snapshot& snapshot, std::ostream& out) const override;

 private:
  /// Renders "{k1=\"v1\",k2=\"v2\"}" with `extra` appended last; empty
  /// string when there are no labels at all.
  [[nodiscard]] std::string label_block(
      std::string_view extra_key = {}, std::string_view extra_value = {}) const;

  std::vector<std::pair<std::string, std::string>> labels_;
  std::string prefix_;
};

class JsonExposition final : public ExpositionSink {
 public:
  [[nodiscard]] std::string_view content_type() const override {
    return "application/json";
  }

  void expose(const Snapshot& snapshot, std::ostream& out) const override;
};

}  // namespace mg::obs
