# Empty dependencies file for collectives_bench.
# This may be replaced when dependencies are built.
