// §3.2 procedure Simple (Lemma 1): first push every message to the root so
// that message m >= 1 arrives exactly at time m (the vertex at level k
// holding m sends it at time m - k), then — starting at time n - 2 — the
// root multicasts messages 0, 1, 2, ... downward one per round, with every
// non-root vertex relaying to its children the round it receives.  Total
// communication time: exactly 2n + r - 3 on any tree with n >= 2 processors
// and height r.
#pragma once

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

[[nodiscard]] model::Schedule simple_gossip(const Instance& instance);

/// Lemma 1's closed form, for assertions: 2n + r - 3 (0 when n == 1).
[[nodiscard]] constexpr std::size_t simple_total_time(std::size_t n,
                                                      std::size_t r) {
  return n <= 1 ? 0 : 2 * n + r - 3;
}

}  // namespace mg::gossip
