#include "tree/labeling.h"

#include "support/contracts.h"

namespace mg::tree {

DfsLabeling::DfsLabeling(const RootedTree& tree) : tree_(&tree) {
  const Vertex n = tree.vertex_count();
  label_.assign(n, 0);
  vertex_.assign(n, graph::kNoVertex);
  end_.assign(n, 0);

  const auto order = tree.preorder();
  for (Label l = 0; l < n; ++l) {
    label_[order[l]] = l;
    vertex_[l] = order[l];
  }
  // In preorder, a subtree occupies a contiguous label block; its end is
  // computed bottom-up over the reversed preorder.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Vertex v = *it;
    Label end = label_[v];
    for (Vertex c : tree.children(v)) end = std::max(end, end_[c]);
    end_[v] = end;
  }
  MG_ENSURES(label_[tree.root()] == 0);
  MG_ENSURES(end_[tree.root()] == n - 1);
}

std::uint32_t DfsLabeling::lip_count(Vertex v) const {
  if (tree_->is_root(v)) return 0;
  return label_[v] == label_[tree_->parent(v)] + 1 ? 1u : 0u;
}

Vertex DfsLabeling::child_owning(Vertex v, Label m) const {
  MG_EXPECTS(is_body(v, m) && m != label_[v]);
  for (Vertex c : tree_->children(v)) {
    if (label_[c] <= m && m <= end_[c]) return c;
  }
  MG_ASSERT_MSG(false, "b-message not found in any child subtree");
  return graph::kNoVertex;
}

}  // namespace mg::tree
