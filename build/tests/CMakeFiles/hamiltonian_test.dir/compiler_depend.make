# Empty compiler generated dependencies file for hamiltonian_test.
# This may be replaced when dependencies are built.
