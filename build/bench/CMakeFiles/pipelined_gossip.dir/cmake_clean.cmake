file(REMOVE_RECURSE
  "CMakeFiles/pipelined_gossip.dir/pipelined_gossip.cpp.o"
  "CMakeFiles/pipelined_gossip.dir/pipelined_gossip.cpp.o.d"
  "pipelined_gossip"
  "pipelined_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
