#include "mmc/greedy.h"

#include <algorithm>
#include <numeric>

#include "support/contracts.h"

namespace mg::mmc {

model::Schedule greedy_mmc_schedule(const MmcInstance& instance) {
  const graph::Vertex n = instance.processor_count();

  // Pending work: per message, the destinations not yet served.
  std::vector<std::vector<graph::Vertex>> pending(instance.message_count());
  std::vector<std::vector<model::Message>> by_sender(n);
  std::size_t outstanding = 0;
  for (const auto& message : instance.messages()) {
    pending[message.id] = message.destinations;
    by_sender[message.source].push_back(message.id);
    outstanding += message.destinations.size();
  }

  model::Schedule schedule;
  std::size_t t = 0;
  const std::size_t safety_limit =
      4 * instance.degree() * instance.degree() + 4 * n + 16;
  std::vector<char> receiving(n, 0);
  std::vector<graph::Vertex> sender_order(n);
  std::iota(sender_order.begin(), sender_order.end(), graph::Vertex{0});

  while (outstanding > 0) {
    MG_ASSERT_MSG(t < safety_limit, "greedy MMC failed to converge");
    std::fill(receiving.begin(), receiving.end(), 0);

    // Most loaded senders first: remaining deliveries they still owe.
    std::sort(sender_order.begin(), sender_order.end(),
              [&](graph::Vertex a, graph::Vertex b) {
                auto load = [&](graph::Vertex v) {
                  std::size_t total = 0;
                  for (model::Message m : by_sender[v]) {
                    total += pending[m].size();
                  }
                  return total;
                };
                const auto la = load(a);
                const auto lb = load(b);
                return la != lb ? la > lb : a < b;
              });

    bool progressed = false;
    for (graph::Vertex v : sender_order) {
      // Choose the pending message with the most free destinations.
      model::Message best = 0;
      std::size_t best_free = 0;
      for (model::Message m : by_sender[v]) {
        std::size_t free = 0;
        for (graph::Vertex d : pending[m]) free += receiving[d] ? 0u : 1u;
        if (free > best_free) {
          best_free = free;
          best = m;
        }
      }
      if (best_free == 0) continue;
      std::vector<graph::Vertex> receivers;
      for (graph::Vertex d : pending[best]) {
        if (!receiving[d]) {
          receivers.push_back(d);
          receiving[d] = 1;
        }
      }
      std::erase_if(pending[best], [&](graph::Vertex d) {
        return std::binary_search(receivers.begin(), receivers.end(), d);
      });
      outstanding -= receivers.size();
      schedule.add(t, {best, v, std::move(receivers)});
      progressed = true;
    }
    MG_ASSERT_MSG(progressed, "greedy MMC stalled");
    ++t;
  }
  schedule.trim();
  return schedule;
}

}  // namespace mg::mmc
