// Experiment F4/F5 (Figs. 4 and 5): apply the §3.1 minimum-depth
// spanning-tree procedure to the Fig. 4 network and print the resulting
// tree with its DFS message labels — the content of Fig. 5.
#include <cstdio>
#include <string>

#include "graph/io.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "tree/labeling.h"
#include "tree/spanning_tree.h"

namespace {

void print_subtree(const mg::tree::RootedTree& tree,
                   const mg::tree::DfsLabeling& labels, mg::graph::Vertex v,
                   int depth) {
  std::printf("%*s%u  (message label %u, level %u)\n", depth * 4, "", v,
              labels.label(v), tree.level(v));
  for (const auto c : tree.children(v)) {
    print_subtree(tree, labels, c, depth + 1);
  }
}

}  // namespace

int main() {
  using namespace mg;
  const auto network = graph::fig4_network();
  const auto metrics = graph::compute_metrics(network);
  std::printf(
      "F4 (Fig. 4): running-example network, n = %u, m = %zu, radius = %u, "
      "diameter = %u, center = processor %u\n\nedge list:\n%s\n",
      network.vertex_count(), network.edge_count(), metrics.radius,
      metrics.diameter, metrics.center,
      graph::to_edge_list(network).c_str());

  const auto tree = tree::min_depth_spanning_tree(network);
  const tree::DfsLabeling labels(tree);
  std::printf(
      "F5 (Fig. 5): minimum-depth spanning tree (height %u = radius), DFS "
      "message labels:\n\n",
      tree.height());
  print_subtree(tree, labels, tree.root(), 0);

  const bool matches = tree.as_graph() == graph::fig5_tree();
  std::printf("\ntree matches the Fig. 5 reconstruction: %s\n",
              matches ? "yes" : "NO");

  std::vector<std::string> dot_labels;
  for (graph::Vertex v = 0; v < 16; ++v) {
    dot_labels.push_back(std::to_string(v) + " / msg " +
                         std::to_string(labels.label(v)));
  }
  std::printf("\nGraphviz (tree):\n%s",
              graph::to_dot(tree.as_graph(), dot_labels).c_str());
  return matches ? 0 : 1;
}
