// Differential battery for the distributed actor runtime (ISSUE 6): on
// fault-free runs, the schedule that *emerges* from n independent actors —
// each deciding from purely local information, exchanging real messages
// through the round-synchronized bus — must equal the centrally computed
// `solve_gossip` schedule round-for-round, for the full named-graph suite
// x all four algorithms.  ConcurrentUpDown runs the true §4 online rule
// (nothing but (i, j, k, n) is ever shipped to an actor); the other three
// run per-actor timetable slices, which still exercises the entire bus /
// causality / capture machinery end to end.  Theorem 1's n + r is checked
// on the emergent timeline, not the central plan.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dist/runtime.h"
#include "gossip/timeline.h"
#include "graph/named.h"
#include "model/validator.h"
#include "sim/network_sim.h"
#include "test_util.h"

namespace mg::dist {
namespace {

constexpr gossip::Algorithm kAlgorithms[] = {
    gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
    gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

TEST(DistDifferential, EmergentMatchesCentralAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 5u, 8u}) {
      const graph::Graph g = family.make(knob);
      for (const gossip::Algorithm algorithm : kAlgorithms) {
        SCOPED_TRACE(family.name + " knob=" + std::to_string(knob) + " " +
                     gossip::algorithm_name(algorithm));
        const DistOutcome outcome = run_distributed(g, algorithm);
        ASSERT_TRUE(outcome.central.report.ok)
            << outcome.central.report.error;
        EXPECT_TRUE(outcome.verify.match) << outcome.verify.detail;
        EXPECT_TRUE(outcome.run.complete);
        EXPECT_EQ(outcome.run.recovery_rounds, 0u);
        EXPECT_EQ(outcome.run.skipped_sends, 0u);
        if (algorithm == gossip::Algorithm::kConcurrentUpDown) {
          EXPECT_TRUE(outcome.verify.n_plus_r_ok)
              << "emergent rounds " << outcome.verify.emergent_rounds;
        }
      }
    }
  }
}

TEST(DistDifferential, NamedPaperNetworks) {
  const std::pair<std::string, graph::Graph> graphs[] = {
      {"n1_cycle", graph::n1_cycle()},
      {"petersen", graph::petersen()},
      {"n3_witness", graph::n3_witness()},
      {"fig4", graph::fig4_network()},
  };
  for (const auto& [name, g] : graphs) {
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      SCOPED_TRACE(name + "/" + gossip::algorithm_name(algorithm));
      const DistOutcome outcome = run_distributed(g, algorithm);
      EXPECT_TRUE(outcome.verify.match) << outcome.verify.detail;
      EXPECT_TRUE(outcome.run.complete);
    }
  }
}

TEST(DistDifferential, OnlineRuleNeverSeesTheCentralSchedule) {
  // Build the runtime by hand with the online rule only — no schedule is
  // passed anywhere — and compare against an independently computed
  // central solution.  This is the §4 claim in its strongest form.
  const graph::Graph g = graph::fig4_network();
  const gossip::Solution central =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(central.report.ok);

  RuntimeOptions options;
  ActorRuntime runtime(central.instance, g, options);
  runtime.use_online_rule();
  const RunReport run = runtime.run(
      static_cast<std::size_t>(central.instance.vertex_count()) +
      central.instance.radius());

  const VerifyReport verdict = verify_against_schedule(
      central.schedule, run.emergent, central.instance.vertex_count(),
      central.instance.radius());
  EXPECT_TRUE(verdict.match) << verdict.detail;
  EXPECT_TRUE(verdict.n_plus_r_ok);
  EXPECT_TRUE(run.complete);
}

TEST(DistDifferential, EmergentScheduleIsIndependentlyValid) {
  // The emergent schedule is re-checked by the model validator, which
  // shares no code with the actors or the bus.
  for (const gossip::Algorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(gossip::algorithm_name(algorithm));
    const DistOutcome outcome =
        run_distributed(graph::petersen(), algorithm);
    ASSERT_TRUE(outcome.verify.match) << outcome.verify.detail;
    const auto report = model::validate_schedule(
        outcome.central.instance.tree().as_graph(), outcome.run.emergent,
        outcome.central.instance.initial(),
        {.variant = algorithm == gossip::Algorithm::kTelephone
                        ? model::ModelVariant::kTelephone
                        : model::ModelVariant::kMulticast});
    EXPECT_TRUE(report.ok) << report.error;
  }
}

TEST(DistDifferential, TimelineMatchesCentralSimulation) {
  // Capture the emergent run through RoundTimeline and compare tallies
  // round-for-round with the central schedule simulated under the same
  // sink — the timeline view of the differential gate.
  const graph::Graph g = graph::petersen();
  const gossip::Solution central =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(central.report.ok);

  gossip::RoundTimeline central_timeline(central.instance);
  sim::SimOptions sim_options;
  sim_options.sink = &central_timeline;
  const sim::SimResult central_run =
      sim::simulate(central.instance.tree().as_graph(), central.schedule,
                    central.instance.initial(), sim_options);
  ASSERT_TRUE(central_run.completed);

  gossip::RoundTimeline dist_timeline(central.instance);
  RuntimeOptions options;
  options.sink = &dist_timeline;
  const DistOutcome outcome =
      run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
  ASSERT_TRUE(outcome.verify.match) << outcome.verify.detail;

  ASSERT_EQ(dist_timeline.rounds().size(), central_timeline.rounds().size());
  for (std::size_t t = 0; t < dist_timeline.rounds().size(); ++t) {
    SCOPED_TRACE("t=" + std::to_string(t));
    const auto& a = central_timeline.rounds()[t];
    const auto& b = dist_timeline.rounds()[t];
    EXPECT_EQ(a.sends, b.sends);
    EXPECT_EQ(a.receives, b.receives);
    EXPECT_EQ(a.s_sends, b.s_sends);
    EXPECT_EQ(a.l_sends, b.l_sends);
    EXPECT_EQ(a.r_sends, b.r_sends);
    EXPECT_EQ(a.o_sends, b.o_sends);
    EXPECT_EQ(a.up, b.up);
    EXPECT_EQ(a.down, b.down);
  }
  EXPECT_EQ(dist_timeline.send_rounds(),
            static_cast<std::size_t>(central.instance.vertex_count()) +
                central.instance.radius());
}

TEST(DistDifferential, ThreadedExecutionIsIdenticalToSerial) {
  // The worker pool must not change the emergent behaviour: same graph,
  // same seed, 0 vs 4 threads, bit-identical schedules.
  const graph::Graph g = graph::grid(4, 5);
  for (const gossip::Algorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(gossip::algorithm_name(algorithm));
    RuntimeOptions serial;
    serial.threads = 0;
    RuntimeOptions threaded;
    threaded.threads = 4;
    const DistOutcome a = run_distributed(g, algorithm, serial);
    const DistOutcome b = run_distributed(g, algorithm, threaded);
    EXPECT_TRUE(model::equivalent(a.run.emergent, b.run.emergent));
    EXPECT_TRUE(a.verify.match) << a.verify.detail;
    EXPECT_TRUE(b.verify.match) << b.verify.detail;
  }
}

TEST(DistDifferential, DeliveryOrderShuffleDoesNotChangeBehaviour) {
  // Actors may not depend on the order envelopes land in their inbox: the
  // emergent schedule is invariant across bus shuffle seeds.
  const graph::Graph g = graph::fig4_network();
  model::Schedule reference;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RuntimeOptions options;
    options.seed = seed;
    const DistOutcome outcome =
        run_distributed(g, gossip::Algorithm::kConcurrentUpDown, options);
    EXPECT_TRUE(outcome.verify.match)
        << "seed " << seed << ": " << outcome.verify.detail;
    if (seed == 0) {
      reference = outcome.run.emergent;
    } else {
      EXPECT_TRUE(model::equivalent(reference, outcome.run.emergent))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace mg::dist
