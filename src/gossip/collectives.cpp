#include "gossip/collectives.h"

#include <algorithm>

#include "support/contracts.h"

namespace mg::gossip {

using model::Message;
using tree::Label;

model::Schedule gather_schedule(const Instance& instance) {
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  const graph::Vertex n = tree.vertex_count();
  model::Schedule schedule;
  // Propagate-Up's delivery discipline without the lookahead refinement:
  // the vertex at level k relays subtree message m at time m - k, so the
  // root receives message m exactly at time m (m = 1..n-1).
  for (graph::Vertex v = 0; v < n; ++v) {
    if (tree.is_root(v)) continue;
    const Label i = labels.label(v);
    const Label j = labels.subtree_end(v);
    const std::uint32_t k = tree.level(v);
    for (Label m = i; m <= j; ++m) {
      schedule.add(m - k, {m, v, {tree.parent(v)}});
    }
  }
  schedule.trim();
  MG_ENSURES(n <= 1 || schedule.total_time() == n - 1u);
  return schedule;
}

namespace {

/// Emission order: destinations by depth, deepest first (ties by label so
/// the order is deterministic).
std::vector<graph::Vertex> scatter_order(const Instance& instance) {
  const auto& tree = instance.tree();
  std::vector<graph::Vertex> order;
  for (graph::Vertex v = 0; v < tree.vertex_count(); ++v) {
    if (!tree.is_root(v)) order.push_back(v);
  }
  std::sort(order.begin(), order.end(),
            [&](graph::Vertex a, graph::Vertex b) {
              if (tree.level(a) != tree.level(b)) {
                return tree.level(a) > tree.level(b);
              }
              return instance.labels().label(a) < instance.labels().label(b);
            });
  return order;
}

}  // namespace

model::Schedule scatter_schedule(const Instance& instance) {
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  model::Schedule schedule;
  const auto order = scatter_order(instance);
  // Destination d's message (id = label(d)) is emitted by the root at
  // round t and relayed immediately: it crosses the ancestor at level l
  // at time t + l.  Per-edge rounds are distinct because emission rounds
  // are, so the schedule is conflict-free for ANY order; deepest-first
  // minimizes the makespan max_t (t + depth(d_t)).
  for (std::size_t t = 0; t < order.size(); ++t) {
    const graph::Vertex destination = order[t];
    const Message message = labels.label(destination);
    // Walk the root->destination path.
    std::vector<graph::Vertex> path{destination};
    while (!tree.is_root(path.back())) path.push_back(tree.parent(path.back()));
    std::reverse(path.begin(), path.end());  // root first
    for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
      schedule.add(t + hop, {message, path[hop], {path[hop + 1]}});
    }
  }
  schedule.trim();
  MG_ENSURES(schedule.total_time() == scatter_time(instance));
  return schedule;
}

std::size_t scatter_time(const Instance& instance) {
  const auto& tree = instance.tree();
  const auto order = scatter_order(instance);
  std::size_t makespan = 0;
  for (std::size_t t = 0; t < order.size(); ++t) {
    makespan = std::max(makespan,
                        t + static_cast<std::size_t>(tree.level(order[t])));
  }
  return order.empty() ? 0 : makespan + 0;
}

}  // namespace mg::gossip
