// Experiment F3 (Fig. 3, network N3): the paper's example of a network
// without a Hamiltonian circuit on which gossiping completes in n - 1
// rounds under the multicast model but NOT under the telephone model.  The
// original figure is image-only, so we certify a constructed witness
// (K_{2,3}, see DESIGN.md) with exact searches:
//   * no Hamiltonian circuit (exhaustive);
//   * a 4-round multicast schedule exists (found + validated + printed);
//   * no 4-round telephone schedule exists (exhaustive).
#include <cstdio>

#include "gossip/optimal_search.h"
#include "graph/hamiltonian.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "model/validator.h"

int main() {
  using namespace mg;
  const auto g = graph::n3_witness();
  const auto metrics = graph::compute_metrics(g);
  std::printf(
      "F3 / Fig. 3 (N3-class witness: K_{2,3}): n = %u, m = %zu, radius = "
      "%u\n\n",
      g.vertex_count(), g.edge_count(), metrics.radius);

  bool ok = true;

  const auto ham = graph::find_hamiltonian_circuit(g);
  const bool no_circuit = ham.status == graph::SearchStatus::kExhausted;
  ok = ok && no_circuit;
  std::printf("1. Hamiltonian circuit: %s\n",
              no_circuit ? "none exists" : "unexpectedly found");

  const auto multicast = gossip::exact_gossip_search(g, 4);
  ok = ok && multicast.status == graph::SearchStatus::kFound;
  std::printf("2. multicast gossip in n - 1 = 4 rounds: %s (%llu nodes)\n",
              multicast.status == graph::SearchStatus::kFound
                  ? "schedule found"
                  : "NOT FOUND (unexpected)",
              static_cast<unsigned long long>(multicast.nodes_explored));
  if (multicast.status == graph::SearchStatus::kFound) {
    const auto report = model::validate_schedule(g, multicast.schedule);
    ok = ok && report.ok;
    std::printf("   certificate validates: %s\n%s",
                report.ok ? "yes" : report.error.c_str(),
                multicast.schedule.to_string().c_str());
  }

  gossip::ExactSearchOptions phone;
  phone.variant = model::ModelVariant::kTelephone;
  const auto telephone = gossip::exact_gossip_search(g, 4, phone);
  const bool phone_impossible =
      telephone.status == graph::SearchStatus::kExhausted;
  ok = ok && phone_impossible;
  std::printf(
      "3. telephone gossip in 4 rounds: %s (%llu nodes)\n"
      "   (provably impossible: all three degree-2 vertices must send\n"
      "    every round into only two receivers)\n",
      phone_impossible ? "impossible (exhaustive)" : "unexpected outcome",
      static_cast<unsigned long long>(telephone.nodes_explored));

  std::printf("\nFig. 3 claims %s on this witness.\n",
              ok ? "all certified" : "FAILED");
  return ok ? 0 : 1;
}
