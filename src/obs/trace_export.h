// Chrome trace-event export for SpanTracer.
//
// Writes the "JSON Object Format" of the Trace Event spec — a single
// object with a `traceEvents` array of complete ("ph":"X") events — which
// chrome://tracing and Perfetto (ui.perfetto.dev → "Open trace file") load
// directly.  Timestamps are microseconds (double) in the tracer's own
// monotonic timebase; every span carries its thread lane and nesting depth
// (as an arg), so the rendered timeline shows the same bracketing the
// ScopeSpan guards produced.
// Causal flow layering: `write_chrome_trace` overloads taking
// CausalTracer events render each logical transmission as a slice on its
// own process lane (pid 2, tid = sending node, ts = round in fake
// milliseconds) and each happens-before edge as a `ph:"s"` / `ph:"f"` flow
// pair binding the parent slice to the child slice — Perfetto draws the
// arrows the `mg::dist` critical path follows.
#pragma once

#include <iosfwd>
#include <vector>

#include "obs/causal.h"
#include "obs/span.h"

namespace mg::obs {

/// Writes `spans` as one Chrome-trace JSON document.
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanTracer::Span>& spans,
                        bool pretty = true);

/// Snapshot + export shorthand for a whole tracer.
void write_chrome_trace(std::ostream& out, const SpanTracer& tracer,
                        bool pretty = true);

/// Writes `spans` (wall-clock lanes, pid 1) plus `flows` (causal lanes,
/// pid 2; one slice per logical transmission, one flow arrow per
/// happens-before edge).  Either vector may be empty.
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanTracer::Span>& spans,
                        const std::vector<CausalTracer::Event>& flows,
                        bool pretty = true);

}  // namespace mg::obs
