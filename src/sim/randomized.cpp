#include "sim/randomized.h"

#include <algorithm>

#include "model/schedule.h"
#include "support/bitset.h"
#include "support/contracts.h"

namespace mg::sim {

RandomizedResult randomized_gossip(const graph::Graph& g, Rng& rng,
                                   const RandomizedOptions& options) {
  const graph::Vertex n = g.vertex_count();
  MG_EXPECTS(n >= 1);
  RandomizedResult result;

  std::vector<DynamicBitset> hold(n, DynamicBitset(n));
  std::vector<std::vector<model::Message>> known(n);  // learning order
  std::size_t missing_total = static_cast<std::size_t>(n) * (n - 1);
  for (graph::Vertex v = 0; v < n; ++v) {
    hold[v].set(v);
    known[v].push_back(v);
  }
  if (n == 1) {
    result.completed = true;
    return result;
  }

  // One offer per receiver survives (rule 1): offers[r] collects
  // (message) candidates this round; one is chosen uniformly.
  std::vector<std::vector<model::Message>> offers(n);

  auto pick_message = [&](graph::Vertex holder) {
    if (options.push_newest) return known[holder].back();
    return known[holder][rng.below(known[holder].size())];
  };

  while (missing_total > 0 && result.rounds < options.round_limit) {
    ++result.rounds;
    for (auto& o : offers) o.clear();

    for (graph::Vertex v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      // PUSH: offer one held message to a random neighbor.
      const graph::Vertex target = nbrs[rng.below(nbrs.size())];
      offers[target].push_back(pick_message(v));
      // PULL: ask a random neighbor; it answers with one of its messages
      // (the answer competes for v's receive slot like any offer).
      if (options.pull) {
        const graph::Vertex source = nbrs[rng.below(nbrs.size())];
        offers[v].push_back(pick_message(source));
      }
    }

    for (graph::Vertex v = 0; v < n; ++v) {
      if (offers[v].empty()) continue;
      // Rule 1: one message per receiver per round; the rest collide.
      const auto chosen = offers[v][rng.below(offers[v].size())];
      result.collisions += offers[v].size() - 1;
      ++result.transmissions;
      if (hold[v].test(chosen)) {
        ++result.useless;
      } else {
        hold[v].set(chosen);
        known[v].push_back(chosen);
        --missing_total;
      }
    }
  }
  result.completed = missing_total == 0;
  return result;
}

}  // namespace mg::sim
