// Cross-model property sweep over seeded random networks:
//
//  * dominance invariants that hold *by construction* of the legalizing
//    adapters (each source round expands to >= 1 model sub-round):
//    direct == multicast <= telephone, multicast <= radio (structural),
//    radio == beep structurally with beep paying a ceil(log2 n) + 1
//    per-round serialization factor in model time;
//  * fault-plan composability: a faulted default-model run is identical
//    before and after the CommModel refactor (implicit vs explicit model);
//  * Theorem 1 survives the refactor: ConcurrentUpDown's n + r round count
//    is unchanged under the explicit default model;
//  * native-scheduler bounds: the direct-addressing ring is exactly the
//    information-theoretic optimum n - 1, and every model needs at least
//    n - 1 rounds (each processor decodes at most one message per round).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fault/fault.h"
#include "gossip/bounds.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "model/comm_model.h"
#include "model/legalize.h"
#include "model/validator.h"
#include "sim/network_sim.h"
#include "support/rng.h"

namespace mg {
namespace {

constexpr gossip::Algorithm kAlgorithms[] = {
    gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
    gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

graph::Graph make_graph(std::uint64_t seed) {
  Rng rng(0x30de1ULL * (seed + 1));
  const auto n = static_cast<graph::Vertex>(5 + (seed * 7) % 40);
  switch (seed % 4) {
    case 0:
      return graph::random_connected_gnp(n, 3.0 / static_cast<double>(n),
                                         rng);
    case 1:
      return graph::random_tree(n, rng);
    case 2:
      return graph::random_geometric(n, 0.3, rng);
    default:
      return graph::random_connected_gnp(n, 0.5, rng);
  }
}

TEST(ModelProperty, DominanceInvariantsBySeededSweep) {
  constexpr std::uint64_t kGraphs = 40;
  for (std::uint64_t seed = 0; seed < kGraphs; ++seed) {
    const graph::Graph g = make_graph(seed);
    ASSERT_TRUE(graph::is_connected(g));
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " n=" +
                   std::to_string(g.vertex_count()) + " " +
                   gossip::algorithm_name(algorithm));
      const gossip::Solution sol = gossip::solve_gossip(g, algorithm);
      ASSERT_TRUE(sol.report.ok) << sol.report.error;
      const graph::Graph tree = sol.instance.tree().as_graph();
      const graph::Vertex n = tree.vertex_count();
      const std::size_t base = sol.schedule.total_time();

      const auto direct =
          model::adapt_schedule(tree, sol.schedule, model::direct_model());
      const auto telephone =
          model::adapt_schedule(tree, sol.schedule, model::telephone_model());
      const auto radio =
          model::adapt_schedule(tree, sol.schedule, model::radio_model());
      const auto beep =
          model::adapt_schedule(tree, sol.schedule, model::beep_model());

      // direct <= multicast <= {telephone, radio} <= beep (model time).
      EXPECT_TRUE(model::equivalent(direct.schedule, sol.schedule));
      EXPECT_EQ(direct.structural_rounds, base);
      EXPECT_GE(telephone.structural_rounds, base);
      EXPECT_GE(radio.structural_rounds, base);
      EXPECT_EQ(beep.structural_rounds, radio.structural_rounds);
      EXPECT_GE(beep.model_rounds, radio.model_rounds);
      EXPECT_EQ(radio.model_rounds, radio.structural_rounds);
      EXPECT_EQ(beep.model_rounds,
                beep.structural_rounds *
                    model::beep_model().round_cost(n));
      EXPECT_EQ(telephone.stretch,
                telephone.structural_rounds - base);

      // Every adapted schedule is legal and completing under its model.
      const struct {
        const model::CommModel* m;
        const model::Schedule* s;
      } rows[] = {{&model::direct_model(), &direct.schedule},
                  {&model::telephone_model(), &telephone.schedule},
                  {&model::radio_model(), &radio.schedule},
                  {&model::beep_model(), &beep.schedule}};
      for (const auto& row : rows) {
        model::ValidatorOptions options;
        options.model = row.m;
        const auto report = model::validate_schedule(
            tree, *row.s, sol.instance.initial(), options);
        EXPECT_TRUE(report.ok)
            << "model=" << row.m->name() << ": " << report.error;
      }

      // Information-theoretic floor: every model needs >= n - 1 rounds
      // (a processor decodes at most one message per structural round).
      EXPECT_GE(base, static_cast<std::size_t>(n) - 1);
    }
  }
}

TEST(ModelProperty, FaultPlanComposabilityUnderDefaultModel) {
  constexpr std::uint64_t kGraphs = 24;
  for (std::uint64_t seed = 0; seed < kGraphs; ++seed) {
    const graph::Graph g = make_graph(seed);
    const auto algorithm = kAlgorithms[seed % 4];
    SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                 gossip::algorithm_name(algorithm));
    const gossip::Solution sol = gossip::solve_gossip(g, algorithm);
    ASSERT_TRUE(sol.report.ok) << sol.report.error;
    const graph::Graph tree = sol.instance.tree().as_graph();

    fault::FaultPlan plan;
    plan.drop_rate(0.05 + 0.05 * static_cast<double>(seed % 4))
        .seed(0xdeadULL + seed);
    if (seed % 3 == 1) {
      plan.crash(static_cast<graph::Vertex>((seed * 5) % g.vertex_count()),
                 2 + seed % 7);
    }

    sim::SimOptions implicit;
    implicit.faults = &plan;
    sim::SimOptions explicit_default = implicit;
    explicit_default.comm = &model::multicast_model();
    const auto a =
        sim::simulate(tree, sol.schedule, sol.instance.initial(), implicit);
    const auto b = sim::simulate(tree, sol.schedule, sol.instance.initial(),
                                 explicit_default);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.completion_time, b.completion_time);
    EXPECT_EQ(a.knowledge, b.knowledge);
    EXPECT_EQ(a.missing, b.missing);
    EXPECT_EQ(a.skipped_sends, b.skipped_sends);
    EXPECT_EQ(a.injected_drops, b.injected_drops);
    EXPECT_EQ(a.crashed_sends, b.crashed_sends);
    EXPECT_EQ(a.lost_receives, b.lost_receives);
    EXPECT_EQ(a.collided_receives, 0u);
    EXPECT_EQ(b.collided_receives, 0u);
    EXPECT_EQ(a.final_holds, b.final_holds);
  }
}

// Theorem 1's n + r bound for ConcurrentUpDown is a property of the
// multicast model; re-hosting the model behind the CommModel interface must
// not cost a round.
TEST(ModelProperty, Theorem1PreservedUnderExplicitDefault) {
  constexpr std::uint64_t kGraphs = 24;
  for (std::uint64_t seed = 0; seed < kGraphs; ++seed) {
    const graph::Graph g = make_graph(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    const gossip::Solution sol =
        gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
    ASSERT_TRUE(sol.report.ok) << sol.report.error;
    const std::size_t n = sol.instance.vertex_count();
    const std::size_t r = sol.instance.radius();
    EXPECT_LE(sol.schedule.total_time(),
              gossip::concurrent_updown_time(n, r));

    const auto adapted = model::adapt_schedule(
        sol.instance.tree().as_graph(), sol.schedule,
        model::multicast_model());
    EXPECT_EQ(adapted.structural_rounds, sol.schedule.total_time());
    EXPECT_EQ(adapted.model_rounds, sol.schedule.total_time());
    EXPECT_EQ(adapted.stretch, 0u);

    sim::SimOptions options;
    options.comm = &model::multicast_model();
    const auto run = sim::simulate(sol.instance.tree().as_graph(),
                                   sol.schedule, sol.instance.initial(),
                                   options);
    ASSERT_TRUE(run.completed);
    EXPECT_LE(run.total_time, gossip::concurrent_updown_time(n, r));
  }
}

// Native schedulers against the information-theoretic floor.
TEST(ModelProperty, NativeSchedulerBounds) {
  constexpr std::uint64_t kGraphs = 24;
  for (std::uint64_t seed = 0; seed < kGraphs; ++seed) {
    const graph::Graph g = make_graph(seed);
    const graph::Vertex n = g.vertex_count();
    SCOPED_TRACE("seed " + std::to_string(seed) + " n=" + std::to_string(n));

    const model::Schedule ring = model::direct_ring_schedule(n);
    EXPECT_EQ(ring.total_time(), static_cast<std::size_t>(n) - 1);

    const model::Schedule greedy = model::radio_greedy_schedule(g);
    EXPECT_GE(greedy.total_time(), static_cast<std::size_t>(n) - 1);
    model::ValidatorOptions options;
    options.model = &model::radio_model();
    const auto report = model::validate_schedule(g, greedy, {}, options);
    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.collided, 0u);
  }
}

}  // namespace
}  // namespace mg
