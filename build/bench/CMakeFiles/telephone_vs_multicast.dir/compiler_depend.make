# Empty compiler generated dependencies file for telephone_vs_multicast.
# This may be replaced when dependencies are built.
