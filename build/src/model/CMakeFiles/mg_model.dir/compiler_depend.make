# Empty compiler generated dependencies file for mg_model.
# This may be replaced when dependencies are built.
