// Round-synchronized actor runtime: the distributed online execution of §4.
//
// `ActorRuntime` runs n `ProcessorActor`s with no global coordinator: every
// round each actor reads only its own mailbox, updates its local state, and
// decides its transmission from its local rule.  The runtime supplies just
// the physical fabric — the round barrier, message routing (with the
// fault plan's drops / crash-stop / per-edge delays applied exactly as
// `sim::simulate` applies them, at the same absolute round indices), and
// deterministic delivery order under a seed — plus passive capture: the
// emergent `model::Schedule`, trace events for a `gossip::RoundTimeline`
// sink, and `dist.*` observability counters.
//
// Phases per main round t:
//   1. barrier flip    — arrivals due at t become readable (deterministic
//                        canonical-sort + seeded-shuffle order);
//   2. decide          — actors absorb their inbox and decide, in parallel
//                        across the worker pool (actor state is strictly
//                        per-actor, so no locks are needed here);
//   3. fault + capture — the runtime applies crash/drop/skip verdicts in
//                        actor-id order and records events and the emergent
//                        schedule (serial, so capture is deterministic);
//   4. route           — surviving envelopes are posted to the receivers'
//                        mailboxes, in parallel, behind the bus's stripe
//                        locks (the part the TSAN stress battery hammers).
//
// After the planned horizon, incomplete live actors run the decentralized
// digest / grant / data recovery protocol (see actor.h) until quiescence,
// completion, or budget exhaustion.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/actor.h"
#include "dist/mailbox.h"
#include "fault/fault.h"
#include "gossip/instance.h"
#include "gossip/solve.h"
#include "graph/graph.h"
#include "model/schedule.h"
#include "obs/trace.h"
#include "support/bitset.h"

namespace mg::dist {

struct RuntimeOptions {
  /// Fault plan applied by the fabric (nullptr = fault-free).  Rounds are
  /// absolute: main round t is round t, recovery cycle q is round
  /// horizon + q — the same convention `gossip::solve_with_recovery` uses.
  const fault::FaultPlan* faults = nullptr;
  /// Worker threads for the decide/route phases; 0 = run serially.
  std::size_t threads = 0;
  /// Seed for the bus's adversarial (but reproducible) delivery order.
  std::uint64_t seed = 0x5eed;
  /// Run the decentralized recovery protocol after the horizon when live
  /// actors are still missing messages.
  bool recover = true;
  /// Cap on recovery data rounds (0 = until quiescence, with an internal
  /// 4n^2 + 16 hard ceiling against pathological all-drop plans).
  std::size_t extra_round_budget = 0;
  /// Receives send/receive/drop/crash/skip/lost events with the same kinds
  /// and times `sim::simulate` emits — a `gossip::RoundTimeline` plugs in
  /// directly.  Events are emitted from the serial capture phase only.
  obs::TraceSink* sink = nullptr;
};

/// One logical transmission in the happens-before record.  `id`s are
/// 1-based and process-unique within one run; `parent` is the trace id of
/// the transmission whose arrival made this send informative — for data
/// sends the arrival that first delivered the payload to the sender (0 =
/// the sender held it initially: a root cause), for digests the most
/// recent hold-changing data arrival, for grants the chosen digest.
struct CausalLink {
  enum class Kind : std::uint8_t {
    kData = 0,    ///< main-phase data multicast
    kRepair = 1,  ///< recovery data round
    kDigest = 2,  ///< recovery digest fan-out
    kGrant = 3,   ///< recovery grant
  };
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  Kind kind = Kind::kData;
  std::size_t round = 0;  ///< absolute send round
  graph::Vertex sender = 0;
  model::Message message = 0;  ///< payload (data), requested id (grant)
  std::size_t fanout = 0;
};

/// What one distributed run produced.
struct RunReport {
  /// Transmissions that actually hit the wire in rounds 0..horizon-1.  On
  /// a fault-free run this is the schedule that *emerged* from the actors —
  /// the differential gate compares it round-for-round with the central one.
  model::Schedule emergent;
  /// Emergent repair transmissions, local round q = recovery cycle q.
  model::Schedule repair;
  std::size_t horizon = 0;          ///< main-phase rounds executed
  std::size_t recovery_rounds = 0;  ///< recovery data rounds executed
  std::size_t messages = 0;         ///< data transmissions sent (main+repair)
  std::size_t deliveries = 0;       ///< point-to-point data deliveries
  std::size_t control_messages = 0; ///< recovery digests + grants
  std::size_t injected_drops = 0;
  std::size_t crashed_sends = 0;
  std::size_t skipped_sends = 0;
  std::size_t lost_receives = 0;
  bool complete = false;   ///< every live actor holds all n messages
  bool recovered = false;  ///< every live actor reached its component closure
  /// Fraction of (live actor, message) pairs held at the end (1.0 when
  /// complete) — the honest partial-coverage report on crash partitions.
  double coverage = 1.0;
  std::vector<graph::Vertex> crashed;   ///< actors dead by end of run
  std::vector<std::size_t> missing;     ///< per-actor missing counts
  std::vector<DynamicBitset> main_holds;   ///< hold sets at end of main phase
  std::vector<DynamicBitset> final_holds;  ///< hold sets at end of run
  /// Happens-before record: one link per transmission that hit the wire
  /// (data, repair data, digest, grant), in capture order.  Always
  /// recorded — `critical_path` works with MG_OBS compiled out; the same
  /// links are mirrored into the global obs::CausalTracer ring when it is
  /// enabled, for the Chrome-trace flow export.
  std::vector<CausalLink> causal;
};

/// The longest causal chain in a run's happens-before record: the lower
/// bound on the rounds the run *had* to take given where information
/// actually flowed.
struct CriticalPath {
  /// Arrival time of the chain's last data hop (its send round + 1).  On a
  /// fault-free ConcurrentUpDown run this equals n + r exactly (the
  /// Theorem 1 bound is causally tight); under injected drops it grows by
  /// precisely the recovery data rounds executed.
  std::size_t length = 0;
  /// The chain, root first.  Every hop's parent is the previous hop, the
  /// first hop's parent is 0 (a message held initially), and rounds are
  /// strictly increasing.
  std::vector<CausalLink> hops;
};

/// Extracts the longest causal chain from `report.causal`.  Data hops
/// determine the length (control hops never extend arrival time past
/// their cycle's data round); ties prefer the later-captured link so the
/// recovery tail, when present, is the chain reported.
[[nodiscard]] CriticalPath critical_path(const RunReport& report);

class ActorRuntime {
 public:
  /// `instance` supplies the tree/labeling context (kept by reference);
  /// `network` is the full network the recovery protocol may route over.
  ActorRuntime(const gossip::Instance& instance, const graph::Graph& network,
               const RuntimeOptions& options);
  ~ActorRuntime();

  ActorRuntime(const ActorRuntime&) = delete;
  ActorRuntime& operator=(const ActorRuntime&) = delete;

  /// Equips every actor with the §4 online rule — behaviour computed from
  /// (i, j, k, n) alone; the ConcurrentUpDown schedule emerges.
  void use_online_rule();

  /// Equips every actor with only its own rows of `schedule` (the
  /// dissemination reading of §4, for algorithms without a closed-form
  /// local rule).
  void use_timetable(const model::Schedule& schedule);

  /// Executes `horizon` main rounds plus (optionally) recovery.  Call once.
  [[nodiscard]] RunReport run(std::size_t horizon);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Differential verdict: emergent vs centrally computed schedule.
struct VerifyReport {
  bool match = false;          ///< round-for-round transmission equality
  bool n_plus_r_ok = false;    ///< emergent spans exactly n + r rounds
  std::size_t central_rounds = 0;
  std::size_t emergent_rounds = 0;
  /// First differing round (SIZE_MAX when match), with a human-readable
  /// account of the difference in `detail`.
  std::size_t first_mismatch_round = static_cast<std::size_t>(-1);
  std::string detail;
};

/// Round-for-round comparison of the emergent schedule against the central
/// one, plus the Theorem 1 check (`n_plus_r_ok` is only a meaningful gate
/// for fault-free ConcurrentUpDown runs).
[[nodiscard]] VerifyReport verify_against_schedule(
    const model::Schedule& central, const model::Schedule& emergent,
    graph::Vertex n, std::uint32_t radius);

/// End-to-end driver: solve centrally (reference), run the decentralized
/// actors (online rule for ConcurrentUpDown, per-actor timetable slices
/// otherwise), and compare.
struct DistOutcome {
  gossip::Solution central;  ///< centrally computed reference solution
  RunReport run;             ///< the emergent decentralized execution
  VerifyReport verify;       ///< differential verdict (fault-free gate)
};

[[nodiscard]] DistOutcome run_distributed(const graph::Graph& g,
                                          gossip::Algorithm algorithm,
                                          const RuntimeOptions& options = {});

}  // namespace mg::dist
