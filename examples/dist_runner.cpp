// Distributed runner: executes one gossip instance on the `mg::dist` actor
// runtime — n independent processor actors, a round-synchronized mailbox
// bus, optional live faults — and checks the emergent execution against the
// centrally computed schedule (the differential gate) plus Theorem 1's
// n + r round count.
//
//   $ ./dist_runner                                    # Petersen, ConcurrentUpDown
//   $ ./dist_runner --graph grid:5x5 --algorithm updown --threads 8
//   $ ./dist_runner --drop-rate 0.15 --crash 3:6 --seed 9
//   $ ./dist_runner --timeline-out timeline.json
//   $ ./dist_runner --flow-trace flow.json        # Perfetto causal flows
//
// Exit status: fault-free runs fail (exit 1) unless the emergent schedule
// matches the central one round-for-round, the run completes, and — for
// ConcurrentUpDown — the execution spans exactly n + r rounds.  Faulty runs
// fail unless the emergent repair passes the independent model validator
// and the survivors reach their achievable closure.  CI runs the fault-free
// Petersen configuration as a smoke gate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "dist/runtime.h"
#include "fault/fault.h"
#include "gossip/recovery.h"
#include "gossip/timeline.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "obs/causal.h"
#include "obs/span.h"
#include "obs/trace_export.h"

namespace {

using namespace mg;

struct Options {
  std::string graph = "petersen";
  gossip::Algorithm algorithm = gossip::Algorithm::kConcurrentUpDown;
  std::size_t threads = 0;
  std::uint64_t seed = 0x5eed;
  double drop_rate = 0.0;
  bool have_crash = false;
  graph::Vertex crash_victim = 0;
  std::size_t crash_round = 0;
  std::size_t budget = 0;
  std::string timeline_out;
  std::string flow_trace_out;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--graph petersen|cycle:N|grid:RxC|hypercube:D]\n"
      "          [--algorithm simple|updown|concurrent-updown|telephone]\n"
      "          [--threads N] [--seed N] [--drop-rate P] [--crash V:ROUND]\n"
      "          [--budget ROUNDS] [--timeline-out FILE]\n"
      "          [--flow-trace FILE]\n",
      argv0);
}

graph::Graph make_graph(const std::string& spec) {
  if (spec == "petersen") return graph::petersen();
  const auto colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (family == "cycle") {
    return graph::cycle(static_cast<graph::Vertex>(std::stoul(arg)));
  }
  if (family == "grid") {
    const auto x = arg.find('x');
    if (x == std::string::npos) throw std::invalid_argument("grid wants RxC");
    return graph::grid(
        static_cast<graph::Vertex>(std::stoul(arg.substr(0, x))),
        static_cast<graph::Vertex>(std::stoul(arg.substr(x + 1))));
  }
  if (family == "hypercube") {
    return graph::hypercube(static_cast<unsigned>(std::stoul(arg)));
  }
  throw std::invalid_argument("unknown graph family '" + family + "'");
}

gossip::Algorithm parse_algorithm(const std::string& name) {
  if (name == "simple") return gossip::Algorithm::kSimple;
  if (name == "updown") return gossip::Algorithm::kUpDown;
  if (name == "concurrent-updown") return gossip::Algorithm::kConcurrentUpDown;
  if (name == "telephone") return gossip::Algorithm::kTelephone;
  throw std::invalid_argument("unknown algorithm '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a value\n", flag.c_str());
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (flag == "--graph") {
        opt.graph = next();
      } else if (flag == "--algorithm") {
        opt.algorithm = parse_algorithm(next());
      } else if (flag == "--threads") {
        opt.threads = std::stoul(next());
      } else if (flag == "--seed") {
        opt.seed = std::stoull(next());
      } else if (flag == "--drop-rate") {
        opt.drop_rate = std::stod(next());
      } else if (flag == "--crash") {
        const std::string spec = next();
        const auto colon = spec.find(':');
        if (colon == std::string::npos) {
          throw std::invalid_argument("--crash wants V:ROUND");
        }
        opt.have_crash = true;
        opt.crash_victim =
            static_cast<graph::Vertex>(std::stoul(spec.substr(0, colon)));
        opt.crash_round = std::stoul(spec.substr(colon + 1));
      } else if (flag == "--budget") {
        opt.budget = std::stoul(next());
      } else if (flag == "--timeline-out") {
        opt.timeline_out = next();
      } else if (flag == "--flow-trace") {
        opt.flow_trace_out = next();
      } else {
        usage(argv[0]);
        return flag == "--help" ? 0 : 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad value for %s: %s\n", flag.c_str(), e.what());
      return 2;
    }
  }

  graph::Graph network(0);
  try {
    network = make_graph(opt.graph);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--graph %s: %s\n", opt.graph.c_str(), e.what());
    return 2;
  }

  fault::FaultPlan plan;
  bool faulty = false;
  if (opt.drop_rate > 0.0) {
    plan.drop_rate(opt.drop_rate).seed(opt.seed);
    faulty = true;
  }
  if (opt.have_crash) {
    plan.crash(opt.crash_victim, opt.crash_round);
    faulty = true;
  }

  // The central solve is only needed up front to size the timeline sink;
  // run_distributed recomputes its own reference.
  const auto central = gossip::solve_gossip(network, opt.algorithm);
  const graph::Vertex n = central.instance.vertex_count();
  const std::uint32_t r = central.instance.radius();
  gossip::RoundTimeline timeline(central.instance);

  dist::RuntimeOptions options;
  options.threads = opt.threads;
  options.seed = opt.seed;
  options.extra_round_budget = opt.budget;
  options.sink = &timeline;
  if (faulty) options.faults = &plan;

  // Flow tracing is opt-in: the runtime mirrors its happens-before record
  // into the global causal ring only while the tracer is enabled.
  const bool want_flows = !opt.flow_trace_out.empty();
  if (want_flows) {
    obs::CausalTracer::global().clear();
    obs::CausalTracer::global().set_enabled(true);
    obs::SpanTracer::global().set_enabled(true);
  }

  const dist::DistOutcome outcome =
      dist::run_distributed(network, opt.algorithm, options);
  const dist::RunReport& run = outcome.run;

  if (want_flows) {
    obs::CausalTracer::global().set_enabled(false);
    obs::SpanTracer::global().set_enabled(false);
  }

  std::printf("algorithm: %s on %s (n = %u, radius r = %u)\n",
              gossip::algorithm_name(opt.algorithm).c_str(),
              opt.graph.c_str(), n, r);
  std::printf("actors: %u, worker threads: %zu, bus seed: %llu\n", n,
              opt.threads, static_cast<unsigned long long>(opt.seed));
  std::printf("main phase: %zu rounds, %zu messages, %zu deliveries\n",
              run.horizon, run.messages, run.deliveries);
  if (faulty) {
    std::printf("faults: %zu drops, %zu crashed sends, %zu skipped, "
                "%zu lost; %zu actors crashed\n",
                run.injected_drops, run.crashed_sends, run.skipped_sends,
                run.lost_receives, run.crashed.size());
    std::printf("recovery: %zu data rounds, %zu control messages\n",
                run.recovery_rounds, run.control_messages);
  }
  std::printf("result: %s, recovered %s, coverage %.4f\n",
              run.complete ? "complete" : "INCOMPLETE",
              run.recovered ? "yes" : "NO", run.coverage);
  const dist::CriticalPath cp = dist::critical_path(run);
  std::printf("critical path: %zu hops, causal length %zu rounds\n",
              cp.hops.size(), cp.length);

  if (!opt.timeline_out.empty()) {
    std::ofstream out(opt.timeline_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.timeline_out.c_str());
      return 2;
    }
    timeline.write_json(out);
    std::printf("round timeline written to %s\n", opt.timeline_out.c_str());
  }

  if (want_flows) {
    std::ofstream out(opt.flow_trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opt.flow_trace_out.c_str());
      return 2;
    }
    obs::write_chrome_trace(out, obs::SpanTracer::global().snapshot(),
                            obs::CausalTracer::global().snapshot());
    std::printf("causal flow trace written to %s (%llu events)\n",
                opt.flow_trace_out.c_str(),
                static_cast<unsigned long long>(
                    obs::CausalTracer::global().recorded()));
  }

  if (!faulty) {
    std::printf("differential gate: emergent %s central (%zu vs %zu rounds)\n",
                outcome.verify.match ? "==" : "!=",
                outcome.verify.emergent_rounds, outcome.verify.central_rounds);
    if (!outcome.verify.match) {
      std::fprintf(stderr, "FAIL: emergent schedule diverged\n%s\n",
                   outcome.verify.detail.c_str());
      return 1;
    }
    if (!run.complete) {
      std::fprintf(stderr, "FAIL: fault-free run did not complete\n");
      return 1;
    }
    if (opt.algorithm == gossip::Algorithm::kConcurrentUpDown) {
      if (!outcome.verify.n_plus_r_ok) {
        std::fprintf(stderr,
                     "FAIL: expected n + r = %u rounds, emergent has %zu\n",
                     n + r, outcome.verify.emergent_rounds);
        return 1;
      }
      std::printf("Theorem 1 check: execution spans exactly n + r rounds\n");
    }
    return 0;
  }

  // Faulty run: the emergent repair must be independently model-valid, and
  // the survivors must have reached their achievable closure (unless a
  // budget cut recovery short, in which case honesty is the gate).
  const auto repair_report = model::validate_schedule_general(
      network, run.repair, gossip::holds_to_initial_sets(run.main_holds),
      static_cast<std::size_t>(n),
      {.variant = model::ModelVariant::kMulticast,
       .require_completion = false});
  if (!repair_report.ok) {
    std::fprintf(stderr, "FAIL: emergent repair is model-invalid: %s\n",
                 repair_report.error.c_str());
    return 1;
  }
  if (!run.recovered && opt.budget == 0) {
    std::fprintf(stderr, "FAIL: survivors did not reach closure\n");
    return 1;
  }
  return 0;
}
