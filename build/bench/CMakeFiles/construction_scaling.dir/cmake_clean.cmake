file(REMOVE_RECURSE
  "CMakeFiles/construction_scaling.dir/construction_scaling.cpp.o"
  "CMakeFiles/construction_scaling.dir/construction_scaling.cpp.o.d"
  "construction_scaling"
  "construction_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/construction_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
