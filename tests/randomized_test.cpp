// Tests for randomized rumor spreading under the receive-capacity model.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/named.h"
#include "sim/randomized.h"

namespace mg::sim {
namespace {

TEST(Randomized, CompletesOnConnectedGraphs) {
  Rng rng(17);
  for (const auto& g : {graph::complete(12), graph::cycle(10),
                        graph::petersen(), graph::grid(4, 4)}) {
    const auto result = randomized_gossip(g, rng);
    EXPECT_TRUE(result.completed);
    EXPECT_GE(result.rounds, g.vertex_count() - 1u);  // trivial bound
  }
}

TEST(Randomized, DeterministicPerSeed) {
  const auto g = graph::grid(4, 4);
  Rng a(5);
  Rng b(5);
  const auto ra = randomized_gossip(g, a);
  const auto rb = randomized_gossip(g, b);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_EQ(ra.transmissions, rb.transmissions);
  EXPECT_EQ(ra.collisions, rb.collisions);
}

TEST(Randomized, PullAcceleratesSparseGraphs) {
  // On a star, pure push wastes most rounds (all leaves push into the
  // hub's single receive slot); pull lets leaves fetch from the hub.
  const auto g = graph::star(16);
  std::size_t push_total = 0;
  std::size_t pull_total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng r1(seed);
    Rng r2(seed);
    RandomizedOptions push_only;
    RandomizedOptions with_pull;
    with_pull.pull = true;
    push_total += randomized_gossip(g, r1, push_only).rounds;
    pull_total += randomized_gossip(g, r2, with_pull).rounds;
  }
  EXPECT_LT(pull_total, push_total);
}

TEST(Randomized, NewestFirstPolicyStalls) {
  // The documented pitfall: newest-first offers stop recirculating old
  // messages and the protocol never finishes.
  Rng rng(4);
  RandomizedOptions newest;
  newest.push_newest = true;
  newest.round_limit = 20'000;
  const auto result = randomized_gossip(graph::complete(12), rng, newest);
  EXPECT_FALSE(result.completed);
}

TEST(Randomized, CollisionsHappenOnHubs) {
  Rng rng(3);
  const auto result = randomized_gossip(graph::star(12), rng);
  EXPECT_GT(result.collisions, 0u);
}

TEST(Randomized, RoundLimitRespected) {
  Rng rng(9);
  RandomizedOptions options;
  options.round_limit = 3;
  const auto result = randomized_gossip(graph::cycle(30), rng, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 3u);
}

TEST(Randomized, SingletonTrivial) {
  Rng rng(1);
  const auto result = randomized_gossip(graph::Graph(1), rng);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Randomized, PullOnlyConfigurationCompletes) {
  Rng rng(77);
  RandomizedOptions options;
  options.pull = true;
  const auto result = randomized_gossip(graph::cycle(12), rng, options);
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace mg::sim
