file(REMOVE_RECURSE
  "libmg_mmc.a"
)
