// Beyond-the-paper ablation: how tight is the n + r guarantee?  For EVERY
// labeled tree on n <= 6 vertices (Cayley: 16 + 125 + 1296 trees) the exact
// branch-and-bound search computes the true optimal gossip time on the tree
// network, and we histogram OPT against the algorithm's n + height and the
// trivial n - 1 bound.  (§4 shows the gap is exactly 1 on odd lines; this
// measures the whole small-tree space.)
#include <cstdio>
#include <map>

#include "gossip/concurrent_updown.h"
#include "gossip/optimal_search.h"
#include "graph/enumeration.h"
#include "support/table.h"
#include "tree/spanning_tree.h"

int main() {
  using namespace mg;
  TextTable table;
  table.new_row();
  for (const char* h :
       {"n", "trees", "OPT==n-1", "gap(alg-OPT)=0", "gap=1", "gap=2",
        "gap>=3", "budget", "max gap"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (graph::Vertex n : {4u, 5u, 6u}) {
    std::map<std::size_t, std::size_t> gap_histogram;
    std::size_t at_trivial = 0;
    std::size_t budget_outs = 0;
    std::size_t max_gap = 0;
    // n = 6 trees with a budget-limited certification are expensive; keep
    // the full space for n <= 5 and an explicit 1-in-9 systematic sample
    // for n = 6 (no silent truncation: the 'trees' column reports the
    // number actually examined).
    const std::size_t stride = n >= 6 ? 9 : 1;
    std::size_t index = 0;
    std::size_t examined = 0;

    graph::for_each_labeled_tree(n, [&](const graph::Graph& t) {
      if (index++ % stride != 0) return true;
      ++examined;
      // The gossip instance: tree rooted at its center (min-depth).
      const gossip::Instance instance(tree::min_depth_spanning_tree(t));
      const auto schedule = gossip::concurrent_updown(instance);
      const std::size_t algorithm_time = schedule.total_time();

      // Exact optimum by binary certification from n - 1 upwards.
      std::size_t opt = 0;
      for (std::size_t budget_time = n - 1; budget_time <= algorithm_time;
           ++budget_time) {
        gossip::ExactSearchOptions options;
        options.node_budget = 1'000'000;
        const auto result = gossip::exact_gossip_search(t, budget_time,
                                                        options);
        if (result.status == graph::SearchStatus::kFound) {
          opt = budget_time;
          break;
        }
        if (result.status == graph::SearchStatus::kBudget) {
          ++budget_outs;
          return true;  // skip this tree
        }
      }
      if (opt == 0) opt = algorithm_time;  // algorithm is optimal here
      if (opt == n - 1) ++at_trivial;
      const std::size_t gap = algorithm_time - opt;
      ++gap_histogram[gap];
      max_gap = std::max(max_gap, gap);
      return true;
    });

    table.new_row();
    table.cell(static_cast<std::size_t>(n));
    // Built up with += (not operator+ chaining): GCC 12's -Werror=restrict
    // false-positives on temporary-string concatenation (GCC PR105651).
    std::string examined_cell = std::to_string(examined);
    if (stride > 1) {
      examined_cell += "/";
      examined_cell += std::to_string(graph::labeled_tree_count(n));
    }
    table.cell(std::move(examined_cell));
    table.cell(at_trivial);
    table.cell(gap_histogram[0]);
    table.cell(gap_histogram[1]);
    table.cell(gap_histogram[2]);
    std::size_t big = 0;
    for (const auto& [gap, count] : gap_histogram) {
      if (gap >= 3) big += count;
    }
    table.cell(big);
    table.cell(budget_outs);
    table.cell(max_gap);
    if (max_gap > n / 2) all_ok = false;  // gap can never exceed r
  }

  std::printf(
      "Optimality gap of ConcurrentUpDown (n + height) over ALL labeled\n"
      "trees with n <= 6, against the exact branch-and-bound optimum:\n\n%s\n"
      "Reading: 'gap' = algorithm time minus true optimum on that tree\n"
      "network.  The paper proves gap <= r (since OPT >= n - 1, alg = n + "
      "r)\nand gap = 1 on odd lines; the histogram shows where the guarantee "
      "is\nloose in practice.\n",
      table.render().c_str());
  return all_ok ? 0 : 1;
}
