file(REMOVE_RECURSE
  "CMakeFiles/rounds_vs_bounds.dir/rounds_vs_bounds.cpp.o"
  "CMakeFiles/rounds_vs_bounds.dir/rounds_vs_bounds.cpp.o.d"
  "rounds_vs_bounds"
  "rounds_vs_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rounds_vs_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
