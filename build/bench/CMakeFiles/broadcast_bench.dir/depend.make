# Empty dependencies file for broadcast_bench.
# This may be replaced when dependencies are built.
