// A guided, executable tour of the paper: reproduces the §1-§4 claims in
// order with printed commentary.  Run it after reading the paper (or
// instead of reading it).
//
//   $ ./paper_walkthrough
#include <cstdio>

#include "multigossip.h"

using namespace mg;

namespace {

void heading(const char* text) { std::printf("\n=== %s ===\n\n", text); }

}  // namespace

int main() {
  heading("S1: the model, and why multicast helps (Fig. 1)");
  {
    const auto n1 = graph::n1_cycle(8);
    const auto rotation = gossip::hamiltonian_gossip(n1);
    std::printf(
        "On the 8-cycle N1, rotating every message clockwise solves\n"
        "gossiping in n - 1 = %zu rounds -- the trivial lower bound, since\n"
        "each processor can receive at most one message per round.\n",
        rotation->total_time());
  }

  heading("S1: the straight-line lower bound");
  {
    const graph::Vertex n = 9;  // m = 4
    const auto sol = gossip::solve_gossip(graph::path(n));
    std::printf(
        "On the line with n = %u (radius r = %u) every schedule needs at\n"
        "least n + r - 1 = %zu rounds: the center cannot know everything\n"
        "before time n - 1, and the last message still has r hops to go.\n"
        "ConcurrentUpDown takes %zu; the reconstructed non-uniform protocol\n"
        "(line_optimal_gossip) attains the bound: %zu.\n",
        n, sol.instance.radius(),
        gossip::odd_line_lower_bound(n), sol.schedule.total_time(),
        gossip::line_optimal_gossip(4).total_time());
  }

  heading("S2: broadcast is trivial; telephone vs multicast");
  {
    const auto g = graph::star(16);
    const auto broadcast = gossip::multicast_broadcast(g, 0);
    const auto multicast = gossip::solve_gossip(g);
    const auto telephone = gossip::solve_gossip(g, gossip::Algorithm::kTelephone);
    std::printf(
        "Star on 16 processors: broadcast from the hub takes %zu round(s)\n"
        "(= eccentricity).  Full gossip: multicast %zu rounds vs telephone\n"
        "%zu rounds -- the hub must serve each leaf separately without\n"
        "multicasting (%.1fx slower).\n",
        broadcast.total_time(), multicast.schedule.total_time(),
        telephone.schedule.total_time(),
        static_cast<double>(telephone.schedule.total_time()) /
            static_cast<double>(multicast.schedule.total_time()));
  }

  heading("S3.1: the minimum-depth spanning tree (Figs. 4-5)");
  {
    const auto g = graph::fig4_network();
    const auto instance = gossip::Instance::from_network(g);
    std::printf(
        "The Fig. 4 network has n = %u and radius %u; BFS from every vertex\n"
        "finds the center and the minimum-depth spanning tree (Fig. 5),\n"
        "whose height equals the radius.  DFS labels messages 0..15 so each\n"
        "subtree holds a contiguous block [i, j].\n",
        g.vertex_count(), instance.radius());
  }

  heading("S3.2: ConcurrentUpDown and Theorem 1");
  {
    const auto g = graph::fig4_network();
    const auto sol = gossip::solve_gossip(g);
    std::printf(
        "Propagate-Up delivers message m to the root at time m; overlapped\n"
        "with Propagate-Down the whole gossip finishes in exactly n + r =\n"
        "%zu rounds, validator-clean: %s.  The paper's Table 3 row for the\n"
        "vertex with message 4:\n\n%s",
        sol.schedule.total_time(), sol.report.ok ? "yes" : "NO",
        gossip::render_timetable(
            gossip::vertex_timetable(sol.instance, sol.schedule, 4))
            .c_str());

    gossip::ConcurrentUpDownOptions ablation;
    ablation.lookahead_at_time_zero = false;
    const auto broken = gossip::concurrent_updown(sol.instance, ablation);
    const auto report = model::validate_schedule(
        sol.instance.tree().as_graph(), broken, sol.instance.initial());
    std::printf(
        "\nWithout step (U3)'s time-0 lookahead the paper predicts a\n"
        "conflict; the validator finds it:\n  %s\n",
        report.error.c_str());
  }

  heading("S4: online, weighted, repeated");
  {
    const auto g = graph::fig4_network();
    const auto instance = gossip::Instance::from_network(g);
    const bool online_same = model::equivalent(
        gossip::concurrent_updown(instance), gossip::run_online(instance));
    std::printf("Online protocol (only i, j, k local info): %s.\n",
                online_same ? "identical schedule to offline"
                            : "MISMATCH");

    std::vector<std::uint32_t> weights(16, 1);
    weights[0] = 3;
    const auto weighted = gossip::weighted_gossip(g, weights);
    std::printf(
        "Weighted gossip (root holds 3 messages): chain splitting gives\n"
        "N + r_virtual = %zu + %u = %zu rounds.\n",
        weighted.total_messages, weighted.virtual_radius,
        weighted.schedule.total_time());

    const auto repeated = gossip::repeated_gossip(instance, 4, true);
    std::printf(
        "Repeated gossiping: 4 gossips pipelined at period %zu "
        "(amortized %.1f rounds each).\n",
        repeated.period, repeated.amortized_time);
  }

  heading("Beyond: certificates for Figs. 2-3");
  {
    const auto petersen_search =
        gossip::exact_gossip_search(graph::petersen(), 9);
    const auto k23_multicast =
        gossip::exact_gossip_search(graph::n3_witness(), 4);
    gossip::ExactSearchOptions phone;
    phone.variant = model::ModelVariant::kTelephone;
    const auto k23_phone =
        gossip::exact_gossip_search(graph::n3_witness(), 4, phone);
    std::printf(
        "Petersen graph: exact search finds a 9-round schedule (%s).\n"
        "K_{2,3} (N3-class witness): 4-round multicast schedule %s;\n"
        "telephone in 4 rounds %s -- exactly Fig. 3's point.\n",
        petersen_search.status == graph::SearchStatus::kFound ? "found"
                                                              : "not found",
        k23_multicast.status == graph::SearchStatus::kFound ? "found"
                                                            : "missing",
        k23_phone.status == graph::SearchStatus::kExhausted
            ? "provably impossible"
            : "unexpectedly possible");
  }

  std::printf("\nDone.  See EXPERIMENTS.md for the full paper-vs-measured "
              "record.\n");
  return 0;
}
