// Distributed-runtime benchmark — the machine-readable actor-overhead
// artifact (BENCH_dist.json).
//
// For every named graph x all four gossip algorithms the bench executes the
// same schedule two ways:
//   central  — `sim::simulate` replaying the centrally computed schedule
//              (one loop, no actors, no mailboxes), and
//   dist     — the `mg::dist` actor runtime: n processor actors deciding
//              from local state behind a round-synchronized mailbox bus,
//              serially and on a worker pool.
// Each row records the wall time of all three executions, the emergent
// round count, and the per-round latency quantiles of the actor runtime
// from the `dist.round_ns` observability histogram — the honest price of
// decentralization relative to the flat replay loop.
//
// The bench doubles as a regression gate: a row fails (process exits
// nonzero) when the emergent schedule diverges from the central one, the
// run does not complete, or a fault-free ConcurrentUpDown execution does
// not span exactly n + r rounds (Theorem 1).
//
//   dist_bench [--out FILE] [--threads N] [--quick]
//
// --out      output path (default BENCH_dist.json)
// --threads  worker count for the threaded rows (default 4)
// --quick    cycle + Petersen only (CI-friendly)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "dist/runtime.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "sim/network_sim.h"
#include "support/stopwatch.h"

namespace {

using namespace mg;

int run(const std::string& out_path, std::size_t threads, bool quick) {
  std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"cycle/n=16", graph::cycle(16)},
      {"petersen", graph::petersen()},
  };
  if (!quick) {
    graphs.emplace_back("grid/5x5", graph::grid(5, 5));
    graphs.emplace_back("hypercube/d=4", graph::hypercube(4));
    graphs.emplace_back("grid/8x8", graph::grid(8, 8));
  }
  constexpr gossip::Algorithm kAlgorithms[] = {
      gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
      gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "dist_bench: cannot open %s for writing\n",
                 out_path.c_str());
    return 2;
  }

  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);

  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("suite", "dist");
  w.field("threads", static_cast<std::uint64_t>(threads));
  w.key("rows").begin_array();

  bool all_ok = true;
  std::size_t row_count = 0;
  for (const auto& [name, g] : graphs) {
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      registry.reset();
      const gossip::Solution central = gossip::solve_gossip(g, algorithm);
      const graph::Vertex n = central.instance.vertex_count();
      const std::uint32_t r = central.instance.radius();
      const std::size_t horizon = central.schedule.round_count();

      // Central replay: one flat loop over the precomputed schedule.
      Stopwatch central_watch;
      const sim::SimResult replay =
          sim::simulate(central.instance.tree().as_graph(), central.schedule,
                        central.instance.initial());
      const auto central_ns =
          static_cast<std::uint64_t>(central_watch.seconds() * 1e9);

      const auto run_dist = [&](std::size_t workers) {
        dist::RuntimeOptions options;
        options.threads = workers;
        dist::ActorRuntime runtime(central.instance, g, options);
        if (algorithm == gossip::Algorithm::kConcurrentUpDown) {
          runtime.use_online_rule();
        } else {
          runtime.use_timetable(central.schedule);
        }
        Stopwatch watch;
        dist::RunReport run = runtime.run(horizon);
        return std::make_pair(
            static_cast<std::uint64_t>(watch.seconds() * 1e9),
            std::move(run));
      };
      const auto [serial_ns, serial_run] = run_dist(0);
      const auto [threaded_ns, threaded_run] = run_dist(threads);

      const dist::VerifyReport verify = dist::verify_against_schedule(
          central.schedule, serial_run.emergent, n, r);
      const bool n_plus_r_ok =
          algorithm != gossip::Algorithm::kConcurrentUpDown ||
          verify.n_plus_r_ok;
      const bool row_ok = central.report.ok && replay.completed &&
                          verify.match && serial_run.complete &&
                          threaded_run.complete && n_plus_r_ok;
      all_ok = all_ok && row_ok;
      ++row_count;

      const obs::Snapshot snap = registry.snapshot();
      const obs::HistogramSnapshot round_hist =
          snap.histogram("dist.round_ns");
      w.begin_object();
      w.field("name", name);
      w.field("algorithm", gossip::algorithm_name(algorithm));
      w.field("n", static_cast<std::uint64_t>(n));
      w.field("r", static_cast<std::uint64_t>(r));
      w.field("rounds", static_cast<std::uint64_t>(horizon));
      w.field("messages", static_cast<std::uint64_t>(serial_run.messages));
      w.field("deliveries",
              static_cast<std::uint64_t>(serial_run.deliveries));
      w.field("central_ns", central_ns);
      w.field("dist_serial_ns", serial_ns);
      w.field("dist_threaded_ns", threaded_ns);
      w.field("actor_overhead",
              central_ns == 0
                  ? 0.0
                  : static_cast<double>(serial_ns) /
                        static_cast<double>(central_ns));
      // Both dist executions feed the per-round histogram.
      w.field("round_samples", round_hist.count);
      w.field("round_ns_p50", round_hist.p50);
      w.field("round_ns_p99", round_hist.p99);
      w.field("match", verify.match);
      w.field("n_plus_r_ok", n_plus_r_ok);
      w.field("complete", serial_run.complete);
      w.end_object();

      std::printf("%-14s %-18s rounds=%3zu central=%8llu ns serial=%8llu ns "
                  "threaded=%8llu ns %s\n",
                  name.c_str(), gossip::algorithm_name(algorithm).c_str(),
                  horizon, static_cast<unsigned long long>(central_ns),
                  static_cast<unsigned long long>(serial_ns),
                  static_cast<unsigned long long>(threaded_ns),
                  row_ok ? "ok" : "VIOLATION");
    }
  }

  w.end_array();
  w.end_object();
  out << '\n';

  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), row_count);
  if (!all_ok) {
    std::fprintf(stderr,
                 "dist_bench: emergent schedule diverged, run incomplete, "
                 "or n + r violated\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_dist.json";
  std::size_t threads = 4;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: dist_bench [--out FILE] [--threads N] [--quick]\n");
      return 2;
    }
  }
  return run(out_path, threads, quick);
}
