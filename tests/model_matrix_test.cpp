// Cross-model differential matrix: every named graph family × gossip
// algorithm × communication model.  Three independent implementations look
// at every adapted schedule — the scheduler adapter (model/legalize.h), the
// model-aware validator, and the simulator executing under the model — and
// must agree on acceptance, completion and timing.
//
// The refactor's safety gate rides here too: passing the default multicast
// model explicitly (`SimOptions::comm = &multicast_model()`,
// `ValidatorOptions::model = &multicast_model()`) must reproduce the
// implicit default bit for bit — every SimResult field, every trace event,
// every validator report field — on both execution cores.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fault/fault.h"
#include "gossip/solve.h"
#include "model/comm_model.h"
#include "model/legalize.h"
#include "model/validator.h"
#include "sim/network_sim.h"
#include "test_util.h"

namespace mg {
namespace {

constexpr gossip::Algorithm kAlgorithms[] = {
    gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
    gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

/// Full field-for-field SimResult equality — the "bit-identical" check.
void expect_sim_equal(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.knowledge, b.knowledge);
  EXPECT_EQ(a.missing, b.missing);
  EXPECT_EQ(a.skipped_sends, b.skipped_sends);
  EXPECT_EQ(a.injected_drops, b.injected_drops);
  EXPECT_EQ(a.crashed_sends, b.crashed_sends);
  EXPECT_EQ(a.lost_receives, b.lost_receives);
  EXPECT_EQ(a.collided_receives, b.collided_receives);
  EXPECT_EQ(a.final_holds, b.final_holds);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].kind, b.trace[i].kind) << "event " << i;
    EXPECT_EQ(a.trace[i].time, b.trace[i].time) << "event " << i;
    EXPECT_EQ(a.trace[i].node, b.trace[i].node) << "event " << i;
    EXPECT_EQ(a.trace[i].message, b.trace[i].message) << "event " << i;
    EXPECT_EQ(a.trace[i].peer, b.trace[i].peer) << "event " << i;
  }
}

void expect_report_equal(const model::ValidationReport& a,
                         const model::ValidationReport& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.collided, b.collided);
}

// The explicit default model must be indistinguishable from no model at
// all: same simulator results (events, traces, final holds) on both cores,
// same validator reports.
TEST(ModelMatrix, DefaultModelBitIdentical) {
  for (const auto& family : test::families()) {
    const graph::Graph g = family.make(6);
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      SCOPED_TRACE(family.name + " " + gossip::algorithm_name(algorithm));
      const gossip::Solution sol = gossip::solve_gossip(g, algorithm);
      ASSERT_TRUE(sol.report.ok) << sol.report.error;
      const graph::Graph tree = sol.instance.tree().as_graph();

      for (const sim::SimCore core :
           {sim::SimCore::kWordParallel, sim::SimCore::kBitwise}) {
        sim::SimOptions implicit;
        implicit.core = core;
        implicit.record_trace = true;
        sim::SimOptions explicit_default = implicit;
        explicit_default.comm = &model::multicast_model();
        expect_sim_equal(
            sim::simulate(tree, sol.schedule, sol.instance.initial(),
                          implicit),
            sim::simulate(tree, sol.schedule, sol.instance.initial(),
                          explicit_default));
      }

      model::ValidatorOptions with_model;
      with_model.model = &model::multicast_model();
      expect_report_equal(
          model::validate_schedule(tree, sol.schedule, sol.instance.initial()),
          model::validate_schedule(tree, sol.schedule, sol.instance.initial(),
                                   with_model));
    }
  }
}

// The legacy telephone variant selector and the telephone CommModel are the
// same rules: identical reports on legalized-telephone schedules and
// identical rejections on multicast ones.
TEST(ModelMatrix, TelephoneVariantEqualsTelephoneModel) {
  for (const auto& family : test::families()) {
    const graph::Graph g = family.make(5);
    SCOPED_TRACE(family.name);
    const gossip::Solution sol =
        gossip::solve_gossip(g, gossip::Algorithm::kSimple);
    ASSERT_TRUE(sol.report.ok) << sol.report.error;
    const graph::Graph tree = sol.instance.tree().as_graph();
    const auto adapted =
        model::adapt_schedule(tree, sol.schedule, model::telephone_model());

    model::ValidatorOptions by_variant;
    by_variant.variant = model::ModelVariant::kTelephone;
    model::ValidatorOptions by_model;
    by_model.model = &model::telephone_model();
    expect_report_equal(
        model::validate_schedule(tree, adapted.schedule,
                                 sol.instance.initial(), by_variant),
        model::validate_schedule(tree, adapted.schedule,
                                 sol.instance.initial(), by_model));
    expect_report_equal(
        model::validate_schedule(tree, sol.schedule, sol.instance.initial(),
                                 by_variant),
        model::validate_schedule(tree, sol.schedule, sol.instance.initial(),
                                 by_model));
  }
}

// The full matrix: adapt every algorithm's schedule to every model; the
// model validator must accept it, the simulator executing under the model
// must complete, and the two must agree on timing.
TEST(ModelMatrix, EveryFamilyAlgorithmModelAgrees) {
  for (const auto& family : test::families()) {
    const graph::Graph g = family.make(6);
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      const gossip::Solution sol = gossip::solve_gossip(g, algorithm);
      ASSERT_TRUE(sol.report.ok) << sol.report.error;
      const graph::Graph tree = sol.instance.tree().as_graph();

      for (const model::CommModel* m : model::all_models()) {
        SCOPED_TRACE(family.name + " " + gossip::algorithm_name(algorithm) +
                     " model=" + m->name());
        const auto adapted = model::adapt_schedule(tree, sol.schedule, *m);
        EXPECT_EQ(adapted.structural_rounds, adapted.schedule.total_time());
        EXPECT_EQ(adapted.model_rounds,
                  m->model_time(adapted.structural_rounds,
                                tree.vertex_count()));

        model::ValidatorOptions options;
        options.model = m;
        const auto report = model::validate_schedule(
            tree, adapted.schedule, sol.instance.initial(), options);
        ASSERT_TRUE(report.ok) << report.error;

        sim::SimOptions sim_options;
        sim_options.comm = m;
        const sim::SimResult run = sim::simulate(
            tree, adapted.schedule, sol.instance.initial(), sim_options);
        ASSERT_TRUE(run.completed);
        EXPECT_EQ(run.collided_receives, report.collided);

        // Simulator and validator agree on when gossip finished.
        const std::size_t sim_completion = *std::max_element(
            run.completion_time.begin(), run.completion_time.end());
        const std::size_t validator_completion =
            *std::max_element(report.completion_time.begin(),
                              report.completion_time.end());
        EXPECT_EQ(sim_completion, validator_completion);
        EXPECT_LE(sim_completion, adapted.schedule.total_time());
      }
    }
  }
}

// Model-native schedulers: the direct-addressing virtual ring hits the
// optimal n - 1 rounds on every topology, and the radio greedy's 2-hop
// independence rule makes every round collision-free by construction.
TEST(ModelMatrix, NativeSchedulersValidateAndComplete) {
  for (const auto& family : test::families()) {
    const graph::Graph g = family.make(5);
    const graph::Vertex n = g.vertex_count();
    SCOPED_TRACE(family.name + " n=" + std::to_string(n));

    const model::Schedule ring = model::direct_ring_schedule(n);
    EXPECT_EQ(ring.total_time(), static_cast<std::size_t>(n) - 1);
    model::ValidatorOptions direct_options;
    direct_options.model = &model::direct_model();
    const auto ring_report = model::validate_schedule(g, ring, {},
                                                      direct_options);
    ASSERT_TRUE(ring_report.ok) << ring_report.error;
    sim::SimOptions ring_sim;
    ring_sim.comm = &model::direct_model();
    EXPECT_TRUE(sim::simulate(g, ring, {}, ring_sim).completed);

    const model::Schedule greedy = model::radio_greedy_schedule(g);
    EXPECT_GE(greedy.total_time(), static_cast<std::size_t>(n) - 1);
    model::ValidatorOptions radio_options;
    radio_options.model = &model::radio_model();
    const auto greedy_report = model::validate_schedule(g, greedy, {},
                                                        radio_options);
    ASSERT_TRUE(greedy_report.ok) << greedy_report.error;
    EXPECT_EQ(greedy_report.collided, 0u)
        << "2-hop independence admitted a colliding pair";
    sim::SimOptions greedy_sim;
    greedy_sim.comm = &model::radio_model();
    const sim::SimResult greedy_run = sim::simulate(g, greedy, {},
                                                    greedy_sim);
    EXPECT_TRUE(greedy_run.completed);
    EXPECT_EQ(greedy_run.collided_receives, 0u);
  }
}

// Fault plans compose with the model hook: under the default model a
// faulted run is bit-identical with and without the explicit model, on both
// cores — the refactor must not perturb fault semantics.
TEST(ModelMatrix, FaultPlansIdenticalUnderExplicitDefault) {
  for (const auto& family : test::families()) {
    const graph::Graph g = family.make(6);
    const gossip::Solution sol =
        gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
    ASSERT_TRUE(sol.report.ok) << sol.report.error;
    const graph::Graph tree = sol.instance.tree().as_graph();

    fault::FaultPlan plan;
    plan.drop_rate(0.15).seed(0xfadeULL);
    plan.crash(g.vertex_count() / 2, 3);
    for (const sim::SimCore core :
         {sim::SimCore::kWordParallel, sim::SimCore::kBitwise}) {
      SCOPED_TRACE(family.name + (core == sim::SimCore::kBitwise
                                      ? " bitwise"
                                      : " word"));
      sim::SimOptions implicit;
      implicit.core = core;
      implicit.faults = &plan;
      implicit.record_trace = true;
      sim::SimOptions explicit_default = implicit;
      explicit_default.comm = &model::multicast_model();
      expect_sim_equal(
          sim::simulate(tree, sol.schedule, sol.instance.initial(), implicit),
          sim::simulate(tree, sol.schedule, sol.instance.initial(),
                        explicit_default));
    }
  }
}

}  // namespace
}  // namespace mg
