# Empty compiler generated dependencies file for fanout_sweep.
# This may be replaced when dependencies are built.
