
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_n3.cpp" "bench/CMakeFiles/fig3_n3.dir/fig3_n3.cpp.o" "gcc" "bench/CMakeFiles/fig3_n3.dir/fig3_n3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gossip/CMakeFiles/mg_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/mmc/CMakeFiles/mg_mmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/mg_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
