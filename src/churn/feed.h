// Seeded churn workloads: timestamped streams of edge/node add/remove
// events, generated against a scratch `DynamicGraph` so every event is
// *legal* at its position in the stream — edges are added only where
// absent, removed only where present and non-bridging (the network the
// paper gossips on must stay connected), and node removals target leaf
// vertices.  Legality per prefix means any prefix of a feed is itself a
// valid feed, which is what the fuzz shrinker (tests/churn_shrinker.h)
// exploits.
//
// Three generator shapes, mirroring the dynamic-network literature the
// ISSUE cites (uniformly rewiring rounds, localized hotspots, and
// partition/heal waves):
//   * `uniform_feed`       — i.i.d. add/remove over the whole vertex set;
//   * `hotspot_feed`       — the same mix, but biased into a small hot
//     vertex subset (localized churn);
//   * `partition_heal_feed` — waves that thin a BFS-ball's boundary down
//     to a single bridge (near-partition), then re-add the cut edges in
//     reverse (heal).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/dynamic.h"
#include "graph/graph.h"

namespace mg::churn {

enum class EventKind : std::uint8_t {
  kAddEdge,
  kRemoveEdge,
  kAddNode,     ///< appends vertex n attached to `u`
  kRemoveNode,  ///< removes leaf `u` (last vertex renumbered into the gap)
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

/// One timestamped topology mutation.  `time` is the gossip round at which
/// the mutation lands; feeds emit non-decreasing times.
struct ChurnEvent {
  EventKind kind = EventKind::kAddEdge;
  graph::Vertex u = 0;
  graph::Vertex v = 0;  ///< unused for node events
  std::uint64_t time = 0;
};

struct FeedOptions {
  std::size_t events = 64;
  std::uint64_t seed = 1;
  /// Probability an edge event is an insertion (uniform/hotspot feeds).
  double add_fraction = 0.5;
  /// Timestamps spread over roughly this many rounds.
  std::uint64_t horizon_rounds = 100;
  /// When true, a slice of events are node add/removes.
  bool allow_node_events = false;
  double node_event_fraction = 0.125;
};

struct ChurnFeed {
  std::vector<ChurnEvent> events;
};

[[nodiscard]] ChurnFeed uniform_feed(const graph::Graph& g0,
                                     const FeedOptions& options = {});
[[nodiscard]] ChurnFeed hotspot_feed(const graph::Graph& g0,
                                     const FeedOptions& options = {});
[[nodiscard]] ChurnFeed partition_heal_feed(const graph::Graph& g0,
                                            const FeedOptions& options = {});

/// Applies one event to `g` (the replay half of the generators' legality
/// contract).  Returns the affected vertex pair — for kAddNode the second
/// element is the id the fresh vertex received.
std::pair<graph::Vertex, graph::Vertex> apply_event(graph::DynamicGraph& g,
                                                    const ChurnEvent& event);

}  // namespace mg::churn
