// Shared helpers for the test suite: graph-family factories keyed by name
// (used by the parameterized sweeps) and schedule-checking shorthands.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "gossip/instance.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/rng.h"

namespace mg::test {

/// A named family generator for parameterized sweeps: maps a size knob to a
/// concrete connected graph.  The knob is not always the vertex count
/// (grids take a side length, hypercubes a dimension).
struct Family {
  std::string name;
  graph::Graph (*make)(graph::Vertex knob);
};

inline graph::Graph make_random_tree(graph::Vertex knob) {
  Rng rng(0x5eedULL + knob);
  return graph::random_tree(knob, rng);
}

inline graph::Graph make_random_gnp(graph::Vertex knob) {
  Rng rng(0xabcdULL + knob);
  return graph::random_connected_gnp(knob, 3.0 / static_cast<double>(knob),
                                     rng);
}

inline graph::Graph make_random_geometric(graph::Vertex knob) {
  Rng rng(0x9e0ULL + knob);
  return graph::random_geometric(knob, 0.25, rng);
}

/// The standard family table used by most sweeps.
inline const std::vector<Family>& families() {
  static const std::vector<Family> table = {
      {"path", [](graph::Vertex n) { return graph::path(n); }},
      {"cycle", [](graph::Vertex n) { return graph::cycle(n); }},
      {"star", [](graph::Vertex n) { return graph::star(n); }},
      {"complete", [](graph::Vertex n) { return graph::complete(n); }},
      {"binary_tree", [](graph::Vertex n) { return graph::k_ary_tree(n, 2); }},
      {"ternary_tree", [](graph::Vertex n) { return graph::k_ary_tree(n, 3); }},
      {"grid", [](graph::Vertex n) { return graph::grid(n, n); }},
      {"torus", [](graph::Vertex n) {
         return graph::torus(std::max<graph::Vertex>(n, 3),
                             std::max<graph::Vertex>(n, 3));
       }},
      {"caterpillar", [](graph::Vertex n) { return graph::caterpillar(n, 3); }},
      {"random_tree", make_random_tree},
      {"random_gnp", make_random_gnp},
      {"random_geometric", make_random_geometric},
  };
  return table;
}

/// Validates a gossip schedule produced on `instance`'s tree network and
/// returns the report; fails the current test on violation.
inline model::ValidationReport expect_valid_gossip(
    const gossip::Instance& instance, const model::Schedule& schedule,
    model::ModelVariant variant = model::ModelVariant::kMulticast) {
  model::ValidatorOptions options;
  options.variant = variant;
  auto report = model::validate_schedule(instance.tree().as_graph(), schedule,
                                         instance.initial(), options);
  EXPECT_TRUE(report.ok) << report.error;
  return report;
}

}  // namespace mg::test
