// Undirected simple-graph substrate for the gossiping library.
//
// The paper (§1) models the communication network N as an undirected graph
// with n >= 3 processors; every algorithm in this repository consumes this
// type.  Storage is CSR (compressed sparse row) with sorted neighbor lists,
// which gives cache-friendly BFS sweeps for the O(mn) minimum-depth
// spanning-tree construction of §3.1 and O(log d) adjacency tests for the
// schedule validator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace mg::graph {

/// Processor/vertex index.  Vertices are always 0..n-1.
using Vertex = std::uint32_t;

/// Sentinel for "no vertex" (e.g. the parent of a tree root).
inline constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

/// An undirected edge as an unordered pair of endpoints.
using Edge = std::pair<Vertex, Vertex>;

class Graph;

/// Incremental edge accumulator.  Rejects self-loops, ignores duplicate
/// edges, and produces an immutable `Graph`.
class GraphBuilder {
 public:
  /// Prepares a builder for a graph on `n` vertices (ids 0..n-1).
  explicit GraphBuilder(Vertex n);

  /// Adds the undirected edge {u, v}.  Duplicate additions are collapsed at
  /// build time.  Self-loops are a precondition violation.
  GraphBuilder& add_edge(Vertex u, Vertex v);

  [[nodiscard]] Vertex vertex_count() const { return n_; }

  /// Finalizes into an immutable CSR graph.  The builder is left empty.
  [[nodiscard]] Graph build();

 private:
  Vertex n_;
  std::vector<Edge> edges_;
};

/// Immutable undirected simple graph in CSR form.
class Graph {
 public:
  /// An empty graph on `n` isolated vertices.
  explicit Graph(Vertex n = 0);

  /// Builds from an explicit edge list (deduplicated; self-loops rejected).
  static Graph from_edges(Vertex n, std::span<const Edge> edges);

  /// Adopts a prebuilt CSR adjacency in O(m): `offsets` has n+1 entries and
  /// each vertex's neighbor run must be strictly ascending, in range, and
  /// self-loop free (all validated).  Symmetry (u in adj[v] iff v in adj[u])
  /// is the caller's contract — this is the million-node fast path for
  /// generators that emit both directions by construction, bypassing
  /// `from_edges`'s O(m log m) sort + dedup.
  static Graph from_csr(std::vector<std::size_t> offsets,
                        std::vector<Vertex> adjacency);

  /// Number of vertices n.
  [[nodiscard]] Vertex vertex_count() const {
    return static_cast<Vertex>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  [[nodiscard]] std::size_t edge_count() const { return adjacency_.size() / 2; }

  /// Sorted neighbors of `v`.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const;

  [[nodiscard]] Vertex degree(Vertex v) const;

  /// Adjacency test by binary search over the sorted neighbor list.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  /// All edges, each reported once with first < second, sorted.
  [[nodiscard]] std::vector<Edge> edges() const;

  [[nodiscard]] bool operator==(const Graph& other) const = default;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;   // size n+1
  std::vector<Vertex> adjacency_;      // size 2m, sorted per vertex
};

}  // namespace mg::graph
