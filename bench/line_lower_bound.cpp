// Experiment L1 (§1 + §4): on the straight-line network with n = 2m + 1
// processors every schedule needs at least n + r - 1 rounds (r = m), and
// ConcurrentUpDown achieves n + r — a gap of exactly one round.  For the
// smallest lines the exact search additionally certifies that n + r - 1 is
// attainable, i.e. the bound is tight and the algorithm's +1 is the price
// of its uniform protocol (§4's discussion).
#include <cstdio>

#include "gossip/bounds.h"
#include "gossip/line_optimal.h"
#include "gossip/optimal_search.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "support/table.h"

int main() {
  using namespace mg;
  TextTable table;
  table.new_row();
  for (const char* h : {"n", "r=m", "lower bound n+r-1", "ConcurrentUpDown",
                        "gap", "LineOptimal (ours)",
                        "n+r-1 attainable (exact)"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (graph::Vertex m : {1u, 2u, 3u, 5u, 8u, 16u, 64u, 256u, 1024u}) {
    const graph::Vertex n = 2 * m + 1;
    const auto g = graph::path(n);
    const auto sol = gossip::solve_gossip(g);
    all_ok = all_ok && sol.report.ok;
    const std::size_t bound = gossip::odd_line_lower_bound(n);
    const std::size_t achieved = sol.schedule.total_time();

    std::string attainable = "(not searched)";
    if (n <= 5) {
      const auto exact = gossip::exact_gossip_search(g, bound);
      attainable = exact.status == graph::SearchStatus::kFound ? "yes"
                   : exact.status == graph::SearchStatus::kExhausted
                       ? "no"
                       : "budget";
      // Also certify the bound itself: nothing finishes in n + r - 2.
      const auto below = gossip::exact_gossip_search(g, bound - 1);
      if (below.status == graph::SearchStatus::kFound) {
        attainable += " (BOUND VIOLATED?)";
        all_ok = false;
      } else if (below.status == graph::SearchStatus::kExhausted) {
        attainable += ", n+r-2 impossible";
      }
    }

    const auto optimal = gossip::line_optimal_gossip(m);
    const auto optimal_report =
        model::validate_schedule(graph::path(n), optimal);
    all_ok = all_ok && optimal_report.ok &&
             optimal.total_time() == bound;

    table.new_row();
    table.cell(static_cast<std::size_t>(n));
    table.cell(static_cast<std::size_t>(m));
    table.cell(bound);
    table.cell(achieved);
    table.cell(achieved - bound);
    table.cell(optimal.total_time());
    table.cell(attainable);
  }

  // Companion table: even lines (beyond the paper), where the optimum is
  // n + r - 2 and our even_line_gossip attains it.
  TextTable even;
  even.new_row();
  for (const char* h : {"n", "r", "n+r", "even optimum 3m-2",
                        "EvenLine (ours)", "valid"}) {
    even.cell(std::string(h));
  }
  for (graph::Vertex m : {2u, 3u, 8u, 64u, 512u}) {
    const graph::Vertex n = 2 * m;
    const auto schedule = gossip::even_line_gossip(m);
    const auto report = model::validate_schedule(graph::path(n), schedule);
    const auto instance = gossip::Instance::from_network(graph::path(n));
    all_ok = all_ok && report.ok &&
             schedule.total_time() == gossip::even_line_time(m);
    even.new_row();
    even.cell(static_cast<std::size_t>(n));
    even.cell(static_cast<std::size_t>(instance.radius()));
    even.cell(static_cast<std::size_t>(n) + instance.radius());
    even.cell(gossip::even_line_time(m));
    even.cell(schedule.total_time());
    even.cell(std::string(report.ok ? "yes" : "NO"));
  }

  std::printf(
      "L1: odd straight-line networks (paper's lower-bound family)\n"
      "Paper claim: every schedule needs >= n + r - 1; ConcurrentUpDown\n"
      "produces exactly n + r (gap 1, uniform protocol).  LineOptimal is\n"
      "this repository's reconstruction of the non-uniform protocol the\n"
      "paper mentions but omits -- it attains the bound exactly.\n\n%s\n",
      table.render().c_str());
  std::printf(
      "Even lines (beyond the paper): the optimum drops to n + r - 2\n"
      "because the two near-center processors share the gathering role;\n"
      "even_line_gossip attains it (optimality certified by exhaustive\n"
      "search for n <= 6 in the tests):\n\n%s\n",
      even.render().c_str());
  return all_ok ? 0 : 1;
}
