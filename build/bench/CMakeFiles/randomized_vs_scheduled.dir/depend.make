# Empty dependencies file for randomized_vs_scheduled.
# This may be replaced when dependencies are built.
