#include "gossip/solve.h"

#include "gossip/concurrent_updown.h"
#include "gossip/simple.h"
#include "gossip/telephone.h"
#include "gossip/updown.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "support/contracts.h"

namespace mg::gossip {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSimple:
      return "Simple";
    case Algorithm::kUpDown:
      return "UpDown";
    case Algorithm::kConcurrentUpDown:
      return "ConcurrentUpDown";
    case Algorithm::kTelephone:
      return "Telephone";
  }
  MG_ASSERT_MSG(false, "unknown algorithm");
  return {};
}

model::Schedule run_algorithm(const Instance& instance, Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSimple:
      return simple_gossip(instance);
    case Algorithm::kUpDown:
      return updown_gossip(instance);
    case Algorithm::kConcurrentUpDown:
      return concurrent_updown(instance);
    case Algorithm::kTelephone:
      return telephone_gossip(instance);
  }
  MG_ASSERT_MSG(false, "unknown algorithm");
  return {};
}

Solution solve_gossip(const graph::Graph& g, Algorithm algorithm,
                      ThreadPool* pool) {
  MG_OBS_SPAN(solve_span, "gossip.solve_gossip");
  MG_OBS_SCOPE_HIST(solve_hist, "gossip.solve_ns");
#if MG_OBS_ENABLED
  const std::string name = algorithm_name(algorithm);
  MG_OBS_ADD("gossip." + name + ".runs", 1);
  MG_OBS_SCOPE_TIMER(solve_timer, "gossip." + name + ".solve_ns");
#endif
  Instance instance = [&] {
    MG_OBS_SCOPE_TIMER(build_span, "gossip.phase.build_instance_ns");
    return Instance::from_network(g, pool);
  }();
  model::Schedule schedule = [&] {
    MG_OBS_SCOPE_TIMER(run_span, "gossip.phase.run_algorithm_ns");
    return run_algorithm(instance, algorithm);
  }();
  model::ValidatorOptions options;
  if (algorithm == Algorithm::kTelephone) {
    options.variant = model::ModelVariant::kTelephone;
  }
  // Communications run on the tree network (§3): validate against it.
  model::ValidationReport report = [&] {
    MG_OBS_SCOPE_TIMER(validate_span, "gossip.phase.validate_ns");
    return model::validate_schedule(instance.tree().as_graph(), schedule,
                                    instance.initial(), options);
  }();
#if MG_OBS_ENABLED
  MG_OBS_ADD("gossip." + name + ".rounds", schedule.total_time());
  MG_OBS_ADD("gossip." + name + ".transmissions",
             schedule.transmission_count());
  MG_OBS_ADD("gossip." + name + ".deliveries", schedule.delivery_count());
#endif
  return Solution{std::move(instance), algorithm, std::move(schedule),
                  std::move(report)};
}

}  // namespace mg::gossip
