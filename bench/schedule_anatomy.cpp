// Schedule anatomy: where the rounds go.  Prints the per-round activity of
// ConcurrentUpDown on the Fig. 4 network — making the overlapped
// Propagate-Up / Propagate-Down pipeline of §3.2 visible — plus aggregate
// utilization across families (each processor may receive one message per
// round; gossip needs n*(n-1) deliveries, so receive utilization ~
// (n-1)/(n+r) -> the algorithm keeps the receive capacity near-saturated).
#include <cstdio>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/stats.h"
#include "support/table.h"

int main() {
  using namespace mg;

  // Part 1: round-by-round anatomy on the running example.
  const auto fig4 = gossip::solve_gossip(graph::fig4_network());
  const auto anatomy =
      model::compute_stats(fig4.instance.vertex_count(), fig4.schedule);
  TextTable rounds;
  rounds.new_row();
  for (const char* h : {"t", "senders", "receivers", "deliveries"}) {
    rounds.cell(std::string(h));
  }
  for (std::size_t t = 0; t < anatomy.per_round.size(); ++t) {
    rounds.new_row();
    rounds.cell(t);
    rounds.cell(anatomy.per_round[t].senders);
    rounds.cell(anatomy.per_round[t].receivers);
    rounds.cell(anatomy.per_round[t].deliveries);
  }
  std::printf(
      "ConcurrentUpDown anatomy on Fig. 4 (n=16, r=3, %zu rounds):\n\n%s\n",
      anatomy.rounds, rounds.render().c_str());

  // Part 2: aggregate utilization across families.
  TextTable agg;
  agg.new_row();
  for (const char* h :
       {"network", "n", "rounds", "transmissions", "deliveries",
        "mean fanout", "recv util", "send util"}) {
    agg.cell(std::string(h));
  }
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"line 31", graph::path(31)},
      {"cycle 30", graph::cycle(30)},
      {"star 30", graph::star(30)},
      {"grid 6x6", graph::grid(6, 6)},
      {"hypercube 5", graph::hypercube(5)},
      {"binary tree 31", graph::k_ary_tree(31, 2)},
  };
  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto sol = gossip::solve_gossip(g);
    all_ok = all_ok && sol.report.ok;
    const auto stats = model::compute_stats(g.vertex_count(), sol.schedule);
    agg.new_row();
    agg.cell(name);
    agg.cell(static_cast<std::size_t>(g.vertex_count()));
    agg.cell(stats.rounds);
    agg.cell(stats.transmissions);
    agg.cell(stats.deliveries);
    agg.cell(stats.mean_fanout, 2);
    agg.cell(stats.receive_utilization, 3);
    agg.cell(stats.send_utilization, 3);
  }
  std::printf("Aggregate utilization (capacity = n per round each way):\n\n%s\n",
              agg.render().c_str());
  return all_ok ? 0 : 1;
}
