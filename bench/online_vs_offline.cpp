// Experiment B6 (§4 online adaptation): the distributed protocol — every
// processor deciding from (i, j, k, n) plus its children's intervals and
// observed arrivals only — must emit the very same global schedule as the
// offline ConcurrentUpDown construction.
#include <cstdio>
#include <functional>

#include "gossip/concurrent_updown.h"
#include "gossip/online.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng rng(99);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"fig4", graph::fig4_network()},
      {"line 41", graph::path(41)},
      {"star 64", graph::star(64)},
      {"grid 9x9", graph::grid(9, 9)},
      {"hypercube 7", graph::hypercube(7)},
      {"random tree 200", graph::random_tree(200, rng)},
      {"random gnp 150", graph::random_connected_gnp(150, 0.04, rng)},
  };

  TextTable table;
  table.new_row();
  for (const char* h : {"network", "n", "r", "rounds", "identical to offline",
                        "offline build ms", "online run ms"}) {
    table.cell(std::string(h));
  }

  bool all_ok = true;
  for (const auto& [name, g] : graphs) {
    const auto instance = gossip::Instance::from_network(g);
    Stopwatch offline_clock;
    const auto offline = gossip::concurrent_updown(instance);
    const double offline_ms = offline_clock.millis();
    Stopwatch online_clock;
    const auto online = gossip::run_online(instance);
    const double online_ms = online_clock.millis();
    const bool same = model::equivalent(offline, online);
    const auto report = model::validate_schedule(
        instance.tree().as_graph(), online, instance.initial());
    all_ok = all_ok && same && report.ok;

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(static_cast<std::size_t>(instance.radius()));
    table.cell(online.total_time());
    table.cell(std::string(same ? "yes" : "NO"));
    table.cell(offline_ms, 3);
    table.cell(online_ms, 3);
  }

  std::printf(
      "B6 / §4: online (local-information) protocol vs offline schedule\n\n"
      "%s\nall identical and valid: %s\n",
      table.render().c_str(), all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
