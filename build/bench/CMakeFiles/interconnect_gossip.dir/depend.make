# Empty dependencies file for interconnect_gossip.
# This may be replaced when dependencies are built.
