file(REMOVE_RECURSE
  "CMakeFiles/fig1_cycle.dir/fig1_cycle.cpp.o"
  "CMakeFiles/fig1_cycle.dir/fig1_cycle.cpp.o.d"
  "fig1_cycle"
  "fig1_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
