// Tests for repeated/pipelined gossiping (§4's many-gossips motivation).
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/repeated.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "support/contracts.h"
#include "test_util.h"

namespace mg::gossip {
namespace {

model::ValidationReport validate_repeated(const Instance& instance,
                                          const RepeatedGossipResult& r) {
  return model::validate_schedule_general(
      instance.tree().as_graph(), r.schedule, r.initial_sets,
      r.message_count);
}

TEST(Repeated, SingleCopyMatchesPlainGossip) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto result = repeated_gossip(instance, 1, /*pipelined=*/false);
  EXPECT_EQ(result.total_time, 19u);
  EXPECT_TRUE(validate_repeated(instance, result).ok);
}

TEST(Repeated, BackToBackCopiesAreValid) {
  const auto instance = Instance::from_network(graph::grid(3, 4));
  const auto result = repeated_gossip(instance, 4, /*pipelined=*/false);
  const auto report = validate_repeated(instance, result);
  EXPECT_TRUE(report.ok) << report.error;
  const std::size_t single = 12u + instance.radius();
  EXPECT_EQ(result.period, single);
  EXPECT_EQ(result.total_time, 3 * single + single);
}

TEST(Repeated, PipelinedCopiesAreValidAndFaster) {
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(7));
    const auto plain = repeated_gossip(instance, 5, false);
    const auto packed = repeated_gossip(instance, 5, true);
    const auto report = validate_repeated(instance, packed);
    ASSERT_TRUE(report.ok) << family.name << ": " << report.error;
    EXPECT_LE(packed.period, plain.period) << family.name;
    EXPECT_LE(packed.total_time, plain.total_time) << family.name;
    EXPECT_LT(packed.amortized_time,
              static_cast<double>(plain.period) + 1.0)
        << family.name;
  }
}

TEST(Repeated, PipelinePeriodLowerBound) {
  // Every processor must receive n - 1 messages per gossip, so no period
  // can be below n - 1.
  const auto instance = Instance::from_network(graph::path(9));
  const auto base = concurrent_updown(instance);
  EXPECT_GE(pipeline_period(9, base), 8u);
}

TEST(Repeated, PeriodOfEmptySchedule) {
  EXPECT_EQ(pipeline_period(3, model::Schedule()), 1u);
}

TEST(Repeated, AmortizedTimeApproachesPeriod) {
  const auto instance = Instance::from_network(graph::star(10));
  const auto result = repeated_gossip(instance, 20, true);
  EXPECT_TRUE(validate_repeated(instance, result).ok);
  // total = (copies-1)*period + full length; amortized -> period.
  EXPECT_NEAR(result.amortized_time, static_cast<double>(result.period),
              static_cast<double>(11 + instance.radius()) / 20.0 + 1.0);
}

TEST(Repeated, MessageIdsPartitionPerCopy) {
  const auto instance = Instance::from_network(graph::path(5));
  const auto result = repeated_gossip(instance, 3, true);
  std::vector<char> seen(result.message_count, 0);
  for (const auto& round : result.schedule.rounds()) {
    for (const auto& tx : round) {
      ASSERT_LT(tx.message, result.message_count);
      seen[tx.message] = 1;
    }
  }
  // Every copy's non-root messages circulate (all n messages appear since
  // n >= 2 means every message must move at least once).
  for (std::size_t m = 0; m < result.message_count; ++m) {
    EXPECT_TRUE(seen[m]) << m;
  }
}

TEST(Repeated, RejectsZeroCopies) {
  const auto instance = Instance::from_network(graph::path(3));
  EXPECT_THROW((void)repeated_gossip(instance, 0, true), ContractViolation);
}

}  // namespace
}  // namespace mg::gossip
