#include "gossip/repeated.h"

#include <algorithm>

#include "gossip/concurrent_updown.h"
#include "support/contracts.h"

namespace mg::gossip {

namespace {

/// Per-processor busy-time masks (one bit per round).
struct BusyMasks {
  std::vector<std::vector<std::uint64_t>> send;     // [vertex][word]
  std::vector<std::vector<std::uint64_t>> receive;  // [vertex][word]
  std::size_t rounds = 0;
};

BusyMasks busy_masks(graph::Vertex n, const model::Schedule& schedule) {
  BusyMasks masks;
  masks.rounds = schedule.round_count();
  const std::size_t words = (masks.rounds + 63) / 64 + 1;
  masks.send.assign(n, std::vector<std::uint64_t>(words, 0));
  masks.receive.assign(n, std::vector<std::uint64_t>(words, 0));
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      masks.send[tx.sender][t >> 6] |= std::uint64_t{1} << (t & 63);
      for (graph::Vertex r : tx.receivers) {
        // Receive happens at t + 1; the mask stores the *receive* round.
        masks.receive[r][(t + 1) >> 6] |= std::uint64_t{1} << ((t + 1) & 63);
      }
    }
  }
  return masks;
}

/// True when `mask` shifted by `shift` overlaps itself.
bool self_overlap(const std::vector<std::uint64_t>& mask, std::size_t shift) {
  const std::size_t word_shift = shift >> 6;
  const unsigned bit_shift = shift & 63;
  for (std::size_t w = 0; w + word_shift < mask.size(); ++w) {
    std::uint64_t shifted = mask[w] << bit_shift;
    if (bit_shift != 0 && w > 0) {
      shifted |= mask[w - 1] >> (64 - bit_shift);
    }
    if ((shifted & mask[w + word_shift]) != 0) return true;
  }
  return false;
}

}  // namespace

std::size_t pipeline_period(graph::Vertex n, const model::Schedule& schedule) {
  const std::size_t horizon = schedule.total_time();
  if (horizon == 0) return 1;
  const auto masks = busy_masks(n, schedule);
  for (std::size_t period = 1; period <= horizon; ++period) {
    bool feasible = true;
    for (std::size_t shift = period; shift <= horizon && feasible;
         shift += period) {
      for (graph::Vertex v = 0; v < n && feasible; ++v) {
        if (self_overlap(masks.send[v], shift) ||
            self_overlap(masks.receive[v], shift)) {
          feasible = false;
        }
      }
    }
    if (feasible) return period;
  }
  return horizon;
}

RepeatedGossipResult repeated_gossip(const Instance& instance,
                                     std::size_t copies, bool pipelined) {
  MG_EXPECTS(copies >= 1);
  const graph::Vertex n = instance.vertex_count();
  const model::Schedule base = concurrent_updown(instance);

  RepeatedGossipResult result;
  result.copies = copies;
  result.period =
      pipelined ? pipeline_period(n, base) : std::max<std::size_t>(
                                                 base.total_time(), 1);
  result.message_count = copies * static_cast<std::size_t>(n);

  for (std::size_t c = 0; c < copies; ++c) {
    const std::size_t offset = c * result.period;
    const auto message_base = static_cast<model::Message>(c * n);
    for (std::size_t t = 0; t < base.round_count(); ++t) {
      for (const auto& tx : base.round(t)) {
        result.schedule.add(offset + t,
                            {message_base + tx.message, tx.sender,
                             tx.receivers});
      }
    }
  }
  result.schedule.trim();
  result.total_time = result.schedule.total_time();
  result.amortized_time =
      static_cast<double>(result.total_time) / static_cast<double>(copies);

  result.initial_sets.assign(n, {});
  for (graph::Vertex v = 0; v < n; ++v) {
    for (std::size_t c = 0; c < copies; ++c) {
      result.initial_sets[v].push_back(
          static_cast<model::Message>(c * n + instance.labels().label(v)));
    }
  }
  return result;
}

}  // namespace mg::gossip
