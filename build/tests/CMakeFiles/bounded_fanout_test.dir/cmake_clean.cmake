file(REMOVE_RECURSE
  "CMakeFiles/bounded_fanout_test.dir/bounded_fanout_test.cpp.o"
  "CMakeFiles/bounded_fanout_test.dir/bounded_fanout_test.cpp.o.d"
  "bounded_fanout_test"
  "bounded_fanout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_fanout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
