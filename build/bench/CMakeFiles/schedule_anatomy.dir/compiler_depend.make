# Empty compiler generated dependencies file for schedule_anatomy.
# This may be replaced when dependencies are built.
