#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/contracts.h"

namespace mg::graph {

Graph path(Vertex n) {
  MG_EXPECTS(n >= 1);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(Vertex n) {
  MG_EXPECTS(n >= 3);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph complete(Vertex n) {
  MG_EXPECTS(n >= 1);
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph complete_bipartite(Vertex a, Vertex b) {
  MG_EXPECTS(a >= 1 && b >= 1);
  GraphBuilder builder(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) builder.add_edge(u, a + v);
  }
  return builder.build();
}

Graph star(Vertex n) {
  MG_EXPECTS(n >= 2);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph wheel(Vertex n) {
  MG_EXPECTS(n >= 4);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v + 1 == n ? 1 : v + 1);
  }
  return b.build();
}

Graph grid(Vertex rows, Vertex cols) {
  MG_EXPECTS(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph torus(Vertex rows, Vertex cols) {
  MG_EXPECTS(rows >= 3 && cols >= 3);
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph hypercube(unsigned dim) {
  MG_EXPECTS(dim >= 1 && dim <= 20);
  const Vertex n = Vertex{1} << dim;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < dim; ++bit) {
      const Vertex u = v ^ (Vertex{1} << bit);
      if (v < u) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph k_ary_tree(Vertex n, Vertex k) {
  MG_EXPECTS(n >= 1 && k >= 1);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / k);
  return b.build();
}

Graph caterpillar(Vertex spine, Vertex legs) {
  MG_EXPECTS(spine >= 1);
  const Vertex n = spine + spine * legs;
  GraphBuilder b(n);
  for (Vertex s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  for (Vertex s = 0; s < spine; ++s) {
    for (Vertex leg = 0; leg < legs; ++leg) {
      b.add_edge(s, spine + s * legs + leg);
    }
  }
  return b.build();
}

Graph binomial_tree(unsigned order) {
  MG_EXPECTS(order <= 20);
  const Vertex n = Vertex{1} << order;
  GraphBuilder b(n);
  // B_k = two copies of B_{k-1}; the second copy's root (offset 2^{k-1})
  // hangs off vertex 0.  Iterating over doubling offsets builds the classic
  // recursive structure with vertex v's parent at v minus its highest bit.
  for (Vertex v = 1; v < n; ++v) {
    Vertex high = v;
    high |= high >> 1;
    high |= high >> 2;
    high |= high >> 4;
    high |= high >> 8;
    high |= high >> 16;
    high = (high >> 1) + 1;  // highest set bit of v
    b.add_edge(v, v - high);
  }
  return b.build();
}

Graph lollipop(Vertex clique, Vertex tail) {
  MG_EXPECTS(clique >= 1);
  const Vertex n = clique + tail;
  GraphBuilder b(n);
  for (Vertex u = 0; u < clique; ++u) {
    for (Vertex v = u + 1; v < clique; ++v) b.add_edge(u, v);
  }
  for (Vertex t = 0; t < tail; ++t) {
    b.add_edge(clique + t - 1 < clique ? clique - 1 : clique + t - 1,
               clique + t);
  }
  return b.build();
}

Graph random_tree(Vertex n, Rng& rng) {
  MG_EXPECTS(n >= 1);
  if (n == 1) return Graph(1);
  if (n == 2) return path(2);
  // Decode a uniform Pruefer sequence of length n-2.
  std::vector<Vertex> pruefer(n - 2);
  for (auto& p : pruefer) p = static_cast<Vertex>(rng.below(n));
  std::vector<Vertex> degree(n, 1);
  for (Vertex p : pruefer) ++degree[p];
  GraphBuilder b(n);
  // Standard decoding with a moving pointer over the smallest leaf.
  Vertex ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  Vertex leaf = ptr;
  for (Vertex p : pruefer) {
    b.add_edge(leaf, p);
    if (--degree[p] == 1 && p < ptr) {
      leaf = p;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  b.add_edge(leaf, n - 1);
  return b.build();
}

Graph random_connected_gnp(Vertex n, double p, Rng& rng) {
  MG_EXPECTS(n >= 1);
  MG_EXPECTS(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.chance(p)) edges.emplace_back(u, v);
    }
  }
  // Overlay a uniform random spanning tree so the sample is connected.
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), Vertex{0});
  rng.shuffle(order);
  for (Vertex idx = 1; idx < n; ++idx) {
    const auto anchor = static_cast<Vertex>(rng.below(idx));
    edges.emplace_back(order[idx], order[anchor]);
  }
  return Graph::from_edges(n, edges);
}

Graph random_geometric(Vertex n, double radius, Rng& rng) {
  MG_EXPECTS(n >= 1);
  MG_EXPECTS(radius > 0.0);
  std::vector<std::pair<double, double>> points(n);
  for (auto& [x, y] : points) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
  std::vector<Edge> edges;
  const double r2 = radius * radius;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const double dx = points[u].first - points[v].first;
      const double dy = points[u].second - points[v].second;
      if (dx * dx + dy * dy <= r2) edges.emplace_back(u, v);
    }
  }
  // Connectivity guard: chain vertices in x-order so the graph stays
  // connected even for sub-critical radii (documented substitution for
  // "deployments are provisioned to be connected").
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), Vertex{0});
  std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return points[a].first < points[b].first;
  });
  for (Vertex idx = 0; idx + 1 < n; ++idx) {
    edges.emplace_back(order[idx], order[idx + 1]);
  }
  return Graph::from_edges(n, edges);
}

Graph random_regular(Vertex n, Vertex d, Rng& rng) {
  MG_EXPECTS(n >= 3 && d >= 2 && d < n);
  MG_EXPECTS_MSG((static_cast<std::size_t>(n) * d) % 2 == 0,
                 "n*d must be even");
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex copy = 0; copy < d; ++copy) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  std::vector<Edge> edges;
  for (std::size_t idx = 0; idx + 1 < stubs.size(); idx += 2) {
    if (stubs[idx] != stubs[idx + 1]) {
      edges.emplace_back(stubs[idx], stubs[idx + 1]);
    }
  }
  // Connectivity guard: a spanning cycle (keeps the graph near-regular).
  for (Vertex v = 0; v < n; ++v) {
    edges.emplace_back(v, static_cast<Vertex>((v + 1) % n));
  }
  return Graph::from_edges(n, edges);
}

}  // namespace mg::graph
