// Exercises the model-trace shrinker (model_shrinker.h) and pins shrunk
// regressions:
//
//  * fuzz sweep — seeded scheduler × model combinations whose legalized
//    schedules must all satisfy their model validator; any failure is
//    shrunk to a minimal schedule and printed as a paste-able snippet
//    before the test fails;
//  * shrinker mechanics — a deliberately corrupted legalized schedule
//    shrinks down to exactly the offending transmission;
//  * pinned regressions — minimal hand-written schedules locking each
//    model's characteristic rejection (and direct addressing's
//    characteristic acceptance) with their exact error strings.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "model/comm_model.h"
#include "model/legalize.h"
#include "model/validator.h"
#include "model_shrinker.h"
#include "support/rng.h"

namespace mg {
namespace {

graph::Graph make_graph(std::uint64_t seed) {
  Rng rng(0x5817ULL * (seed + 1));
  const auto n = static_cast<graph::Vertex>(5 + (seed * 11) % 28);
  switch (seed % 3) {
    case 0:
      return graph::random_connected_gnp(n, 3.0 / static_cast<double>(n),
                                         rng);
    case 1:
      return graph::random_tree(n, rng);
    default:
      return graph::random_geometric(n, 0.35, rng);
  }
}

/// Rejection by the model validator (legality only, not completion), with
/// the initial assignment the schedule was built for.
test::ScheduleFailurePredicate rejected_by(
    const model::CommModel& m, std::vector<model::Message> initial) {
  return [&m, initial = std::move(initial)](
             const graph::Graph& g, const model::Schedule& schedule) {
    model::ValidatorOptions options;
    options.model = &m;
    options.require_completion = false;
    return !model::validate_schedule(g, schedule, initial, options).ok;
  };
}

// Every legalized schedule must satisfy its model validator; a failure is
// shrunk and printed before failing the test, so the regression arrives
// pre-minimized.
TEST(ModelShrinker, FuzzLegalizedSchedulesValidate) {
  constexpr std::uint64_t kSeeds = 18;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const graph::Graph g = make_graph(seed);
    const auto algorithm = static_cast<gossip::Algorithm>(seed % 4);
    const gossip::Solution sol = gossip::solve_gossip(g, algorithm);
    ASSERT_TRUE(sol.report.ok) << sol.report.error;
    const graph::Graph tree = sol.instance.tree().as_graph();

    for (const model::CommModel* m : model::all_models()) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                   gossip::algorithm_name(algorithm) + " model=" + m->name());
      const auto adapted = model::adapt_schedule(tree, sol.schedule, *m);
      model::ValidatorOptions options;
      options.model = m;
      const auto report = model::validate_schedule(
          tree, adapted.schedule, sol.instance.initial(), options);
      if (!report.ok) {
        const auto shrunk = test::shrink_schedule(
            tree, adapted.schedule, rejected_by(*m, sol.instance.initial()));
        std::fprintf(stderr, "%s\n",
                     test::regression_snippet(shrunk, "<tree of seed " +
                                                          std::to_string(seed) +
                                                          ">")
                         .c_str());
      }
      EXPECT_TRUE(report.ok) << report.error;
    }
  }
}

// Corrupt the first broadcast of a legalized radio schedule (clip its
// receiver set, so it no longer covers the sender's neighborhood) and
// check the shrinker isolates exactly that transmission.  The predicate
// matches the corruption's failure *shape* — the radio neighborhood error —
// so cascading hold violations introduced by elision cannot masquerade as
// the regression under investigation.
TEST(ModelShrinker, ShrinksCorruptedScheduleToOffender) {
  const graph::Graph g = graph::grid(4, 4);
  const gossip::Solution sol =
      gossip::solve_gossip(g, gossip::Algorithm::kConcurrentUpDown);
  ASSERT_TRUE(sol.report.ok) << sol.report.error;
  const graph::Graph tree = sol.instance.tree().as_graph();
  const auto adapted =
      model::adapt_schedule(tree, sol.schedule, model::radio_model());

  // Rebuild the schedule with the first multi-receiver broadcast of round 0
  // clipped to a single receiver.
  model::Schedule corrupted;
  bool clipped = false;
  model::Message offender_message = 0;
  graph::Vertex offender_sender = 0;
  for (std::size_t t = 0; t < adapted.schedule.round_count(); ++t) {
    for (const auto& tx : adapted.schedule.round(t)) {
      if (!clipped && t == 0 && tx.receivers.size() > 1) {
        corrupted.add(t, {tx.message, tx.sender, {tx.receivers.front()}});
        offender_message = tx.message;
        offender_sender = tx.sender;
        clipped = true;
      } else {
        corrupted.add(t, tx);
      }
    }
  }
  ASSERT_TRUE(clipped) << "no multi-receiver broadcast in round 0";

  const std::vector<model::Message> initial = sol.instance.initial();
  const test::ScheduleFailurePredicate neighborhood_error =
      [&initial](const graph::Graph& network,
                 const model::Schedule& schedule) {
        model::ValidatorOptions options;
        options.model = &model::radio_model();
        options.require_completion = false;
        const auto report =
            model::validate_schedule(network, schedule, initial, options);
        return !report.ok &&
               report.error.find("entire neighborhood") != std::string::npos;
      };
  const auto shrunk =
      test::shrink_schedule(tree, corrupted, neighborhood_error);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_EQ(shrunk.schedule.round_count(), 1u);
  ASSERT_EQ(shrunk.schedule.transmission_count(), 1u);
  const auto& survivor = shrunk.schedule.round(0).front();
  EXPECT_EQ(survivor.message, offender_message);
  EXPECT_EQ(survivor.sender, offender_sender);
  EXPECT_EQ(survivor.receivers.size(), 1u);
}

// Pinned minimal regressions, one per model rule.  These are the kind of
// schedule the shrinker produces; pinning them with their exact error
// strings keeps the model-aware validator's diagnostics stable.
TEST(ModelShrinker, PinnedModelRegressions) {
  const graph::Graph path3 = graph::path(3);  // 0 - 1 - 2

  {
    // Telephone: |D| = 2 is a multicast.
    model::Schedule schedule;
    schedule.add(0, {1, 1, {0, 2}});
    model::ValidatorOptions options;
    options.model = &model::telephone_model();
    options.require_completion = false;
    const auto report = model::validate_schedule(path3, schedule, {}, options);
    ASSERT_FALSE(report.ok);
    EXPECT_EQ(report.error,
              "multicast under telephone model at round 0, msg 1 from 1");
  }
  {
    // Radio: a transmission cannot address a subset of the neighborhood.
    model::Schedule schedule;
    schedule.add(0, {1, 1, {0}});
    model::ValidatorOptions options;
    options.model = &model::radio_model();
    options.require_completion = false;
    const auto report = model::validate_schedule(path3, schedule, {}, options);
    ASSERT_FALSE(report.ok);
    EXPECT_EQ(report.error,
              "radio transmission must reach the sender's entire "
              "neighborhood at round 0, msg 1 from 1");
  }
  {
    // Radio collisions are legal but lossy: 0 and 2 transmit into 1
    // simultaneously, so 1 decodes nothing — the validator accepts the
    // schedule and reports both candidate deliveries as collided.
    model::Schedule schedule;
    schedule.add(0, {0, 0, {1}});
    schedule.add(0, {2, 2, {1}});
    model::ValidatorOptions options;
    options.model = &model::radio_model();
    options.require_completion = false;
    const auto report = model::validate_schedule(path3, schedule, {}, options);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.collided, 2u);
  }
  {
    // Direct addressing accepts the send the multicast model rejects:
    // 0 and 2 are not adjacent in the path.
    model::Schedule schedule;
    schedule.add(0, {0, 0, {2}});
    model::ValidatorOptions multicast_options;
    multicast_options.require_completion = false;
    const auto rejected =
        model::validate_schedule(path3, schedule, {}, multicast_options);
    ASSERT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.error,
              "receiver 2 not adjacent to sender at round 0, msg 0 from 0");

    model::ValidatorOptions direct_options;
    direct_options.model = &model::direct_model();
    direct_options.require_completion = false;
    const auto accepted =
        model::validate_schedule(path3, schedule, {}, direct_options);
    EXPECT_TRUE(accepted.ok) << accepted.error;
  }
}

}  // namespace
}  // namespace mg
