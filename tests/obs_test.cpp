// mg::obs unit tests: metric primitives, the registry's runtime null mode,
// and — per the no-external-dependency rule — a full round-trip of the
// JSON emitter through a minimal recursive-descent parser defined here, so
// the emitted grammar is checked field-by-field rather than by eyeball.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/network_sim.h"

namespace mg::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (test-local; strings, numbers, bools, null, nested
// objects/arrays, escape sequences — exactly what the writer can produce).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue& at(const std::string& k) const {
    const auto it = object.find(k);
    EXPECT_NE(it, object.end()) << "missing key " << k;
    static const JsonValue kNullValue;
    return it == object.end() ? kNullValue : it->second;
  }
  std::uint64_t as_u64() const {
    EXPECT_EQ(kind, Kind::kNumber);
    return static_cast<std::uint64_t>(number);
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage after JSON document";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  bool consume_if(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_literal(c == 't');
    if (c == 'n') {
      match("null");
      return {};
    }
    return parse_number();
  }

  void match(std::string_view word) {
    skip_ws();
    ASSERT_LE(pos_ + word.size(), text_.size());
    EXPECT_EQ(text_.substr(pos_, word.size()), word);
    pos_ += word.size();
  }

  JsonValue parse_literal(bool value) {
    match(value ? "true" : "false");
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = value;
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number";
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        ADD_FAILURE() << "dangling escape at end of input";
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            ADD_FAILURE() << "truncated \\u escape";
            return out;
          }
          const unsigned code = static_cast<unsigned>(
              std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
          pos_ += 4;
          EXPECT_LT(code, 0x80u) << "writer only escapes control chars";
          out += static_cast<char>(code);
          break;
        }
        default:
          ADD_FAILURE() << "unknown escape \\" << esc;
      }
    }
    expect('"');
    return out;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume_if('}')) return v;
    do {
      std::string key = parse_string();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
    } while (consume_if(','));
    expect('}');
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume_if(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume_if(','));
    expect(']');
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndTimerAccumulate) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Timer t;
  t.record_ns(100);
  t.record_ns(250);
  EXPECT_EQ(t.total_ns(), 350u);
  EXPECT_EQ(t.count(), 2u);
}

TEST(Metrics, ScopeTimerRecordsOneSpan) {
  Timer t;
  { ScopeTimer span(t); }
  EXPECT_EQ(t.count(), 1u);
}

TEST(Registry, NamedMetricsAreStable) {
  Registry r;
  Counter& a = r.counter("a");
  a.add(3);
  EXPECT_EQ(&r.counter("a"), &a);  // same object on re-lookup
  EXPECT_EQ(r.snapshot().counter("a"), 3u);
  EXPECT_EQ(r.snapshot().counter("missing"), 0u);

  r.reset();
  EXPECT_EQ(r.snapshot().counter("a"), 0u);  // zeroed, still registered
  EXPECT_EQ(r.snapshot().counters.size(), 1u);
}

TEST(Registry, DisabledRegistryIsNull) {
  Registry r;
  r.set_enabled(false);
  r.counter("ghost").add(99);
  r.timer("ghost_t").record_ns(1);
  const Snapshot snap = r.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.timers.empty());

  r.set_enabled(true);
  r.counter("real").add(1);
  EXPECT_EQ(r.snapshot().counter("real"), 1u);
}

TEST(Json, EscapeCoversControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, WriterRoundTripsNestedDocument) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("text", "with \"quotes\" and\nnewline");
  w.field("count", std::uint64_t{18446744073709551615ull});
  w.field("negative", std::int64_t{-7});
  w.field("ratio", 0.5);
  w.field("flag", true);
  w.key("nothing").null();
  w.key("list").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().field("deep", "yes").end_object();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();
  ASSERT_TRUE(w.done());

  const JsonValue doc = Parser(out.str()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.at("text").string, "with \"quotes\" and\nnewline");
  EXPECT_EQ(doc.at("negative").number, -7.0);
  EXPECT_EQ(doc.at("ratio").number, 0.5);
  EXPECT_TRUE(doc.at("flag").boolean);
  EXPECT_EQ(doc.at("nothing").kind, JsonValue::Kind::kNull);
  ASSERT_EQ(doc.at("list").array.size(), 3u);
  EXPECT_EQ(doc.at("list").array[1].as_u64(), 2u);
  EXPECT_EQ(doc.at("nested").at("deep").string, "yes");
  EXPECT_TRUE(doc.at("empty_obj").object.empty());
  EXPECT_TRUE(doc.at("empty_arr").array.empty());
}

TEST(Json, RegistryEmitterRoundTrip) {
  Registry r;
  r.counter("gossip.rounds").add(42);
  r.counter("odd \"name\"\n").add(7);
  r.timer("solve_ns").record_ns(123456);
  r.timer("solve_ns").record_ns(1);

  const JsonValue doc = Parser(r.to_json()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue& counters = doc.at("counters");
  ASSERT_EQ(counters.object.size(), 2u);
  EXPECT_EQ(counters.at("gossip.rounds").as_u64(), 42u);
  EXPECT_EQ(counters.at("odd \"name\"\n").as_u64(), 7u);
  const JsonValue& timers = doc.at("timers");
  ASSERT_EQ(timers.object.size(), 1u);
  EXPECT_EQ(timers.at("solve_ns").at("total_ns").as_u64(), 123457u);
  EXPECT_EQ(timers.at("solve_ns").at("count").as_u64(), 2u);
}

TEST(Trace, SinksObserveSimulatedRun) {
  const auto g = graph::cycle(8);
  const auto sol = gossip::solve_gossip(g);
  ASSERT_TRUE(sol.report.ok);
  const auto tree = sol.instance.tree().as_graph();

  CountingTraceSink counting;
  std::ostringstream jsonl;
  JsonLinesTraceSink lines(jsonl);

  sim::SimOptions options;
  options.sink = &counting;
  const auto result =
      sim::simulate(tree, sol.schedule, sol.instance.initial(), options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(counting.sends(), sol.schedule.transmission_count());
  EXPECT_EQ(counting.receives(), sol.schedule.delivery_count());
  EXPECT_EQ(counting.total(), counting.sends() + counting.receives());

  options.sink = &lines;
  (void)sim::simulate(tree, sol.schedule, sol.instance.initial(), options);
  std::istringstream in(jsonl.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    const JsonValue event = Parser(line).parse();
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const std::string& kind = event.at("kind").string;
    EXPECT_TRUE(kind == "send" || kind == "receive");
    if (kind == "send") {
      EXPECT_GE(event.at("fanout").as_u64(), 1u);
    }
    ++parsed;
  }
  EXPECT_EQ(parsed, counting.total());
}

}  // namespace
}  // namespace mg::obs
