// mg::obs unit tests: metric primitives (counters, timers, histograms),
// the registry's runtime null mode, the span tracer and its Chrome-trace
// exporter, and — per the no-external-dependency rule — full round-trips
// of every JSON emitter through the shared test parser (json_parser.h), so
// the emitted grammar is checked field-by-field rather than by eyeball.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "json_parser.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/network_sim.h"

namespace mg::obs {
namespace {

using testjson::JsonValue;
using testjson::Parser;

TEST(Metrics, CounterAndTimerAccumulate) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Timer t;
  t.record_ns(100);
  t.record_ns(250);
  EXPECT_EQ(t.total_ns(), 350u);
  EXPECT_EQ(t.count(), 2u);
}

TEST(Metrics, ScopeTimerRecordsOneSpan) {
  Timer t;
  { ScopeTimer span(t); }
  EXPECT_EQ(t.count(), 1u);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketBoundariesAreExact) {
  // Values below 2 * kSubBuckets are their own bucket: exact.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
  }
  // Every bucket's lower bound must map back to that bucket, and the value
  // just below it to the previous bucket — the boundaries are exact.
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(lo - 1), i - 1)
        << "value below bucket " << i;
  }
  // Spot-check the log-bucket shape: 8 sub-buckets per octave, <= 12.5%
  // relative width.
  EXPECT_EQ(Histogram::bucket_index(16), Histogram::bucket_index(17));
  EXPECT_NE(Histogram::bucket_index(17), Histogram::bucket_index(18));
  const std::size_t top =
      Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max());
  EXPECT_LT(top, Histogram::kBucketCount);
}

TEST(Histogram, SingleValueQuantilesAreExact) {
  Histogram h;
  h.record(12345);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 12345u);
  EXPECT_EQ(snap.min, 12345u);
  EXPECT_EQ(snap.max, 12345u);
  // The quantile comes from a log bucket but is clamped into [min, max],
  // so a single-value histogram reports that value exactly.
  EXPECT_EQ(snap.p50, 12345u);
  EXPECT_EQ(snap.p99, 12345u);
}

TEST(Histogram, QuantilesOrderAndBound) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_LE(snap.p50, snap.p90);
  EXPECT_LE(snap.p90, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  // p50 of uniform 1..1000 is ~500; the log buckets guarantee <= 12.5%
  // relative error on the bucket bound.
  EXPECT_GE(snap.p50, 440u);
  EXPECT_LE(snap.p50, 576u);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.p50, 0u);
  EXPECT_EQ(snap.p90, 0u);
  EXPECT_EQ(snap.p99, 0u);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(t * kPerThread + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const HistogramSnapshot snap = h.snapshot();
  // Total-count identity: relaxed atomics may not order, but they never
  // lose an increment.
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  constexpr std::uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(snap.sum, n * (n - 1) / 2);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, n - 1);
  EXPECT_LE(snap.p50, snap.p99);
}

TEST(Histogram, ResetForgetsEverything) {
  Histogram h;
  h.record(7);
  h.record(1 << 20);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
  h.record(5);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 5u);
  EXPECT_EQ(snap.max, 5u);
}

TEST(Histogram, ScopeHistRecordsOneSample) {
  Histogram h;
  { ScopeHist scope(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, NamedMetricsAreStable) {
  Registry r;
  Counter& a = r.counter("a");
  a.add(3);
  EXPECT_EQ(&r.counter("a"), &a);  // same object on re-lookup
  EXPECT_EQ(r.snapshot().counter("a"), 3u);
  EXPECT_EQ(r.snapshot().counter("missing"), 0u);

  r.reset();
  EXPECT_EQ(r.snapshot().counter("a"), 0u);  // zeroed, still registered
  EXPECT_EQ(r.snapshot().counters.size(), 1u);
}

TEST(Registry, NamedHistogramsSnapshotAndReset) {
  Registry r;
  Histogram& h = r.histogram("lat");
  EXPECT_EQ(&r.histogram("lat"), &h);
  h.record(100);
  h.record(200);
  EXPECT_EQ(r.snapshot().histogram("lat").count, 2u);
  EXPECT_EQ(r.snapshot().histogram("missing").count, 0u);
  r.reset();
  EXPECT_EQ(r.snapshot().histogram("lat").count, 0u);
  EXPECT_EQ(r.snapshot().histograms.size(), 1u);  // name stays registered
}

TEST(Registry, DisabledRegistryIsNull) {
  Registry r;
  r.set_enabled(false);
  r.counter("ghost").add(99);
  r.timer("ghost_t").record_ns(1);
  r.histogram("ghost_h").record(7);
  const Snapshot snap = r.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(snap.histograms.empty());

  r.set_enabled(true);
  r.counter("real").add(1);
  EXPECT_EQ(r.snapshot().counter("real"), 1u);
}

// ---------------------------------------------------------------------------
// JSON writer

TEST(Json, EscapeCoversControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, WriterRoundTripsNestedDocument) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("text", "with \"quotes\" and\nnewline");
  w.field("count", std::uint64_t{18446744073709551615ull});
  w.field("negative", std::int64_t{-7});
  w.field("ratio", 0.5);
  w.field("flag", true);
  w.key("nothing").null();
  w.key("list").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().field("deep", "yes").end_object();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();
  ASSERT_TRUE(w.done());

  const JsonValue doc = Parser(out.str()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.at("text").string, "with \"quotes\" and\nnewline");
  EXPECT_EQ(doc.at("negative").number, -7.0);
  EXPECT_EQ(doc.at("ratio").number, 0.5);
  EXPECT_TRUE(doc.at("flag").boolean);
  EXPECT_EQ(doc.at("nothing").kind, JsonValue::Kind::kNull);
  ASSERT_EQ(doc.at("list").array.size(), 3u);
  EXPECT_EQ(doc.at("list").array[1].as_u64(), 2u);
  EXPECT_EQ(doc.at("nested").at("deep").string, "yes");
  EXPECT_TRUE(doc.at("empty_obj").object.empty());
  EXPECT_TRUE(doc.at("empty_arr").array.empty());
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("nan", std::nan(""));
  w.field("pos_inf", std::numeric_limits<double>::infinity());
  w.field("neg_inf", -std::numeric_limits<double>::infinity());
  w.field("finite", 1.5);
  w.end_object();
  ASSERT_TRUE(w.done());

  const JsonValue doc = Parser(out.str()).parse();
  EXPECT_EQ(doc.at("nan").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc.at("pos_inf").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc.at("neg_inf").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc.at("finite").number, 1.5);
}

TEST(Json, RegistryEmitterRoundTrip) {
  Registry r;
  r.counter("gossip.rounds").add(42);
  r.counter("odd \"name\"\n").add(7);
  r.timer("solve_ns").record_ns(123456);
  r.timer("solve_ns").record_ns(1);
  r.histogram("lat_ns").record(1000);
  r.histogram("lat_ns").record(3000);

  const JsonValue doc = Parser(r.to_json()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue& counters = doc.at("counters");
  ASSERT_EQ(counters.object.size(), 2u);
  EXPECT_EQ(counters.at("gossip.rounds").as_u64(), 42u);
  EXPECT_EQ(counters.at("odd \"name\"\n").as_u64(), 7u);
  const JsonValue& timers = doc.at("timers");
  ASSERT_EQ(timers.object.size(), 1u);
  EXPECT_EQ(timers.at("solve_ns").at("total_ns").as_u64(), 123457u);
  EXPECT_EQ(timers.at("solve_ns").at("count").as_u64(), 2u);
  const JsonValue& histograms = doc.at("histograms");
  ASSERT_EQ(histograms.object.size(), 1u);
  const JsonValue& lat = histograms.at("lat_ns");
  EXPECT_EQ(lat.at("count").as_u64(), 2u);
  EXPECT_EQ(lat.at("sum").as_u64(), 4000u);
  EXPECT_EQ(lat.at("min").as_u64(), 1000u);
  EXPECT_EQ(lat.at("max").as_u64(), 3000u);
  EXPECT_LE(lat.at("p50").as_u64(), lat.at("p99").as_u64());
}

// ---------------------------------------------------------------------------
// Span tracer

TEST(Span, DisabledTracerRecordsNothing) {
  SpanTracer tracer(16);
  ASSERT_FALSE(tracer.enabled());  // opt-in
  { ScopeSpan s(tracer, "ghost"); }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Span, NestedSpansAreBracketedAndMonotonic) {
  SpanTracer tracer(16);
  tracer.set_enabled(true);
  {
    ScopeSpan outer(tracer, "outer");
    {
      ScopeSpan inner(tracer, "inner");
    }
    {
      ScopeSpan sibling(tracer, "sibling");
    }
  }
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start; the parent's interval strictly contains each child's.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].depth, 1u);
    EXPECT_GE(spans[i].start_ns, spans[0].start_ns);
    EXPECT_LE(spans[i].end_ns, spans[0].end_ns);
    EXPECT_LE(spans[i].start_ns, spans[i].end_ns);
    EXPECT_EQ(spans[i].thread, spans[0].thread);
  }
  // Siblings do not overlap and appear in order.
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_STREQ(spans[2].name, "sibling");
  EXPECT_LE(spans[1].end_ns, spans[2].start_ns);
}

TEST(Span, RingDropsWhenFullAndCounts) {
  SpanTracer tracer(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    ScopeSpan s(tracer, "tiny");
  }
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.snapshot().size(), 4u);
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  {
    ScopeSpan s(tracer, "after_clear");
  }
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Span, LongNamesAreTruncatedNotRejected) {
  SpanTracer tracer(4);
  tracer.set_enabled(true);
  const std::string longname(100, 'x');
  tracer.record(longname, 1, 0, 0, 1);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name),
            std::string(SpanTracer::kMaxNameLength, 'x'));
}

TEST(Span, ConcurrentRecordingKeepsPerThreadNesting) {
  SpanTracer tracer(1024);
  tracer.set_enabled(true);
  constexpr unsigned kThreads = 4;
  constexpr int kIters = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kIters; ++i) {
        ScopeSpan outer(tracer, "outer");
        ScopeSpan inner(tracer, "inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), kThreads * kIters * 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
  // Per thread: every inner span nests in some outer span of that thread.
  for (const auto& span : spans) {
    if (std::string_view(span.name) != "inner") continue;
    bool contained = false;
    for (const auto& outer : spans) {
      if (outer.thread == span.thread &&
          std::string_view(outer.name) == "outer" &&
          outer.start_ns <= span.start_ns && span.end_ns <= outer.end_ns) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "orphan inner span on thread " << span.thread;
  }
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST(TraceExport, EmitsValidChromeTraceJson) {
  SpanTracer tracer(64);
  tracer.set_enabled(true);
  {
    ScopeSpan outer(tracer, "solve");
    ScopeSpan inner(tracer, "bfs");
  }
  std::ostringstream out;
  write_chrome_trace(out, tracer);

  const JsonValue doc = Parser(out.str()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events.array.size(), 2u);
  for (const JsonValue& e : events.array) {
    EXPECT_EQ(e.at("ph").string, "X");  // complete events
    EXPECT_EQ(e.at("cat").string, "mg");
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_EQ(e.at("pid").as_u64(), 1u);
    EXPECT_GE(e.at("tid").as_u64(), 1u);
  }
  // Snapshot order puts the parent first; ts/dur must bracket the child
  // (microsecond rounding can only shrink the child into the parent).
  const JsonValue& parent = events.array[0];
  const JsonValue& child = events.array[1];
  EXPECT_EQ(parent.at("name").string, "solve");
  EXPECT_EQ(child.at("name").string, "bfs");
  EXPECT_LE(parent.at("ts").number, child.at("ts").number + 1e-3);
  EXPECT_GE(parent.at("ts").number + parent.at("dur").number + 1e-3,
            child.at("ts").number + child.at("dur").number);
  EXPECT_EQ(child.at("args").at("depth").as_u64(), 1u);
}

TEST(TraceExport, EmptyTracerStillProducesValidDocument) {
  SpanTracer tracer(4);
  std::ostringstream out;
  write_chrome_trace(out, tracer);
  const JsonValue doc = Parser(out.str()).parse();
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

// ---------------------------------------------------------------------------
// Streaming trace sinks

TEST(Trace, SinksObserveSimulatedRun) {
  const auto g = graph::cycle(8);
  const auto sol = gossip::solve_gossip(g);
  ASSERT_TRUE(sol.report.ok);
  const auto tree = sol.instance.tree().as_graph();

  CountingTraceSink counting;
  std::ostringstream jsonl;
  JsonLinesTraceSink lines(jsonl);

  sim::SimOptions options;
  options.sink = &counting;
  const auto result =
      sim::simulate(tree, sol.schedule, sol.instance.initial(), options);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(counting.sends(), sol.schedule.transmission_count());
  EXPECT_EQ(counting.receives(), sol.schedule.delivery_count());
  EXPECT_EQ(counting.total(), counting.sends() + counting.receives());

  options.sink = &lines;
  (void)sim::simulate(tree, sol.schedule, sol.instance.initial(), options);
  std::istringstream in(jsonl.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    const JsonValue event = Parser(line).parse();
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const std::string& kind = event.at("kind").string;
    EXPECT_TRUE(kind == "send" || kind == "receive");
    if (kind == "send") {
      EXPECT_GE(event.at("fanout").as_u64(), 1u);
    }
    ++parsed;
  }
  EXPECT_EQ(parsed, counting.total());
}

}  // namespace
}  // namespace mg::obs
