// Pluggable communication models (`mg::model::CommModel`).
//
// The paper's multicast model (§1) is one point in a space the related work
// maps out: per round, who may send, to whom a transmission may be
// addressed, how much content one round carries, and what happens when two
// transmissions meet at one receiver.  A `CommModel` captures exactly those
// four axes so the same graphs, schedulers and fault plans can be compared
// across models (ROADMAP item 4):
//
//  * kMulticast  — the paper's model: one message to any neighbor subset,
//    receiver sets pairwise disjoint.  The default everywhere; routing the
//    validator and simulator through this model is byte-identical to the
//    pre-refactor code paths (pinned by tests/model_matrix_test.cpp).
//  * kTelephone  — the unicasting restriction: |D| = 1.
//  * kRadio      — ad-hoc radio (Wu–Chrobak): a transmission reaches the
//    sender's entire neighborhood (no receiver addressing), transmitters
//    are deaf for the round (half-duplex), and a listener with two or more
//    transmitting neighbors hears a collision and decodes nothing.
//    Simultaneous arrivals are *legal* — they are lost, not rejected.
//  * kBeep       — Hounkanli–Pelc: one-bit signals with no source
//    addressing.  Structurally a radio round (full-neighborhood reach,
//    half-duplex, superimposed signals undecodable at message granularity);
//    on top of that each message hop must be serialized bit by bit, so one
//    structural round costs ceil(log2 n) + 1 one-bit slots of model time
//    (`round_cost`).  We simulate at message granularity and convert round
//    counts through `model_time` — docs/MODELS.md spells out the honesty
//    notes of that abstraction.
//  * kDirect     — Haeupler–Malkhi-style direct addressing: a processor may
//    send to *any* known processor id, not just graph neighbors; delivery
//    rules are otherwise the multicast model's.
//
// Models are stateless singletons (`builtin_model`, `all_models`); the
// validator takes one via `ValidatorOptions::model`, the simulator via
// `SimOptions::comm`, and `legalize.h` adapts existing schedules to a model
// or synthesizes model-native ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"

namespace mg::model {

enum class ModelKind : std::uint8_t {
  kMulticast,  ///< the paper's model (default)
  kTelephone,  ///< unicast restriction: |D| = 1
  kRadio,      ///< full-neighborhood broadcast, receiver-side collision loss
  kBeep,       ///< radio structure + 1-bit capacity (round_cost > 1)
  kDirect,     ///< receivers may be any processor, not just neighbors
};

/// Number of built-in models (array sizing in the bench matrix).
inline constexpr std::size_t kModelCount = 5;

class CommModel {
 public:
  virtual ~CommModel() = default;

  [[nodiscard]] virtual ModelKind kind() const = 0;

  /// Stable lowercase identifier ("multicast", "beep", ...) used in BENCH
  /// rows and test diagnostics.
  [[nodiscard]] virtual std::string name() const = 0;

  // --- per-transmission legality -----------------------------------------

  /// True when a receiver must be a graph neighbor of the sender (every
  /// model except direct addressing).
  [[nodiscard]] virtual bool requires_adjacency() const { return true; }

  /// Capacity / addressing shape check for one transmission's receiver set
  /// (receivers are in range, distinct, non-empty and != sender when this
  /// is called).  Returns an empty string when legal, otherwise a short
  /// violation description (the validator appends the round context).
  [[nodiscard]] virtual std::string receiver_set_error(
      const graph::Graph& g, graph::Vertex sender,
      const std::vector<graph::Vertex>& receivers) const;

  // --- delivery semantics -------------------------------------------------

  /// True when two same-round deliveries to one receiver are a *rule
  /// violation* (multicast rule 1).  False for broadcast channels
  /// (radio/beep): simultaneous arrivals are legal but collide — the
  /// receiver decodes nothing, and a transmitting processor is deaf for
  /// the round (half-duplex).
  [[nodiscard]] virtual bool exclusive_receivers() const { return true; }

  /// Collision loss applies (the simulator's and validator's switch for
  /// the radio/beep delivery rule).
  [[nodiscard]] bool collision_loss() const { return !exclusive_receivers(); }

  // --- time accounting ----------------------------------------------------

  /// Model time units one structural round costs on an n-processor
  /// network.  1 everywhere except beep, where a message hop serializes
  /// into ceil(log2 n) + 1 one-bit slots.
  [[nodiscard]] virtual std::size_t round_cost(graph::Vertex n) const;

  /// Converts a structural round count to model time units.
  [[nodiscard]] std::size_t model_time(std::size_t structural_rounds,
                                       graph::Vertex n) const {
    return structural_rounds * round_cost(n);
  }
};

/// The five built-in models as stateless singletons.
[[nodiscard]] const CommModel& multicast_model();
[[nodiscard]] const CommModel& telephone_model();
[[nodiscard]] const CommModel& radio_model();
[[nodiscard]] const CommModel& beep_model();
[[nodiscard]] const CommModel& direct_model();

[[nodiscard]] const CommModel& builtin_model(ModelKind kind);

/// All built-ins, bench-matrix order: multicast, telephone, radio, beep,
/// direct.
[[nodiscard]] const std::vector<const CommModel*>& all_models();

}  // namespace mg::model
