// Quickstart: build a network, solve gossiping with the paper's algorithm,
// validate the schedule and inspect the result.
//
//   $ ./quickstart
//
// Walks through the full public API surface in ~60 lines: graph
// construction, the one-call solver, schedule statistics, and the
// round-by-round schedule text.
#include <cstdio>

#include "gossip/bounds.h"
#include "gossip/solve.h"
#include "graph/graph.h"

int main() {
  using namespace mg;

  // 1. Describe your communication network as an undirected graph.  Here:
  //    eight processors in two squares joined by a bridge.
  graph::GraphBuilder builder(8);
  builder.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).add_edge(3, 0);
  builder.add_edge(4, 5).add_edge(5, 6).add_edge(6, 7).add_edge(7, 4);
  builder.add_edge(3, 4);  // the bridge
  const graph::Graph network = builder.build();

  // 2. Solve gossiping.  solve_gossip builds the minimum-depth spanning
  //    tree (height == network radius) and runs ConcurrentUpDown on it.
  const gossip::Solution solution = gossip::solve_gossip(network);
  if (!solution.report.ok) {
    std::printf("schedule failed validation: %s\n",
                solution.report.error.c_str());
    return 1;
  }

  // 3. Inspect.  Message ids in the schedule are DFS labels; processor v's
  //    own message is solution.instance.labels().label(v).
  const auto n = network.vertex_count();
  const auto r = solution.instance.radius();
  std::printf("processors: %u   radius: %u\n", n, r);
  std::printf("total communication time: %zu rounds (paper bound n + r = %zu,"
              "\n                          trivial lower bound n - 1 = %zu)\n",
              solution.schedule.total_time(),
              gossip::concurrent_updown_time(n, r),
              gossip::trivial_lower_bound(n));
  std::printf("transmissions: %zu   point-to-point deliveries: %zu   "
              "max multicast fanout: %zu\n\n",
              solution.schedule.transmission_count(),
              solution.schedule.delivery_count(),
              solution.schedule.max_fanout());

  std::printf("round-by-round schedule (msg: sender -> receivers):\n%s\n",
              solution.schedule.to_string().c_str());

  // 4. Per-processor completion times from the validator's report.
  std::printf("completion time per processor:");
  for (graph::Vertex v = 0; v < n; ++v) {
    std::printf(" %zu", solution.report.completion_time[v]);
  }
  std::printf("\n");
  return 0;
}
