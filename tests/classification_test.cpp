// Tests for the §3.2 message taxonomy (o/s/l/r roles, lip/rip partitions)
// against the paper's own running example.
#include <gtest/gtest.h>

#include "gossip/classification.h"
#include "graph/named.h"
#include "support/contracts.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

struct ClassificationTest : ::testing::Test {
  tree::RootedTree tree = tree::min_depth_spanning_tree(graph::fig4_network());
  tree::DfsLabeling labels{tree};
};

TEST_F(ClassificationTest, RolesAtVertexFour) {
  // Vertex 4: i = 4, j = 10 (Table 3's vertex).
  EXPECT_EQ(classify(labels, 4, 3), Role::kOther);
  EXPECT_EQ(classify(labels, 4, 4), Role::kStart);
  EXPECT_EQ(classify(labels, 4, 5), Role::kLookahead);
  EXPECT_EQ(classify(labels, 4, 6), Role::kRemaining);
  EXPECT_EQ(classify(labels, 4, 10), Role::kRemaining);
  EXPECT_EQ(classify(labels, 4, 11), Role::kOther);
  EXPECT_EQ(classify(labels, 4, 0), Role::kOther);
}

TEST_F(ClassificationTest, RootLabelingMatchesPaper) {
  // "Message i = 0 is the s-message, message 1 is the l-message, and
  //  messages 2..n-1 are r-messages."
  EXPECT_EQ(classify(labels, 0, 0), Role::kStart);
  EXPECT_EQ(classify(labels, 0, 1), Role::kLookahead);
  for (tree::Label m = 2; m < 16; ++m) {
    EXPECT_EQ(classify(labels, 0, m), Role::kRemaining) << m;
  }
}

TEST_F(ClassificationTest, LeafHasNoLookahead) {
  // Vertex 3 is a leaf: i = j = 3, so no l- or r-messages.
  EXPECT_EQ(classify(labels, 3, 3), Role::kStart);
  EXPECT_EQ(classify(labels, 3, 4), Role::kOther);
  EXPECT_EQ(classify(labels, 3, 2), Role::kOther);
}

TEST_F(ClassificationTest, LipOnlyForFirstChildren) {
  // Vertex 5 is the first child of 4 (5 = 4 + 1): its s-message is a lip.
  EXPECT_TRUE(is_lip(tree, labels, 5, 5));
  // Vertex 8 is a later sibling: no lip-message.
  EXPECT_FALSE(is_lip(tree, labels, 8, 8));
  // Non-start messages are never lips.
  EXPECT_FALSE(is_lip(tree, labels, 5, 6));
}

TEST_F(ClassificationTest, RipRangeAtFirstChild) {
  // Vertex 1 (first child of root, interval [1,3]): lip is 1, rips are 2,3.
  EXPECT_FALSE(is_rip(tree, labels, 1, 1));
  EXPECT_TRUE(is_rip(tree, labels, 1, 2));
  EXPECT_TRUE(is_rip(tree, labels, 1, 3));
  EXPECT_FALSE(is_rip(tree, labels, 1, 4));
}

TEST_F(ClassificationTest, RipRangeAtLaterSibling) {
  // Vertex 8 (second child of 4, interval [8,10]): all of 8..10 are rips.
  for (tree::Label m = 8; m <= 10; ++m) {
    EXPECT_TRUE(is_rip(tree, labels, 8, m)) << m;
  }
  EXPECT_FALSE(is_rip(tree, labels, 8, 7));
}

TEST_F(ClassificationTest, BodyMessagesPartitionedByParentExactly) {
  // Every b-message of a non-root vertex is exactly one of lip / rip.
  for (graph::Vertex v = 1; v < 16; ++v) {
    const auto i = labels.label(v);
    const auto j = labels.subtree_end(v);
    for (tree::Label m = i; m <= j; ++m) {
      EXPECT_NE(is_lip(tree, labels, v, m), is_rip(tree, labels, v, m))
          << "v=" << v << " m=" << m;
    }
  }
}

TEST_F(ClassificationTest, LipRequiresNonRoot) {
  EXPECT_THROW((void)is_lip(tree, labels, 0, 0), ContractViolation);
  EXPECT_THROW((void)is_rip(tree, labels, 0, 0), ContractViolation);
}

}  // namespace
}  // namespace mg::gossip
