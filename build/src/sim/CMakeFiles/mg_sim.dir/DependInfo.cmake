
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/network_sim.cpp" "src/sim/CMakeFiles/mg_sim.dir/network_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mg_sim.dir/network_sim.cpp.o.d"
  "/root/repo/src/sim/randomized.cpp" "src/sim/CMakeFiles/mg_sim.dir/randomized.cpp.o" "gcc" "src/sim/CMakeFiles/mg_sim.dir/randomized.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
