#include "model/compiled.h"

#include "support/contracts.h"

namespace mg::model {

CompiledSchedule CompiledSchedule::compile(const Schedule& schedule) {
  CompiledSchedule c;
  const std::size_t rounds = schedule.round_count();
  c.round_offsets_.assign(rounds + 1, 0);
  std::size_t deliveries = 0;
  for (std::size_t t = 0; t < rounds; ++t) {
    c.round_offsets_[t + 1] = c.round_offsets_[t] + schedule.round(t).size();
    for (const auto& tx : schedule.round(t)) deliveries += tx.receivers.size();
  }
  MG_EXPECTS_MSG(deliveries <= static_cast<std::size_t>(UINT32_MAX),
                 "compiled receiver index would overflow 32 bits");
  c.tx_.reserve(c.round_offsets_[rounds]);
  c.receivers_.reserve(deliveries);
  for (std::size_t t = 0; t < rounds; ++t) {
    for (const auto& tx : schedule.round(t)) {
      c.tx_.push_back({tx.message, tx.sender,
                       static_cast<std::uint32_t>(c.receivers_.size()),
                       static_cast<std::uint32_t>(tx.receivers.size())});
      c.receivers_.insert(c.receivers_.end(), tx.receivers.begin(),
                          tx.receivers.end());
    }
  }
  return c;
}

}  // namespace mg::model
