// Causal tracing tests for the mg::dist actor runtime (ISSUE 10): the
// happens-before record every run captures, the critical path extracted
// from it, and its export as Chrome-trace flow events.
//
// The headline gates are exact, not approximate:
//  * fault-free ConcurrentUpDown: critical_path().length == n + r — the
//    Theorem 1 bound is causally tight (some chain of actual message hops
//    spans the whole run);
//  * under injected drops that force recovery: the length grows by
//    precisely the recovery data rounds executed, n + r + recovery_rounds.
//
// Chain validity, capture completeness (one link per transmission on the
// wire), the CausalTracer mirror, and the flow-trace JSON round-trip
// through the shared test parser are checked alongside.  RunReport.causal
// is always recorded (independent of MG_OBS), so everything except the
// mirror test also gates the -DMG_OBS=OFF build.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dist/runtime.h"
#include "fault/fault.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "json_parser.h"
#include "obs/causal.h"
#include "obs/trace_export.h"
#include "test_util.h"

namespace mg::dist {
namespace {

using testjson::JsonValue;
using testjson::Parser;

/// Asserts the structural invariants of a reported critical path: the
/// chain starts at a root (parent 0), every later hop's parent is the
/// previous hop, and send rounds strictly increase along the chain.
void expect_valid_chain(const CriticalPath& path) {
  ASSERT_FALSE(path.hops.empty());
  EXPECT_EQ(path.hops.front().parent, 0u) << "chain must start at a root";
  for (std::size_t i = 1; i < path.hops.size(); ++i) {
    EXPECT_EQ(path.hops[i].parent, path.hops[i - 1].id)
        << "hop " << i << " must be enabled by the previous hop";
    EXPECT_GT(path.hops[i].round, path.hops[i - 1].round)
        << "rounds must strictly increase along the chain";
  }
}

TEST(DistCausal, CriticalPathIsExactlyNPlusRFaultFree) {
  const std::pair<std::string, graph::Graph> graphs[] = {
      {"n1_cycle", graph::n1_cycle()},
      {"petersen", graph::petersen()},
      {"n3_witness", graph::n3_witness()},
      {"fig4", graph::fig4_network()},
  };
  for (const auto& [name, g] : graphs) {
    SCOPED_TRACE(name);
    const DistOutcome outcome =
        run_distributed(g, gossip::Algorithm::kConcurrentUpDown);
    ASSERT_TRUE(outcome.run.complete);
    ASSERT_EQ(outcome.run.recovery_rounds, 0u);
    const std::size_t n = outcome.central.instance.vertex_count();
    const std::size_t r = outcome.central.instance.radius();
    const CriticalPath path = critical_path(outcome.run);
    EXPECT_EQ(path.length, n + r) << "Theorem 1 must be causally tight";
    expect_valid_chain(path);
    EXPECT_EQ(path.hops.back().round + 1, path.length)
        << "length is the last data hop's arrival time";
  }
}

TEST(DistCausal, CriticalPathAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (const graph::Vertex knob : {4u, 7u}) {
      SCOPED_TRACE(family.name + " knob=" + std::to_string(knob));
      const graph::Graph g = family.make(knob);
      const DistOutcome outcome =
          run_distributed(g, gossip::Algorithm::kConcurrentUpDown);
      ASSERT_TRUE(outcome.run.complete);
      const std::size_t n = outcome.central.instance.vertex_count();
      const std::size_t r = outcome.central.instance.radius();
      const CriticalPath path = critical_path(outcome.run);
      EXPECT_EQ(path.length, n + r);
      expect_valid_chain(path);
    }
  }
}

TEST(DistCausal, DropsLengthenByExactlyTheRecoveryRounds) {
  // Deterministic early-round drops plus seeded probabilistic plans; any
  // plan that forces recovery must lengthen the causal critical path by
  // precisely the recovery data rounds the run executed.
  struct Case {
    std::string name;
    fault::FaultPlan plan;
  };
  std::vector<Case> cases;
  {
    Case c{"deterministic-drop-r0-s0", {}};
    c.plan.drop(0, 0).drop(1, 0);
    cases.push_back(std::move(c));
  }
  for (const std::uint64_t seed : {7ull, 21ull, 99ull}) {
    Case c{"rate-0.2-seed-" + std::to_string(seed), {}};
    c.plan.drop_rate(0.2).seed(seed);
    cases.push_back(std::move(c));
  }

  std::size_t recovered_runs = 0;
  for (const auto& [name, plan] : cases) {
    SCOPED_TRACE(name);
    RuntimeOptions options;
    options.faults = &plan;
    const DistOutcome outcome = run_distributed(
        graph::petersen(), gossip::Algorithm::kConcurrentUpDown, options);
    ASSERT_TRUE(outcome.run.complete) << "recovery must finish the gossip";
    const std::size_t n = outcome.central.instance.vertex_count();
    const std::size_t r = outcome.central.instance.radius();
    const CriticalPath path = critical_path(outcome.run);
    EXPECT_EQ(path.length, n + r + outcome.run.recovery_rounds);
    expect_valid_chain(path);
    if (outcome.run.recovery_rounds > 0) ++recovered_runs;
  }
  EXPECT_GT(recovered_runs, 0u)
      << "at least one plan must actually force recovery";
}

TEST(DistCausal, EveryWireTransmissionIsCaptured) {
  // One causal link per transmission that hit the wire: data links match
  // the emergent schedule exactly; ids are 1-based, unique, and in capture
  // order; no link dangles (every parent is an earlier captured id).
  const DistOutcome outcome =
      run_distributed(graph::petersen(), gossip::Algorithm::kConcurrentUpDown);
  const std::vector<CausalLink>& causal = outcome.run.causal;
  ASSERT_FALSE(causal.empty());

  std::size_t data_links = 0;
  std::set<std::uint64_t> seen;
  for (const CausalLink& link : causal) {
    EXPECT_GE(link.id, 1u);
    EXPECT_TRUE(seen.insert(link.id).second) << "duplicate trace id";
    if (link.parent != 0) {
      EXPECT_TRUE(seen.count(link.parent) != 0)
          << "parent " << link.parent << " must be captured before "
          << link.id;
    }
    if (link.kind == CausalLink::Kind::kData) ++data_links;
  }
  EXPECT_EQ(data_links, outcome.run.emergent.transmission_count());
  EXPECT_EQ(causal.size(), outcome.run.messages + outcome.run.control_messages);
}

TEST(DistCausal, GlobalTracerMirrorsTheRunReport) {
  // When the global CausalTracer is enabled, the runtime mirrors every
  // captured link into the ring; with observability compiled out the ring
  // must stay empty while RunReport.causal still carries the record.
  obs::CausalTracer& tracer = obs::CausalTracer::global();
  tracer.set_enabled(false);
  tracer.clear();
  tracer.set_enabled(true);
  const DistOutcome outcome =
      run_distributed(graph::petersen(), gossip::Algorithm::kConcurrentUpDown);
  tracer.set_enabled(false);

  const std::vector<obs::CausalTracer::Event> mirrored = tracer.snapshot();
  ASSERT_FALSE(outcome.run.causal.empty());
  const bool compiled_in = MG_OBS_ENABLED != 0;
  if (!compiled_in) {
    EXPECT_TRUE(mirrored.empty());
    return;
  }
  ASSERT_EQ(mirrored.size(), outcome.run.causal.size());
  // snapshot() sorts by (time, id); compare as id-keyed sets of edges.
  std::set<std::pair<std::uint64_t, std::uint64_t>> report_edges;
  for (const CausalLink& link : outcome.run.causal) {
    report_edges.emplace(link.id, link.parent);
  }
  for (const obs::CausalTracer::Event& e : mirrored) {
    EXPECT_TRUE(report_edges.count({e.id, e.parent}) != 0)
        << "mirrored edge " << e.id << "<-" << e.parent
        << " missing from the report";
  }
  tracer.clear();
}

TEST(DistCausal, FlowTraceRoundTripsThroughParser) {
  // Export the run's happens-before record as Chrome-trace flow events and
  // parse it back: one pid-2 slice per link, one "s"/"f" pair per edge,
  // every flow id resolving to a slice with that id.
  const DistOutcome outcome =
      run_distributed(graph::petersen(), gossip::Algorithm::kConcurrentUpDown);
  std::vector<obs::CausalTracer::Event> flows;
  flows.reserve(outcome.run.causal.size());
  std::size_t edges = 0;
  for (const CausalLink& link : outcome.run.causal) {
    flows.push_back({link.id, link.parent,
                     static_cast<std::uint32_t>(link.kind), link.round,
                     link.sender, link.message, link.fanout});
    if (link.parent != 0) ++edges;
  }

  std::ostringstream out;
  obs::write_chrome_trace(out, {}, flows);
  const std::string text = out.str();
  Parser parser(text);
  const JsonValue doc = parser.parse();
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);

  std::set<std::uint64_t> slice_ids;
  std::size_t starts = 0;
  std::size_t finishes = 0;
  for (const JsonValue& e : events.array) {
    const std::string& ph = e.at("ph").string;
    if (ph == "X") {
      EXPECT_EQ(e.at("pid").as_u64(), 2u);
      slice_ids.insert(e.at("args").at("id").as_u64());
    } else if (ph == "s" || ph == "f") {
      const std::uint64_t id = e.at("id").as_u64();
      EXPECT_TRUE(slice_ids.count(id) != 0 ||
                  id <= outcome.run.causal.size())
          << "flow id " << id << " must name a captured transmission";
      (ph == "s" ? starts : finishes) += 1;
    }
  }
  EXPECT_EQ(slice_ids.size(), flows.size());
  EXPECT_EQ(starts, edges);
  EXPECT_EQ(finishes, edges);

  // Every "s"/"f" id must be a rendered slice's id.
  for (const JsonValue& e : events.array) {
    const std::string& ph = e.at("ph").string;
    if (ph == "s" || ph == "f") {
      EXPECT_TRUE(slice_ids.count(e.at("id").as_u64()) != 0);
    }
  }
}

}  // namespace
}  // namespace mg::dist
