// Adversarial property battery for the self-healing driver
// `gossip::solve_with_recovery` (ISSUE 3): a seeded sweep over >= 64
// (graph, fault-plan) combinations asserting that
//   (a) recovery completes whenever the surviving graph is connected
//       (full completion when nothing crashed; achievable closure when
//       crashes ate messages),
//   (b) every healed/repair schedule passes the independent model
//       validator,
//   (c) crash-partitioned runs degrade to an accurate partial-coverage
//       report instead of an assertion.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "fault/fault.h"
#include "gossip/recovery.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace mg::gossip {
namespace {

/// Connectivity of the subgraph induced by the non-crashed processors.
bool survivors_connected(const graph::Graph& g,
                         const std::vector<graph::Vertex>& crashed) {
  const graph::Vertex n = g.vertex_count();
  std::vector<char> dead(n, 0);
  for (const graph::Vertex v : crashed) dead[v] = 1;
  graph::Vertex start = graph::kNoVertex;
  graph::Vertex live = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!dead[v]) {
      if (start == graph::kNoVertex) start = v;
      ++live;
    }
  }
  if (live == 0) return true;  // vacuously
  std::vector<char> seen(n, 0);
  std::vector<graph::Vertex> queue{start};
  seen[start] = 1;
  graph::Vertex reached = 1;
  while (!queue.empty()) {
    const graph::Vertex v = queue.back();
    queue.pop_back();
    for (const graph::Vertex u : g.neighbors(v)) {
      if (!dead[u] && !seen[u]) {
        seen[u] = 1;
        ++reached;
        queue.push_back(u);
      }
    }
  }
  return reached == live;
}

graph::Graph sweep_graph(std::uint64_t seed) {
  Rng rng(0xfa17ULL * (seed + 1));
  const auto n = static_cast<graph::Vertex>(8 + (seed * 5) % 24);
  switch (seed % 5) {
    case 0:
      return graph::cycle(n);
    case 1:
      return graph::grid(3, 3 + static_cast<graph::Vertex>(seed % 4));
    case 2:
      return graph::random_connected_gnp(n, 4.0 / static_cast<double>(n),
                                         rng);
    case 3:
      return graph::random_geometric(n, 0.35, rng);
    default:
      return graph::hypercube(3 + static_cast<unsigned>(seed % 2));
  }
}

fault::FaultPlan sweep_plan(std::uint64_t seed, const graph::Graph& g) {
  const double rates[] = {0.05, 0.1, 0.2, 0.3};
  fault::FaultPlan plan;
  plan.drop_rate(rates[seed % 4]).seed(0xbadULL + seed);
  if (seed % 3 == 1) {
    // Crash a mid-schedule processor; which one rotates with the seed.
    const auto victim =
        static_cast<graph::Vertex>((seed * 7) % g.vertex_count());
    plan.crash(victim, 2 + seed % 9);
  }
  if (seed % 4 == 2) {
    const auto edges = g.edges();
    const auto& e = edges[seed % edges.size()];
    plan.delay(e.first, e.second, 1 + seed % 3);
  }
  return plan;
}

TEST(RecoveryProperty, SeededSweep64) {
  constexpr std::uint64_t kCombos = 64;
  for (std::uint64_t seed = 0; seed < kCombos; ++seed) {
    const graph::Graph g = sweep_graph(seed);
    const fault::FaultPlan plan = sweep_plan(seed, g);
    SCOPED_TRACE("seed " + std::to_string(seed) + " n=" +
                 std::to_string(g.vertex_count()));

    RecoveryOptions options;
    options.algorithm = static_cast<Algorithm>(seed % 4);
    // Faults keep firing during recovery, so a 30% drop rate can need
    // well over the default 4 attempts before a repair lands cleanly.
    options.max_attempts = 24;
    const RecoveryOutcome outcome = solve_with_recovery(g, plan, options);

    // The base schedule itself is always sound (faults hit the run, not
    // the plan construction).
    ASSERT_TRUE(outcome.base.report.ok) << outcome.base.report.error;
    // (b) every repair passed the independent validator.
    EXPECT_TRUE(outcome.repairs_valid);

    // (a) connected survivors => the driver reaches the achievable
    // closure; with no crashes at all that closure is full gossip.
    if (survivors_connected(g, outcome.crashed)) {
      EXPECT_TRUE(outcome.recovered);
      if (outcome.crashed.empty()) {
        EXPECT_TRUE(outcome.complete);
        EXPECT_DOUBLE_EQ(outcome.coverage, 1.0);
        for (const auto missing : outcome.missing) EXPECT_EQ(missing, 0u);
      }
    }

    // (c) the coverage report is arithmetic over `missing`, crash or not.
    const auto n = static_cast<std::size_t>(g.vertex_count());
    std::vector<char> dead(n, 0);
    for (const graph::Vertex v : outcome.crashed) dead[v] = 1;
    std::size_t live = 0;
    std::size_t held = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (dead[v]) continue;
      ++live;
      held += n - outcome.missing[v];
    }
    if (live > 0) {
      EXPECT_DOUBLE_EQ(outcome.coverage,
                       static_cast<double>(held) /
                           (static_cast<double>(live) *
                            static_cast<double>(n)));
    }
    // Bookkeeping invariants: the repairs on record sum to extra_rounds,
    // and attempts never exceed the configured ceiling.
    EXPECT_LE(outcome.attempts, options.max_attempts);
    EXPECT_EQ(outcome.repairs.size(), outcome.attempts);
    std::size_t repair_rounds = 0;
    for (const auto& repair : outcome.repairs) {
      repair_rounds += repair.round_count();
    }
    EXPECT_EQ(repair_rounds, outcome.extra_rounds);
  }
}

TEST(RecoveryProperty, AcceptanceTenPercentDropsOnNamedGraphs) {
  // ISSUE 3 acceptance: seeded 10% drop plan, every named graph, full
  // completion, healed run valid, for every algorithm's base schedule.
  const std::pair<std::string, graph::Graph> graphs[] = {
      {"cycle", graph::cycle(16)},
      {"petersen", graph::petersen()},
      {"grid", graph::grid(5, 5)},
      {"hypercube", graph::hypercube(4)},
  };
  for (const auto& [name, g] : graphs) {
    for (const Algorithm algorithm :
         {Algorithm::kSimple, Algorithm::kUpDown,
          Algorithm::kConcurrentUpDown, Algorithm::kTelephone}) {
      SCOPED_TRACE(name + "/" + algorithm_name(algorithm));
      fault::FaultPlan plan;
      plan.drop_rate(0.10).seed(42);
      RecoveryOptions options;
      options.algorithm = algorithm;
      options.max_attempts = 8;
      const RecoveryOutcome outcome = solve_with_recovery(g, plan, options);
      EXPECT_TRUE(outcome.complete);
      EXPECT_TRUE(outcome.recovered);
      EXPECT_TRUE(outcome.repairs_valid);
      EXPECT_DOUBLE_EQ(outcome.coverage, 1.0);
      EXPECT_TRUE(outcome.crashed.empty());
    }
  }
}

TEST(RecoveryProperty, CrashPartitionDegradesGracefully) {
  // Cutting a path at its center partitions the survivors; the driver
  // must report partial coverage accurately instead of asserting.
  const auto g = graph::path(9);
  fault::FaultPlan plan;
  plan.crash(4, 2);
  const RecoveryOutcome outcome = solve_with_recovery(g, plan);
  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.recovered);  // each side reached its closure
  ASSERT_EQ(outcome.crashed, std::vector<graph::Vertex>{4});
  EXPECT_FALSE(survivors_connected(g, outcome.crashed));
  EXPECT_LT(outcome.coverage, 1.0);
  EXPECT_GT(outcome.coverage, 0.0);
  // Both shores miss at least the far side's messages.
  for (graph::Vertex v = 0; v < 9; ++v) {
    if (v == 4) continue;
    EXPECT_GE(outcome.missing[v], 4u) << "v=" << v;
  }
}

TEST(RecoveryProperty, RoundBudgetTruncatesRepairs) {
  const auto g = graph::grid(5, 5);
  fault::FaultPlan plan;
  plan.drop_rate(0.2).seed(7);
  RecoveryOptions options;
  options.extra_round_budget = 3;
  options.max_attempts = 8;
  const RecoveryOutcome outcome = solve_with_recovery(g, plan, options);
  EXPECT_LE(outcome.extra_rounds, 3u);
  EXPECT_TRUE(outcome.repairs_valid);
  // The budget is far too small for a 20% drop rate: the driver reports
  // honest incompleteness instead of pretending.
  EXPECT_FALSE(outcome.complete);
}

TEST(RecoveryProperty, HealedFabricNeedsOneAttempt) {
  // faults_during_recovery = false: the repair executes on a clean
  // fabric, so a single greedy completion flood always suffices for
  // drop-only plans.
  const auto g = graph::hypercube(4);
  fault::FaultPlan plan;
  plan.drop_rate(0.2).seed(5);
  RecoveryOptions options;
  options.faults_during_recovery = false;
  const RecoveryOutcome outcome = solve_with_recovery(g, plan, options);
  EXPECT_TRUE(outcome.complete);
  EXPECT_LE(outcome.attempts, 1u);
}

TEST(RecoveryProperty, PartialCompletionFloodsEachComponentToItsClosure) {
  // Two disconnected edges; each component can only ever learn its own
  // pair of messages.  The strict builder refuses; the partial builder
  // heals to the closure.
  graph::GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const auto g = builder.build();
  std::vector<DynamicBitset> holds(4, DynamicBitset(4));
  for (graph::Vertex v = 0; v < 4; ++v) holds[v].set(v);

  EXPECT_THROW((void)greedy_completion_schedule(g, holds),
               ContractViolation);

  const auto schedule = partial_completion_schedule(g, holds);
  const auto report = model::validate_schedule_general(
      g, schedule, holds_to_initial_sets(holds), 4,
      {.variant = model::ModelVariant::kMulticast,
       .require_completion = false});
  EXPECT_TRUE(report.ok) << report.error;
  // Replaying the schedule by hand: everyone ends with their component's
  // two messages and nothing else.
  std::vector<DynamicBitset> state = holds;
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      for (const graph::Vertex r : tx.receivers) state[r].set(tx.message);
    }
  }
  for (graph::Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(state[v].count(), 2u) << "v=" << v;
  }
}

TEST(RecoveryProperty, DeadProcessorsAreExcludedFromRepairs) {
  const auto g = graph::cycle(6);
  std::vector<DynamicBitset> holds(6, DynamicBitset(6));
  for (graph::Vertex v = 0; v < 6; ++v) holds[v].set(v);
  const std::vector<char> alive = {1, 1, 1, 0, 1, 1};
  const auto schedule = partial_completion_schedule(g, holds, alive);
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      EXPECT_NE(tx.sender, 3u);
      EXPECT_EQ(std::find(tx.receivers.begin(), tx.receivers.end(),
                          graph::Vertex{3}),
                tx.receivers.end());
    }
  }
  // The survivors form a path 4-5-0-1-2: closure is everything they
  // jointly know (all messages but 3's).
  std::vector<DynamicBitset> state = holds;
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      for (const graph::Vertex r : tx.receivers) state[r].set(tx.message);
    }
  }
  for (graph::Vertex v = 0; v < 6; ++v) {
    if (v == 3) continue;
    EXPECT_EQ(state[v].count(), 5u) << "v=" << v;
    EXPECT_FALSE(state[v].test(3));
  }
}

}  // namespace
}  // namespace mg::gossip
