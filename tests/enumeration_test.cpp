// Tests for Pruefer-sequence tree enumeration, plus the exhaustive
// small-tree correctness sweep: Theorem 1 holds on EVERY labeled tree with
// n <= 6 (1296 trees), not just sampled ones.
#include <gtest/gtest.h>

#include <set>

#include "gossip/concurrent_updown.h"
#include "graph/enumeration.h"
#include "graph/io.h"
#include "graph/properties.h"
#include "model/validator.h"
#include "tree/spanning_tree.h"

namespace mg::graph {
namespace {

TEST(Enumeration, CayleyCounts) {
  EXPECT_EQ(labeled_tree_count(1), 1u);
  EXPECT_EQ(labeled_tree_count(2), 1u);
  EXPECT_EQ(labeled_tree_count(3), 3u);
  EXPECT_EQ(labeled_tree_count(4), 16u);
  EXPECT_EQ(labeled_tree_count(5), 125u);
  EXPECT_EQ(labeled_tree_count(6), 1296u);
  EXPECT_EQ(labeled_tree_count(7), 16807u);
}

TEST(Enumeration, VisitsExactlyCayleyManyDistinctTrees) {
  for (Vertex n : {3u, 4u, 5u}) {
    std::set<std::string> seen;
    const auto visited = for_each_labeled_tree(n, [&](const Graph& t) {
      EXPECT_TRUE(is_tree(t));
      EXPECT_EQ(t.vertex_count(), n);
      seen.insert(to_edge_list(t));
      return true;
    });
    EXPECT_EQ(visited, labeled_tree_count(n));
    EXPECT_EQ(seen.size(), labeled_tree_count(n));
  }
}

TEST(Enumeration, EarlyStop) {
  std::size_t calls = 0;
  const auto visited = for_each_labeled_tree(5, [&](const Graph&) {
    return ++calls < 10;
  });
  EXPECT_EQ(visited, 10u);
  EXPECT_EQ(calls, 10u);
}

TEST(Enumeration, SpecificPrueferDecoding) {
  // Pruefer (3, 3) on 4 vertices: star centered at 3.
  const std::vector<Vertex> pruefer{3, 3};
  const Graph t = tree_from_pruefer(4, pruefer);
  EXPECT_EQ(t.degree(3), 3u);
  EXPECT_TRUE(is_tree(t));
}

TEST(Enumeration, SmallSizes) {
  EXPECT_EQ(for_each_labeled_tree(1,
                                  [](const Graph& t) {
                                    EXPECT_EQ(t.vertex_count(), 1u);
                                    return true;
                                  }),
            1u);
  EXPECT_EQ(for_each_labeled_tree(2,
                                  [](const Graph& t) {
                                    EXPECT_EQ(t.edge_count(), 1u);
                                    return true;
                                  }),
            1u);
}

TEST(Enumeration, ExhaustiveTheoremOneUpToSix) {
  // Theorem 1 on the full labeled-tree space for n <= 6: the schedule is
  // feasible, complete and takes exactly n + height, for every rooting at
  // vertex 0.
  for (Vertex n : {3u, 4u, 5u, 6u}) {
    std::size_t checked = 0;
    for_each_labeled_tree(n, [&](const Graph& t) {
      const gossip::Instance instance(tree::root_tree_graph(t, 0));
      const auto schedule = gossip::concurrent_updown(instance);
      const auto report = model::validate_schedule(t, schedule,
                                                   instance.initial());
      EXPECT_TRUE(report.ok) << report.error << "\n" << to_edge_list(t);
      EXPECT_EQ(schedule.total_time(), n + instance.radius())
          << to_edge_list(t);
      ++checked;
      return report.ok;
    });
    EXPECT_EQ(checked, labeled_tree_count(n));
  }
}

}  // namespace
}  // namespace mg::graph
