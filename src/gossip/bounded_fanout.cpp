#include "gossip/bounded_fanout.h"

#include <algorithm>
#include <deque>

#include "support/contracts.h"

namespace mg::gossip {

namespace {

using model::Message;
using tree::Label;
using tree::Vertex;

/// A down-queue entry: a message plus the children still owed a copy.
struct PendingRelay {
  Message message = 0;
  std::vector<Vertex> remaining;
};

}  // namespace

model::Schedule bounded_fanout_gossip(const Instance& instance,
                                      graph::Vertex fanout_cap) {
  MG_EXPECTS(fanout_cap >= 1);
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  const Vertex n = tree.vertex_count();
  model::Schedule schedule;
  if (n <= 1) return schedule;

  // ---- Fixed up phase (Simple's): the root receives message m at time m.
  for (Vertex v = 0; v < n; ++v) {
    if (tree.is_root(v)) continue;
    const Label i = labels.label(v);
    const Label j = labels.subtree_end(v);
    const std::uint32_t k = tree.level(v);
    for (Label m = i; m <= j; ++m) {
      schedule.add(m - k, {m, v, {tree.parent(v)}});
    }
  }

  auto up_receive_busy = [&](Vertex c, std::size_t t) {
    const std::size_t m = t + tree.level(c);
    return m > labels.label(c) && m <= labels.subtree_end(c);
  };
  auto up_send_busy = [&](Vertex v, std::size_t t) {
    if (tree.is_root(v)) return false;
    const std::size_t lo = labels.label(v) - tree.level(v);
    const std::size_t hi = labels.subtree_end(v) - tree.level(v);
    return t >= lo && t <= hi;
  };

  // ---- Greedy concurrent down phase.  Copies become queueable along two
  // disjoint paths: subtree messages as they pass through upward, and
  // o-messages as they arrive from the parent.
  std::vector<std::deque<PendingRelay>> queue(n);
  auto enqueue_up = [&](Vertex v, Message m) {
    if (tree.is_leaf(v)) return;
    std::vector<Vertex> owed;
    for (Vertex c : tree.children(v)) {
      if (!labels.is_body(c, m)) owed.push_back(c);
    }
    if (!owed.empty()) queue[v].push_back({m, std::move(owed)});
  };
  auto enqueue_down = [&](Vertex v, Message m) {
    if (tree.is_leaf(v)) return;
    const auto kids = tree.children(v);
    queue[v].push_back({m, {kids.begin(), kids.end()}});
  };

  std::size_t outstanding = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (!tree.is_root(v)) outstanding += n - labels.subtree_size(v);
  }
  for (Vertex v = 0; v < n; ++v) enqueue_up(v, labels.label(v));

  std::size_t t = 0;
  const std::size_t safety_limit =
      4 * static_cast<std::size_t>(n) * n + 8 * instance.radius() + 64;
  while (outstanding > 0) {
    MG_ASSERT_MSG(t < safety_limit, "greedy bounded-fanout gossip diverged");

    // Subtree messages passing through upward become forwardable.
    if (t >= 1) {
      for (Vertex v = 0; v < n; ++v) {
        const std::size_t m_up = t + tree.level(v);
        if (m_up > labels.label(v) && m_up <= labels.subtree_end(v)) {
          enqueue_up(v, static_cast<Message>(m_up));
        }
      }
    }

    // Arrivals are buffered so a relayed copy only becomes forwardable at
    // its receiver in round t + 1.
    std::vector<std::pair<Vertex, Message>> arrivals;
    for (Vertex v = 0; v < n; ++v) {
      if (queue[v].empty() || up_send_busy(v, t)) continue;
      // Oldest entry with at least one child free to receive at t + 1;
      // serve up to fanout_cap of its children with one multicast.
      for (auto entry = queue[v].begin(); entry != queue[v].end(); ++entry) {
        std::vector<Vertex> receivers;
        for (Vertex c : entry->remaining) {
          if (up_receive_busy(c, t + 1)) continue;
          receivers.push_back(c);
          if (receivers.size() >= fanout_cap) break;
        }
        if (receivers.empty()) continue;
        std::erase_if(entry->remaining, [&](Vertex c) {
          return std::binary_search(receivers.begin(), receivers.end(), c);
        });
        const Message m = entry->message;
        if (entry->remaining.empty()) queue[v].erase(entry);
        for (Vertex c : receivers) {
          --outstanding;
          arrivals.emplace_back(c, m);
        }
        schedule.add(t, {m, v, receivers});
        break;
      }
    }
    for (const auto& [c, m] : arrivals) enqueue_down(c, m);
    ++t;
  }

  schedule.trim();
  return schedule;
}

}  // namespace mg::gossip
