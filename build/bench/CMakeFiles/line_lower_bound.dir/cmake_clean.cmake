file(REMOVE_RECURSE
  "CMakeFiles/line_lower_bound.dir/line_lower_bound.cpp.o"
  "CMakeFiles/line_lower_bound.dir/line_lower_bound.cpp.o.d"
  "line_lower_bound"
  "line_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
