# Empty compiler generated dependencies file for mg_mmc.
# This may be replaced when dependencies are built.
