file(REMOVE_RECURSE
  "CMakeFiles/named_graphs_test.dir/named_graphs_test.cpp.o"
  "CMakeFiles/named_graphs_test.dir/named_graphs_test.cpp.o.d"
  "named_graphs_test"
  "named_graphs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/named_graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
