// Fault sweep — the machine-readable robustness benchmark (BENCH_fault.json).
//
// Sweeps seeded probabilistic drop rates over the named graphs (cycle,
// Petersen, grid, hypercube) x all four gossip algorithms, self-healing
// every faulty run with gossip::solve_with_recovery, and writes one JSON
// row per (network, algorithm, drop_rate) triple recording the recovery
// overhead against the fault-free n + r baseline (Theorem 1).  The process
// exits nonzero when any row fails to reach full completion, produces an
// invalid repair, or spends more recovery rounds than the budget allows
// (extra_rounds / (n + r) <= budget) — so the sweep doubles as a
// regression gate for the fault/recovery subsystem.
//
// Also reports the drop-lookup microbenchmark backing the O(1) DropSet
// design: ns per (round, sender) membership query, hash set vs the linear
// vector scan sim::simulate used before ISSUE 3.
//
//   fault_sweep [--out FILE] [--budget X] [--seed N] [--quick]
//
// --out     output path (default BENCH_fault.json)
// --budget  max allowed recovery overhead extra_rounds / (n + r) (default 2)
// --seed    fault-plan seed (default 42); rows are reproducible per seed
// --quick   drop rates {0, 0.1} only (CI-friendly)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "gossip/recovery.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/compiled.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "sim/network_sim.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using namespace mg;

struct LookupBench {
  double hash_ns = 0.0;
  double scan_ns = 0.0;
};

/// ns per (round, sender) membership query: DropSet vs the std::find scan
/// over a vector that sim::simulate used before the hash set.
LookupBench bench_drop_lookup() {
  constexpr std::size_t kDrops = 1024;
  constexpr std::size_t kQueries = 200'000;
  Rng rng(7);
  std::vector<std::pair<std::size_t, graph::Vertex>> list;
  fault::DropSet set;
  for (std::size_t i = 0; i < kDrops; ++i) {
    const auto round = static_cast<std::size_t>(rng.below(512));
    const auto sender = static_cast<graph::Vertex>(rng.below(1024));
    list.emplace_back(round, sender);
    set.insert(round, sender);
  }
  std::vector<std::pair<std::size_t, graph::Vertex>> queries;
  queries.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries.emplace_back(static_cast<std::size_t>(rng.below(512)),
                         static_cast<graph::Vertex>(rng.below(1024)));
  }

  LookupBench result;
  std::size_t hits_hash = 0;
  std::size_t hits_scan = 0;
  {
    Stopwatch watch;
    for (const auto& [round, sender] : queries) {
      hits_hash += set.contains(round, sender) ? 1u : 0u;
    }
    result.hash_ns = watch.seconds() * 1e9 / kQueries;
  }
  {
    Stopwatch watch;
    for (const auto& q : queries) {
      hits_scan +=
          std::find(list.begin(), list.end(), q) != list.end() ? 1u : 0u;
    }
    result.scan_ns = watch.seconds() * 1e9 / kQueries;
  }
  if (hits_hash != hits_scan) {
    std::fprintf(stderr, "fault_sweep: lookup disagreement (%zu vs %zu)\n",
                 hits_hash, hits_scan);
  }
  return result;
}

struct CorePair {
  std::string name;
  std::string algorithm;
  double bit_ns_p50 = 0.0;
  double word_ns_p50 = 0.0;
  double speedup = 0.0;
};

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t k = xs.size();
  return k == 0 ? 0.0
                : (k % 2 == 1 ? xs[k / 2]
                              : 0.5 * (xs[k / 2 - 1] + xs[k / 2]));
}

/// A/B of the two simulator cores on the sweep's own workload: per (graph,
/// algorithm) the gossip schedule is solved once, then executed `reps`
/// times per core — the bit core exactly as `sim::simulate` ran before
/// this optimization, the word core as the repeated runner drives it
/// (precompiled schedule, final holds not materialized: compile once,
/// execute many).  Result agreement, final holds included, is checked on
/// the untimed warm-up reps.  The fleet-wide figure is the median
/// per-pair p50 speedup, gated at >= 2x by the caller.
std::vector<CorePair> bench_sim_cores(
    const std::vector<std::pair<std::string, graph::Graph>>& graphs,
    std::size_t reps) {
  constexpr gossip::Algorithm kAlgorithms[] = {
      gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
      gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};
  std::vector<CorePair> pairs;
  // Null-registry mode (see obs/registry.h): the A/B measures the cores,
  // not the metric plumbing both of them share; re-enabled on return.
  obs::Registry& registry = obs::Registry::global();
  const bool obs_was_enabled = registry.enabled();
  registry.set_enabled(false);
  for (const auto& [name, g] : graphs) {
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      const gossip::Solution solution = gossip::solve_gossip(g, algorithm);
      const graph::Graph tree = solution.instance.tree().as_graph();
      const std::vector<model::Message> initial = solution.instance.initial();
      const model::CompiledSchedule compiled =
          model::CompiledSchedule::compile(solution.schedule);
      const graph::Vertex n = g.vertex_count();
      std::vector<DynamicBitset> initial_holds(n, DynamicBitset(n));
      for (graph::Vertex v = 0; v < n; ++v) initial_holds[v].set(initial[v]);

      sim::SimOptions bit_options;
      bit_options.core = sim::SimCore::kBitwise;
      sim::SimOptions word_options;
      word_options.keep_final_holds = false;
      std::vector<double> bit_ns;
      std::vector<double> word_ns;
      bit_ns.reserve(reps);
      word_ns.reserve(reps);
      bool agree = true;
      for (std::size_t rep = 0; rep < reps + 4; ++rep) {
        Stopwatch bit_watch;
        const sim::SimResult bit =
            sim::simulate(tree, solution.schedule, initial, bit_options);
        const double bit_elapsed = bit_watch.seconds() * 1e9;
        if (rep < 4) {  // warm-up reps double as the equivalence check
          const sim::SimResult word =
              sim::simulate_compiled(tree, compiled, initial_holds);
          agree = agree && bit.completed == word.completed &&
                  bit.total_time == word.total_time &&
                  bit.knowledge == word.knowledge &&
                  bit.final_holds == word.final_holds;
          continue;
        }
        Stopwatch word_watch;
        const sim::SimResult word =
            sim::simulate_compiled(tree, compiled, initial_holds,
                                   word_options);
        const double word_elapsed = word_watch.seconds() * 1e9;
        bit_ns.push_back(bit_elapsed);
        word_ns.push_back(word_elapsed);
        agree = agree && bit.completed == word.completed &&
                bit.total_time == word.total_time;
      }
      if (!agree) {
        std::fprintf(stderr,
                     "fault_sweep: sim core disagreement on %s/%s\n",
                     name.c_str(), gossip::algorithm_name(algorithm).c_str());
      }
      CorePair pair;
      pair.name = name;
      pair.algorithm = gossip::algorithm_name(algorithm);
      pair.bit_ns_p50 = median(bit_ns);
      pair.word_ns_p50 = median(word_ns);
      pair.speedup =
          pair.word_ns_p50 > 0.0 ? pair.bit_ns_p50 / pair.word_ns_p50 : 0.0;
      pairs.push_back(std::move(pair));
    }
  }
  registry.set_enabled(obs_was_enabled);
  return pairs;
}

int run(const std::string& out_path, double budget, std::uint64_t seed,
        bool quick) {
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"cycle/n=16", graph::cycle(16)},
      {"petersen", graph::petersen()},
      {"grid/5x5", graph::grid(5, 5)},
      {"hypercube/d=4", graph::hypercube(4)},
  };
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.05, 0.10, 0.20};
  constexpr gossip::Algorithm kAlgorithms[] = {
      gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
      gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "fault_sweep: cannot open %s for writing\n",
                 out_path.c_str());
    return 2;
  }

  obs::Registry& registry = obs::Registry::global();
  registry.set_enabled(true);

  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("suite", "fault");
  w.field("seed", static_cast<std::uint64_t>(seed));
  w.field("budget", budget);
  const LookupBench lookup = bench_drop_lookup();
  w.key("drop_lookup").begin_object();
  w.field("entries", static_cast<std::uint64_t>(1024));
  w.field("hash_ns_per_query", lookup.hash_ns);
  w.field("scan_ns_per_query", lookup.scan_ns);
  w.end_object();

  // Word-parallel vs bitwise simulator core A/B (gated at >= 2x).
  constexpr double kSimCoreGate = 2.0;
  const std::vector<CorePair> core_pairs =
      bench_sim_cores(graphs, quick ? 32 : 96);
  std::vector<double> speedups;
  speedups.reserve(core_pairs.size());
  for (const auto& pair : core_pairs) speedups.push_back(pair.speedup);
  const double core_speedup_p50 = median(speedups);
  const bool core_ok = core_speedup_p50 >= kSimCoreGate;
  w.key("sim_core").begin_object();
  w.field("reps", static_cast<std::uint64_t>(quick ? 32 : 96));
  w.field("speedup_gate", kSimCoreGate);
  w.field("speedup_p50", core_speedup_p50);
  w.field("ok", core_ok);
  w.key("pairs").begin_array();
  for (const auto& pair : core_pairs) {
    w.begin_object();
    w.field("name", pair.name);
    w.field("algorithm", pair.algorithm);
    w.field("bit_ns_p50", pair.bit_ns_p50);
    w.field("word_ns_p50", pair.word_ns_p50);
    w.field("speedup", pair.speedup);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("sim core A/B: median p50 speedup %.2fx (gate %.1fx) %s\n",
              core_speedup_p50, kSimCoreGate, core_ok ? "ok" : "VIOLATION");

  w.key("rows").begin_array();

  bool all_ok = core_ok;
  std::size_t row_count = 0;
  for (const auto& [name, g] : graphs) {
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      for (const double rate : rates) {
        registry.reset();
        fault::FaultPlan plan;
        plan.drop_rate(rate).seed(seed);
        gossip::RecoveryOptions options;
        options.algorithm = algorithm;
        options.max_attempts = 8;

        Stopwatch watch;
        const gossip::RecoveryOutcome outcome =
            gossip::solve_with_recovery(g, plan, options);
        const auto wall_ns =
            static_cast<std::uint64_t>(watch.seconds() * 1e9);

        const std::size_t n = outcome.base.instance.vertex_count();
        const std::size_t r = outcome.base.instance.radius();
        const std::size_t baseline = n + r;  // Theorem 1, fault-free
        const std::size_t base_rounds = outcome.base.schedule.total_time();
        const std::size_t total_rounds = base_rounds + outcome.extra_rounds;
        const double denominator =
            static_cast<double>(baseline == 0 ? 1 : baseline);
        const double overhead =
            static_cast<double>(total_rounds) / denominator;
        const double recovery_overhead =
            static_cast<double>(outcome.extra_rounds) / denominator;

        // Gate: drops never partition the survivor graph, so every row
        // must heal to full completion with valid repairs, spending at
        // most budget * (n + r) recovery rounds.  `overhead` (total
        // rounds vs the baseline) stays informational: slow algorithms
        // like Telephone exceed n + r before any fault is injected.
        const bool row_ok = outcome.base.report.ok && outcome.complete &&
                            outcome.recovered && outcome.repairs_valid &&
                            recovery_overhead <= budget;
        all_ok = all_ok && row_ok;
        ++row_count;

        const obs::Snapshot snap = registry.snapshot();
        w.begin_object();
        w.field("name", name);
        w.field("algorithm", gossip::algorithm_name(algorithm));
        w.field("n", static_cast<std::uint64_t>(n));
        w.field("r", static_cast<std::uint64_t>(r));
        w.field("drop_rate", rate);
        w.field("baseline", static_cast<std::uint64_t>(baseline));
        w.field("base_rounds", static_cast<std::uint64_t>(base_rounds));
        w.field("injected_drops",
                static_cast<std::uint64_t>(outcome.faulty_run.injected_drops));
        w.field("missing_after_fault",
                [&] {
                  std::uint64_t pairs = 0;
                  for (const auto m : outcome.faulty_run.missing) pairs += m;
                  return pairs;
                }());
        w.field("attempts", static_cast<std::uint64_t>(outcome.attempts));
        w.field("extra_rounds",
                static_cast<std::uint64_t>(outcome.extra_rounds));
        w.field("total_rounds", static_cast<std::uint64_t>(total_rounds));
        w.field("overhead", overhead);
        w.field("recovery_overhead", recovery_overhead);
        w.field("recovery_invocations", snap.counter("recovery.invocations"));
        w.field("complete", outcome.complete);
        w.field("recovered", outcome.recovered);
        w.field("repairs_valid", outcome.repairs_valid);
        w.field("wall_ns", wall_ns);
        // Per-row quantiles from the registry histograms (reset per row):
        // simulation latency over the base run + every recovery replay.
        const obs::HistogramSnapshot sim_hist = snap.histogram("sim.run_ns");
        w.field("sim_runs", sim_hist.count);
        w.field("sim_ns_p50", sim_hist.p50);
        w.field("sim_ns_p99", sim_hist.p99);
        w.end_object();

        std::printf(
            "%-14s %-18s p=%.2f rounds=%3zu+%-3zu extra/(n+r)=%4.2f "
            "attempts=%zu %s\n",
            name.c_str(), gossip::algorithm_name(algorithm).c_str(), rate,
            base_rounds, outcome.extra_rounds, recovery_overhead,
            outcome.attempts,
            row_ok ? "ok" : "VIOLATION");
      }
    }
  }

  w.end_array();
  w.end_object();
  out << '\n';

  std::printf("wrote %s (%zu rows)  drop lookup: hash %.1f ns, scan %.1f "
              "ns per query\n",
              out_path.c_str(), row_count, lookup.hash_ns, lookup.scan_ns);
  if (!all_ok) {
    std::fprintf(stderr,
                 "fault_sweep: incomplete recovery, invalid repair, sim core "
                 "speedup under gate, or overhead over budget\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fault.json";
  double budget = 2.0;
  std::uint64_t seed = 42;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: fault_sweep [--out FILE] [--budget X] [--seed N] "
                   "[--quick]\n");
      return 2;
    }
  }
  return run(out_path, budget, seed, quick);
}
