# Empty dependencies file for line_optimal_test.
# This may be replaced when dependencies are built.
