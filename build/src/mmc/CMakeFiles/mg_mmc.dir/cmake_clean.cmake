file(REMOVE_RECURSE
  "CMakeFiles/mg_mmc.dir/greedy.cpp.o"
  "CMakeFiles/mg_mmc.dir/greedy.cpp.o.d"
  "CMakeFiles/mg_mmc.dir/problem.cpp.o"
  "CMakeFiles/mg_mmc.dir/problem.cpp.o.d"
  "libmg_mmc.a"
  "libmg_mmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_mmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
