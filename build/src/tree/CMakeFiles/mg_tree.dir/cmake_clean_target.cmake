file(REMOVE_RECURSE
  "libmg_tree.a"
)
