#include "gossip/hamiltonian_gossip.h"

#include "support/contracts.h"

namespace mg::gossip {

model::Schedule rotation_schedule(const graph::Graph& g,
                                  const std::vector<graph::Vertex>& circuit) {
  const graph::Vertex n = g.vertex_count();
  MG_EXPECTS(n >= 3);
  MG_EXPECTS_MSG(circuit.size() == n, "circuit must visit every vertex once");
  for (std::size_t p = 0; p < n; ++p) {
    MG_EXPECTS_MSG(g.has_edge(circuit[p], circuit[(p + 1) % n]),
                   "circuit uses a non-edge");
  }

  model::Schedule schedule;
  // Round t: position p forwards the message that originated at position
  // (p - t) mod n to position p + 1.  After n - 1 rounds everyone has all.
  for (std::size_t t = 0; t + 1 < n; ++t) {
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t source_pos = (p + n - t % n) % n;
      schedule.add(t, {circuit[source_pos], circuit[p],
                       {circuit[(p + 1) % n]}});
    }
  }
  return schedule;
}

std::optional<model::Schedule> hamiltonian_gossip(const graph::Graph& g,
                                                  std::uint64_t node_budget) {
  const auto result = graph::find_hamiltonian_circuit(g, node_budget);
  if (result.status != graph::SearchStatus::kFound) return std::nullopt;
  return rotation_schedule(g, result.circuit);
}

}  // namespace mg::gossip
