// Experiment F2 (Fig. 2, network N2 = the Petersen graph): the paper cites
// it as a network with no Hamiltonian circuit on which gossiping can
// nevertheless be performed in n - 1 = 9 communication steps, even under
// the telephone model.  This bench:
//   1. certifies (exact search) that the Petersen graph has no Hamiltonian
//      circuit;
//   2. runs the budgeted exact multicast search for a 9-round schedule and
//      reports the outcome (found / search budget exhausted);
//   3. reports the n + r = 12 schedule our algorithm constructs.
#include <cstdio>

#include "gossip/optimal_search.h"
#include "gossip/solve.h"
#include "graph/hamiltonian.h"
#include "graph/named.h"
#include "graph/properties.h"

int main() {
  using namespace mg;
  const auto g = graph::petersen();
  const auto metrics = graph::compute_metrics(g);
  std::printf(
      "F2 / Fig. 2 (network N2, Petersen graph): n = %u, m = %zu, radius = "
      "%u\n\n",
      g.vertex_count(), g.edge_count(), metrics.radius);

  const auto ham = graph::find_hamiltonian_circuit(g);
  std::printf("Hamiltonian circuit: %s (exhaustive search, %llu nodes)\n",
              ham.status == graph::SearchStatus::kExhausted
                  ? "none exists (as the paper states)"
                  : "FOUND?! (contradicts the literature)",
              static_cast<unsigned long long>(ham.nodes_explored));

  gossip::ExactSearchOptions options;
  options.node_budget = 40'000'000;
  const auto search = gossip::exact_gossip_search(g, 9, options);
  const char* verdict =
      search.status == graph::SearchStatus::kFound
          ? "FOUND a 9-round multicast schedule (paper's claim certified)"
      : search.status == graph::SearchStatus::kExhausted
          ? "no 9-round schedule (UNEXPECTED: contradicts the paper)"
          : "search budget exhausted before a certificate was found";
  std::printf("exact search for n-1 = 9 rounds (multicast): %s\n", verdict);
  std::printf("  nodes explored: %llu\n",
              static_cast<unsigned long long>(search.nodes_explored));
  if (search.status == graph::SearchStatus::kFound) {
    const auto report = model::validate_schedule(g, search.schedule);
    std::printf("  certificate validates: %s\n%s\n",
                report.ok ? "yes" : report.error.c_str(),
                search.schedule.to_string().c_str());
  }

  gossip::ExactSearchOptions phone_options = options;
  phone_options.variant = model::ModelVariant::kTelephone;
  const auto phone = gossip::exact_gossip_search(g, 9, phone_options);
  std::printf(
      "exact search for 9 rounds (telephone): %s (%llu nodes)\n"
      "  (the paper: \"gossiping can be performed in n-1 communication "
      "steps\n   even under the telephone communication model\" [16])\n",
      phone.status == graph::SearchStatus::kFound
          ? "FOUND (paper's stronger claim certified)"
      : phone.status == graph::SearchStatus::kExhausted ? "impossible (?!)"
                                                        : "budget exhausted",
      static_cast<unsigned long long>(phone.nodes_explored));

  const auto sol = gossip::solve_gossip(g);
  std::printf(
      "\nConcurrentUpDown on the min-depth spanning tree: %zu rounds "
      "(n + r = %u; trivial lower bound %u)\nschedule valid: %s\n",
      sol.schedule.total_time(), g.vertex_count() + metrics.radius,
      g.vertex_count() - 1, sol.report.ok ? "yes" : sol.report.error.c_str());
  return sol.report.ok ? 0 : 1;
}
