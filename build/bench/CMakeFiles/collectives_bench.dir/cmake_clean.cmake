file(REMOVE_RECURSE
  "CMakeFiles/collectives_bench.dir/collectives_bench.cpp.o"
  "CMakeFiles/collectives_bench.dir/collectives_bench.cpp.o.d"
  "collectives_bench"
  "collectives_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
