// Round-synchronized message bus for the `mg::dist` actor runtime.
//
// Every processor actor owns one mailbox.  During a round, actors (running
// on several worker threads) post envelopes addressed to other actors; the
// bus buffers them by arrival time — a message posted at round t arrives at
// t + 1 (+ any per-edge fault delay) — behind mutex-striped locks so
// concurrent senders never contend on one global lock.  At the round
// barrier `flip()` moves every due envelope into its receiver's read-only
// inbox in a *deterministic* order: envelopes are first sorted by a
// canonical key (kind, sender, message) to erase the thread-interleaving
// order they were posted in, then shuffled with an Rng seeded from
// (seed, round, receiver).  The shuffle makes delivery order adversarial —
// actors must not depend on it — while keeping every run bit-identical for
// a fixed seed (the dist stress battery asserts exactly that).
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"
#include "support/rng.h"

namespace mg::dist {

/// One message on the (in-process) wire.  Data envelopes carry a gossip
/// message; digest/grant envelopes are the decentralized recovery
/// protocol's control plane (see actor.h).
struct Envelope {
  enum class Kind : std::uint8_t {
    kData = 0,    ///< a gossip message (the only kind the timeline sees)
    kDigest = 1,  ///< recovery: sender's hold bitmap (words)
    kGrant = 2,   ///< recovery: receiver-side reservation of one sender
  };
  Kind kind = Kind::kData;
  graph::Vertex sender = 0;
  model::Message message = 0;  ///< payload for kData; requested id for kGrant
  /// True when the sender is the receiver's tree parent — the one bit of
  /// link-local context the §4 online rule needs (o-stream vs child
  /// deliveries).  Meaningless for control envelopes.
  bool from_parent = false;
  /// Trace id of the logical transmission this envelope belongs to,
  /// stamped by the runtime's capture phase (0 = untraced).  Every
  /// envelope of one multicast shares one id.  Not part of the canonical
  /// delivery order — ids are themselves deterministic under a fixed seed,
  /// but actors must not decide from them.
  std::uint64_t trace = 0;
  std::vector<std::uint64_t> digest;  ///< hold bitmap words for kDigest
};

/// Canonical order erasing the posting interleaving.
inline bool envelope_less(const Envelope& a, const Envelope& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.sender != b.sender) return a.sender < b.sender;
  return a.message < b.message;
}

class MailboxBus {
 public:
  /// `n` mailboxes; `seed` drives the per-(round, receiver) delivery
  /// shuffle.  `max_delay` is the largest extra in-flight time an envelope
  /// can carry (fault::FaultPlan::max_extra_delay()).
  MailboxBus(graph::Vertex n, std::uint64_t seed, std::size_t max_delay = 0)
      : n_(n),
        seed_(seed),
        slots_(static_cast<std::size_t>(max_delay) + 2),
        boxes_(static_cast<std::size_t>(n) * slots_),
        inboxes_(n),
        stripes_((static_cast<std::size_t>(n) + kStripeSize - 1) /
                 kStripeSize) {}

  MailboxBus(const MailboxBus&) = delete;
  MailboxBus& operator=(const MailboxBus&) = delete;

  /// Posts `e` to `to`, arriving `delay` rounds after the next barrier
  /// (0 = the normal send-at-t, receive-at-t+1 latency).  Thread-safe;
  /// concurrent posters to mailboxes in different stripes never contend.
  void post(graph::Vertex to, std::size_t delay, Envelope e) {
    std::lock_guard<std::mutex> lock(
        stripes_[static_cast<std::size_t>(to) / kStripeSize].mutex);
    box(to, (cursor_ + delay) % slots_).push_back(std::move(e));
  }

  /// Round barrier: makes every envelope due now readable via `inbox()`,
  /// in the canonical-sorted-then-seed-shuffled order.  Single-threaded.
  void flip(std::size_t round) {
    for (graph::Vertex v = 0; v < n_; ++v) {
      auto& due = box(v, cursor_);
      std::sort(due.begin(), due.end(), envelope_less);
      if (due.size() > 1) {
        Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (round + 1)) ^
                (0xd1b54a32d192ed03ULL * (static_cast<std::uint64_t>(v) + 1)));
        rng.shuffle(due);
      }
      inboxes_[v] = std::move(due);
      due.clear();
    }
    cursor_ = (cursor_ + 1) % slots_;
  }

  /// The envelopes delivered to `v` at the last `flip()`.  Stable until the
  /// next flip; actors read their own inbox only.
  [[nodiscard]] const std::vector<Envelope>& inbox(graph::Vertex v) const {
    return inboxes_[v];
  }

  /// Discards everything still in flight (used when a phase ends).
  void drain() {
    for (auto& b : boxes_) b.clear();
    for (auto& i : inboxes_) i.clear();
  }

 private:
  static constexpr std::size_t kStripeSize = 16;

  struct alignas(64) Stripe {
    std::mutex mutex;
  };

  std::vector<Envelope>& box(graph::Vertex v, std::size_t slot) {
    return boxes_[static_cast<std::size_t>(v) * slots_ + slot];
  }

  graph::Vertex n_;
  std::uint64_t seed_;
  std::size_t slots_;
  std::size_t cursor_ = 0;
  /// boxes_[v * slots_ + s]: envelopes for v arriving at barrier slot s.
  std::vector<std::vector<Envelope>> boxes_;
  std::vector<std::vector<Envelope>> inboxes_;
  std::vector<Stripe> stripes_;
};

}  // namespace mg::dist
