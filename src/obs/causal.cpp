#include "obs/causal.h"

#include <algorithm>

namespace mg::obs {

CausalTracer::CausalTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity == 0 ? 1 : capacity)) {}

CausalTracer& CausalTracer::global() {
  static CausalTracer instance;
  return instance;
}

void CausalTracer::record(const Event& event) {
  const std::uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  if (index >= capacity_) return;  // full: counted as dropped, never blocks
  Slot& slot = slots_[index];
  slot.event = event;
  slot.ready.store(true, std::memory_order_release);  // publish
}

std::uint64_t CausalTracer::recorded() const {
  return std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                                 capacity_);
}

std::uint64_t CausalTracer::dropped() const {
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  return claimed > capacity_ ? claimed - capacity_ : 0;
}

std::vector<CausalTracer::Event> CausalTracer::snapshot() const {
  const std::uint64_t published =
      std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                              capacity_);
  std::vector<Event> events;
  events.reserve(published);
  for (std::uint64_t i = 0; i < published; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      events.push_back(slots_[i].event);
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  });
  return events;
}

void CausalTracer::clear() {
  const std::uint64_t published =
      std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                              capacity_);
  for (std::uint64_t i = 0; i < published; ++i) {
    slots_[i].ready.store(false, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

}  // namespace mg::obs
