#include "gossip/optimal_search.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <tuple>

#include "support/contracts.h"

namespace mg::gossip {

namespace {

using graph::Vertex;
using model::Message;

class Searcher {
 public:
  Searcher(const graph::Graph& g, std::size_t max_time,
           const ExactSearchOptions& options)
      : g_(g),
        n_(g.vertex_count()),
        horizon_(max_time),
        options_(options),
        hold_(n_) {
    for (Vertex v = 0; v < n_; ++v) hold_[v] = std::uint64_t{1} << v;
    full_ = n_ == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n_) - 1;
  }

  ExactSearchResult run() {
    ExactSearchResult result;
    const bool found = search_round(0);
    result.nodes_explored = nodes_;
    if (found) {
      result.status = graph::SearchStatus::kFound;
      result.schedule = build_schedule();
    } else {
      result.status = nodes_ >= options_.node_budget
                          ? graph::SearchStatus::kBudget
                          : graph::SearchStatus::kExhausted;
    }
    return result;
  }

 private:
  struct Receive {
    Vertex receiver = 0;
    Vertex sender = 0;
    Message message = 0;
  };

  bool complete() const {
    for (Vertex v = 0; v < n_; ++v) {
      if (hold_[v] != full_) return false;
    }
    return true;
  }

  /// Per-round search context; each round owns its context so backtracking
  /// across round boundaries never clobbers a caller's state.
  struct RoundCtx {
    std::size_t t = 0;
    std::vector<Vertex> order;          // receivers, tightest-slack first
    std::vector<std::size_t> missing;   // per-vertex messages still needed
    std::vector<std::int64_t> sender_msg;  // per-sender chosen message
    std::vector<Receive> moves;
  };

  bool search_round(std::size_t t) {
    if (complete()) return true;
    if (t >= horizon_) return false;
    if (++nodes_ >= options_.node_budget) return false;

    RoundCtx ctx;
    ctx.t = t;
    const std::size_t remaining = horizon_ - t;  // receive slots left
    ctx.missing.resize(n_);
    for (Vertex v = 0; v < n_; ++v) {
      ctx.missing[v] = n_ - static_cast<std::size_t>(std::popcount(hold_[v]));
      if (ctx.missing[v] > remaining) return false;
    }
    ctx.order.resize(n_);
    std::iota(ctx.order.begin(), ctx.order.end(), Vertex{0});
    std::sort(ctx.order.begin(), ctx.order.end(), [&](Vertex a, Vertex b) {
      return ctx.missing[a] > ctx.missing[b];
    });
    ctx.sender_msg.assign(n_, kUnassigned);
    return assign_receiver(ctx, 0);
  }

  /// Assigns a receive (or a deliberate idle) to ctx.order[idx], recursing
  /// over the remaining receivers and then into the next round.
  bool assign_receiver(RoundCtx& ctx, std::size_t idx) {
    if (idx == n_) {
      // Round complete: apply arrivals (received at t+1, usable at t+1).
      for (const auto& mv : ctx.moves) {
        hold_[mv.receiver] |= std::uint64_t{1} << mv.message;
      }
      history_.push_back(ctx.moves);
      if (search_round(ctx.t + 1)) return true;
      history_.pop_back();
      for (const auto& mv : ctx.moves) {
        // Roll back: the bits were new by the WLOG-new-delivery pruning.
        hold_[mv.receiver] &= ~(std::uint64_t{1} << mv.message);
      }
      return false;
    }
    if (nodes_ >= options_.node_budget) return false;

    const Vertex v = ctx.order[idx];
    const std::size_t slack = horizon_ - ctx.t - ctx.missing[v];

    // Try every useful incoming (sender, message).
    for (Vertex u : g_.neighbors(v)) {
      const bool telephone =
          options_.variant == model::ModelVariant::kTelephone;
      if (ctx.sender_msg[u] != kUnassigned) {
        if (telephone) continue;
        // Multicast: u may add v as another receiver of the same message.
        const auto m = static_cast<Message>(ctx.sender_msg[u]);
        if (hold_[v] & (std::uint64_t{1} << m)) continue;
        ctx.moves.push_back({v, u, m});
        if (assign_receiver(ctx, idx + 1)) return true;
        ctx.moves.pop_back();
        if (nodes_ >= options_.node_budget) return false;
        continue;
      }
      std::uint64_t candidates = hold_[u] & ~hold_[v];
      while (candidates != 0) {
        const auto m = static_cast<Message>(std::countr_zero(candidates));
        candidates &= candidates - 1;
        ctx.sender_msg[u] = m;
        ctx.moves.push_back({v, u, m});
        if (assign_receiver(ctx, idx + 1)) return true;
        ctx.moves.pop_back();
        ctx.sender_msg[u] = kUnassigned;
        if (nodes_ >= options_.node_budget) return false;
      }
    }

    // Idle is allowed only when v still has spare receive slots.
    if (slack >= 1) {
      return assign_receiver(ctx, idx + 1);
    }
    return false;
  }

  model::Schedule build_schedule() const {
    model::Schedule schedule;
    for (std::size_t t = 0; t < history_.size(); ++t) {
      // Group the round's receives by sender into multicasts.
      std::vector<Receive> moves = history_[t];
      std::sort(moves.begin(), moves.end(),
                [](const Receive& a, const Receive& b) {
                  return std::tie(a.sender, a.receiver) <
                         std::tie(b.sender, b.receiver);
                });
      for (std::size_t idx = 0; idx < moves.size();) {
        std::vector<Vertex> receivers;
        const Vertex sender = moves[idx].sender;
        const Message message = moves[idx].message;
        while (idx < moves.size() && moves[idx].sender == sender) {
          MG_ASSERT(moves[idx].message == message);
          receivers.push_back(moves[idx].receiver);
          ++idx;
        }
        schedule.add(t, {message, sender, std::move(receivers)});
      }
    }
    schedule.trim();
    return schedule;
  }

  static constexpr std::int64_t kUnassigned = -1;

  const graph::Graph& g_;
  Vertex n_;
  std::size_t horizon_;
  ExactSearchOptions options_;
  std::uint64_t full_ = 0;
  std::uint64_t nodes_ = 0;
  std::vector<std::uint64_t> hold_;
  std::vector<std::vector<Receive>> history_;
};

}  // namespace

ExactSearchResult exact_gossip_search(const graph::Graph& g,
                                      std::size_t max_time,
                                      const ExactSearchOptions& options) {
  MG_EXPECTS(g.vertex_count() >= 2 && g.vertex_count() <= 64);
  return Searcher(g, max_time, options).run();
}

}  // namespace mg::gossip
