#include "dist/actor.h"

#include <algorithm>
#include <map>

#include "support/contracts.h"

namespace mg::dist {

using graph::Vertex;
using model::Message;

namespace {

/// Bit `m` of a digest's word vector (false past the end — a shorter
/// digest simply offers nothing there).
bool digest_test(const std::vector<std::uint64_t>& words, Message m) {
  const std::size_t w = static_cast<std::size_t>(m) >> 6;
  if (w >= words.size()) return false;
  return (words[w] >> (m & 63)) & 1;
}

}  // namespace

TimetableRule::TimetableRule(const model::Schedule& schedule,
                             graph::Vertex self) {
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      if (tx.sender == self) rows_.emplace_back(t, tx);
    }
  }
}

std::optional<model::Transmission> TimetableRule::decide(std::size_t t) {
  if (next_ >= rows_.size() || rows_[next_].first != t) return std::nullopt;
  return rows_[next_++].second;
}

ProcessorActor::ProcessorActor(Vertex self, Vertex n, Message initial,
                               std::vector<Vertex> neighbors,
                               std::unique_ptr<LocalRule> rule)
    : self_(self),
      n_(n),
      neighbors_(std::move(neighbors)),
      rule_(std::move(rule)),
      holds_(n),
      first_trace_(n, 0) {
  holds_.set(initial);
}

void ProcessorActor::absorb(std::size_t t,
                            const std::vector<Envelope>& inbox) {
  for (const Envelope& e : inbox) {
    if (e.kind != Envelope::Kind::kData) continue;
    if (!holds_.test(e.message)) {
      first_trace_[e.message] = e.trace;
      last_trace_ = e.trace;
    }
    holds_.set(e.message);
    rule_->observe(t, e.message, e.from_parent);
  }
}

Outbox ProcessorActor::step_main(std::size_t t,
                                 const std::vector<Envelope>& inbox) {
  absorb(t, inbox);
  Outbox out;
  if (auto tx = rule_->decide(t)) {
    if (holds_.test(tx->message)) {
      out.data_cause = first_trace_[tx->message];
      out.data = std::move(tx);
    } else {
      // Physical constraint: the rule scheduled a relay of a message this
      // actor never received (a fault's downstream cascade).
      out.skipped = true;
      out.data = std::move(tx);
    }
  }
  return out;
}

void ProcessorActor::learn(const std::vector<Envelope>& inbox) {
  for (const Envelope& e : inbox) {
    if (e.kind != Envelope::Kind::kData) continue;
    if (!holds_.test(e.message)) {
      first_trace_[e.message] = e.trace;
      last_trace_ = e.trace;
    }
    holds_.set(e.message);
  }
}

Outbox ProcessorActor::step_digest() {
  Outbox out;
  out.control_cause = last_trace_;
  Envelope digest;
  digest.kind = Envelope::Kind::kDigest;
  digest.sender = self_;
  digest.digest = holds_.words();
  for (const Vertex u : neighbors_) {
    out.control.push_back(digest);
    out.control_to.push_back(u);
  }
  return out;
}

Outbox ProcessorActor::step_grant(const std::vector<Envelope>& inbox) {
  Outbox out;
  quiescent_ = true;
  // Delayed data envelopes (per-edge fault delays) can land on any flip of
  // the recovery cycle; fold them in before deciding what is still wanted.
  learn(inbox);
  if (complete()) return out;

  // Which live neighbor offers the most messages I lack?  (A neighbor
  // whose digest is absent is presumed crashed.)
  Vertex best = graph::kNoVertex;
  std::size_t best_offered = 0;
  Message best_request = 0;
  std::uint64_t best_trace = 0;
  for (const Envelope& e : inbox) {
    if (e.kind != Envelope::Kind::kDigest) continue;
    std::size_t offered = 0;
    Message lowest = 0;
    bool any = false;
    for (Message m = 0; m < n_; ++m) {
      if (!holds_.test(m) && digest_test(e.digest, m)) {
        ++offered;
        if (!any) {
          lowest = m;
          any = true;
        }
      }
    }
    if (offered > best_offered ||
        (offered == best_offered && offered > 0 && e.sender < best)) {
      best = e.sender;
      best_offered = offered;
      best_request = lowest;
      best_trace = e.trace;
    }
  }
  if (best_offered == 0) return out;  // nothing wanted is on offer: quiesce

  quiescent_ = false;
  out.control_cause = best_trace;  // the digest that won the reservation
  Envelope grant;
  grant.kind = Envelope::Kind::kGrant;
  grant.sender = self_;
  grant.message = best_request;
  out.control.push_back(std::move(grant));
  out.control_to.push_back(best);
  return out;
}

Outbox ProcessorActor::step_data(const std::vector<Envelope>& inbox) {
  Outbox out;
  learn(inbox);
  // Votes: requested message -> granters, in deterministic order (the bus
  // sorts each inbox canonically before its seeded shuffle, so we re-sort
  // here to stay order-independent).
  std::map<Message, std::vector<Vertex>> votes;
  for (const Envelope& e : inbox) {
    if (e.kind != Envelope::Kind::kGrant) continue;
    MG_ASSERT_MSG(holds_.test(e.message),
                  "grant requested a message the digest never offered");
    votes[e.message].push_back(e.sender);
  }
  if (votes.empty()) return out;
  auto winner = votes.begin();
  for (auto it = std::next(votes.begin()); it != votes.end(); ++it) {
    if (it->second.size() > winner->second.size()) winner = it;
  }
  model::Transmission tx;
  tx.message = winner->first;
  tx.sender = self_;
  tx.receivers = std::move(winner->second);
  std::sort(tx.receivers.begin(), tx.receivers.end());
  out.data_cause = first_trace_[tx.message];
  out.data = std::move(tx);
  return out;
}

}  // namespace mg::dist
