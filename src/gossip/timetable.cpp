#include "gossip/timetable.h"

#include <algorithm>

#include "support/contracts.h"
#include "support/table.h"

namespace mg::gossip {

VertexTimetable vertex_timetable(const Instance& instance,
                                 const model::Schedule& schedule,
                                 graph::Vertex v) {
  const auto& tree = instance.tree();
  MG_EXPECTS(v < tree.vertex_count());
  const std::size_t horizon = schedule.total_time() + 1;

  VertexTimetable table;
  table.vertex = v;
  table.receive_from_parent.assign(horizon, std::nullopt);
  table.receive_from_child.assign(horizon, std::nullopt);
  table.send_to_parent.assign(horizon, std::nullopt);
  table.send_to_children.assign(horizon, std::nullopt);

  const bool has_parent = !tree.is_root(v);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      if (tx.sender == v) {
        for (graph::Vertex r : tx.receivers) {
          if (has_parent && r == tree.parent(v)) {
            MG_ASSERT(!table.send_to_parent[t] ||
                      *table.send_to_parent[t] == tx.message);
            table.send_to_parent[t] = tx.message;
          } else {
            MG_ASSERT(!table.send_to_children[t] ||
                      *table.send_to_children[t] == tx.message);
            table.send_to_children[t] = tx.message;
          }
        }
      } else if (std::binary_search(tx.receivers.begin(), tx.receivers.end(),
                                    v)) {
        if (has_parent && tx.sender == tree.parent(v)) {
          MG_ASSERT(!table.receive_from_parent[t + 1]);
          table.receive_from_parent[t + 1] = tx.message;
        } else {
          MG_ASSERT(!table.receive_from_child[t + 1]);
          table.receive_from_child[t + 1] = tx.message;
        }
      }
    }
  }
  return table;
}

std::string render_timetable(const VertexTimetable& table) {
  const std::size_t horizon = table.receive_from_parent.size();
  TextTable text;
  text.new_row();
  text.cell(std::string("Time"));
  for (std::size_t t = 0; t < horizon; ++t) text.cell(t);

  auto emit_row = [&](const std::string& name,
                      const std::vector<std::optional<model::Message>>& row) {
    if (std::all_of(row.begin(), row.end(),
                    [](const auto& entry) { return !entry.has_value(); })) {
      return;
    }
    text.new_row();
    text.cell(name);
    for (const auto& entry : row) {
      text.cell(entry ? std::to_string(*entry) : std::string("-"));
    }
  };
  emit_row("Receive from Parent", table.receive_from_parent);
  emit_row("Receive from Child", table.receive_from_child);
  emit_row("Send to Parent", table.send_to_parent);
  emit_row("Send to Children", table.send_to_children);
  return text.render();
}

}  // namespace mg::gossip
