#include "gossip/timeline.h"

#include <ostream>

#include "gossip/classification.h"
#include "support/contracts.h"

namespace mg::gossip {

namespace {

/// Sends suppressed by a fault still occupied their scheduled round.
std::uint64_t scheduled_sends(const RoundTally& tally) {
  return tally.sends + tally.drops + tally.crashed + tally.skipped;
}

}  // namespace

RoundTimeline::RoundTimeline(const Instance& instance)
    : instance_(&instance), n_(instance.vertex_count()) {}

RoundTally& RoundTimeline::tally_at(std::size_t t) {
  if (t >= rounds_.size()) {
    rounds_.resize(t + 1);
    grid_.resize((t + 1) * static_cast<std::size_t>(n_), 0);
  }
  return rounds_[t];
}

std::uint8_t& RoundTimeline::cell_at(std::size_t t, Vertex v) {
  tally_at(t);  // grow both
  return grid_[t * static_cast<std::size_t>(n_) + v];
}

std::uint8_t RoundTimeline::activity(std::size_t t, Vertex v) const {
  if (t >= rounds_.size() || v >= n_) return 0;
  return grid_[t * static_cast<std::size_t>(n_) + v];
}

void RoundTimeline::on_event(const obs::TraceEvent& event) {
  const auto t = static_cast<std::size_t>(event.time);
  const auto node = static_cast<Vertex>(event.node);
  MG_EXPECTS(node < n_);
  RoundTally& tally = tally_at(t);
  const tree::RootedTree& tree = instance_->tree();
  const tree::DfsLabeling& labels = instance_->labels();

  if (event.kind == "send") {
    ++tally.sends;
    cell_at(t, node) |= kActivitySend;
    const auto m = static_cast<tree::Label>(event.message);
    switch (classify(labels, node, m)) {
      case Role::kStart:
        ++tally.s_sends;
        break;
      case Role::kLookahead:
        ++tally.l_sends;
        break;
      case Role::kRemaining:
        ++tally.r_sends;
        break;
      case Role::kOther:
        ++tally.o_sends;
        break;
    }
    // lip/rip partition the sender's own b-messages w.r.t. its parent.
    if (!tree.is_root(node) && labels.is_body(node, m)) {
      if (is_lip(tree, labels, node, m)) {
        ++tally.lip_sends;
      } else if (is_rip(tree, labels, node, m)) {
        ++tally.rip_sends;
      }
    }
    return;
  }
  if (event.kind == "receive") {
    ++tally.receives;
    cell_at(t, node) |= kActivityReceive;
    const auto sender = static_cast<Vertex>(event.peer);
    // Direction on the tree: toward the root (receiver is the sender's
    // parent) or away from it (receiver is a child of the sender).
    if (!tree.is_root(sender) && tree.parent(sender) == node) {
      ++tally.up;
    } else if (!tree.is_root(node) && tree.parent(node) == sender) {
      ++tally.down;
    }
    return;
  }
  if (event.kind == "drop") {
    ++tally.drops;
  } else if (event.kind == "crash") {
    ++tally.crashed;
  } else if (event.kind == "skip") {
    ++tally.skipped;
  } else if (event.kind == "lost") {
    ++tally.lost;
  } else if (event.kind == "collide") {
    ++tally.collided;
  } else {
    return;  // unknown producer-defined kind: ignore
  }
  cell_at(t, node) |= kActivityFault;
}

std::size_t RoundTimeline::send_rounds() const {
  // The span through the last round that scheduled a transmission — the
  // timeline's round count even when a fault suppressed the send itself.
  for (std::size_t t = rounds_.size(); t > 0; --t) {
    if (scheduled_sends(rounds_[t - 1]) > 0) return t;
  }
  return 0;
}

RoundTimeline::PhaseOverlap RoundTimeline::phase_overlap() const {
  PhaseOverlap overlap;
  for (const RoundTally& tally : rounds_) {
    if (tally.up > 0) ++overlap.up_rounds;
    if (tally.down > 0) ++overlap.down_rounds;
    if (tally.up > 0 && tally.down > 0) ++overlap.overlap_rounds;
    if (tally.receives > 0) ++overlap.total_rounds;
  }
  return overlap;
}

void RoundTimeline::write_json(obs::JsonWriter& w) const {
  RoundTally totals;
  for (const RoundTally& tally : rounds_) {
    totals.sends += tally.sends;
    totals.receives += tally.receives;
    totals.drops += tally.drops;
    totals.crashed += tally.crashed;
    totals.skipped += tally.skipped;
    totals.lost += tally.lost;
    totals.collided += tally.collided;
  }
  // Collision-loss models only; omitted entirely on default-model runs so
  // their timeline JSON is unchanged byte for byte.
  const bool any_collided = totals.collided > 0;
  const PhaseOverlap overlap = phase_overlap();

  w.begin_object();
  w.field("schema_version", 1);
  w.field("n", static_cast<std::uint64_t>(n_));
  w.field("send_rounds", static_cast<std::uint64_t>(send_rounds()));
  w.field("time_units", static_cast<std::uint64_t>(rounds_.size()));
  w.key("totals").begin_object();
  w.field("sends", totals.sends);
  w.field("receives", totals.receives);
  w.field("drops", totals.drops);
  w.field("crashed", totals.crashed);
  w.field("skipped", totals.skipped);
  w.field("lost", totals.lost);
  if (any_collided) w.field("collided", totals.collided);
  w.end_object();
  w.key("overlap").begin_object();
  w.field("up_rounds", static_cast<std::uint64_t>(overlap.up_rounds));
  w.field("down_rounds", static_cast<std::uint64_t>(overlap.down_rounds));
  w.field("overlap_rounds",
          static_cast<std::uint64_t>(overlap.overlap_rounds));
  w.field("total_rounds", static_cast<std::uint64_t>(overlap.total_rounds));
  w.end_object();
  w.key("rounds").begin_array();
  for (std::size_t t = 0; t < rounds_.size(); ++t) {
    const RoundTally& tally = rounds_[t];
    w.begin_object();
    w.field("t", static_cast<std::uint64_t>(t));
    w.field("sends", tally.sends);
    w.field("receives", tally.receives);
    w.key("classes").begin_object();
    w.field("s", tally.s_sends);
    w.field("l", tally.l_sends);
    w.field("r", tally.r_sends);
    w.field("o", tally.o_sends);
    w.field("lip", tally.lip_sends);
    w.field("rip", tally.rip_sends);
    w.end_object();
    w.field("up", tally.up);
    w.field("down", tally.down);
    w.key("faults").begin_object();
    w.field("drops", tally.drops);
    w.field("crashed", tally.crashed);
    w.field("skipped", tally.skipped);
    w.field("lost", tally.lost);
    if (any_collided) w.field("collided", tally.collided);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void RoundTimeline::write_json(std::ostream& out) const {
  obs::JsonWriter w(out);
  write_json(w);
  out << '\n';
}

}  // namespace mg::gossip
