// Tests for the Cartesian product: the generator identities (grid, torus,
// hypercube) and metric additivity.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/product.h"
#include "graph/properties.h"

namespace mg::graph {
namespace {

TEST(Product, GridIsPathTimesPath) {
  // grid(r, c) ids are row*cols+col; product(path(r), path(c)) ids are
  // g*|H|+h with H = path(c) -- identical layout.
  EXPECT_EQ(cartesian_product(path(3), path(4)), grid(3, 4));
}

TEST(Product, TorusIsCycleTimesCycle) {
  EXPECT_EQ(cartesian_product(cycle(4), cycle(5)), torus(4, 5));
}

TEST(Product, HypercubeIsIteratedK2) {
  Graph q = complete(2);
  for (int d = 1; d < 4; ++d) q = cartesian_product(q, complete(2));
  const Graph expected = hypercube(4);
  // Same order/size/degree sequence and metrics (ids are permuted).
  EXPECT_EQ(q.vertex_count(), expected.vertex_count());
  EXPECT_EQ(q.edge_count(), expected.edge_count());
  const auto qm = compute_metrics(q);
  const auto em = compute_metrics(expected);
  EXPECT_EQ(qm.radius, em.radius);
  EXPECT_EQ(qm.diameter, em.diameter);
}

TEST(Product, MetricAdditivity) {
  // ecc_{GxH}((g,h)) = ecc_G(g) + ecc_H(h); radius/diameter add.
  const Graph g = path(5);
  const Graph h = cycle(6);
  const auto gm = compute_metrics(g);
  const auto hm = compute_metrics(h);
  const auto pm = compute_metrics(cartesian_product(g, h));
  EXPECT_EQ(pm.radius, gm.radius + hm.radius);
  EXPECT_EQ(pm.diameter, gm.diameter + hm.diameter);
  for (Vertex gv = 0; gv < 5; ++gv) {
    for (Vertex hv = 0; hv < 6; ++hv) {
      EXPECT_EQ(pm.eccentricity[product_vertex(gv, hv, 6)],
                gm.eccentricity[gv] + hm.eccentricity[hv]);
    }
  }
}

TEST(Product, EdgeCountFormula) {
  // |E(GxH)| = |V(G)|*|E(H)| + |V(H)|*|E(G)|.
  const Graph g = star(4);
  const Graph h = cycle(5);
  const auto product = cartesian_product(g, h);
  EXPECT_EQ(product.edge_count(),
            4u * h.edge_count() + 5u * g.edge_count());
}

TEST(Product, WithSingleton) {
  // G x K1 == G.
  EXPECT_EQ(cartesian_product(path(6), Graph(1)), path(6));
}

TEST(Product, ConnectivityPreserved) {
  EXPECT_TRUE(is_connected(cartesian_product(path(3), star(4))));
}

}  // namespace
}  // namespace mg::graph
