// Cross-model benchmark matrix — the headline artifact of the pluggable
// communication-model layer.  Runs the curated named-graph suite through
// all four gossip algorithms, adapts every schedule to every communication
// model (multicast, telephone, radio, beep, direct), and writes one JSON
// row per (network, algorithm, model) triple plus one row per model-native
// scheduler (direct virtual ring, radio collision-free greedy), each with
// and without a fixed fault plan:
//
//   {name, algorithm, model, scheduler, faults, n, m, r, structural_rounds,
//    model_rounds, stretch, round_cost, bound, completed, collided, valid,
//    wall_ns}
//
// Two gate families make the matrix a regression gate (exit nonzero on
// violation):
//
//  * default-model rows must be indistinguishable from the pre-refactor
//    pipeline: the adapted schedule is the original schedule, its round
//    count obeys the same per-algorithm bound BENCH_gossip.json enforces,
//    and simulating with the explicit multicast model equals simulating
//    with no model at all, field for field — faulted runs included;
//  * cross-model ordering invariants that hold by construction of the
//    legalizing adapters: direct == multicast <= telephone and
//    multicast <= radio (structural rounds), beep == radio structurally
//    with model time scaled by ceil(log2 n) + 1.  Orderings involving the
//    model-*native* schedulers are instance-dependent and are reported, not
//    gated (see docs/MODELS.md) — except the information-theoretic floor
//    n - 1, which every completing schedule must meet.
//
//   model_matrix [--out FILE] [--quick]
//
// --out    output path (default BENCH_models.json)
// --quick  drop the n = 1024 tier and cap native-scheduler rows (CI smoke)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "gossip/bounds.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/comm_model.h"
#include "model/legalize.h"
#include "model/validator.h"
#include "obs/json.h"
#include "sim/network_sim.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace {

using namespace mg;

struct BenchCase {
  std::string name;
  graph::Graph graph;
};

std::vector<BenchCase> build_suite(bool quick) {
  std::vector<BenchCase> suite;
  suite.push_back({"petersen", graph::petersen()});
  for (const graph::Vertex n : {64u, 256u}) {
    suite.push_back({"cycle/n=" + std::to_string(n), graph::cycle(n)});
  }
  if (!quick) {
    suite.push_back({"cycle/n=1024", graph::cycle(1024)});
  }
  for (const graph::Vertex side : {8u, 16u}) {
    const graph::Vertex n = side * side;
    suite.push_back({"grid/n=" + std::to_string(n), graph::grid(side, side)});
  }
  for (const unsigned dim : {6u, 8u}) {
    const graph::Vertex n = graph::Vertex{1} << dim;
    suite.push_back(
        {"hypercube/n=" + std::to_string(n), graph::hypercube(dim)});
  }
  for (const graph::Vertex n : {64u, 256u}) {
    Rng rng(0xbe7cULL + n);  // same seeds as BENCH_gossip: comparable rows
    suite.push_back(
        {"random_gnp/n=" + std::to_string(n),
         graph::random_connected_gnp(n, 3.0 / static_cast<double>(n), rng)});
  }
  return suite;
}

/// Same per-row ceiling BENCH_gossip enforces — the default-model rows of
/// this matrix must stay inside the pre-refactor bounds.
std::uint64_t bound_for(gossip::Algorithm algorithm, std::size_t n,
                        std::size_t r) {
  switch (algorithm) {
    case gossip::Algorithm::kSimple:
      return 2 * n + r - 3;
    case gossip::Algorithm::kUpDown:
    case gossip::Algorithm::kTelephone:
      return n * (n - 1);
    case gossip::Algorithm::kConcurrentUpDown:
      return gossip::concurrent_updown_time(n, r);
  }
  return 0;
}

/// Full-field equality of two runs — the refactor's safety gate.
bool sim_equal(const sim::SimResult& a, const sim::SimResult& b) {
  return a.completed == b.completed && a.total_time == b.total_time &&
         a.completion_time == b.completion_time &&
         a.knowledge == b.knowledge && a.missing == b.missing &&
         a.skipped_sends == b.skipped_sends &&
         a.injected_drops == b.injected_drops &&
         a.crashed_sends == b.crashed_sends &&
         a.lost_receives == b.lost_receives &&
         a.collided_receives == b.collided_receives &&
         a.final_holds == b.final_holds;
}

struct Row {
  std::string name;
  std::string algorithm;
  std::string model;
  std::string scheduler;  // "legalized" or "native"
  bool faulted = false;
  std::size_t n = 0, m = 0, r = 0;
  std::size_t structural_rounds = 0;
  std::size_t model_rounds = 0;
  std::size_t stretch = 0;
  std::size_t round_cost = 1;
  std::uint64_t bound = 0;  // 0 = not gated
  bool completed = false;
  std::size_t collided = 0;
  bool valid = false;
  std::uint64_t wall_ns = 0;
  bool ok = true;  // all gates this row is subject to
};

void write_row(obs::JsonWriter& w, const Row& row) {
  w.begin_object();
  w.field("name", row.name);
  w.field("algorithm", row.algorithm);
  w.field("model", row.model);
  w.field("scheduler", row.scheduler);
  w.field("faults", row.faulted);
  w.field("n", static_cast<std::uint64_t>(row.n));
  w.field("m", static_cast<std::uint64_t>(row.m));
  w.field("r", static_cast<std::uint64_t>(row.r));
  w.field("structural_rounds",
          static_cast<std::uint64_t>(row.structural_rounds));
  w.field("model_rounds", static_cast<std::uint64_t>(row.model_rounds));
  w.field("stretch", static_cast<std::uint64_t>(row.stretch));
  w.field("round_cost", static_cast<std::uint64_t>(row.round_cost));
  w.field("bound", row.bound);
  w.field("completed", row.completed);
  w.field("collided", static_cast<std::uint64_t>(row.collided));
  w.field("valid", row.valid);
  w.field("wall_ns", row.wall_ns);
  w.field("ok", row.ok);
  w.end_object();
}

fault::FaultPlan make_fault_plan(graph::Vertex n) {
  fault::FaultPlan plan;
  plan.drop_rate(0.1).seed(0xfadedULL);
  plan.crash(n / 2, 5);
  return plan;
}

int run_matrix(const std::string& out_path, bool quick) {
  const auto suite = build_suite(quick);
  constexpr gossip::Algorithm kAlgorithms[] = {
      gossip::Algorithm::kSimple, gossip::Algorithm::kUpDown,
      gossip::Algorithm::kConcurrentUpDown, gossip::Algorithm::kTelephone};
  // Native-scheduler rows are capped: the radio greedy is quadratic-ish in
  // rounds x edges and the matrix would be dominated by it at n = 1024.
  const graph::Vertex native_cap = quick ? 100 : 300;

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "model_matrix: cannot open %s for writing\n",
                 out_path.c_str());
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("suite", "models");
  w.field("native_cap", static_cast<std::uint64_t>(native_cap));
  w.key("rows").begin_array();

  bool all_ok = true;
  std::size_t rows = 0;
  for (const auto& c : suite) {
    for (const gossip::Algorithm algorithm : kAlgorithms) {
      const gossip::Solution sol = gossip::solve_gossip(c.graph, algorithm);
      if (!sol.report.ok) {
        std::fprintf(stderr, "model_matrix: %s %s failed to solve: %s\n",
                     c.name.c_str(),
                     gossip::algorithm_name(algorithm).c_str(),
                     sol.report.error.c_str());
        return 1;
      }
      const graph::Graph tree = sol.instance.tree().as_graph();
      const std::size_t n = sol.instance.vertex_count();
      const std::size_t r = sol.instance.radius();
      const std::size_t base_rounds = sol.schedule.total_time();
      const fault::FaultPlan plan = make_fault_plan(c.graph.vertex_count());

      std::size_t radio_rounds = 0;
      for (const model::CommModel* m : model::all_models()) {
        for (const bool faulted : {false, true}) {
          Row row;
          row.name = c.name;
          row.algorithm = gossip::algorithm_name(algorithm);
          row.model = m->name();
          row.scheduler = "legalized";
          row.faulted = faulted;
          row.n = n;
          row.m = c.graph.edge_count();
          row.r = r;

          Stopwatch watch;
          const auto adapted = model::adapt_schedule(tree, sol.schedule, *m);
          row.structural_rounds = adapted.structural_rounds;
          row.model_rounds = adapted.model_rounds;
          row.stretch = adapted.stretch;
          row.round_cost = m->round_cost(static_cast<graph::Vertex>(n));

          model::ValidatorOptions v_options;
          v_options.model = m;
          v_options.require_completion = !faulted;
          const auto report = model::validate_schedule(
              tree, adapted.schedule, sol.instance.initial(), v_options);
          row.valid = report.ok;

          sim::SimOptions s_options;
          s_options.comm = m;
          if (faulted) s_options.faults = &plan;
          const auto run = sim::simulate(tree, adapted.schedule,
                                         sol.instance.initial(), s_options);
          row.completed = run.completed;
          row.collided = run.collided_receives;
          row.wall_ns = static_cast<std::uint64_t>(watch.seconds() * 1e9);

          row.ok = row.valid && (faulted || row.completed);
          if (m->kind() == model::ModelKind::kMulticast) {
            // Gate (a): the default model is the pre-refactor pipeline.
            row.bound = bound_for(algorithm, n, r);
            row.ok = row.ok && model::equivalent(adapted.schedule,
                                                 sol.schedule) &&
                     row.structural_rounds <= row.bound;
            sim::SimOptions implicit = s_options;
            implicit.comm = nullptr;
            row.ok = row.ok &&
                     sim_equal(run, sim::simulate(tree, adapted.schedule,
                                                  sol.instance.initial(),
                                                  implicit));
          }
          if (!faulted) {
            // Gate (b): ordering invariants that hold by construction.
            switch (m->kind()) {
              case model::ModelKind::kDirect:
                row.ok = row.ok && row.structural_rounds == base_rounds;
                break;
              case model::ModelKind::kTelephone:
                row.ok = row.ok && row.structural_rounds >= base_rounds;
                break;
              case model::ModelKind::kRadio:
                radio_rounds = row.structural_rounds;
                row.ok = row.ok && row.structural_rounds >= base_rounds &&
                         row.collided == report.collided;
                break;
              case model::ModelKind::kBeep:
                // Same structural schedule as radio, paying the bit-serial
                // factor in model time: beep >= radio in model rounds.
                row.ok = row.ok && row.structural_rounds == radio_rounds &&
                         row.model_rounds ==
                             row.structural_rounds * row.round_cost &&
                         row.model_rounds >= radio_rounds;
                break;
              case model::ModelKind::kMulticast:
                break;
            }
            // Information-theoretic floor under every model.
            row.ok = row.ok && row.structural_rounds + 1 >= n;
          }

          all_ok = all_ok && row.ok;
          write_row(w, row);
          ++rows;
          if (!row.ok) {
            std::fprintf(stderr,
                         "model_matrix: GATE VIOLATION %s %s model=%s%s\n",
                         row.name.c_str(), row.algorithm.c_str(),
                         row.model.c_str(), faulted ? " (faulted)" : "");
          }
        }
      }
    }

    // Model-native schedulers, one row each per network (identity initial).
    const graph::Vertex nv = c.graph.vertex_count();
    if (nv <= native_cap) {
      {
        Row row;
        row.name = c.name;
        row.algorithm = "direct_ring";
        row.model = "direct";
        row.scheduler = "native";
        row.n = nv;
        row.m = c.graph.edge_count();
        Stopwatch watch;
        const model::Schedule ring = model::direct_ring_schedule(nv);
        row.structural_rounds = ring.total_time();
        row.model_rounds = row.structural_rounds;
        model::ValidatorOptions options;
        options.model = &model::direct_model();
        row.valid = model::validate_schedule(c.graph, ring, {}, options).ok;
        sim::SimOptions s_options;
        s_options.comm = &model::direct_model();
        row.completed = sim::simulate(c.graph, ring, {}, s_options).completed;
        row.wall_ns = static_cast<std::uint64_t>(watch.seconds() * 1e9);
        row.bound = nv - 1;  // the optimum, hit exactly
        row.ok = row.valid && row.completed &&
                 row.structural_rounds == static_cast<std::size_t>(nv) - 1;
        all_ok = all_ok && row.ok;
        write_row(w, row);
        ++rows;
      }
      {
        Row row;
        row.name = c.name;
        row.algorithm = "radio_greedy";
        row.model = "radio";
        row.scheduler = "native";
        row.n = nv;
        row.m = c.graph.edge_count();
        Stopwatch watch;
        const model::Schedule greedy = model::radio_greedy_schedule(c.graph);
        row.structural_rounds = greedy.total_time();
        row.model_rounds = row.structural_rounds;
        model::ValidatorOptions options;
        options.model = &model::radio_model();
        const auto report =
            model::validate_schedule(c.graph, greedy, {}, options);
        row.valid = report.ok;
        row.collided = report.collided;
        sim::SimOptions s_options;
        s_options.comm = &model::radio_model();
        row.completed =
            sim::simulate(c.graph, greedy, {}, s_options).completed;
        row.wall_ns = static_cast<std::uint64_t>(watch.seconds() * 1e9);
        // 2-hop independence makes the greedy collision-free; rounds are
        // instance-dependent (reported), only the n - 1 floor is gated.
        row.ok = row.valid && row.completed && row.collided == 0 &&
                 row.structural_rounds + 1 >= nv;
        all_ok = all_ok && row.ok;
        write_row(w, row);
        ++rows;
      }
    }
    std::printf("%-22s done\n", c.name.c_str());
  }

  w.end_array();
  w.end_object();
  out << '\n';

  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows);
  if (!all_ok) {
    std::fprintf(stderr, "model_matrix: gate violation\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_models.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: model_matrix [--out FILE] [--quick]\n");
      return 2;
    }
  }
  return run_matrix(out_path, quick);
}
