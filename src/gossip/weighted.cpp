#include "gossip/weighted.h"

#include <numeric>

#include "gossip/concurrent_updown.h"
#include "support/contracts.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {

WeightedResult weighted_gossip(const graph::Graph& g,
                               const std::vector<std::uint32_t>& weights,
                               ThreadPool* pool) {
  const graph::Vertex n = g.vertex_count();
  MG_EXPECTS(weights.size() == n);
  for (std::uint32_t w : weights) MG_EXPECTS_MSG(w >= 1, "weights are >= 1");

  const tree::RootedTree real_tree = tree::min_depth_spanning_tree(g, pool);

  // Chain expansion: real v -> virtual top(v)..bottom(v).
  const std::size_t total =
      std::accumulate(weights.begin(), weights.end(), std::size_t{0});
  MG_EXPECTS_MSG(total <= graph::kNoVertex, "virtual network too large");
  std::vector<graph::Vertex> top(n);
  std::vector<graph::Vertex> bottom(n);
  std::vector<graph::Vertex> real_of(total);
  graph::Vertex next = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    top[v] = next;
    for (std::uint32_t q = 0; q < weights[v]; ++q) {
      real_of[next] = v;
      ++next;
    }
    bottom[v] = next - 1;
  }

  std::vector<graph::Vertex> parent(total, graph::kNoVertex);
  for (graph::Vertex v = 0; v < n; ++v) {
    // Chain-internal edges.
    for (graph::Vertex u = top[v] + 1; u <= bottom[v]; ++u) {
      parent[u] = u - 1;
    }
    // The top of v's chain hangs off the bottom of its real parent's chain.
    if (!real_tree.is_root(v)) {
      parent[top[v]] = bottom[real_tree.parent(v)];
    }
  }

  WeightedResult result{
      Instance(tree::RootedTree::from_parents(top[real_tree.root()],
                                              std::move(parent))),
      std::move(real_of),
      {},
      total,
      0,
      0,
      0};
  result.virtual_radius = result.virtual_instance.radius();
  result.schedule = concurrent_updown(result.virtual_instance);

  // Projection load: external = a transmission crossing real processors.
  for (const auto& round : result.schedule.rounds()) {
    std::vector<std::size_t> sends(n, 0);
    std::vector<std::size_t> receives(n, 0);
    for (const auto& tx : round) {
      const graph::Vertex sender_real = result.real_of[tx.sender];
      bool external_send = false;
      for (graph::Vertex r : tx.receivers) {
        const graph::Vertex receiver_real = result.real_of[r];
        if (receiver_real == sender_real) continue;
        external_send = true;
        receives[receiver_real] += 1;
        result.max_external_receives =
            std::max(result.max_external_receives, receives[receiver_real]);
      }
      if (external_send) {
        sends[sender_real] += 1;
        result.max_external_sends =
            std::max(result.max_external_sends, sends[sender_real]);
      }
    }
  }
  return result;
}

}  // namespace mg::gossip
