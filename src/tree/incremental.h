// Incremental maintenance of the §3.1 minimum-depth spanning tree under
// edge churn.  A full `min_depth_spanning_tree` costs a center search (n
// BFS sweeps exhaustively, tens of sweeps hybrid) plus one rooting BFS;
// this maintainer answers most single-edge mutations in O(deg) or one BFS
// by keeping a *certificate* alongside the tree:
//
//   * `dist[]`  — exact BFS distances from the current center c, so
//     ecc(c) == radius is always known exactly;
//   * `ecc_lb[]` — per-vertex certified eccentricity lower bounds
//     (seeded from reference sweeps, refreshed by every exact evaluation).
//
// The update logic leans on two monotonicity facts: deleting an edge can
// only *increase* eccentricities, inserting one can only *decrease* them
// (by at most d_old(u, v) - 1, the detour the new edge shortcuts).
//
//   * deletion {u, v}: if both endpoints keep a shortest-path witness
//     (same BFS level, or the deeper endpoint has another neighbor on the
//     previous level), every distance from c is unchanged, every other
//     eccentricity only grew, and c remains the smallest-id minimum-
//     eccentricity vertex — the tree survives verbatim up to one parent
//     pointer (kNoop / kParentPatch).  When the deeper endpoint loses its
//     last witness, the level growth cascades level by level through
//     exactly the vertices whose previous-level witnesses all grew
//     (Ramalingam/Reps-style affected set); dist[] is repaired on that
//     region from its unaffected boundary, and — since ecc(c) may now have
//     grown past a rival's — the same candidate scan as insertions decides
//     whether the center moves (kSubtreeRepair / kRecenter).
//   * insertion {u, v}: when |dist[u] - dist[v]| <= 1 distances from c are
//     untouched; deeper shortcuts repair dist[] by a bounded improvement
//     BFS (kSubtreeRepair).  Either way the insertion may have dropped
//     *some other* vertex's eccentricity below the radius (or into a
//     smaller-id tie), so the maintainer lowers `ecc_lb` by the certified
//     savings bound and exactly re-evaluates every vertex whose bound no
//     longer excludes it.  A small candidate set is the common case; past
//     `candidate_budget` the certificate has decayed and the maintainer
//     falls back to a full rebuild (which re-tightens every bound).
//
// Identity contract (pinned by tests/churn_differential_test.cpp): while
// the center search is in exhaustive mode (n <= CenterOptions::
// exhaustive_threshold, the smallest-id tie-break), the maintained tree is
// byte-identical to a from-scratch `min_depth_spanning_tree` of the
// mutated graph after *every* event.  In hybrid mode the from-scratch
// center tie-break is evaluation-order dependent, so the maintained tree
// is guaranteed to be *a* minimum-depth tree (height == exact radius,
// MG_ENSURES-checked every event) but may root at a different center than
// a fresh hybrid run.  Every decision is mirrored into `churn.tree.*` obs
// counters.
#pragma once

#include <cstdint>

#include "graph/center.h"
#include "graph/graph.h"
#include "tree/spanning_tree.h"

namespace mg {
class ThreadPool;
}

namespace mg::tree {

/// How one churn event was absorbed, cheapest first.
enum class MaintenancePath : std::uint8_t {
  kNoop,           ///< certificate held; tree unchanged
  kParentPatch,    ///< levels unchanged; parent pointers re-minimized
  kSubtreeRepair,  ///< distances repaired on the affected region only
  kRecenter,       ///< candidate scan moved the center: one rooting BFS
  kFullRebuild,    ///< certificate failed: full min_depth_spanning_tree
};

[[nodiscard]] const char* maintenance_path_name(MaintenancePath path);

struct MaintenanceReport {
  MaintenancePath path = MaintenancePath::kNoop;
  std::uint64_t bfs_runs = 0;    ///< BFS sweeps this event (all purposes)
  std::uint64_t candidates = 0;  ///< exact eccentricity re-evaluations
  std::uint64_t touched = 0;     ///< vertices whose dist/parent changed
};

/// Cumulative per-path tallies since construction.
struct IncrementalTreeStats {
  std::uint64_t events = 0;
  std::uint64_t noop = 0;
  std::uint64_t parent_patch = 0;
  std::uint64_t subtree_repair = 0;
  std::uint64_t recenter = 0;
  std::uint64_t full_rebuild = 0;
  std::uint64_t bfs_runs = 0;
  std::uint64_t candidate_evals = 0;
};

struct IncrementalTreeOptions {
  /// Center-search configuration for full (re)builds; also decides the
  /// identity regime (see header comment).
  graph::CenterOptions center;
  /// Exact re-evaluations tolerated per event before the decayed
  /// certificate triggers a full rebuild instead.
  std::uint32_t candidate_budget = 24;
};

/// Maintains `min_depth_spanning_tree(g)` across single-edge mutations.
/// The caller owns the graph and reports each mutation *after* applying
/// it; the maintainer never stores a reference to the graph.
class IncrementalTree {
 public:
  explicit IncrementalTree(const graph::Graph& g,
                           IncrementalTreeOptions options = {},
                           ThreadPool* pool = nullptr);

  [[nodiscard]] const RootedTree& tree() const { return tree_; }
  [[nodiscard]] graph::Vertex center() const { return center_; }
  [[nodiscard]] std::uint32_t radius() const { return radius_; }
  [[nodiscard]] const IncrementalTreeStats& stats() const { return stats_; }

  /// Absorbs the insertion of edge {u, v}; `g` is the mutated graph.
  MaintenanceReport on_edge_added(const graph::Graph& g, graph::Vertex u,
                                  graph::Vertex v);

  /// Absorbs the removal of edge {u, v}; `g` is the mutated graph, which
  /// must still be connected.
  MaintenanceReport on_edge_removed(const graph::Graph& g, graph::Vertex u,
                                    graph::Vertex v);

  /// Node additions/removals renumber the vertex universe: always a full
  /// rebuild.
  MaintenanceReport on_node_event(const graph::Graph& g);

 private:
  MaintenanceReport full_rebuild(const graph::Graph& g,
                                 MaintenanceReport report);
  /// Re-floors bounds against dist_, exactly re-evaluates every vertex
  /// the certificate no longer excludes, and returns the smallest-id
  /// minimum-eccentricity vertex (best_ecc gets its eccentricity) — or
  /// kNoVertex when the candidate set overflows the budget and the caller
  /// must full-rebuild.
  graph::Vertex rescan_center(const graph::Graph& g,
                              std::uint32_t new_radius_c,
                              MaintenanceReport& report,
                              std::uint32_t& best_ecc);
  /// Re-minimizes parent pointers over affected_ and its neighborhood —
  /// vertices outside it kept their level and all their neighbors' levels,
  /// so their parent choice is untouched.
  void reminimize_parents(const graph::Graph& g);
  /// One BFS from `r` on the *mutated* graph, raising every ecc_lb_ by the
  /// triangle inequality (and pinning r's own bound exactly).  Run from
  /// the mutation's endpoints after the decay step: fresh post-mutation
  /// references re-certify the region the decay pessimized.
  void reference_sweep(const graph::Graph& g, graph::Vertex r,
                       MaintenanceReport& report);
  void adopt_tree();
  void seed_bounds(const graph::Graph& g, MaintenanceReport& report);
  void rebuild_rooted_tree();
  void finish(const MaintenanceReport& report);

  IncrementalTreeOptions options_;
  ThreadPool* pool_ = nullptr;

  graph::Vertex center_ = 0;
  std::uint32_t radius_ = 0;
  std::vector<std::uint32_t> dist_;    // exact BFS distances from center_
  std::vector<graph::Vertex> parent_;  // smallest-id previous-level parent
  std::vector<std::uint32_t> ecc_lb_;  // certified eccentricity lower bounds
  RootedTree tree_;
  IncrementalTreeStats stats_;

  // Scratch reused across events (avoids per-event allocation).
  std::vector<graph::Vertex> queue_;
  std::vector<graph::Vertex> affected_;
};

}  // namespace mg::tree
