#include "graph/graph.h"

#include <algorithm>

#include "support/contracts.h"

namespace mg::graph {

GraphBuilder::GraphBuilder(Vertex n) : n_(n) {}

GraphBuilder& GraphBuilder::add_edge(Vertex u, Vertex v) {
  MG_EXPECTS_MSG(u != v, "self-loops are not allowed");
  MG_EXPECTS_MSG(u < n_ && v < n_, "edge endpoint out of range");
  edges_.emplace_back(u, v);
  return *this;
}

Graph GraphBuilder::build() {
  Graph g = Graph::from_edges(n_, edges_);
  edges_.clear();
  return g;
}

Graph::Graph(Vertex n) : offsets_(static_cast<std::size_t>(n) + 1, 0) {}

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges) {
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    MG_EXPECTS_MSG(u != v, "self-loops are not allowed");
    MG_EXPECTS_MSG(u < n && v < n, "edge endpoint out of range");
    normalized.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());

  Graph g(n);
  std::vector<Vertex> degree(n, 0);
  for (const auto& [u, v] : normalized) {
    ++degree[u];
    ++degree[v];
  }
  for (Vertex v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.adjacency_.resize(normalized.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : normalized) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (Vertex v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

Graph Graph::from_csr(std::vector<std::size_t> offsets,
                      std::vector<Vertex> adjacency) {
  MG_EXPECTS_MSG(!offsets.empty(), "offsets must have n+1 entries");
  MG_EXPECTS_MSG(offsets.front() == 0 && offsets.back() == adjacency.size(),
                 "offsets must span the adjacency array");
  const auto n = static_cast<Vertex>(offsets.size() - 1);
  MG_EXPECTS_MSG(adjacency.size() % 2 == 0,
                 "undirected CSR needs both edge directions");
  for (Vertex v = 0; v < n; ++v) {
    MG_EXPECTS_MSG(offsets[v] <= offsets[v + 1], "offsets must be monotone");
    for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      MG_EXPECTS_MSG(adjacency[i] < n, "neighbor out of range");
      MG_EXPECTS_MSG(adjacency[i] != v, "self-loops are not allowed");
      MG_EXPECTS_MSG(i == offsets[v] || adjacency[i - 1] < adjacency[i],
                     "neighbors must be strictly ascending");
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

std::span<const Vertex> Graph::neighbors(Vertex v) const {
  MG_EXPECTS(v < vertex_count());
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

Vertex Graph::degree(Vertex v) const {
  MG_EXPECTS(v < vertex_count());
  return static_cast<Vertex>(offsets_[v + 1] - offsets_[v]);
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  MG_EXPECTS(u < vertex_count() && v < vertex_count());
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_count());
  for (Vertex u = 0; u < vertex_count(); ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) result.emplace_back(u, v);
    }
  }
  return result;
}

}  // namespace mg::graph
