#include "gossip/recovery.h"

#include <algorithm>

#include "support/contracts.h"

namespace mg::gossip {

using model::Message;

std::vector<std::vector<Message>> holds_to_initial_sets(
    const std::vector<DynamicBitset>& holds) {
  std::vector<std::vector<Message>> sets(holds.size());
  for (std::size_t v = 0; v < holds.size(); ++v) {
    for (std::size_t m = 0; m < holds[v].size(); ++m) {
      if (holds[v].test(m)) sets[v].push_back(static_cast<Message>(m));
    }
  }
  return sets;
}

model::Schedule greedy_completion_schedule(
    const graph::Graph& g, const std::vector<DynamicBitset>& holds) {
  const graph::Vertex n = g.vertex_count();
  MG_EXPECTS(holds.size() == n);
  const std::size_t message_count = n == 0 ? 0 : holds[0].size();
  for (const auto& h : holds) MG_EXPECTS(h.size() == message_count);

  // Every message must be known somewhere, or completion is impossible.
  for (std::size_t m = 0; m < message_count; ++m) {
    bool known = false;
    for (graph::Vertex v = 0; v < n && !known; ++v) known = holds[v].test(m);
    MG_EXPECTS_MSG(known, "a message is known to no processor");
  }

  std::vector<DynamicBitset> state = holds;
  std::size_t outstanding = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    outstanding += message_count - state[v].count();
  }

  model::Schedule schedule;
  std::size_t t = 0;
  const std::size_t safety_limit = message_count * n + 8;
  std::vector<char> receiving(n, 0);
  std::vector<std::pair<graph::Vertex, Message>> arrivals;
  while (outstanding > 0) {
    MG_ASSERT_MSG(t < safety_limit, "greedy completion failed to converge");
    std::fill(receiving.begin(), receiving.end(), 0);
    arrivals.clear();

    for (graph::Vertex v = 0; v < n; ++v) {
      // Pick the held message wanted by the most currently-free neighbors.
      Message best_message = 0;
      std::vector<graph::Vertex> best_receivers;
      // Candidate messages: those missing from at least one free neighbor.
      // Iterate neighbors' missing bits rather than all messages.
      std::vector<Message> candidates;
      for (graph::Vertex u : g.neighbors(v)) {
        if (receiving[u]) continue;
        for (std::size_t m = 0; m < message_count; ++m) {
          if (state[v].test(m) && !state[u].test(m)) {
            candidates.push_back(static_cast<Message>(m));
          }
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      for (Message m : candidates) {
        std::vector<graph::Vertex> receivers;
        for (graph::Vertex u : g.neighbors(v)) {
          if (!receiving[u] && !state[u].test(m)) receivers.push_back(u);
        }
        if (receivers.size() > best_receivers.size()) {
          best_receivers = std::move(receivers);
          best_message = m;
        }
      }
      if (best_receivers.empty()) continue;
      for (graph::Vertex u : best_receivers) {
        receiving[u] = 1;
        arrivals.emplace_back(u, best_message);
      }
      schedule.add(t, {best_message, v, std::move(best_receivers)});
    }

    MG_ASSERT_MSG(!arrivals.empty(),
                  "no progress: disconnected network or unknown message");
    for (const auto& [u, m] : arrivals) {
      state[u].set(m);
      --outstanding;
    }
    ++t;
  }
  schedule.trim();
  return schedule;
}

}  // namespace mg::gossip
