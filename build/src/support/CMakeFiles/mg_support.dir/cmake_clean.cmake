file(REMOVE_RECURSE
  "CMakeFiles/mg_support.dir/table.cpp.o"
  "CMakeFiles/mg_support.dir/table.cpp.o.d"
  "CMakeFiles/mg_support.dir/thread_pool.cpp.o"
  "CMakeFiles/mg_support.dir/thread_pool.cpp.o.d"
  "libmg_support.a"
  "libmg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
