// Minimal fixed-size thread pool with a blocking `parallel_for` used to
// parallelize the O(mn) all-sources BFS of the minimum-depth spanning tree
// construction (paper §3.1).  The pool hands out contiguous index chunks,
// which keeps the per-source BFS state cache-local.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mg {

/// Fixed set of worker threads executing submitted tasks FIFO.  Destruction
/// drains outstanding tasks before joining (RAII; no detached threads).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means `hardware_concurrency()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Runs `body(i)` for every i in [0, count), distributing contiguous
  /// chunks over the workers, and blocks until all iterations finish.
  /// Exceptions thrown by `body` are rethrown (the first one) on the caller.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void submit(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace mg
