// Churn benchmark — the machine-readable dynamic-topology artifact
// (BENCH_churn.json).
//
// Measures the incremental pipeline of src/churn against its from-scratch
// counterpart and pins the ISSUE's acceptance gate: for single-edge deltas
// on n >= 1e4 graphs, patching the existing schedule must be >= 5x faster
// than a full re-solve (tree + schedule synthesis) on the mutated graph.
//
// Sections (the process exits nonzero on any gate violation):
//   * patch_vs_resolve — THE gate.  Broadcast schedules (one-message
//     universe, O(n) deliveries — full gossip is Theta(n^2) by counting
//     and does not fit at 1e5) on 2D grids at n = 1e4 and, without
//     --quick, n ~ 1e5.  Each trial removes one removable tree edge —
//     the worst case: the strike cascades through the detached subtree
//     and a repair must be spliced — then times
//     `patch_schedule_from_holds` against min_depth_spanning_tree +
//     multicast_broadcast.  Gate: every patch completes (independently
//     re-simulated) and mean speedup >= 5.
//   * gossip_patch_rows — full n + r gossip at the n^2 wall (n <= 2048,
//     matching scale_bench): patch a ConcurrentUpDown schedule after a
//     tree-edge removal, validate it on the mutated graph, and hold the
//     staleness contract total_time <= 2 * (n + r).  Speedup reported,
//     not gated (the 5x gate is the n >= 1e4 section).
//   * churn_rate_sweep — ChurnSolver end to end on a 32x32 grid: the same
//     event budget over ~600 / ~150 / ~30 rounds (slow / moderate /
//     violent churn).  Gate: every event's schedule stays within
//     stale_factor * (n + r) and the final schedule validates.
//   * tree_maintenance — IncrementalTree event latency vs one full
//     min_depth_spanning_tree, with the maintenance-path histogram.
//     Gate: mean event latency beats the rebuild.
//
//   churn_bench [--out FILE] [--seed N] [--quick]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "churn/feed.h"
#include "churn/solver.h"
#include "gossip/broadcast.h"
#include "gossip/patch.h"
#include "gossip/solve.h"
#include "graph/dynamic.h"
#include "graph/generators.h"
#include "model/validator.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "sim/network_sim.h"
#include "support/bitset.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"
#include "tree/incremental.h"
#include "tree/spanning_tree.h"

namespace {

using namespace mg;

/// Rewrites a broadcast schedule's message ids to 0 (one-message universe,
/// one bitset word per node) — same convention as scale_bench.
model::Schedule single_message(const model::Schedule& schedule) {
  model::Schedule out;
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const model::Transmission& tx : schedule.round(t)) {
      out.add(t, {0, tx.sender, tx.receivers});
    }
  }
  return out;
}

/// A random tree edge {v, parent(v)} whose removal keeps `g` connected, or
/// {kNoVertex, kNoVertex} when none is found within the attempt budget.
std::pair<graph::Vertex, graph::Vertex> removable_tree_edge(
    const graph::DynamicGraph& g, const tree::RootedTree& t, Rng& rng) {
  const graph::Vertex n = g.vertex_count();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto v = static_cast<graph::Vertex>(rng.below(n));
    const graph::Vertex p = t.parent(v);
    if (p == graph::kNoVertex) continue;
    if (g.is_removable(v, p)) return {v, p};
  }
  return {graph::kNoVertex, graph::kNoVertex};
}

int run(const std::string& out_path, std::uint64_t seed, bool quick) {
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "churn_bench: cannot open %s for writing\n",
                 out_path.c_str());
    return 2;
  }
  ThreadPool pool;
  bool all_ok = true;

  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("suite", "churn");
  w.field("seed", static_cast<std::uint64_t>(seed));
  w.field("quick", quick);
  w.field("threads", static_cast<std::uint64_t>(pool.thread_count()));

  // --- patch_vs_resolve: THE acceptance gate ---------------------------
  constexpr double kPatchGate = 5.0;
  w.key("patch_vs_resolve").begin_array();
  {
    struct Spec {
      const char* family;
      graph::Vertex rows, cols;
    };
    std::vector<Spec> specs{{"grid2d/100x100", 100, 100}};
    if (!quick) specs.push_back({"grid2d/316x317", 316, 317});
    const int trials = quick ? 3 : 5;

    for (const Spec& spec : specs) {
      const graph::Graph g0 = graph::grid(spec.rows, spec.cols);
      const graph::Vertex n = g0.vertex_count();
      Stopwatch watch;
      const tree::RootedTree t0 = tree::min_depth_spanning_tree(g0, &pool);
      const model::Schedule schedule0 =
          single_message(gossip::multicast_broadcast(g0, t0.root()));
      const double base_solve_ms = watch.millis();

      std::vector<DynamicBitset> holds0(n, DynamicBitset(1));
      holds0[t0.root()].set(0);

      Rng rng(seed);
      double patch_total = 0.0;
      double resolve_total = 0.0;
      int completed = 0;
      int ran = 0;
      std::size_t dropped = 0;
      std::size_t repair_rounds = 0;
      for (int trial = 0; trial < trials; ++trial) {
        graph::DynamicGraph d(g0);
        const auto [v, p] = removable_tree_edge(d, t0, rng);
        if (v == graph::kNoVertex) continue;
        d.remove_edge(v, p);
        const graph::Graph g2 = d.snapshot();
        ++ran;

        watch.restart();
        const tree::RootedTree t2 = tree::min_depth_spanning_tree(g2, &pool);
        const model::Schedule fresh =
            single_message(gossip::multicast_broadcast(g2, t2.root()));
        resolve_total += watch.millis();

        watch.restart();
        const gossip::PatchResult patched =
            gossip::patch_schedule_from_holds(g2, schedule0, holds0);
        patch_total += watch.millis();
        dropped += patched.dropped_transmissions;
        repair_rounds += patched.repair_rounds;

        sim::SimOptions options;
        options.keep_final_holds = false;
        const sim::SimResult check =
            sim::simulate_from_holds(g2, patched.schedule, holds0, options);
        if (patched.complete && check.completed &&
            fresh.total_time() == t2.height()) {
          ++completed;
        }
      }
      const double patch_ms = ran > 0 ? patch_total / ran : 0.0;
      const double resolve_ms = ran > 0 ? resolve_total / ran : 0.0;
      const double speedup = patch_ms > 0.0 ? resolve_ms / patch_ms : 0.0;
      const bool ok = ran > 0 && completed == ran && speedup >= kPatchGate;
      all_ok = all_ok && ok;

      w.begin_object();
      w.field("family", std::string(spec.family));
      w.field("n", static_cast<std::uint64_t>(n));
      w.field("delta", "remove_tree_edge");
      w.field("trials", static_cast<std::uint64_t>(ran));
      w.field("base_solve_ms", base_solve_ms);
      w.field("patch_ms", patch_ms);
      w.field("resolve_ms", resolve_ms);
      w.field("speedup", speedup);
      w.field("speedup_gate", kPatchGate);
      w.field("dropped_transmissions", static_cast<std::uint64_t>(dropped));
      w.field("repair_rounds", static_cast<std::uint64_t>(repair_rounds));
      w.field("ok", ok);
      w.end_object();
      std::printf(
          "patch A/B %-18s n=%-7u patch %7.2f ms  resolve %8.1f ms  "
          "%6.1fx (gate %.0fx) %s\n",
          spec.family, n, patch_ms, resolve_ms, speedup, kPatchGate,
          ok ? "ok" : "VIOLATION");
    }
  }
  w.end_array();

  // --- gossip_patch_rows: full gossip at the n^2 wall ------------------
  w.key("gossip_patch_rows").begin_array();
  {
    std::vector<graph::Vertex> sizes{512};
    if (!quick) sizes.push_back(2048);
    for (const graph::Vertex n : sizes) {
      Rng rng(seed + 1);
      const graph::Graph g0 = graph::random_regular_configuration(n, 3, rng);
      const gossip::Solution base =
          gossip::solve_gossip(g0, gossip::Algorithm::kConcurrentUpDown,
                               &pool);

      graph::DynamicGraph d(g0);
      const auto [v, p] =
          removable_tree_edge(d, base.instance.tree(), rng);
      bool ok = v != graph::kNoVertex && base.report.ok;
      double patch_ms = 0.0;
      double resolve_ms = 0.0;
      std::size_t total_time = 0;
      std::size_t fresh_bound = 0;
      if (ok) {
        d.remove_edge(v, p);
        const graph::Graph g2 = d.snapshot();

        Stopwatch watch;
        const gossip::Solution fresh = gossip::solve_gossip(
            g2, gossip::Algorithm::kConcurrentUpDown, &pool);
        resolve_ms = watch.millis();
        fresh_bound = n + fresh.instance.tree().height();

        watch.restart();
        const gossip::PatchResult patched =
            gossip::patch_schedule(g2, base.schedule,
                                   base.instance.initial());
        patch_ms = watch.millis();
        total_time = patched.schedule.total_time();

        const auto validation = model::validate_schedule(
            g2, patched.schedule, base.instance.initial(), {});
        ok = fresh.report.ok && patched.complete && validation.ok &&
             total_time <= 2 * fresh_bound;
      }
      all_ok = all_ok && ok;
      const double speedup = patch_ms > 0.0 ? resolve_ms / patch_ms : 0.0;

      w.begin_object();
      w.field("family", "random_regular/d=3");
      w.field("algorithm", "concurrent_updown");
      w.field("n", static_cast<std::uint64_t>(n));
      w.field("delta", "remove_tree_edge");
      w.field("patch_ms", patch_ms);
      w.field("resolve_ms", resolve_ms);
      w.field("speedup", speedup);
      w.field("total_time", static_cast<std::uint64_t>(total_time));
      w.field("staleness_budget", static_cast<std::uint64_t>(2 * fresh_bound));
      w.field("ok", ok);
      w.end_object();
      std::printf(
          "gossip patch n=%-5u patch %7.2f ms  resolve %8.1f ms  %6.1fx  "
          "%zu rounds vs budget %zu  %s\n",
          n, patch_ms, resolve_ms, speedup, total_time, 2 * fresh_bound,
          ok ? "ok" : "VIOLATION");
    }
  }
  w.end_array();

  // --- churn_rate_sweep: the online solver across churn intensities ----
  w.key("churn_rate_sweep").begin_array();
  {
    const graph::Graph g0 = graph::grid(32, 32);
    const std::uint64_t horizons[] = {600, 150, 30};
    for (const std::uint64_t horizon : horizons) {
      churn::FeedOptions options;
      options.events = quick ? 16 : 32;
      options.seed = seed + horizon;
      options.horizon_rounds = horizon;
      const churn::ChurnFeed feed = churn::uniform_feed(g0, options);

      // Per-row latency quantiles: the solver's patch / retree histograms
      // start fresh for every sweep row (absent and all-zero under
      // -DMG_OBS=OFF or a runtime-null registry).
      obs::Registry::global().reset();
      churn::ChurnSolver solver(g0);
      double worst_staleness = 0.0;
      Stopwatch watch;
      for (const auto& event : feed.events) {
        const churn::ApplyReport report = solver.apply(event);
        const double staleness = static_cast<double>(report.schedule_time) /
                                 static_cast<double>(report.fresh_bound);
        worst_staleness = std::max(worst_staleness, staleness);
      }
      const double total_ms = watch.millis();
      const obs::Snapshot metrics = obs::Registry::global().snapshot();
      const obs::HistogramSnapshot patch_h =
          metrics.histogram("churn.patch_ns");
      const obs::HistogramSnapshot retree_h =
          metrics.histogram("churn.retree_ns");
      const auto validation = model::validate_schedule(
          solver.graph().snapshot(), solver.schedule(), solver.initial(), {});
      const bool ok = validation.ok && worst_staleness <= 2.0;
      all_ok = all_ok && ok;

      w.begin_object();
      w.field("family", "grid2d/32x32");
      w.field("n", static_cast<std::uint64_t>(g0.vertex_count()));
      w.field("events", static_cast<std::uint64_t>(feed.events.size()));
      w.field("horizon_rounds", horizon);
      w.field("patches", solver.stats().patches);
      w.field("resolves", solver.stats().resolves);
      w.field("mean_apply_ms",
              feed.events.empty()
                  ? 0.0
                  : total_ms / static_cast<double>(feed.events.size()));
      w.field("patch_ns_p50", patch_h.p50);
      w.field("patch_ns_p99", patch_h.p99);
      w.field("retree_ns_p50", retree_h.p50);
      w.field("retree_ns_p99", retree_h.p99);
      w.field("worst_staleness", worst_staleness);
      w.field("staleness_gate", 2.0);
      w.field("ok", ok);
      w.end_object();
      std::printf(
          "rate sweep horizon=%-4llu events=%-3zu patches=%-3llu "
          "resolves=%-3llu staleness %.2f  %s\n",
          static_cast<unsigned long long>(horizon), feed.events.size(),
          static_cast<unsigned long long>(solver.stats().patches),
          static_cast<unsigned long long>(solver.stats().resolves),
          worst_staleness, ok ? "ok" : "VIOLATION");
    }
  }
  w.end_array();

  // --- tree_maintenance: incremental events vs one full rebuild --------
  w.key("tree_maintenance").begin_array();
  {
    struct Spec {
      std::string family;
      graph::Graph g;
      // Expanders concentrate eccentricities into a 2-3 value band, which
      // defeats eccentricity-bound pruning exactly as it defeats the
      // hybrid center scan (see scale_bench): their rows report the
      // full-rebuild fallback honestly but are not gated.
      bool gated = true;
    };
    std::vector<Spec> specs;
    specs.push_back({"grid2d/32x32", graph::grid(32, 32)});
    specs.push_back({"grid2d/100x100", graph::grid(100, 100)});
    {
      Rng rng(seed + 2);
      specs.push_back({"random_regular/d=3/1e4",
                       graph::random_regular_configuration(10'000, 3, rng),
                       false});
    }
    if (!quick) specs.push_back({"grid2d/316x317", graph::grid(316, 317)});

    for (const Spec& spec : specs) {
      churn::FeedOptions options;
      options.events = quick ? 32 : 64;
      options.seed = seed + 3;
      const churn::ChurnFeed feed = churn::uniform_feed(spec.g, options);

      // Per event, time the incremental maintainer against a from-scratch
      // min_depth_spanning_tree of the *same* mutated topology — chords
      // accumulated by the feed change the rebuild cost too, so a
      // pristine-graph baseline would be unfair in either direction.
      graph::DynamicGraph d(spec.g);
      tree::IncrementalTree maintained(spec.g, {}, &pool);
      Stopwatch watch;
      double incremental_total = 0.0;
      double rebuild_total = 0.0;
      for (const auto& event : feed.events) {
        const auto [u, v] = churn::apply_event(d, event);
        const graph::Graph& g = d.snapshot();
        watch.restart();
        switch (event.kind) {
          case churn::EventKind::kAddEdge:
            (void)maintained.on_edge_added(g, u, v);
            break;
          case churn::EventKind::kRemoveEdge:
            (void)maintained.on_edge_removed(g, u, v);
            break;
          default:
            (void)maintained.on_node_event(g);
            break;
        }
        incremental_total += watch.millis();
        watch.restart();
        [[maybe_unused]] const tree::RootedTree fresh =
            tree::min_depth_spanning_tree(g, &pool);
        rebuild_total += watch.millis();
      }
      const auto& stats = maintained.stats();
      const double events_n =
          feed.events.empty() ? 1.0
                              : static_cast<double>(feed.events.size());
      const double mean_ms = incremental_total / events_n;
      const double rebuild_ms = rebuild_total / events_n;
      const bool valid = maintained.tree().height() ==
                         static_cast<std::size_t>(maintained.radius());
      const bool ok = valid && (!spec.gated || mean_ms < rebuild_ms);
      all_ok = all_ok && ok;

      w.begin_object();
      w.field("family", spec.family);
      w.field("gated", spec.gated);
      w.field("n", static_cast<std::uint64_t>(spec.g.vertex_count()));
      w.field("events", stats.events);
      w.field("rebuild_ms", rebuild_ms);
      w.field("mean_event_ms", mean_ms);
      w.field("noop", stats.noop);
      w.field("parent_patch", stats.parent_patch);
      w.field("subtree_repair", stats.subtree_repair);
      w.field("recenter", stats.recenter);
      w.field("full_rebuild", stats.full_rebuild);
      w.field("bfs_runs", stats.bfs_runs);
      w.field("candidate_evals", stats.candidate_evals);
      w.field("ok", ok);
      w.end_object();
      std::printf(
          "tree maint %-22s n=%-7u mean %7.3f ms vs rebuild %8.1f ms "
          "(paths n/p/s/r/f %llu/%llu/%llu/%llu/%llu)  %s\n",
          spec.family.c_str(), spec.g.vertex_count(), mean_ms, rebuild_ms,
          static_cast<unsigned long long>(stats.noop),
          static_cast<unsigned long long>(stats.parent_patch),
          static_cast<unsigned long long>(stats.subtree_repair),
          static_cast<unsigned long long>(stats.recenter),
          static_cast<unsigned long long>(stats.full_rebuild),
          ok ? "ok" : "VIOLATION");
    }
  }
  w.end_array();

  w.end_object();
  out << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_ok) {
    std::fprintf(stderr,
                 "churn_bench: gate violation (patch speedup under %.0fx, "
                 "incomplete patch, staleness over budget, or maintenance "
                 "slower than rebuild)\n",
                 kPatchGate);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_churn.json";
  std::uint64_t seed = 42;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: churn_bench [--out FILE] [--seed N] [--quick]\n");
      return 2;
    }
  }
  return run(out_path, seed, quick);
}
