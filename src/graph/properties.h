// Structural graph properties used throughout the library: BFS distance
// sweeps, eccentricities, and the radius/diameter/center computation that
// drives the minimum-depth spanning-tree construction of the paper (§3.1:
// "the radius of a network is the least integer r such that there is a
// vertex v at a distance at most r from every vertex in the graph").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace mg {
class ThreadPool;
}

namespace mg::graph {

/// Distance value for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// BFS distances (edge counts) from `source`; unreachable -> kUnreachable.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       Vertex source);

/// Eccentricity of `source`: max finite BFS distance.  Returns nullopt when
/// some vertex is unreachable from `source`.
[[nodiscard]] std::optional<std::uint32_t> eccentricity(const Graph& g,
                                                        Vertex source);

/// Radius / diameter / a center vertex of a connected graph, computed by n
/// BFS traversals (O(mn), exactly the paper's procedure).
struct Metrics {
  std::uint32_t radius = 0;
  std::uint32_t diameter = 0;
  Vertex center = kNoVertex;                 ///< a vertex attaining `radius`
  std::vector<std::uint32_t> eccentricity;   ///< per-vertex eccentricities
};

/// Computes `Metrics` for a connected graph.  When `pool` is non-null the n
/// BFS sweeps run in parallel.  Precondition: `g` is connected and n >= 1.
[[nodiscard]] Metrics compute_metrics(const Graph& g,
                                      ThreadPool* pool = nullptr);

[[nodiscard]] bool is_connected(const Graph& g);

/// True when `g` is connected and m == n - 1.
[[nodiscard]] bool is_tree(const Graph& g);

[[nodiscard]] bool is_bipartite(const Graph& g);

/// Minimum and maximum vertex degree (0 for the empty graph).
struct DegreeStats {
  Vertex min = 0;
  Vertex max = 0;
  double mean = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

}  // namespace mg::graph
