// Tests for Fig. 1's rotation gossip: optimal n - 1 rounds along a
// Hamiltonian circuit, valid even under the telephone model.
#include <gtest/gtest.h>

#include "gossip/hamiltonian_gossip.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/contracts.h"

namespace mg::gossip {
namespace {

void expect_optimal(const graph::Graph& g, const model::Schedule& s) {
  EXPECT_EQ(s.total_time(), g.vertex_count() - 1u);
  model::ValidatorOptions options;
  options.variant = model::ModelVariant::kTelephone;
  const auto report = model::validate_schedule(g, s, {}, options);
  EXPECT_TRUE(report.ok) << report.error;
}

TEST(HamiltonianGossip, CycleRotationIsOptimal) {
  for (graph::Vertex n : {3u, 4u, 8u, 17u}) {
    const auto g = graph::n1_cycle(n);
    std::vector<graph::Vertex> circuit(n);
    for (graph::Vertex v = 0; v < n; ++v) circuit[v] = v;
    expect_optimal(g, rotation_schedule(g, circuit));
  }
}

TEST(HamiltonianGossip, EveryoneCompletesSimultaneously) {
  const auto g = graph::n1_cycle(9);
  std::vector<graph::Vertex> circuit(9);
  for (graph::Vertex v = 0; v < 9; ++v) circuit[v] = v;
  const auto report =
      model::validate_schedule(g, rotation_schedule(g, circuit));
  ASSERT_TRUE(report.ok);
  for (const auto t : report.completion_time) EXPECT_EQ(t, 8u);
}

TEST(HamiltonianGossip, SearchAndScheduleOnRichGraphs) {
  for (const auto& g :
       {graph::complete(8), graph::hypercube(3), graph::torus(3, 4)}) {
    const auto schedule = hamiltonian_gossip(g);
    ASSERT_TRUE(schedule.has_value());
    expect_optimal(g, *schedule);
  }
}

TEST(HamiltonianGossip, NulloptWhenNoCircuit) {
  EXPECT_FALSE(hamiltonian_gossip(graph::path(6)).has_value());
  EXPECT_FALSE(hamiltonian_gossip(graph::star(6)).has_value());
  EXPECT_FALSE(hamiltonian_gossip(graph::petersen()).has_value());
}

TEST(HamiltonianGossip, RejectsBrokenCircuit) {
  const auto g = graph::path(4);
  EXPECT_THROW((void)rotation_schedule(g, {0, 1, 2, 3}),
               ContractViolation);  // 3-0 is not an edge
  EXPECT_THROW((void)rotation_schedule(graph::cycle(4), {0, 1, 2}),
               ContractViolation);  // wrong length
}

TEST(HamiltonianGossip, NonIdentityCircuitOrder) {
  // A circuit that visits vertices out of id order still works.
  const auto g = graph::complete(5);
  expect_optimal(g, rotation_schedule(g, {0, 2, 4, 1, 3}));
}

}  // namespace
}  // namespace mg::gossip
