// Differential tests for graph::find_center: the hybrid pruned scan must
// produce the exact radius the exhaustive n-BFS sweep produces, on every
// graph — including the vertex-transitive families where pruning cannot
// help and the scan degenerates to evaluating (nearly) everything.  The
// center vertex itself may differ between the two paths (both are exact
// centers; the tie-break differs — see center.h), so the cross-checks are
//   * radii equal,
//   * ecc(returned center) == radius,
//   * the exhaustive path is byte-identical to compute_metrics,
//   * serial == 4-thread pool for both paths (determinism).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "graph/center.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace mg {
namespace {

graph::Graph make_graph(std::uint64_t seed) {
  Rng rng(0xd1ffULL * (seed + 1));
  const auto n = static_cast<graph::Vertex>(5 + (seed * 7) % 44);
  switch (seed % 4) {
    case 0:
      return graph::random_connected_gnp(n, 3.0 / static_cast<double>(n),
                                         rng);
    case 1:
      return graph::random_tree(n, rng);
    case 2:
      return graph::random_geometric(n, 0.3, rng);
    default:
      return graph::random_connected_gnp(n, 0.5, rng);
  }
}

std::vector<std::pair<std::string, graph::Graph>> named_sweep() {
  Rng rng(0xcafeULL);
  return {
      {"path/17", graph::path(17)},
      {"cycle/24", graph::cycle(24)},
      {"complete/9", graph::complete(9)},
      {"star/12", graph::star(12)},
      {"grid/7x9", graph::grid(7, 9)},
      {"torus/5x7", graph::torus(5, 7)},
      {"torus3d/3x4x5", graph::torus3d(3, 4, 5)},
      {"hypercube/5", graph::hypercube(5)},
      {"petersen", graph::petersen()},
      {"n3_witness", graph::n3_witness()},
      {"fig4", graph::fig4_network()},
      {"caterpillar/8x3", graph::caterpillar(8, 3)},
      {"binomial/4", graph::binomial_tree(4)},
      {"lollipop/6+9", graph::lollipop(6, 9)},
      {"random_regular_cfg/40x3",
       graph::random_regular_configuration(40, 3, rng)},
  };
}

void check_graph(const graph::Graph& g, const std::string& label) {
  SCOPED_TRACE(label);
  const graph::Metrics metrics = graph::compute_metrics(g);

  graph::CenterOptions exhaustive;
  exhaustive.mode = graph::CenterMode::kExhaustive;
  const graph::CenterResult full = graph::find_center(g, nullptr, exhaustive);

  // Exhaustive path == the historical n-BFS sweep, center included.
  EXPECT_EQ(full.radius, metrics.radius);
  EXPECT_EQ(full.center, metrics.center);
  EXPECT_EQ(full.diameter_lb, metrics.diameter);
  EXPECT_EQ(full.bfs_runs, g.vertex_count());
  EXPECT_FALSE(full.used_hybrid);

  // Hybrid path: exact radius, possibly a different (equally valid) center.
  graph::CenterOptions hybrid;
  hybrid.mode = graph::CenterMode::kHybrid;
  const graph::CenterResult fast = graph::find_center(g, nullptr, hybrid);
  EXPECT_EQ(fast.radius, metrics.radius);
  EXPECT_TRUE(fast.used_hybrid);
  ASSERT_LT(fast.center, g.vertex_count());
  EXPECT_EQ(metrics.eccentricity[fast.center], metrics.radius)
      << "hybrid returned a non-center vertex " << fast.center;
  EXPECT_GE(fast.diameter_lb, metrics.radius);
  EXPECT_LE(fast.diameter_lb, metrics.diameter);
  EXPECT_EQ(fast.bfs_runs + fast.pruned,
            static_cast<std::uint64_t>(g.vertex_count()))
      << "every vertex is either evaluated or pruned";

  // Determinism: a pool must not change either answer.
  ThreadPool pool(4);
  const graph::CenterResult full_mt = graph::find_center(g, &pool, exhaustive);
  EXPECT_EQ(full_mt.radius, full.radius);
  EXPECT_EQ(full_mt.center, full.center);
  const graph::CenterResult fast_mt = graph::find_center(g, &pool, hybrid);
  EXPECT_EQ(fast_mt.radius, fast.radius);
  EXPECT_EQ(fast_mt.center, fast.center);
  EXPECT_EQ(fast_mt.bfs_runs, fast.bfs_runs);
  EXPECT_EQ(fast_mt.pruned, fast.pruned);
}

TEST(Center, NamedGraphs) {
  for (const auto& [label, g] : named_sweep()) check_graph(g, label);
}

TEST(Center, SeededSweep) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    check_graph(make_graph(seed), "seed " + std::to_string(seed));
  }
}

TEST(Center, AutoModeMatchesExhaustiveBelowThreshold) {
  // kAuto on small graphs must stay byte-identical to the historical
  // smallest-id center so every pre-existing tree is unchanged.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const graph::Graph g = make_graph(seed);
    const graph::CenterResult automatic = graph::find_center(g);
    const graph::Metrics metrics = graph::compute_metrics(g);
    EXPECT_EQ(automatic.center, metrics.center);
    EXPECT_EQ(automatic.radius, metrics.radius);
    EXPECT_FALSE(automatic.used_hybrid);
  }
}

TEST(Center, AutoModeSwitchesToHybridAboveThreshold) {
  const graph::Graph g = graph::grid(20, 20);
  graph::CenterOptions options;  // kAuto
  options.exhaustive_threshold = 100;
  const graph::CenterResult result = graph::find_center(g, nullptr, options);
  EXPECT_TRUE(result.used_hybrid);
  EXPECT_EQ(result.radius, graph::compute_metrics(g).radius);
}

TEST(Center, PruningBitesOnGrids) {
  // Grids have distance spread, the hybrid's favorable case: the scan must
  // evaluate far fewer vertices than the exhaustive sweep would.
  const graph::Graph g = graph::grid(40, 40);
  graph::CenterOptions hybrid;
  hybrid.mode = graph::CenterMode::kHybrid;
  const graph::CenterResult result = graph::find_center(g, nullptr, hybrid);
  EXPECT_EQ(result.radius, 40u);  // 2 * ceil(39/2): center cell to a corner
  EXPECT_LT(result.bfs_runs, g.vertex_count() / 4)
      << "pruning should eliminate most of a 1600-vertex grid";
}

TEST(Center, SingleVertexAndEdge) {
  const graph::CenterResult one =
      graph::find_center(graph::complete(1));
  EXPECT_EQ(one.radius, 0u);
  EXPECT_EQ(one.center, 0u);
  const graph::CenterResult two =
      graph::find_center(graph::complete(2));
  EXPECT_EQ(two.radius, 1u);
  EXPECT_EQ(two.center, 0u);
}

TEST(Center, HybridOnTinyGraphs) {
  // Forced hybrid must stay exact even below the auto threshold.
  for (graph::Vertex n = 1; n <= 6; ++n) {
    graph::CenterOptions hybrid;
    hybrid.mode = graph::CenterMode::kHybrid;
    const graph::Graph g = graph::complete(n);
    const graph::CenterResult result = graph::find_center(g, nullptr, hybrid);
    EXPECT_EQ(result.radius, n <= 1 ? 0u : 1u) << "K_" << n;
  }
}

}  // namespace
}  // namespace mg
