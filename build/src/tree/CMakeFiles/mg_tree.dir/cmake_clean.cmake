file(REMOVE_RECURSE
  "CMakeFiles/mg_tree.dir/labeling.cpp.o"
  "CMakeFiles/mg_tree.dir/labeling.cpp.o.d"
  "CMakeFiles/mg_tree.dir/spanning_tree.cpp.o"
  "CMakeFiles/mg_tree.dir/spanning_tree.cpp.o.d"
  "libmg_tree.a"
  "libmg_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
