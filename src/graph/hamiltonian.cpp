#include "graph/hamiltonian.h"

#include <algorithm>

#include "support/contracts.h"

namespace mg::graph {

namespace {

class CircuitSearch {
 public:
  CircuitSearch(const Graph& g, std::uint64_t budget)
      : g_(g), budget_(budget), on_path_(g.vertex_count(), false) {}

  HamiltonianResult run() {
    HamiltonianResult result;
    const Vertex n = g_.vertex_count();
    // Quick necessary condition: minimum degree 2.
    for (Vertex v = 0; v < n; ++v) {
      if (g_.degree(v) < 2) {
        result.status = SearchStatus::kExhausted;
        return result;
      }
    }
    path_.reserve(n);
    path_.push_back(0);
    on_path_[0] = true;
    const bool found = extend();
    result.nodes_explored = nodes_;
    if (found) {
      result.status = SearchStatus::kFound;
      result.circuit = path_;
    } else {
      result.status = nodes_ >= budget_ ? SearchStatus::kBudget
                                        : SearchStatus::kExhausted;
    }
    return result;
  }

 private:
  bool extend() {
    if (++nodes_ >= budget_) return false;
    const Vertex n = g_.vertex_count();
    const Vertex tip = path_.back();
    if (path_.size() == n) {
      return g_.has_edge(tip, path_.front());
    }
    // Prune: every off-path vertex must keep >= 2 usable connections (to
    // off-path vertices or to the two path endpoints).
    for (Vertex next : g_.neighbors(tip)) {
      if (on_path_[next]) continue;
      path_.push_back(next);
      on_path_[next] = true;
      if (!dead_end() && extend()) return true;
      on_path_[next] = false;
      path_.pop_back();
      if (nodes_ >= budget_) return false;
    }
    return false;
  }

  /// True when some off-path vertex has fewer than 2 usable connections,
  /// making a circuit through it impossible.
  bool dead_end() const {
    const Vertex n = g_.vertex_count();
    if (path_.size() == n) return false;
    const Vertex tip = path_.back();
    const Vertex start = path_.front();
    for (Vertex v = 0; v < n; ++v) {
      if (on_path_[v]) continue;
      unsigned usable = 0;
      for (Vertex u : g_.neighbors(v)) {
        if (!on_path_[u] || u == tip || u == start) {
          if (++usable >= 2) break;
        }
      }
      if (usable < 2) return true;
    }
    return false;
  }

  const Graph& g_;
  std::uint64_t budget_;
  std::uint64_t nodes_ = 0;
  std::vector<Vertex> path_;
  std::vector<char> on_path_;
};

}  // namespace

HamiltonianResult find_hamiltonian_circuit(const Graph& g,
                                           std::uint64_t node_budget) {
  MG_EXPECTS(g.vertex_count() >= 3);
  return CircuitSearch(g, node_budget).run();
}

}  // namespace mg::graph
