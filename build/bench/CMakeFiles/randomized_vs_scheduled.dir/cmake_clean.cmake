file(REMOVE_RECURSE
  "CMakeFiles/randomized_vs_scheduled.dir/randomized_vs_scheduled.cpp.o"
  "CMakeFiles/randomized_vs_scheduled.dir/randomized_vs_scheduled.cpp.o.d"
  "randomized_vs_scheduled"
  "randomized_vs_scheduled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_vs_scheduled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
