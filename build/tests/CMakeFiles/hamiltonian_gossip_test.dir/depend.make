# Empty dependencies file for hamiltonian_gossip_test.
# This may be replaced when dependencies are built.
