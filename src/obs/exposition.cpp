#include "obs/exposition.h"

#include <algorithm>
#include <ostream>

#include "obs/json.h"

namespace mg::obs {

std::string prometheus_name(std::string_view raw) {
  std::string name;
  name.reserve(raw.size() + 1);
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    name.push_back(ok ? c : '_');
  }
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    name.insert(name.begin(), '_');
  }
  return name;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': escaped += "\\\\"; break;
      case '"': escaped += "\\\""; break;
      case '\n': escaped += "\\n"; break;
      default: escaped.push_back(c);
    }
  }
  return escaped;
}

PrometheusExposition::PrometheusExposition(
    std::vector<std::pair<std::string, std::string>> labels,
    std::string prefix)
    : labels_(std::move(labels)), prefix_(std::move(prefix)) {
  std::sort(labels_.begin(), labels_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::string PrometheusExposition::label_block(std::string_view extra_key,
                                              std::string_view extra_value) const {
  if (labels_.empty() && extra_key.empty()) return {};
  std::string block = "{";
  bool first = true;
  for (const auto& [key, value] : labels_) {
    if (!first) block.push_back(',');
    first = false;
    block += prometheus_name(key);
    block += "=\"";
    block += prometheus_label_escape(value);
    block += '"';
  }
  if (!extra_key.empty()) {
    if (!first) block.push_back(',');
    block += extra_key;
    block += "=\"";
    block += extra_value;
    block += '"';
  }
  block.push_back('}');
  return block;
}

void PrometheusExposition::expose(const Snapshot& snapshot,
                                  std::ostream& out) const {
  const std::string labels = label_block();
  for (const auto& [raw, value] : snapshot.counters) {
    const std::string name = prefix_ + prometheus_name(raw);
    out << "# TYPE " << name << " counter\n";
    out << name << labels << ' ' << value << '\n';
  }
  // Timers expose as quantile-free summaries: total time + span count.
  for (const auto& [raw, timer] : snapshot.timers) {
    const std::string name = prefix_ + prometheus_name(raw);
    out << "# TYPE " << name << " summary\n";
    out << name << "_sum" << labels << ' ' << timer.total_ns << '\n';
    out << name << "_count" << labels << ' ' << timer.count << '\n';
  }
  for (const auto& [raw, hist] : snapshot.histograms) {
    const std::string name = prefix_ + prometheus_name(raw);
    out << "# TYPE " << name << " histogram\n";
    // Cumulative `le` series from the non-empty log buckets; the +Inf
    // bucket always closes the series at the full count.
    std::uint64_t cumulative = 0;
    for (const auto& [upper, bucket_count] : hist.buckets) {
      cumulative += bucket_count;
      if (upper == ~std::uint64_t{0}) break;  // folds into +Inf below
      out << name << "_bucket" << label_block("le", std::to_string(upper))
          << ' ' << cumulative << '\n';
    }
    out << name << "_bucket" << label_block("le", "+Inf") << ' ' << hist.count
        << '\n';
    out << name << "_sum" << labels << ' ' << hist.sum << '\n';
    out << name << "_count" << labels << ' ' << hist.count << '\n';
  }
}

void JsonExposition::expose(const Snapshot& snapshot,
                            std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : snapshot.counters) w.field(name, v);
  w.end_object();
  w.key("timers").begin_object();
  for (const auto& [name, t] : snapshot.timers) {
    w.key(name).begin_object();
    w.field("total_ns", t.total_ns);
    w.field("count", t.count);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name).begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("p50", h.p50);
    w.field("p90", h.p90);
    w.field("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace mg::obs
