// Unit tests for the CSR graph substrate and its text I/O.
#include <gtest/gtest.h>

#include <vector>

#include "graph/graph.h"
#include "graph/io.h"
#include "support/contracts.h"

namespace mg::graph {
namespace {

TEST(Graph, EmptyGraphHasIsolatedVertices) {
  Graph g(5);
  EXPECT_EQ(g.vertex_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, BuilderAddsUndirectedEdges) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, DuplicateEdgesCollapse) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, SelfLoopRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(1, 1), ContractViolation);
}

TEST(Graph, OutOfRangeEndpointRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), ContractViolation);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4).add_edge(2, 0).add_edge(2, 3).add_edge(2, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, EdgesListedOnceOrdered) {
  GraphBuilder b(4);
  b.add_edge(3, 0).add_edge(2, 1);
  const auto edges = Graph(b.build()).edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], Edge(0, 3));
  EXPECT_EQ(edges[1], Edge(1, 2));
}

TEST(Graph, FromEdgesEquivalentToBuilder) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph a = Graph::from_edges(3, edges);
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  EXPECT_EQ(a, b.build());
}

TEST(Graph, FromCsrEquivalentToFromEdges) {
  // Path 0-1-2: offsets {0, 1, 3, 4}, adjacency {1, 0, 2, 1}.
  const Graph direct =
      Graph::from_csr({0, 1, 3, 4}, {1, 0, 2, 1});
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  EXPECT_EQ(direct, Graph::from_edges(3, edges));
}

TEST(Graph, FromCsrRejectsMalformedInput) {
  // Offsets not ending at the adjacency size.
  EXPECT_THROW(Graph::from_csr({0, 1, 3, 3}, {1, 0, 2, 1}),
               ContractViolation);
  // Non-monotone offsets.
  EXPECT_THROW(Graph::from_csr({0, 3, 1, 4}, {1, 0, 2, 1}),
               ContractViolation);
  // Unsorted neighbor list.
  EXPECT_THROW(Graph::from_csr({0, 2, 3, 4}, {2, 1, 0, 0}),
               ContractViolation);
  // Duplicate neighbor (sorted but not strictly ascending).
  EXPECT_THROW(Graph::from_csr({0, 2, 4, 4}, {1, 1, 0, 0}),
               ContractViolation);
  // Self-loop.
  EXPECT_THROW(Graph::from_csr({0, 1, 2}, {0, 0}), ContractViolation);
  // Neighbor out of range.
  EXPECT_THROW(Graph::from_csr({0, 1, 2}, {5, 0}), ContractViolation);
  // Odd adjacency size cannot encode an undirected edge set.
  EXPECT_THROW(Graph::from_csr({0, 1}, {0}), ContractViolation);
}

TEST(Graph, BuilderIsReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph first = b.build();
  b.add_edge(1, 2);
  const Graph second = b.build();
  EXPECT_EQ(first.edge_count(), 1u);
  EXPECT_EQ(second.edge_count(), 1u);
  EXPECT_TRUE(second.has_edge(1, 2));
  EXPECT_FALSE(second.has_edge(0, 1));
}

TEST(GraphIo, RoundTripsEdgeList) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 3);
  const Graph g = b.build();
  const Graph parsed = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, parsed);
}

TEST(GraphIo, ParsesExplicitText) {
  const Graph g = from_edge_list("3 2\n0 1\n1 2\n");
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphIo, RejectsMalformedHeader) {
  EXPECT_THROW(from_edge_list("abc"), std::invalid_argument);
  EXPECT_THROW(from_edge_list("-1 0"), std::invalid_argument);
}

TEST(GraphIo, RejectsTruncatedEdges) {
  EXPECT_THROW(from_edge_list("3 2\n0 1\n"), std::invalid_argument);
}

TEST(GraphIo, RejectsBadEndpoints) {
  EXPECT_THROW(from_edge_list("3 1\n0 5\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list("3 1\n1 1\n"), std::invalid_argument);
}

TEST(GraphIo, DotContainsVerticesAndEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 2);
  const std::string dot = to_dot(b.build(), {"a", "b", "c"});
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 2;"), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
}

}  // namespace
}  // namespace mg::graph
