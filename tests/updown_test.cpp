// Tests for the greedy UpDown reconstruction (Gonzalez 2000): validity,
// completion, and its position between ConcurrentUpDown and Simple.
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/simple.h"
#include "gossip/updown.h"
#include "graph/generators.h"
#include "support/rng.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

TEST(UpDown, ValidAndCompleteOnFig4) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = updown_gossip(instance);
  test::expect_valid_gossip(instance, schedule);
}

TEST(UpDown, ValidAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 5u, 9u}) {
      const auto g = family.make(knob);
      const auto instance = Instance::from_network(g);
      const auto schedule = updown_gossip(instance);
      const auto report = test::expect_valid_gossip(instance, schedule);
      ASSERT_TRUE(report.ok) << family.name << " knob=" << knob;
    }
  }
}

TEST(UpDown, NeverSlowerThanSimple) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {4u, 8u, 12u}) {
      const auto instance = Instance::from_network(family.make(knob));
      EXPECT_LE(updown_gossip(instance).total_time(),
                simple_gossip(instance).total_time())
          << family.name << " knob=" << knob;
    }
  }
}

TEST(UpDown, WithinOneOfConcurrentUpDownOrBetter) {
  // ConcurrentUpDown is n + r exactly; the greedy two-phase schedule can
  // occasionally beat it on very shallow trees (e.g. stars, where n - 1
  // suffices because nothing ever gets stuck) but never by more than r,
  // and never drops below the trivial bound.
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(8));
    const auto n = instance.vertex_count();
    const auto updown = updown_gossip(instance).total_time();
    const auto concurrent = concurrent_updown(instance).total_time();
    EXPECT_GE(updown, static_cast<std::size_t>(n - 1)) << family.name;
    EXPECT_GE(updown + instance.radius(), concurrent) << family.name;
  }
}

TEST(UpDown, CloseToTwoPhaseBoundOnLines) {
  // The paper's two phases take (n - 1 + r) + (2(r-1) + 1) = n + 3r - 2.
  for (graph::Vertex n : {5u, 9u, 15u, 21u}) {
    const auto instance = Instance::from_network(graph::path(n));
    const auto time = updown_gossip(instance).total_time();
    EXPECT_LE(time, updown_time_bound(n, instance.radius()) + 2)
        << "n=" << n;
  }
}

TEST(UpDown, RandomTreeSweep) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed * 7 + 1);
    const auto n = static_cast<graph::Vertex>(2 + rng.below(50));
    const auto g = graph::random_tree(n, rng);
    const auto instance = Instance::from_network(g);
    const auto schedule = updown_gossip(instance);
    const auto report = test::expect_valid_gossip(instance, schedule);
    ASSERT_TRUE(report.ok) << "seed=" << seed;
    EXPECT_LE(schedule.total_time(),
              2 * static_cast<std::size_t>(n) + instance.radius());
  }
}

TEST(UpDown, KnownIssueExceedsPaperBoundOnDenseRandomGraphs) {
  // Known issue, pinned: on dense seeded G(n, 1/2) networks the greedy
  // two-phase reconstruction exceeds the paper's n + 3r - 2 two-phase
  // budget (`updown_time_bound`) — BFS trees of radius 2 leave too little
  // room for the up phase's greedy slotting, which the paper's analysis
  // assumes is conflict-free.  The schedules stay valid and complete;
  // only the time bound slips.  Pin the observed makespans so a future
  // fix flips EXPECT_GT (good: delete this test) and a regression past
  // the observed values trips EXPECT_LE.
  const std::size_t observed[] = {23, 28, 34};
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(0xd1ffULL * (seed + 1));
    const auto n = static_cast<graph::Vertex>(16 + (seed * 5) % 24);
    const auto g = graph::random_connected_gnp(n, 0.5, rng);
    const auto instance = Instance::from_network(g);
    const auto schedule = updown_gossip(instance);
    const auto report = test::expect_valid_gossip(instance, schedule);
    ASSERT_TRUE(report.ok) << "seed=" << seed;
    const std::size_t time = schedule.total_time();
    EXPECT_GT(time, updown_time_bound(n, instance.radius()))
        << "seed=" << seed << ": bound now holds — known issue fixed?";
    EXPECT_LE(time, observed[seed]) << "seed=" << seed;
  }
}

TEST(UpDown, TrivialSizes) {
  EXPECT_EQ(updown_gossip(Instance(tree::RootedTree::from_parents(
                              0, {graph::kNoVertex})))
                .total_time(),
            0u);
  const auto two =
      Instance(tree::RootedTree::from_parents(0, {graph::kNoVertex, 0}));
  const auto schedule = updown_gossip(two);
  test::expect_valid_gossip(two, schedule);
}

TEST(UpDown, BoundHelperClosedForm) {
  EXPECT_EQ(updown_time_bound(1, 0), 0u);
  EXPECT_EQ(updown_time_bound(16, 3), 16u + 9 - 2);
}

}  // namespace
}  // namespace mg::gossip
