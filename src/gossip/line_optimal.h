// §4's omitted algorithm, reconstructed: optimal gossiping on the odd
// straight-line network.
//
// The paper proves every schedule on the line with n = 2m + 1 processors
// needs at least n + r - 1 = 3m rounds, notes that ConcurrentUpDown pays
// n + r, and remarks: "One may improve the performance of our algorithm by
// one unit, but the protocol for each processor will not be uniform and the
// algorithm will be much more complex.  The reason is that one needs to
// alternate the delivery of messages from different subtrees."  The
// construction itself is not given.  This module supplies one.
//
// Construction (positions -m..+m around the center, mu(p) = the message of
// position p):
//   * The center alternates arms: mu(-q) arrives at time 2q-1, mu(+q) at
//     2q; each arrival is relayed to the opposite arm the same round; the
//     center's own message goes both ways at time 0.
//   * Left arm: -q launches its message at q - 1 as one multicast to both
//     neighbors; inward relays are immediate (-r forwards mu(-q) at
//     2q - r - 1).  Downward traffic (mu(0) at time r, right-arm messages
//     mu(+q) at 2q + r) fills the opposite parity.  Inner-left messages
//     continue outward through the LATE slots of the inward parity:
//     -r forwards mu(-q) at 2m + r - 2q - 1 (first hop at 2m - q).
//   * Right arm (the asymmetric half): +q launches its message outward at
//     q - 1 and separately inward at q; inward relays at 2q - r; left-arm
//     messages mu(-q) relay outward at 2q + r - 1; the center's message is
//     deliberately STUCK at +1 until time 2m + 1 and then chases the rest
//     (+r forwards it at 2m + r), arriving at the right end exactly at 3m;
//     inner-right messages fill the late slots (+r forwards mu(+q) at
//     2m + r - 2q, first hop at 2m - q + 1).
//
// Every send parity class of every processor is exactly packed; the
// binding arrivals are mu(+m) at the left end and mu(0) at the right end,
// both at time 3m = n + r - 1.  The test suite validates the schedule and
// its optimality for every m up to 60.
#pragma once

#include "model/schedule.h"

namespace mg::gossip {

/// Optimal schedule (total communication time n + r - 1 = 3m) for the
/// line network `graph::path(2m + 1)`.  Message ids are processor indices
/// (identity initial assignment); the center is processor m.
/// Requires m >= 1.
[[nodiscard]] model::Schedule line_optimal_gossip(std::uint32_t m);

/// The §1/§4 lower bound this schedule attains: 3m.
[[nodiscard]] constexpr std::size_t line_optimal_time(std::uint32_t m) {
  return 3u * static_cast<std::size_t>(m);
}

/// Even-line counterpart (beyond the paper, which only analyzes odd
/// lines): an optimal schedule for `graph::path(2m)` of total time
/// 3m - 2 = n + r - 2 — one round BELOW the odd-line bound pattern,
/// because the two near-center processors share the gathering role.
/// Construction: both centers gather their own arm (message at distance q
/// arrives at time 2q) and exchange streams every round (c1 receives the
/// right stream on odd rounds and its arm on even rounds, c2 vice versa);
/// arm processors run the launch-outward-then-inward discipline of the odd
/// construction, with outward traffic packed greedily into the remaining
/// send slots.  Optimality of 3m - 2 is certified by exhaustive search for
/// m <= 3 and the schedule is validator-checked for every m in the tests.
/// Requires m >= 1 (m == 1 is the 2-processor exchange, 1 round).
[[nodiscard]] model::Schedule even_line_gossip(std::uint32_t m);

/// The even-line optimum attained: 3m - 2 (1 when m == 1).
[[nodiscard]] constexpr std::size_t even_line_time(std::uint32_t m) {
  return m <= 1 ? 1 : 3u * static_cast<std::size_t>(m) - 2;
}

}  // namespace mg::gossip
