// Exact center finding at million-node scale.
//
// The paper's §3.1 tree construction needs one center vertex (a vertex of
// eccentricity == radius).  `compute_metrics` finds it by n BFS sweeps —
// O(mn), fine for laptop-toy graphs, hopeless at n = 10^6.  `find_center`
// keeps the answer *exact* while doing far fewer BFSes on graphs with
// distance spread:
//
//   1. Reference sweeps (iFUB-style): BFS from vertex 0, from the farthest
//      vertex a found, from the farthest vertex b from a (the classic
//      double sweep, giving a diameter lower bound d(a, b)), from a
//      midpoint of the a-b geodesic, and from the vertex farthest from
//      that midpoint.  Every reference r with eccentricity e and distance
//      vector d yields per-vertex bounds
//          L(v) = max(d(r, v), e - d(r, v))   <= ecc(v)
//          U(v) = d(r, v) + e                 >= ecc(v)
//      (the BFS triangle inequality).
//   2. Pruned candidate scan: the unevaluated vertices are ordered by
//      (L, U, id) ascending and evaluated in fixed-size blocks; a vertex
//      whose lower bound has reached the running best eccentricity is
//      pruned — it can tie the radius but never beat it — and because the
//      order is sorted by the frozen L the scan stops outright once the
//      remaining tail is all bounded away.  Block evaluation fans out over
//      the ThreadPool with one reusable BFS scratch buffer per slot; block
//      boundaries are fixed before evaluation and result application is
//      serial in candidate order, so the returned center is identical for
//      any thread count (including none).
//
// Exactness: every vertex is either BFS-evaluated (its eccentricity is
// known exactly) or pruned at a moment when L(v) >= best; `best` never
// increases, so at termination ecc(v) >= L(v) >= final best for every
// pruned v, and the final best — attained by an evaluated vertex — is the
// radius.  The center tie-break differs from `compute_metrics` (which
// returns the smallest-id vertex of minimum eccentricity): the hybrid
// returns the first vertex attaining the radius in its deterministic
// evaluation order.  Both are exact centers; tests assert
// ecc(center) == radius and cross-check the radius differentially.
//
// On vertex-transitive families (cycles, tori, hypercubes) every vertex is
// a center and every BFS triangle bound degenerates to L(v) < radius for
// all but antipodal vertices, so *no* certificate-based exact scan can beat
// Theta(n) BFSes there — docs/SCALING.md works the argument.  Those
// families get their center analytically (any vertex); the hybrid pays off
// on graphs whose distances concentrate (random regular, grids, the seeded
// test families).
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace mg {
class ThreadPool;
}

namespace mg::graph {

enum class CenterMode : std::uint8_t {
  kAuto,        ///< exhaustive below `exhaustive_threshold`, hybrid above
  kExhaustive,  ///< n BFS sweeps; center = smallest-id min-ecc vertex
  kHybrid,      ///< reference sweeps + pruned candidate scan (exact radius)
};

struct CenterOptions {
  CenterMode mode = CenterMode::kAuto;
  /// kAuto cutover: graphs up to this size take the exhaustive path, so the
  /// library keeps byte-identical trees on every pre-existing workload.
  Vertex exhaustive_threshold = 2048;
  /// Number of evaluated candidates whose distance vectors refresh the
  /// lower bounds during the scan (each refresh is an O(n) pass + an O(n)
  /// distance-vector copy, so this is bounded).
  std::uint32_t bound_update_budget = 48;
  /// Candidates evaluated per parallel batch.  Fixed independently of the
  /// thread count so block boundaries — and therefore the result — do not
  /// depend on parallelism.
  std::uint32_t block_size = 256;
};

struct CenterResult {
  std::uint32_t radius = 0;
  Vertex center = kNoVertex;   ///< a vertex with eccentricity == radius
  /// Best diameter lower bound seen (max eccentricity evaluated; exact
  /// diameter when the path was exhaustive).
  std::uint32_t diameter_lb = 0;
  std::uint64_t bfs_runs = 0;  ///< eccentricity BFSes actually performed
  std::uint64_t pruned = 0;    ///< vertices eliminated by lower bounds
  bool used_hybrid = false;
};

/// Finds an exact center of a connected graph.  When `pool` is non-null the
/// BFS work fans out over it; the result is independent of the thread
/// count.  Precondition: `g` is connected and n >= 1.
[[nodiscard]] CenterResult find_center(const Graph& g,
                                       ThreadPool* pool = nullptr,
                                       const CenterOptions& options = {});

}  // namespace mg::graph
