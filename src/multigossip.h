// Umbrella header for the multigossip library: gossiping (all-to-all
// broadcast) in the multicasting communication environment, after
//
//   T. F. Gonzalez, "Gossiping in the Multicasting Communication
//   Environment", IPPS 2001 (journal version: "An Efficient Algorithm for
//   Gossiping in the Multicasting Communication Environment").
//
// Typical use:
//
//   #include "multigossip.h"
//   auto g = mg::graph::random_geometric(100, 0.2, rng);
//   auto solution = mg::gossip::solve_gossip(g);   // n + radius rounds
//
// Layered structure (each header is independently includable):
//   support/  contracts, RNG, bitset, thread pool, table formatting
//   graph/    CSR graphs, generators, named paper networks, properties,
//             Hamiltonian search, products, enumeration, I/O
//   tree/     rooted trees, BFS / minimum-depth spanning trees, DFS labels
//   model/    schedules, the communication-model validator, statistics
//   fault/    composable fault plans: drops, crash-stop, per-edge delays
//   gossip/   the paper's algorithms and extensions, incl. self-healing
//   dist/     distributed online execution: per-processor actors, the
//             round-synchronized message bus, decentralized recovery, and
//             the differential gate against the central schedule
//   engine/   concurrent batch solver: sharded LRU schedule cache keyed by
//             graph fingerprint, single-flight miss coalescing,
//             fingerprint-delta invalidation
//   churn/    dynamic topology: seeded churn feeds, the mutable CSR
//             overlay, incremental spanning-tree maintenance, schedule
//             patching, and the online churn solver tying them together
//   mmc/      the multimessage-multicasting generalization
//   sim/      round-based execution, traces, fault injection, randomized
//             rumor spreading
#pragma once

#include "graph/enumeration.h"       // IWYU pragma: export
#include "graph/generators.h"        // IWYU pragma: export
#include "graph/graph.h"             // IWYU pragma: export
#include "graph/hamiltonian.h"       // IWYU pragma: export
#include "graph/interconnect.h"      // IWYU pragma: export
#include "graph/io.h"                // IWYU pragma: export
#include "graph/named.h"             // IWYU pragma: export
#include "graph/product.h"           // IWYU pragma: export
#include "graph/properties.h"        // IWYU pragma: export
#include "churn/feed.h"              // IWYU pragma: export
#include "churn/solver.h"            // IWYU pragma: export
#include "dist/actor.h"              // IWYU pragma: export
#include "dist/mailbox.h"            // IWYU pragma: export
#include "dist/runtime.h"            // IWYU pragma: export
#include "engine/engine.h"           // IWYU pragma: export
#include "fault/fault.h"             // IWYU pragma: export
#include "gossip/bounded_fanout.h"   // IWYU pragma: export
#include "gossip/bounds.h"           // IWYU pragma: export
#include "gossip/collectives.h"      // IWYU pragma: export
#include "gossip/broadcast.h"        // IWYU pragma: export
#include "gossip/classification.h"   // IWYU pragma: export
#include "gossip/concurrent_updown.h"  // IWYU pragma: export
#include "gossip/hamiltonian_gossip.h"  // IWYU pragma: export
#include "gossip/instance.h"         // IWYU pragma: export
#include "gossip/line_optimal.h"     // IWYU pragma: export
#include "gossip/online.h"           // IWYU pragma: export
#include "gossip/optimal_search.h"   // IWYU pragma: export
#include "gossip/recovery.h"         // IWYU pragma: export
#include "gossip/repeated.h"         // IWYU pragma: export
#include "gossip/simple.h"           // IWYU pragma: export
#include "gossip/solve.h"            // IWYU pragma: export
#include "gossip/telephone.h"        // IWYU pragma: export
#include "gossip/timetable.h"        // IWYU pragma: export
#include "gossip/updown.h"           // IWYU pragma: export
#include "gossip/weighted.h"         // IWYU pragma: export
#include "mmc/greedy.h"              // IWYU pragma: export
#include "mmc/problem.h"             // IWYU pragma: export
#include "model/comm_model.h"        // IWYU pragma: export
#include "model/legalize.h"          // IWYU pragma: export
#include "model/schedule.h"          // IWYU pragma: export
#include "model/stats.h"             // IWYU pragma: export
#include "model/validator.h"         // IWYU pragma: export
#include "sim/network_sim.h"         // IWYU pragma: export
#include "sim/randomized.h"          // IWYU pragma: export
#include "support/rng.h"             // IWYU pragma: export
#include "support/thread_pool.h"     // IWYU pragma: export
#include "tree/labeling.h"           // IWYU pragma: export
#include "tree/spanning_tree.h"      // IWYU pragma: export
