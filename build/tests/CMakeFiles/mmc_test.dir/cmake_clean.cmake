file(REMOVE_RECURSE
  "CMakeFiles/mmc_test.dir/mmc_test.cpp.o"
  "CMakeFiles/mmc_test.dir/mmc_test.cpp.o.d"
  "mmc_test"
  "mmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
