#include "obs/sampler.h"

#include <algorithm>
#include <ostream>

#include "obs/json.h"

namespace mg::obs {

Sampler::Sampler(Registry& registry, SamplerOptions options)
    : registry_(registry),
      options_(options),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.cadence <= std::chrono::milliseconds::zero()) {
    options_.cadence = std::chrono::milliseconds(1);
  }
}

Sampler::~Sampler() { stop(); }

bool Sampler::start() {
#if !MG_OBS_ENABLED
  return false;  // compiled out: no thread, no samples, ever
#else
  const std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return false;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run_loop(); });
  return true;
#endif
}

void Sampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool Sampler::running() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::uint64_t Sampler::samples_taken() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return taken_;
}

void Sampler::sample_now() {
  // Snapshot outside the sampler lock: the registry has its own mutex and
  // a snapshot can be slow next to a ring push.
  Sample sample;
  sample.snapshot = registry_.snapshot();
  const auto now = std::chrono::steady_clock::now();
  sample.t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());

  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ring_.empty()) sample.dt_ns = sample.t_ns - ring_.back().t_ns;
  // Counter deltas against the previous sample; both sides are sorted by
  // name (registry maps), so one merge pass suffices.
  sample.counter_deltas.reserve(sample.snapshot.counters.size());
  std::size_t j = 0;
  for (const auto& [name, value] : sample.snapshot.counters) {
    while (j < last_counters_.size() && last_counters_[j].first < name) ++j;
    const std::uint64_t previous =
        (j < last_counters_.size() && last_counters_[j].first == name)
            ? last_counters_[j].second
            : 0;
    // A registry reset between samples makes the counter look smaller;
    // clamp to zero rather than wrapping.
    sample.counter_deltas.emplace_back(
        name, value >= previous ? value - previous : 0);
  }
  last_counters_ = sample.snapshot.counters;
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) ring_.pop_front();
  ++taken_;
}

std::vector<Sample> Sampler::series() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

void Sampler::write_json(std::ostream& out) const {
  const std::vector<Sample> samples = series();
  JsonWriter w(out);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("cadence_ms",
          static_cast<std::uint64_t>(options_.cadence.count()));
  w.field("capacity", static_cast<std::uint64_t>(options_.capacity));
  w.field("samples_taken", samples_taken());
  w.key("samples").begin_array();
  for (const Sample& s : samples) {
    w.begin_object();
    w.field("t_ns", s.t_ns);
    w.field("dt_ns", s.dt_ns);
    w.key("counters").begin_object();
    for (const auto& [name, v] : s.snapshot.counters) w.field(name, v);
    w.end_object();
    w.key("counter_deltas").begin_object();
    for (const auto& [name, v] : s.counter_deltas) w.field(name, v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : s.snapshot.histograms) {
      w.key(name).begin_object();
      w.field("count", h.count);
      w.field("p50", h.p50);
      w.field("p90", h.p90);
      w.field("p99", h.p99);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Sampler::run_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    sample_now();
    lock.lock();
    cv_.wait_for(lock, options_.cadence, [this] { return stop_requested_; });
  }
}

}  // namespace mg::obs
