// Unit tests for the support kernel: contracts, RNG, bitset, thread pool,
// table formatting, stopwatch.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/bitset.h"
#include "support/contracts.h"
#include "support/fingerprint.h"
#include "support/rng.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace mg {
namespace {

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(MG_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(MG_EXPECTS(1 == 1));
}

TEST(Contracts, MessageCarriesContext) {
  try {
    MG_EXPECTS_MSG(false, "extra detail");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("extra detail"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsuresAndAssertDistinguishKinds) {
  try {
    MG_ENSURES(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
  try {
    MG_ASSERT(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 400; ++i) {
    const auto x = rng.range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, BelowZeroBoundIsContractViolation) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Bitset, SetTestResetCount) {
  DynamicBitset bits(130);
  EXPECT_TRUE(bits.none());
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, AllRequiresEveryBit) {
  DynamicBitset bits(66);
  for (std::size_t i = 0; i < 66; ++i) {
    EXPECT_FALSE(bits.all());
    bits.set(i);
  }
  EXPECT_TRUE(bits.all());
}

TEST(Bitset, OutOfRangeIsContractViolation) {
  DynamicBitset bits(8);
  EXPECT_THROW(bits.set(8), ContractViolation);
  EXPECT_THROW((void)bits.test(100), ContractViolation);
}

TEST(Bitset, EqualityComparesContents) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  b.set(3);
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SequentialReuse) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(10, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, SingleWorkerCoversAllIndices) {
  // The degenerate one-thread pool must still run every iteration (the
  // engine and benches construct pools of exactly this size).
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(500, 0);  // single worker: no data race
  pool.parallel_for(500, [&](std::size_t i) { hits[i]++; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SingleWorkerZeroTasksIsNoop) {
  ThreadPool pool(1);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SingleWorkerPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(20,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, OneTaskOnManyThreads) {
  // count < thread_count: only one chunk exists; the rest of the pool
  // must stay parked and the single index still runs exactly once.
  ThreadPool pool(8);
  std::atomic<int> runs{0};
  std::atomic<std::size_t> seen{1234};
  pool.parallel_for(1, [&](std::size_t i) {
    runs++;
    seen = i;
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(seen.load(), 0u);
}

TEST(ThreadPool, EveryChunkThrowingRethrowsExactlyOne) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(64, [](std::size_t i) {
      throw std::runtime_error("chunk " + std::to_string(i));
    });
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
  }
}

TEST(ThreadPool, UsableAfterException) {
  // An exception must not poison the pool: workers survive and later
  // parallel_for calls complete normally.
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(30, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 100);
}

TEST(Fingerprint, DeterministicAcrossInstances) {
  Fingerprint64 a;
  Fingerprint64 b;
  for (std::uint64_t w : {1ULL, 2ULL, 3ULL, 0ULL, 0xffffffffffffffffULL}) {
    a.update(w);
    b.update(w);
  }
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Fingerprint, OrderAndLengthSensitive) {
  Fingerprint64 ab;
  ab.update(1);
  ab.update(2);
  Fingerprint64 ba;
  ba.update(2);
  ba.update(1);
  EXPECT_NE(ab.digest(), ba.digest());

  Fingerprint64 a;
  a.update(1);
  EXPECT_NE(a.digest(), ab.digest());
  // Trailing zeros are part of the stream, not absorbed.
  Fingerprint64 a0;
  a0.update(1);
  a0.update(0);
  EXPECT_NE(a.digest(), a0.digest());
}

TEST(Fingerprint, SeedSeparatesDomains) {
  Fingerprint64 a(1);
  Fingerprint64 b(2);
  a.update(7);
  b.update(7);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fingerprint, NoCollisionsOverStructuredSweep) {
  // 4096 short structured streams (the shape graph_fingerprint emits):
  // every digest distinct.  Not a proof, but a strong smoke test of the
  // mixing quality the schedule cache relies on.
  std::set<std::uint64_t> digests;
  for (std::uint64_t n = 0; n < 64; ++n) {
    for (std::uint64_t d = 0; d < 64; ++d) {
      Fingerprint64 h;
      h.update(n);
      h.update(d);
      h.update(n * 64 + d);
      digests.insert(h.digest());
    }
  }
  EXPECT_EQ(digests.size(), 64u * 64u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.new_row();
  t.cell(std::string("Time"));
  t.cell(std::string("x"));
  t.new_row();
  t.cell(std::string("a"));
  t.cell(12345);
  const std::string out = t.render();
  EXPECT_NE(out.find("| Time |"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TextTable, CellBeforeRowIsContractViolation) {
  TextTable t;
  EXPECT_THROW(t.cell(std::string("x")), ContractViolation);
}

TEST(TextTable, DoubleCellFormatsPrecision) {
  TextTable t;
  t.new_row();
  t.cell(3.14159, 3);
  EXPECT_NE(t.render(false).find("3.142"), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.millis(), 5.0);
  sw.restart();
  EXPECT_LT(sw.millis(), 5.0);
}

}  // namespace
}  // namespace mg
