// Graph family generators: the workloads for every benchmark and property
// test.  Families mirror the networks the paper discusses (cycles/Fig. 1,
// straight lines/§1 and §4, trees/§3.2) plus the standard interconnection
// topologies of the gossiping literature (grids, tori, hypercubes, ...) and
// the random families motivating multicast (wireless/sensor geometric
// graphs, §2).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace mg::graph {

/// Straight-line network 0-1-2-...-(n-1) (the paper's lower-bound family).
[[nodiscard]] Graph path(Vertex n);

/// Cycle 0-1-...-(n-1)-0 (the paper's Fig. 1 network N1).  Requires n >= 3.
[[nodiscard]] Graph cycle(Vertex n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(Vertex n);

/// Complete bipartite graph K_{a,b} (vertices 0..a-1 vs a..a+b-1).
[[nodiscard]] Graph complete_bipartite(Vertex a, Vertex b);

/// Star K_{1,n-1} with center 0.  Requires n >= 2.
[[nodiscard]] Graph star(Vertex n);

/// Wheel: cycle on n-1 vertices plus a hub (vertex 0).  Requires n >= 4.
[[nodiscard]] Graph wheel(Vertex n);

/// rows x cols grid (4-neighborhood).  Requires rows, cols >= 1.
[[nodiscard]] Graph grid(Vertex rows, Vertex cols);

/// rows x cols torus (wrap-around grid).  Requires rows, cols >= 3.
[[nodiscard]] Graph torus(Vertex rows, Vertex cols);

/// x * y * z 3D torus (6-neighborhood with wrap-around), the standard HPC
/// interconnect at million-node scale.  Requires x, y, z >= 3.
[[nodiscard]] Graph torus3d(Vertex x, Vertex y, Vertex z);

/// Hypercube Q_d on 2^d vertices.  Requires 1 <= dim <= 24.
[[nodiscard]] Graph hypercube(unsigned dim);

/// Complete k-ary tree truncated to n vertices in level order.
/// Requires n >= 1 and k >= 1.
[[nodiscard]] Graph k_ary_tree(Vertex n, Vertex k);

/// Caterpillar: a spine path with `legs` pendant leaves per spine vertex.
[[nodiscard]] Graph caterpillar(Vertex spine, Vertex legs);

/// Binomial tree B_k on 2^k vertices (the classic gossip/broadcast tree).
[[nodiscard]] Graph binomial_tree(unsigned order);

/// Lollipop: K_c clique attached to a path of `tail` extra vertices.
[[nodiscard]] Graph lollipop(Vertex clique, Vertex tail);

/// Uniform random labelled tree via a Pruefer sequence.  Requires n >= 1.
[[nodiscard]] Graph random_tree(Vertex n, Rng& rng);

/// G(n, p) conditioned on connectivity: edges are sampled i.i.d. and a
/// random spanning tree is overlaid so the result is always connected.
[[nodiscard]] Graph random_connected_gnp(Vertex n, double p, Rng& rng);

/// Random geometric graph in the unit square, vertices joined when within
/// `radius` (the wireless/sensor-network motivation of §2).  A spanning
/// chain over the x-sorted order is overlaid to guarantee connectivity.
[[nodiscard]] Graph random_geometric(Vertex n, double radius, Rng& rng);

/// Random d-regular-ish graph via the pairing model; pairs producing
/// self-loops or duplicates are dropped, then connectivity is enforced by a
/// spanning cycle.  Requires n*d even, d < n.
[[nodiscard]] Graph random_regular(Vertex n, Vertex d, Rng& rng);

/// Exactly d-regular random graph via the configuration model: all n*d
/// stubs are shuffled and paired, and the whole pairing is resampled until
/// it is simple (no self-loops or multi-edges) and connected — so every
/// vertex has degree exactly d, unlike `random_regular`'s spanning-cycle
/// overlay.  O(m) per attempt; for d >= 3 the acceptance probability tends
/// to a constant (~ e^{-(d^2-1)/4}), so expected work is O(m).  Requires
/// n*d even, 3 <= d < n.
[[nodiscard]] Graph random_regular_configuration(Vertex n, Vertex d,
                                                 Rng& rng);

}  // namespace mg::graph
