file(REMOVE_RECURSE
  "CMakeFiles/fanout_sweep.dir/fanout_sweep.cpp.o"
  "CMakeFiles/fanout_sweep.dir/fanout_sweep.cpp.o.d"
  "fanout_sweep"
  "fanout_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanout_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
