#include "gossip/concurrent_updown.h"

#include <algorithm>
#include <vector>

#include "obs/span.h"
#include "support/contracts.h"

namespace mg::gossip {

namespace {

using model::Message;
using model::Schedule;
using model::Transmission;
using tree::Label;
using tree::Vertex;

/// One sender-side event; receivers stay sorted for Schedule::add.
struct SendEvent {
  std::size_t time = 0;
  Message message = 0;
  Vertex sender = 0;
  std::vector<Vertex> receivers;
};

std::vector<SendEvent> up_events(const Instance& instance,
                                 const ConcurrentUpDownOptions& options) {
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  std::vector<SendEvent> events;
  for (Vertex v = 0; v < tree.vertex_count(); ++v) {
    if (tree.is_root(v)) continue;
    const Label i = labels.label(v);
    const Label j = labels.subtree_end(v);
    const std::uint32_t k = tree.level(v);
    const std::uint32_t w =
        options.lookahead_at_time_zero ? labels.lip_count(v) : 0;
    MG_ASSERT(i >= k);  // DFS preorder label is at least the depth
    // (U3): the lip-message leaves for the parent at time 0.
    if (w == 1) {
      events.push_back({0, i, v, {tree.parent(v)}});
    }
    // (U4): rip-messages i+w..j leave sequentially at times i-k+w..j-k.
    for (Label m = i + w; m <= j; ++m) {
      events.push_back({m - k, m, v, {tree.parent(v)}});
    }
  }
  return events;
}

std::vector<SendEvent> down_events(const Instance& instance) {
  const auto& tree = instance.tree();
  const auto& labels = instance.labels();
  const Vertex n = tree.vertex_count();
  std::vector<SendEvent> events;
  // (D1) arrivals from the parent, filled in top-down while emitting the
  // parents' (D2)/(D3) sends; preorder guarantees parents are processed
  // before their children.
  std::vector<std::vector<std::pair<std::size_t, Message>>> arrivals(n);

  auto emit = [&](std::size_t t, Message m, Vertex sender,
                  std::vector<Vertex> receivers) {
    for (Vertex r : receivers) arrivals[r].emplace_back(t + 1, m);
    events.push_back({t, m, sender, std::move(receivers)});
  };

  for (Vertex v : tree.preorder()) {
    if (tree.is_leaf(v)) continue;
    const Label i = labels.label(v);
    const Label j = labels.subtree_end(v);
    const std::uint32_t k = tree.level(v);
    const auto kids = tree.children(v);
    const std::vector<Vertex> children(kids.begin(), kids.end());

    // (D3): b-messages i..j go down at times i-k..j-k in label order, each
    // skipping the child that already owns it; message i goes to all
    // children, delayed to time j-k+1 when i == k (it would otherwise
    // collide with the first child's (U1) lookahead receive at time 1).
    for (Label m = i; m <= j; ++m) {
      std::vector<Vertex> receivers;
      if (m == i) {
        receivers = children;
      } else {
        const Vertex owner = labels.child_owning(v, m);
        receivers.reserve(children.size() - 1);
        for (Vertex c : children) {
          if (c != owner) receivers.push_back(c);
        }
        if (receivers.empty()) continue;
      }
      const std::size_t t = (m == i && i == k)
                                ? static_cast<std::size_t>(j - k + 1)
                                : static_cast<std::size_t>(m - k);
      emit(t, m, v, std::move(receivers));
    }

    // (D2): o-messages relayed to all children the round they arrive from
    // the parent, except arrivals at times i-k and i-k+1, which wait until
    // j-k+1 and j-k+2 (the send slots i-k..j-k are taken by (D3)).
    if (!tree.is_root(v)) {
      auto relayed = arrivals[v];  // copy: emit() grows arrivals of children
      std::sort(relayed.begin(), relayed.end());
      for (const auto& [t_arrive, m] : relayed) {
        MG_ASSERT_MSG(!labels.is_body(v, m),
                      "parent never sends v its own subtree's messages");
        std::size_t t_send = t_arrive;
        if (t_arrive == static_cast<std::size_t>(i - k)) {
          t_send = j - k + 1;
        } else if (t_arrive == static_cast<std::size_t>(i - k) + 1) {
          t_send = static_cast<std::size_t>(j - k) + 2;
        }
        emit(t_send, m, v, children);
      }
    }
  }
  return events;
}

Schedule merge_events(std::vector<SendEvent> up, std::vector<SendEvent> down) {
  std::vector<SendEvent> all;
  all.reserve(up.size() + down.size());
  std::move(up.begin(), up.end(), std::back_inserter(all));
  std::move(down.begin(), down.end(), std::back_inserter(all));
  std::sort(all.begin(), all.end(), [](const SendEvent& a, const SendEvent& b) {
    return std::tie(a.time, a.sender, a.message) <
           std::tie(b.time, b.sender, b.message);
  });

  Schedule schedule;
  for (std::size_t idx = 0; idx < all.size();) {
    SendEvent& event = all[idx];
    std::vector<Vertex> receivers = std::move(event.receivers);
    std::size_t next = idx + 1;
    while (next < all.size() && all[next].time == event.time &&
           all[next].sender == event.sender) {
      // Theorem 1: overlapping up/down sends always carry the same message,
      // so they fuse into one multicast (parent + child subset).
      MG_ASSERT_MSG(all[next].message == event.message,
                    "up/down schedules send different messages at one time");
      receivers.insert(receivers.end(), all[next].receivers.begin(),
                       all[next].receivers.end());
      ++next;
    }
    std::sort(receivers.begin(), receivers.end());
    receivers.erase(std::unique(receivers.begin(), receivers.end()),
                    receivers.end());
    schedule.add(event.time,
                 Transmission{event.message, event.sender, std::move(receivers)});
    idx = next;
  }
  schedule.trim();
  return schedule;
}

}  // namespace

Schedule propagate_up(const Instance& instance,
                      const ConcurrentUpDownOptions& options) {
  Schedule schedule;
  for (auto& event : up_events(instance, options)) {
    schedule.add(event.time, Transmission{event.message, event.sender,
                                          std::move(event.receivers)});
  }
  schedule.trim();
  return schedule;
}

Schedule propagate_down(const Instance& instance) {
  Schedule schedule;
  auto events = down_events(instance);
  std::sort(events.begin(), events.end(),
            [](const SendEvent& a, const SendEvent& b) {
              return std::tie(a.time, a.sender) < std::tie(b.time, b.sender);
            });
  for (auto& event : events) {
    schedule.add(event.time, Transmission{event.message, event.sender,
                                          std::move(event.receivers)});
  }
  schedule.trim();
  return schedule;
}

Schedule concurrent_updown(const Instance& instance,
                           const ConcurrentUpDownOptions& options) {
  MG_OBS_SPAN(algo_span, "gossip.concurrent_updown");
  return merge_events(up_events(instance, options), down_events(instance));
}

}  // namespace mg::gossip
