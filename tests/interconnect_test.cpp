// Tests for the interconnection-network generators: sizes, regularity,
// connectivity and known metric values, plus end-to-end gossip on each.
#include <gtest/gtest.h>

#include "gossip/solve.h"
#include "graph/interconnect.h"
#include "graph/properties.h"
#include "support/contracts.h"

namespace mg::graph {
namespace {

TEST(Interconnect, DeBruijnShape) {
  const Graph g = de_bruijn(4);
  EXPECT_EQ(g.vertex_count(), 16u);
  EXPECT_TRUE(is_connected(g));
  const auto stats = degree_stats(g);
  EXPECT_LE(stats.max, 4u);  // in+out degree 2+2, minus loops/doubles
  // Diameter of B(2, d) is d.
  EXPECT_EQ(compute_metrics(g).diameter, 4u);
}

TEST(Interconnect, DeBruijnSelfLoopsExcluded) {
  const Graph g = de_bruijn(3);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    for (Vertex u : g.neighbors(v)) EXPECT_NE(u, v);
  }
}

TEST(Interconnect, KautzShape) {
  const Graph g = kautz(3);
  EXPECT_EQ(g.vertex_count(), 12u);  // 3 * 2^(3-1)
  EXPECT_TRUE(is_connected(g));
  // Diameter of K(2, d) is d.
  EXPECT_EQ(compute_metrics(g).diameter, 3u);
}

TEST(Interconnect, ShuffleExchangeShape) {
  const Graph g = shuffle_exchange(4);
  EXPECT_EQ(g.vertex_count(), 16u);
  EXPECT_TRUE(is_connected(g));
  const auto stats = degree_stats(g);
  EXPECT_LE(stats.max, 3u);  // shuffle in/out + exchange
}

TEST(Interconnect, CubeConnectedCyclesShape) {
  const Graph g = cube_connected_cycles(3);
  EXPECT_EQ(g.vertex_count(), 24u);  // 3 * 2^3
  EXPECT_TRUE(is_connected(g));
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g.degree(v), 3u);  // CCC is 3-regular
  }
}

TEST(Interconnect, WrappedButterflyShape) {
  const Graph g = wrapped_butterfly(3);
  EXPECT_EQ(g.vertex_count(), 24u);
  EXPECT_TRUE(is_connected(g));
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);  // wrapped butterfly is 4-regular
  }
}

TEST(Interconnect, CirculantShape) {
  const std::vector<Vertex> offsets{1, 3};
  const Graph g = circulant(12, offsets);
  EXPECT_EQ(g.vertex_count(), 12u);
  for (Vertex v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(0, 9));  // wrap-around
  // Vertex-transitive: radius == diameter.
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.radius, m.diameter);
}

TEST(Interconnect, CirculantWithHalfOffset) {
  const std::vector<Vertex> offsets{1, 4};
  const Graph g = circulant(8, offsets);  // offset n/2: antipodal matching
  EXPECT_EQ(g.degree(0), 3u);             // 1, 7, 4
}

TEST(Interconnect, CirculantOffsetValidation) {
  const std::vector<Vertex> bad{5};
  EXPECT_THROW((void)circulant(8, bad), ContractViolation);
  const std::vector<Vertex> zero{0};
  EXPECT_THROW((void)circulant(8, zero), ContractViolation);
}

TEST(Interconnect, ChordalRingShape) {
  const Graph g = chordal_ring(12, 5);
  EXPECT_EQ(g.vertex_count(), 12u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(0, 5));
  EXPECT_FALSE(g.has_edge(1, 6));  // chords only at even vertices
  EXPECT_THROW((void)chordal_ring(12, 4), ContractViolation);  // even chord
  EXPECT_THROW((void)chordal_ring(7, 3), ContractViolation);   // odd n
}

TEST(Interconnect, GossipRunsOnEveryTopology) {
  const std::vector<Graph> graphs = {
      de_bruijn(4),  kautz(3),   shuffle_exchange(4), cube_connected_cycles(3),
      wrapped_butterfly(3), chordal_ring(16, 5),
  };
  for (const auto& g : graphs) {
    const auto sol = gossip::solve_gossip(g);
    ASSERT_TRUE(sol.report.ok) << sol.report.error;
    EXPECT_EQ(sol.schedule.total_time(),
              g.vertex_count() + sol.instance.radius());
  }
}

}  // namespace
}  // namespace mg::graph
