// Observability primitives: monotonic counters and accumulating timers.
//
// Both are thread-safe (relaxed atomics — metrics need no ordering
// guarantees) and trivially cheap: an enabled counter increment is one
// relaxed fetch_add, a disabled one (see registry.h) lands on a shared
// scratch cell without ever taking a lock or allocating.  All hot-path
// instrumentation goes through the MG_OBS_* macros in registry.h so it can
// also be compiled out entirely.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/stopwatch.h"

namespace mg::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulating wall-clock timer: total nanoseconds across `count` spans.
class Timer {
 public:
  void record_ns(std::uint64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  void reset() {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII span: records the elapsed wall time into a Timer on destruction.
class ScopeTimer {
 public:
  explicit ScopeTimer(Timer& timer) : timer_(&timer) {}
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  ~ScopeTimer() {
    timer_->record_ns(static_cast<std::uint64_t>(watch_.seconds() * 1e9));
  }

 private:
  Timer* timer_;
  Stopwatch watch_;
};

}  // namespace mg::obs
