// Compiled flat execution form of a Schedule.
//
// `model::Schedule` is built for construction and inspection: a vector of
// rounds, each a vector of Transmissions, each owning a receiver vector —
// three pointer hops and one heap allocation per tuple.  Executing a
// schedule (the simulator's job) only ever walks it front to back, so the
// compiled form lays the same data out as two CSR levels over three
// contiguous arrays:
//
//   round_offsets_[t] .. round_offsets_[t+1]   -> transmissions of round t
//   tx.receivers_begin .. + tx.receiver_count  -> that tuple's D set
//
// 16 bytes per transmission + 4 bytes per delivery, one allocation each,
// sequential access — the difference between executing a million-node
// broadcast from cache and chasing a million little vectors.  Iteration
// order (rounds, transmissions within a round, receivers within a D set)
// is exactly the source schedule's, so a compiled execution is
// event-for-event identical to the original.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/schedule.h"

namespace mg::model {

class CompiledSchedule {
 public:
  struct Tx {
    Message message = 0;
    Vertex sender = 0;
    std::uint32_t receivers_begin = 0;
    std::uint32_t receiver_count = 0;
  };

  CompiledSchedule() = default;

  /// Flattens `schedule` in O(transmissions + deliveries).
  static CompiledSchedule compile(const Schedule& schedule);

  [[nodiscard]] std::size_t round_count() const {
    return round_offsets_.empty() ? 0 : round_offsets_.size() - 1;
  }
  [[nodiscard]] std::span<const Tx> round(std::size_t t) const {
    return {tx_.data() + round_offsets_[t],
            round_offsets_[t + 1] - round_offsets_[t]};
  }
  [[nodiscard]] std::span<const Vertex> receivers(const Tx& tx) const {
    return {receivers_.data() + tx.receivers_begin, tx.receiver_count};
  }
  [[nodiscard]] std::size_t transmission_count() const { return tx_.size(); }
  [[nodiscard]] std::size_t delivery_count() const {
    return receivers_.size();
  }

 private:
  std::vector<std::size_t> round_offsets_;  // size rounds+1 (or empty)
  std::vector<Tx> tx_;
  std::vector<Vertex> receivers_;
};

}  // namespace mg::model
