#include "model/comm_model.h"

#include <algorithm>
#include <bit>

#include "support/contracts.h"

namespace mg::model {

namespace {

/// ceil(log2 n) + 1: bits to name one of n messages plus a framing bit —
/// the per-hop slot count of the beep serialization.
std::size_t bits_per_message(graph::Vertex n) {
  if (n <= 1) return 1;
  return static_cast<std::size_t>(std::bit_width(n - 1u)) + 1;
}

class MulticastModel final : public CommModel {
 public:
  [[nodiscard]] ModelKind kind() const override {
    return ModelKind::kMulticast;
  }
  [[nodiscard]] std::string name() const override { return "multicast"; }
};

class TelephoneModel final : public CommModel {
 public:
  [[nodiscard]] ModelKind kind() const override {
    return ModelKind::kTelephone;
  }
  [[nodiscard]] std::string name() const override { return "telephone"; }

  [[nodiscard]] std::string receiver_set_error(
      const graph::Graph&, graph::Vertex,
      const std::vector<graph::Vertex>& receivers) const override {
    if (receivers.size() != 1) return "multicast under telephone model";
    return {};
  }
};

/// Shared structural rules of the broadcast-channel models (radio, beep):
/// a transmission reaches the sender's entire neighborhood — no receiver
/// addressing — so the schedule's D set must be exactly N(sender).
class BroadcastChannelModel : public CommModel {
 public:
  [[nodiscard]] std::string receiver_set_error(
      const graph::Graph& g, graph::Vertex sender,
      const std::vector<graph::Vertex>& receivers) const override {
    const auto neighbors = g.neighbors(sender);
    if (receivers.size() == neighbors.size() &&
        std::equal(receivers.begin(), receivers.end(), neighbors.begin())) {
      return {};
    }
    return name() +
           " transmission must reach the sender's entire neighborhood";
  }

  [[nodiscard]] bool exclusive_receivers() const override { return false; }
};

class RadioModel final : public BroadcastChannelModel {
 public:
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kRadio; }
  [[nodiscard]] std::string name() const override { return "radio"; }
};

class BeepModel final : public BroadcastChannelModel {
 public:
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kBeep; }
  [[nodiscard]] std::string name() const override { return "beep"; }

  [[nodiscard]] std::size_t round_cost(graph::Vertex n) const override {
    return bits_per_message(n);
  }
};

class DirectModel final : public CommModel {
 public:
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kDirect; }
  [[nodiscard]] std::string name() const override { return "direct"; }
  [[nodiscard]] bool requires_adjacency() const override { return false; }
};

}  // namespace

std::string CommModel::receiver_set_error(
    const graph::Graph&, graph::Vertex,
    const std::vector<graph::Vertex>&) const {
  return {};
}

std::size_t CommModel::round_cost(graph::Vertex) const { return 1; }

const CommModel& multicast_model() {
  static const MulticastModel model;
  return model;
}

const CommModel& telephone_model() {
  static const TelephoneModel model;
  return model;
}

const CommModel& radio_model() {
  static const RadioModel model;
  return model;
}

const CommModel& beep_model() {
  static const BeepModel model;
  return model;
}

const CommModel& direct_model() {
  static const DirectModel model;
  return model;
}

const CommModel& builtin_model(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMulticast:
      return multicast_model();
    case ModelKind::kTelephone:
      return telephone_model();
    case ModelKind::kRadio:
      return radio_model();
    case ModelKind::kBeep:
      return beep_model();
    case ModelKind::kDirect:
      return direct_model();
  }
  MG_EXPECTS(false);
  return multicast_model();
}

const std::vector<const CommModel*>& all_models() {
  static const std::vector<const CommModel*> models = {
      &multicast_model(), &telephone_model(), &radio_model(), &beep_model(),
      &direct_model()};
  return models;
}

}  // namespace mg::model
