// Tests for the Instance bundle and the timetable extraction (directly,
// beyond their use inside the paper-table assertions).
#include <gtest/gtest.h>

#include "gossip/concurrent_updown.h"
#include "gossip/instance.h"
#include "gossip/timetable.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "graph/properties.h"
#include "support/contracts.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

TEST(Instance, FromNetworkUsesTheRadius) {
  const auto g = graph::grid(3, 7);
  const auto instance = Instance::from_network(g);
  EXPECT_EQ(instance.radius(), graph::compute_metrics(g).radius);
  EXPECT_EQ(instance.vertex_count(), g.vertex_count());
}

TEST(Instance, InitialMapsVerticesToTheirLabels) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto init = instance.initial();
  ASSERT_EQ(init.size(), 16u);
  for (graph::Vertex v = 0; v < 16; ++v) {
    EXPECT_EQ(init[v], instance.labels().label(v));
    EXPECT_EQ(instance.labels().vertex_of(init[v]), v);
  }
}

TEST(Instance, MoveKeepsLabelTreeConsistent) {
  Instance a = Instance::from_network(graph::cycle(9));
  const auto root = a.tree().root();
  Instance b = std::move(a);
  // The labeling must still reference the (moved) tree correctly.
  EXPECT_EQ(b.tree().root(), root);
  EXPECT_EQ(b.labels().label(root), 0u);
  EXPECT_EQ(b.labels().subtree_end(root), 8u);
}

TEST(Instance, WrapsArbitraryTrees) {
  const Instance chain(tree::root_tree_graph(graph::path(6), 0));
  EXPECT_EQ(chain.radius(), 5u);  // height of the chain, not the radius
  EXPECT_EQ(chain.tree().root(), 0u);
}

TEST(Timetable, RowsHaveUniformHorizon) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = concurrent_updown(instance);
  for (graph::Vertex v : {0u, 3u, 8u, 15u}) {
    const auto table = vertex_timetable(instance, schedule, v);
    const std::size_t horizon = schedule.total_time() + 1;
    EXPECT_EQ(table.receive_from_parent.size(), horizon);
    EXPECT_EQ(table.receive_from_child.size(), horizon);
    EXPECT_EQ(table.send_to_parent.size(), horizon);
    EXPECT_EQ(table.send_to_children.size(), horizon);
    EXPECT_EQ(table.vertex, v);
  }
}

TEST(Timetable, LeafHasNoChildTraffic) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = concurrent_updown(instance);
  const auto table = vertex_timetable(instance, schedule, 3);  // a leaf
  for (const auto& cell : table.receive_from_child) {
    EXPECT_FALSE(cell.has_value());
  }
  for (const auto& cell : table.send_to_children) {
    EXPECT_FALSE(cell.has_value());
  }
}

TEST(Timetable, ReceiveCountsMatchGossipRequirement) {
  const auto instance = Instance::from_network(graph::grid(3, 4));
  const auto schedule = concurrent_updown(instance);
  for (graph::Vertex v = 0; v < 12; ++v) {
    const auto table = vertex_timetable(instance, schedule, v);
    std::size_t receipts = 0;
    for (const auto& cell : table.receive_from_parent) {
      receipts += cell.has_value() ? 1u : 0u;
    }
    for (const auto& cell : table.receive_from_child) {
      receipts += cell.has_value() ? 1u : 0u;
    }
    EXPECT_EQ(receipts, 11u) << "vertex " << v;  // n - 1 distinct messages
  }
}

TEST(Timetable, RenderSkipsEmptyRows) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = concurrent_updown(instance);
  const auto root_text =
      render_timetable(vertex_timetable(instance, schedule, 0));
  EXPECT_EQ(root_text.find("Receive from Parent"), std::string::npos);
  EXPECT_NE(root_text.find("Send to Children"), std::string::npos);
}

TEST(Timetable, OutOfRangeVertexRejected) {
  const auto instance = Instance::from_network(graph::path(4));
  const auto schedule = concurrent_updown(instance);
  EXPECT_THROW((void)vertex_timetable(instance, schedule, 9),
               ContractViolation);
}

}  // namespace
}  // namespace mg::gossip
