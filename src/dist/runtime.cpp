#include "dist/runtime.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "gossip/online.h"
#include "obs/causal.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "support/contracts.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace mg::dist {

using graph::Vertex;
using model::Message;

namespace {

/// Mirrors one happens-before link into the global causal ring (a single
/// relaxed load while the tracer is disabled; nothing at all when the
/// build compiled observability out).
void mirror_causal(const CausalLink& link) {
#if MG_OBS_ENABLED
  obs::CausalTracer::global().try_record(
      {link.id, link.parent, static_cast<std::uint32_t>(link.kind),
       link.round, link.sender, link.message, link.fanout});
#else
  (void)link;
#endif
}

}  // namespace

struct ActorRuntime::Impl {
  const gossip::Instance* instance;
  const graph::Graph* network;
  RuntimeOptions options;
  std::vector<ProcessorActor> actors;
  std::unique_ptr<ThreadPool> pool;
  bool ran = false;

  Impl(const gossip::Instance& inst, const graph::Graph& net,
       const RuntimeOptions& opts)
      : instance(&inst), network(&net), options(opts) {
    MG_EXPECTS(net.vertex_count() == inst.vertex_count());
    if (options.threads > 0) {
      pool = std::make_unique<ThreadPool>(options.threads);
    }
  }

  [[nodiscard]] Vertex n() const { return instance->vertex_count(); }

  /// Runs `body(v)` for every actor, over the pool when one exists.
  void for_each_actor(const std::function<void(std::size_t)>& body) {
    if (pool != nullptr) {
      pool->parallel_for(actors.size(), body);
    } else {
      for (std::size_t v = 0; v < actors.size(); ++v) body(v);
    }
  }

  void emit(const obs::TraceEvent& event) {
    if (options.sink != nullptr) options.sink->on_event(event);
  }

  RunReport run(std::size_t horizon);
};

ActorRuntime::ActorRuntime(const gossip::Instance& instance,
                           const graph::Graph& network,
                           const RuntimeOptions& options)
    : impl_(std::make_unique<Impl>(instance, network, options)) {}

ActorRuntime::~ActorRuntime() = default;

namespace {

std::vector<Vertex> network_neighbors(const graph::Graph& g, Vertex v) {
  const auto span = g.neighbors(v);
  return {span.begin(), span.end()};
}

}  // namespace

void ActorRuntime::use_online_rule() {
  Impl& im = *impl_;
  MG_EXPECTS(im.actors.empty());
  const Vertex n = im.n();
  im.actors.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    im.actors.emplace_back(
        v, n, im.instance->labels().label(v),
        network_neighbors(*im.network, v),
        std::make_unique<OnlineRule>(gossip::local_info_for(*im.instance, v)));
  }
}

void ActorRuntime::use_timetable(const model::Schedule& schedule) {
  Impl& im = *impl_;
  MG_EXPECTS(im.actors.empty());
  const Vertex n = im.n();
  im.actors.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    im.actors.emplace_back(v, n, im.instance->labels().label(v),
                           network_neighbors(*im.network, v),
                           std::make_unique<TimetableRule>(schedule, v));
  }
}

RunReport ActorRuntime::run(std::size_t horizon) {
  Impl& im = *impl_;
  MG_EXPECTS(!im.actors.empty());  // pick a rule first
  MG_EXPECTS(!im.ran);
  im.ran = true;

  MG_OBS_SPAN(dist_span, "dist.run");
  MG_OBS_SCOPE_HIST(dist_hist, "dist.run_ns");

  const Vertex n = im.n();
  const fault::FaultPlan* plan =
      im.options.faults != nullptr && !im.options.faults->empty()
          ? im.options.faults
          : nullptr;
  const std::size_t max_delay = plan != nullptr ? plan->max_extra_delay() : 0;
  const tree::RootedTree& tree = im.instance->tree();

  MailboxBus bus(n, im.options.seed, max_delay);
  RunReport report;
  report.horizon = horizon;

  std::vector<Outbox> out(n);
  // (receiver, delay, envelope) triples the route phase posts concurrently,
  // pre-partitioned by sender so workers never share a slot.
  std::vector<std::vector<std::tuple<Vertex, std::size_t, Envelope>>> wire(n);
  // Trace ids for the happens-before record: one per logical transmission
  // (data multicast, digest fan-out, grant), assigned in the serial
  // capture phases, so ids are deterministic under a fixed seed.
  std::uint64_t next_trace = 0;

  auto route_wire = [&] {
    im.for_each_actor([&](std::size_t v) {
      for (auto& [to, delay, envelope] : wire[v]) {
        bus.post(to, delay, std::move(envelope));
      }
      wire[v].clear();
    });
  };

  // Applies the fabric's verdict to actor v's data transmission at absolute
  // round `abs_t` and, when it survives, captures events/schedule rows and
  // stages the envelopes.  Serial (called in actor-id order).
  auto capture_data = [&](Vertex v, std::size_t abs_t, model::Schedule& into,
                          std::size_t local_t, bool main_phase) {
    if (!out[v].data.has_value()) return;
    const model::Transmission& tx = *out[v].data;
    const Vertex first_receiver =
        tx.receivers.empty() ? tx.sender : tx.receivers.front();
    if (plan != nullptr && plan->crashed(v, abs_t)) {
      ++report.crashed_sends;
      im.emit({"crash", abs_t, v, tx.message, first_receiver,
                        tx.receivers.size()});
      return;
    }
    if (plan != nullptr && plan->drops(abs_t, v)) {
      ++report.injected_drops;
      im.emit({"drop", abs_t, v, tx.message, first_receiver,
                        tx.receivers.size()});
      return;
    }
    if (out[v].skipped) {
      ++report.skipped_sends;
      im.emit({"skip", abs_t, v, tx.message, first_receiver,
                        tx.receivers.size()});
      return;
    }
    ++report.messages;
    const std::uint64_t id = ++next_trace;
    report.causal.push_back({id, out[v].data_cause,
                             main_phase ? CausalLink::Kind::kData
                                        : CausalLink::Kind::kRepair,
                             abs_t, v, tx.message, tx.receivers.size()});
    mirror_causal(report.causal.back());
    im.emit({"send", abs_t, v, tx.message, first_receiver,
             tx.receivers.size(), id, out[v].data_cause});
    into.add(local_t, tx);
    for (const Vertex r : tx.receivers) {
      const std::size_t extra =
          plan != nullptr ? plan->extra_delay(v, r) : 0;
      const std::size_t arrival = abs_t + 1 + extra;
      if (plan != nullptr && plan->crashed(r, arrival)) {
        ++report.lost_receives;
        im.emit({"lost", arrival, r, tx.message, v, 0});
        continue;
      }
      ++report.deliveries;
      im.emit({"receive", arrival, r, tx.message, v, 0, id, 0});
      Envelope e;
      e.kind = Envelope::Kind::kData;
      e.sender = v;
      e.message = tx.message;
      e.trace = id;
      // The one bit of link context the §4 online rule distinguishes:
      // whether this delivery rides the o-stream from the tree parent.
      e.from_parent = !tree.is_root(r) && tree.parent(r) == v && main_phase;
      wire[v].emplace_back(r, extra, std::move(e));
    }
  };

  // ---- main phase: rounds 0 .. horizon-1 ---------------------------------
  std::size_t barrier = 0;  // bus flips performed (== time unit surfaced)
  for (std::size_t t = 0; t < horizon; ++t) {
    Stopwatch round_watch;
    bus.flip(barrier++);
    im.for_each_actor([&](std::size_t v) {
      // Crashed actors are stepped for accounting only: their planned
      // transmission is captured as a "crash" loss (mirroring the
      // simulator), but they observe nothing — deliveries to them were
      // already voided at routing time.
      out[v] = im.actors[v].step_main(
          t, bus.inbox(static_cast<Vertex>(v)));
    });
    for (Vertex v = 0; v < n; ++v) {
      capture_data(v, t, report.emergent, t, /*main_phase=*/true);
      out[v] = Outbox{};
    }
    route_wire();
    MG_OBS_HIST("dist.round_ns", static_cast<std::uint64_t>(round_watch.seconds() * 1e9));
  }
  // Drain: arrivals at times horizon .. horizon + max_delay.
  for (std::size_t a = 0; a <= max_delay; ++a) {
    bus.flip(barrier++);
    im.for_each_actor([&](std::size_t v) {
      im.actors[v].absorb(horizon + a, bus.inbox(static_cast<Vertex>(v)));
    });
  }
  report.emergent.trim();

  report.main_holds.reserve(n);
  for (const ProcessorActor& actor : im.actors) {
    report.main_holds.push_back(actor.holds());
  }

  // ---- decentralized recovery -------------------------------------------
  const auto live_at = [&](Vertex v, std::size_t abs_t) {
    return plan == nullptr || !plan->crashed(v, abs_t);
  };
  auto all_live_complete = [&](std::size_t abs_t) {
    for (Vertex v = 0; v < n; ++v) {
      if (live_at(v, abs_t) && !im.actors[v].complete()) return false;
    }
    return true;
  };

  std::size_t end_abs = horizon;
  if (im.options.recover && !all_live_complete(horizon)) {
    const std::size_t hard_cap =
        4 * static_cast<std::size_t>(n) * static_cast<std::size_t>(n) + 16;
    const std::size_t budget = im.options.extra_round_budget > 0
                                   ? im.options.extra_round_budget
                                   : hard_cap;
    for (std::size_t q = 0; q < budget; ++q) {
      const std::size_t abs_t = horizon + q;
      end_abs = abs_t;
      // Fold the previous cycle's data arrivals in, then digest.
      bus.flip(barrier++);
      im.for_each_actor([&](std::size_t v) {
        const auto vertex = static_cast<Vertex>(v);
        im.actors[v].learn(bus.inbox(vertex));
        out[v] = live_at(vertex, abs_t) ? im.actors[v].step_digest()
                                        : Outbox{};
      });
      if (all_live_complete(abs_t)) break;
      for (Vertex v = 0; v < n; ++v) {
        report.control_messages += out[v].control.size();
        if (!out[v].control.empty()) {
          // One id per digest fan-out: a multicast is one logical message.
          const std::uint64_t id = ++next_trace;
          report.causal.push_back({id, out[v].control_cause,
                                   CausalLink::Kind::kDigest, abs_t,
                                   static_cast<Vertex>(v), 0,
                                   out[v].control.size()});
          mirror_causal(report.causal.back());
          for (Envelope& e : out[v].control) e.trace = id;
        }
        for (std::size_t c = 0; c < out[v].control.size(); ++c) {
          // Control envelopes to dead receivers just evaporate.
          if (live_at(out[v].control_to[c], abs_t)) {
            wire[v].emplace_back(out[v].control_to[c], 0,
                                 std::move(out[v].control[c]));
          }
        }
        out[v] = Outbox{};
      }
      route_wire();

      bus.flip(barrier++);
      im.for_each_actor([&](std::size_t v) {
        const auto vertex = static_cast<Vertex>(v);
        out[v] = live_at(vertex, abs_t)
                     ? im.actors[v].step_grant(bus.inbox(vertex))
                     : Outbox{};
      });
      bool any_grant = false;
      for (Vertex v = 0; v < n; ++v) {
        report.control_messages += out[v].control.size();
        if (!out[v].control.empty()) {
          const std::uint64_t id = ++next_trace;
          report.causal.push_back({id, out[v].control_cause,
                                   CausalLink::Kind::kGrant, abs_t,
                                   static_cast<Vertex>(v),
                                   out[v].control.front().message,
                                   out[v].control.size()});
          mirror_causal(report.causal.back());
          for (Envelope& e : out[v].control) e.trace = id;
        }
        for (std::size_t c = 0; c < out[v].control.size(); ++c) {
          if (live_at(out[v].control_to[c], abs_t)) {
            any_grant = true;
            wire[v].emplace_back(out[v].control_to[c], 0,
                                 std::move(out[v].control[c]));
          }
        }
        out[v] = Outbox{};
      }
      if (!any_grant) break;  // quiescence == component closure reached
      route_wire();

      bus.flip(barrier++);
      im.for_each_actor([&](std::size_t v) {
        const auto vertex = static_cast<Vertex>(v);
        out[v] = live_at(vertex, abs_t)
                     ? im.actors[v].step_data(bus.inbox(vertex))
                     : Outbox{};
      });
      for (Vertex v = 0; v < n; ++v) {
        capture_data(v, abs_t, report.repair, q, /*main_phase=*/false);
        out[v] = Outbox{};
      }
      ++report.recovery_rounds;
      route_wire();
    }
    // Absorb the final cycle's in-flight data.
    for (std::size_t a = 0; a <= max_delay; ++a) {
      bus.flip(barrier++);
      im.for_each_actor([&](std::size_t v) {
        im.actors[v].learn(bus.inbox(static_cast<Vertex>(v)));
      });
    }
    report.repair.trim();
  }

  // ---- final accounting --------------------------------------------------
  std::vector<char> alive(n, 1);
  if (plan != nullptr) alive = plan->alive_at(end_abs, n);
  report.missing.resize(n);
  std::size_t live = 0;
  std::size_t held = 0;
  report.complete = true;
  for (Vertex v = 0; v < n; ++v) {
    report.missing[v] = im.actors[v].missing();
    report.final_holds.push_back(im.actors[v].holds());
    if (!alive[v]) {
      report.crashed.push_back(v);
      continue;
    }
    ++live;
    held += static_cast<std::size_t>(n) - report.missing[v];
    if (report.missing[v] != 0) report.complete = false;
  }
  report.coverage =
      live == 0 ? 1.0
                : static_cast<double>(held) / (static_cast<double>(live) *
                                               static_cast<double>(n));

  // `recovered` = every live actor holds its surviving component's
  // achievable closure (all a repair can deliver once crashes ate
  // messages or split the network) — computed here for reporting only.
  report.recovered = true;
  {
    std::vector<char> seen(n, 0);
    for (Vertex s = 0; s < n && report.recovered; ++s) {
      if (!alive[s] || seen[s]) continue;
      std::vector<Vertex> component{s};
      seen[s] = 1;
      DynamicBitset closure(n);
      for (std::size_t head = 0; head < component.size(); ++head) {
        const Vertex v = component[head];
        for (Message m = 0; m < n; ++m) {
          if (im.actors[v].holds().test(m)) closure.set(m);
        }
        for (const Vertex u : im.network->neighbors(v)) {
          if (alive[u] && !seen[u]) {
            seen[u] = 1;
            component.push_back(u);
          }
        }
      }
      for (const Vertex v : component) {
        if (im.actors[v].holds().count() != closure.count()) {
          report.recovered = false;
          break;
        }
      }
    }
  }

  MG_OBS_ADD("dist.causal_links", report.causal.size());
  MG_OBS_ADD("dist.runs", 1);
  MG_OBS_ADD("dist.rounds", horizon);
  MG_OBS_ADD("dist.recovery.rounds", report.recovery_rounds);
  MG_OBS_ADD("dist.messages", report.messages);
  MG_OBS_ADD("dist.deliveries", report.deliveries);
  MG_OBS_ADD("dist.control_messages", report.control_messages);
  MG_OBS_ADD("dist.injected_drops", report.injected_drops);
  MG_OBS_ADD("dist.crashed_sends", report.crashed_sends);
  MG_OBS_ADD("dist.skipped_sends", report.skipped_sends);
  MG_OBS_ADD("dist.lost_receives", report.lost_receives);
  return report;
}

CriticalPath critical_path(const RunReport& report) {
  CriticalPath path;
  std::unordered_map<std::uint64_t, const CausalLink*> by_id;
  by_id.reserve(report.causal.size());
  for (const CausalLink& link : report.causal) by_id.emplace(link.id, &link);

  // The chain tip: the data hop with the latest arrival (send round + 1).
  // Control hops never extend past their cycle's data round, so only data
  // and repair links compete; ties prefer the later-captured link so a
  // recovery tail, when present, is the chain reported.
  const CausalLink* tip = nullptr;
  for (const CausalLink& link : report.causal) {
    if (link.kind != CausalLink::Kind::kData &&
        link.kind != CausalLink::Kind::kRepair) {
      continue;
    }
    if (tip == nullptr || link.round > tip->round ||
        (link.round == tip->round && link.id > tip->id)) {
      tip = &link;
    }
  }
  if (tip == nullptr) return path;
  path.length = tip->round + 1;

  // Walk parents to the root.  A parent's id is always smaller than its
  // child's (the enabling arrival was captured before the send), so the
  // walk terminates; a parent evicted from the record ends the chain.
  for (const CausalLink* hop = tip; hop != nullptr;) {
    path.hops.push_back(*hop);
    if (hop->parent == 0) break;
    const auto it = by_id.find(hop->parent);
    hop = it == by_id.end() ? nullptr : it->second;
  }
  std::reverse(path.hops.begin(), path.hops.end());
  return path;
}

VerifyReport verify_against_schedule(const model::Schedule& central,
                                     const model::Schedule& emergent,
                                     Vertex n, std::uint32_t radius) {
  VerifyReport report;
  report.central_rounds = central.round_count();
  report.emergent_rounds = emergent.round_count();
  report.n_plus_r_ok =
      emergent.round_count() == static_cast<std::size_t>(n) + radius;

  const auto canonical = [](const model::Round& round) {
    std::vector<model::Transmission> txs(round.begin(), round.end());
    std::sort(txs.begin(), txs.end(),
              [](const model::Transmission& a, const model::Transmission& b) {
                return a.sender < b.sender;
              });
    return txs;
  };
  const std::size_t rounds =
      std::max(central.round_count(), emergent.round_count());
  for (std::size_t t = 0; t < rounds; ++t) {
    const auto a = t < central.round_count() ? canonical(central.round(t))
                                             : std::vector<model::Transmission>{};
    const auto b = t < emergent.round_count() ? canonical(emergent.round(t))
                                              : std::vector<model::Transmission>{};
    bool equal = a.size() == b.size();
    for (std::size_t i = 0; equal && i < a.size(); ++i) {
      equal = a[i].sender == b[i].sender && a[i].message == b[i].message &&
              a[i].receivers == b[i].receivers;
    }
    if (!equal) {
      report.first_mismatch_round = t;
      std::ostringstream detail;
      detail << "round " << t << ": central has " << a.size()
             << " transmissions, emergent has " << b.size();
      for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
        const auto render = [](const std::vector<model::Transmission>& txs,
                               std::size_t j) -> std::string {
          if (j >= txs.size()) return "(none)";
          std::ostringstream s;
          s << "msg " << txs[j].message << ": " << txs[j].sender << " -> {";
          for (std::size_t k = 0; k < txs[j].receivers.size(); ++k) {
            s << (k > 0 ? ", " : "") << txs[j].receivers[k];
          }
          s << "}";
          return s.str();
        };
        const std::string ca = render(a, i);
        const std::string cb = render(b, i);
        if (ca != cb) {
          detail << "\n  central:  " << ca << "\n  emergent: " << cb;
        }
      }
      report.detail = detail.str();
      return report;
    }
  }
  report.match = true;
  return report;
}

DistOutcome run_distributed(const graph::Graph& g,
                            gossip::Algorithm algorithm,
                            const RuntimeOptions& options) {
  DistOutcome outcome{gossip::solve_gossip(g, algorithm), {}, {}};
  ActorRuntime runtime(outcome.central.instance, g, options);
  if (algorithm == gossip::Algorithm::kConcurrentUpDown) {
    runtime.use_online_rule();
  } else {
    runtime.use_timetable(outcome.central.schedule);
  }
  outcome.run = runtime.run(outcome.central.schedule.round_count());
  outcome.verify = verify_against_schedule(
      outcome.central.schedule, outcome.run.emergent,
      outcome.central.instance.vertex_count(),
      outcome.central.instance.radius());
  return outcome;
}

}  // namespace mg::dist
