// Tests for the reconstructed §4 line-optimal protocol: validity,
// completion and exact optimality (n + r - 1) on odd lines.
#include <gtest/gtest.h>

#include "gossip/bounds.h"
#include "gossip/line_optimal.h"
#include "gossip/optimal_search.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "model/validator.h"
#include "support/contracts.h"

namespace mg::gossip {
namespace {

TEST(LineOptimal, ValidAndOptimalForEveryM) {
  for (std::uint32_t m = 1; m <= 60; ++m) {
    const graph::Vertex n = 2 * m + 1;
    const auto schedule = line_optimal_gossip(m);
    const auto report = model::validate_schedule(graph::path(n), schedule);
    ASSERT_TRUE(report.ok) << "m=" << m << ": " << report.error;
    EXPECT_EQ(schedule.total_time(), odd_line_lower_bound(n)) << "m=" << m;
    EXPECT_EQ(schedule.total_time(), line_optimal_time(m));
  }
}

TEST(LineOptimal, BeatsConcurrentUpDownByExactlyOne) {
  for (std::uint32_t m : {1u, 4u, 10u, 25u}) {
    const graph::Vertex n = 2 * m + 1;
    const auto uniform = solve_gossip(graph::path(n));
    ASSERT_TRUE(uniform.report.ok);
    EXPECT_EQ(uniform.schedule.total_time() -
                  line_optimal_gossip(m).total_time(),
              1u)
        << "m=" << m;
  }
}

TEST(LineOptimal, MatchesExactSearchOptimumOnSmallLines) {
  // The exact search certifies no schedule beats 3m for m = 1, 2; the
  // construction attains it.
  for (std::uint32_t m : {1u, 2u}) {
    const graph::Vertex n = 2 * m + 1;
    EXPECT_EQ(
        exact_gossip_search(graph::path(n), line_optimal_time(m) - 1).status,
        graph::SearchStatus::kExhausted)
        << "m=" << m;
    EXPECT_EQ(line_optimal_gossip(m).total_time(), line_optimal_time(m));
  }
}

TEST(LineOptimal, CenterReceivesAlternatingArms) {
  // The §4 hint realized: "one needs to alternate the delivery of messages
  // from different subtrees" -- mu(-q) at odd time 2q-1, mu(+q) at 2q.
  const std::uint32_t m = 6;
  const auto schedule = line_optimal_gossip(m);
  const graph::Vertex center = m;
  std::vector<std::size_t> arrival(2 * m + 1, 0);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      for (graph::Vertex r : tx.receivers) {
        if (r == center) arrival[tx.message] = t + 1;
      }
    }
  }
  for (std::uint32_t q = 1; q <= m; ++q) {
    EXPECT_EQ(arrival[m - q], 2u * q - 1) << "left q=" << q;
    EXPECT_EQ(arrival[m + q], 2u * q) << "right q=" << q;
  }
}

TEST(LineOptimal, EndsFinishExactlyAtTheBound) {
  // The binding constraints: the left end receives mu(+m) at 3m and the
  // right end receives the center's message at 3m.
  const std::uint32_t m = 8;
  const auto schedule = line_optimal_gossip(m);
  const auto report =
      model::validate_schedule(graph::path(2 * m + 1), schedule);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.completion_time[0], 3u * m);
  EXPECT_EQ(report.completion_time[2 * m], 3u * m);
}

TEST(LineOptimal, ProtocolIsNonUniform) {
  // §4: "the protocol for each processor will not be uniform" -- mirror
  // positions behave differently.  Position +1 sends its own message
  // twice (outward at 0 and inward at 1) while -1 multicasts once at 0.
  const std::uint32_t m = 3;
  const auto schedule = line_optimal_gossip(m);
  const graph::Vertex left1 = m - 1;
  const graph::Vertex right1 = m + 1;
  std::size_t left_own_sends = 0;
  std::size_t right_own_sends = 0;
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      if (tx.sender == left1 && tx.message == left1) ++left_own_sends;
      if (tx.sender == right1 && tx.message == right1) ++right_own_sends;
    }
  }
  EXPECT_EQ(left_own_sends, 1u);   // one multicast, both directions
  EXPECT_EQ(right_own_sends, 2u);  // separate outward + inward sends
}

TEST(LineOptimal, RejectsZeroM) {
  EXPECT_THROW((void)line_optimal_gossip(0), ContractViolation);
  EXPECT_THROW((void)even_line_gossip(0), ContractViolation);
}

TEST(EvenLine, ValidAndAtTheEvenOptimumForEveryM) {
  for (std::uint32_t m = 1; m <= 50; ++m) {
    const graph::Vertex n = 2 * m;
    const auto schedule = even_line_gossip(m);
    const auto report = model::validate_schedule(graph::path(n), schedule);
    ASSERT_TRUE(report.ok) << "m=" << m << ": " << report.error;
    EXPECT_EQ(schedule.total_time(), even_line_time(m)) << "m=" << m;
  }
}

TEST(EvenLine, MatchesExactSearchOptimum) {
  // Exhaustive certification for m = 1..3: 3m - 2 is attainable and
  // 3m - 3 is not (for m >= 2).
  for (std::uint32_t m : {2u, 3u}) {
    const graph::Vertex n = 2 * m;
    ExactSearchOptions options;
    options.node_budget = 40'000'000;
    EXPECT_EQ(
        exact_gossip_search(graph::path(n), even_line_time(m) - 1, options)
            .status,
        graph::SearchStatus::kExhausted)
        << "m=" << m;
  }
  EXPECT_EQ(even_line_gossip(1).total_time(), 1u);
}

TEST(EvenLine, OneBelowTheOddLinePattern) {
  // n + r - 2 for even n, vs n + r - 1 for odd n: the shared gathering
  // role of the two near-center processors is worth one round.
  for (std::uint32_t m : {2u, 5u, 12u}) {
    const graph::Vertex n = 2 * m;
    const auto instance = Instance::from_network(graph::path(n));
    EXPECT_EQ(even_line_gossip(m).total_time() + 2,
              static_cast<std::size_t>(n) + instance.radius())
        << "m=" << m;
  }
}

TEST(EvenLine, BothCentersFinishGatheringSimultaneously) {
  // Each center has all n messages by time 2m - 1.
  const std::uint32_t m = 7;
  const auto schedule = even_line_gossip(m);
  const auto report = model::validate_schedule(graph::path(2 * m), schedule);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.completion_time[m - 1], 2u * m - 1);
  EXPECT_EQ(report.completion_time[m], 2u * m - 1);
}

}  // namespace
}  // namespace mg::gossip
