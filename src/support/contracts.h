// Contract-checking macros in the spirit of the C++ Core Guidelines (I.6,
// I.8): preconditions, postconditions and internal invariants.  Violations
// throw `mg::ContractViolation` rather than aborting so that library users
// (and the test suite) can observe and handle misuse deterministically.
#pragma once

#include <stdexcept>
#include <string>

namespace mg {

/// Thrown when a precondition, postcondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    long line, const std::string& message)
      : std::logic_error(std::string(kind) + " failed: (" + expr + ") at " +
                         file + ":" + std::to_string(line) +
                         (message.empty() ? "" : ": " + message)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, long line,
                                       const std::string& message = {}) {
  throw ContractViolation(kind, expr, file, line, message);
}
}  // namespace detail

}  // namespace mg

/// Precondition check: argument/state requirements at function entry.
#define MG_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mg::detail::contract_fail("precondition", #cond, __FILE__,           \
                                  __LINE__);                                 \
  } while (false)

/// Precondition check with an explanatory message.
#define MG_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mg::detail::contract_fail("precondition", #cond, __FILE__, __LINE__, \
                                  (msg));                                    \
  } while (false)

/// Postcondition check: result/state guarantees at function exit.
#define MG_ENSURES(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mg::detail::contract_fail("postcondition", #cond, __FILE__,          \
                                  __LINE__);                                 \
  } while (false)

/// Internal invariant that should hold at this program point.
#define MG_ASSERT(cond)                                                      \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mg::detail::contract_fail("invariant", #cond, __FILE__, __LINE__);   \
  } while (false)

#define MG_ASSERT_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mg::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,    \
                                  (msg));                                    \
  } while (false)
