// mg::obs exposition + sampler tests (ISSUE 10): the Prometheus text
// renderer (name sanitization, label escaping, cumulative bucket series,
// summary consistency, byte-stable ordering), the JSON exposition's
// round-trip through the shared test parser, and the background Sampler's
// delta semantics, ring eviction, and both off switches.  Every test here
// must also pass with -DMG_OBS=OFF: snapshots are built from local metric
// objects (always compiled), and the compiled-out differences (sampler
// start(), macro no-ops) are asserted per MG_OBS_ENABLED.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "json_parser.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/sampler.h"

namespace mg::obs {
namespace {

using testjson::JsonValue;
using testjson::Parser;

// ---------------------------------------------------------------------------
// Name sanitization and label escaping

TEST(Exposition, PrometheusNameSanitizes) {
  EXPECT_EQ(prometheus_name("engine.cache.hits"), "engine_cache_hits");
  EXPECT_EQ(prometheus_name("dist.msgs-sent"), "dist_msgs_sent");
  EXPECT_EQ(prometheus_name("already_fine:ns"), "already_fine:ns");
  EXPECT_EQ(prometheus_name("churn.patch ns"), "churn_patch_ns");
  // A leading digit gains a '_' prefix (names must not start with one).
  EXPECT_EQ(prometheus_name("2phase.rounds"), "_2phase_rounds");
  EXPECT_EQ(prometheus_name(""), "");
}

TEST(Exposition, LabelEscapePerSpec) {
  EXPECT_EQ(prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(prometheus_label_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prometheus_label_escape("quo\"te"), "quo\\\"te");
  EXPECT_EQ(prometheus_label_escape("new\nline"), "new\\nline");
  EXPECT_EQ(prometheus_label_escape("all\\\"\n"), "all\\\\\\\"\\n");
}

// ---------------------------------------------------------------------------
// Prometheus rendering

std::string render(const Snapshot& snapshot,
                   const PrometheusExposition& sink) {
  std::ostringstream out;
  sink.expose(snapshot, out);
  return out.str();
}

TEST(Exposition, CounterSeries) {
  Snapshot snap;
  snap.counters.emplace_back("engine.cache.hits", 42);
  const std::string text = render(snap, PrometheusExposition{});
  EXPECT_EQ(text,
            "# TYPE mg_engine_cache_hits counter\n"
            "mg_engine_cache_hits 42\n");
}

TEST(Exposition, TimerSummarySeries) {
  Snapshot snap;
  snap.timers.emplace_back("solve.total", TimerSnapshot{3500, 7});
  const std::string text = render(snap, PrometheusExposition{});
  EXPECT_EQ(text,
            "# TYPE mg_solve_total summary\n"
            "mg_solve_total_sum 3500\n"
            "mg_solve_total_count 7\n");
}

TEST(Exposition, StaticLabelsSortedAndEscaped) {
  // Labels given out of order, with a value needing every escape; the
  // rendered block must sort by key and escape at write time.
  const std::vector<std::pair<std::string, std::string>> labels = {
      {"suite", "we\"ird\nvalue\\"}, {"host", "runner-1"}};
  PrometheusExposition sink(labels);
  Snapshot snap;
  snap.counters.emplace_back("x", 1);
  const std::string text = render(snap, sink);
  EXPECT_EQ(text,
            "# TYPE mg_x counter\n"
            "mg_x{host=\"runner-1\",suite=\"we\\\"ird\\nvalue\\\\\"} 1\n");
}

TEST(Exposition, HistogramCumulativeBucketsAreMonotone) {
  Histogram h;
  for (const std::uint64_t v : {1ull, 1ull, 2ull, 3ull, 100ull, 100000ull,
                                7ull, 900ull, 900ull, 12345678ull}) {
    h.record(v);
  }
  const HistogramSnapshot hist = h.snapshot();
  Snapshot snap;
  snap.histograms.emplace_back("lat.ns", hist);
  const std::string text = render(snap, PrometheusExposition{});

  // Walk the rendered _bucket lines: `le` bounds strictly ascending,
  // cumulative counts non-decreasing, +Inf closing at the full count.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t previous_le = 0;
  std::uint64_t previous_cumulative = 0;
  bool saw_inf = false;
  std::size_t bucket_lines = 0;
  while (std::getline(lines, line)) {
    const std::string prefix = "mg_lat_ns_bucket{le=\"";
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    ++bucket_lines;
    const std::size_t close = line.find('"', prefix.size());
    ASSERT_NE(close, std::string::npos) << line;
    const std::string le = line.substr(prefix.size(), close - prefix.size());
    const std::uint64_t cumulative =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(cumulative, previous_cumulative) << line;
    previous_cumulative = cumulative;
    if (le == "+Inf") {
      saw_inf = true;
      EXPECT_EQ(cumulative, hist.count);
    } else {
      ASSERT_FALSE(saw_inf) << "+Inf must close the series: " << line;
      const std::uint64_t bound = std::stoull(le);
      EXPECT_GT(bound, previous_le) << line;
      previous_le = bound;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_GE(bucket_lines, 2u);

  // Summary lines agree with the snapshot the buckets came from.
  EXPECT_NE(text.find("mg_lat_ns_sum " + std::to_string(hist.sum) + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("mg_lat_ns_count " + std::to_string(hist.count) + "\n"),
            std::string::npos);
}

TEST(Exposition, ByteStableAcrossRuns) {
  Histogram h;
  h.record(5);
  h.record(5000);
  Snapshot snap;
  snap.counters.emplace_back("a.count", 1);
  snap.counters.emplace_back("b.count", 2);
  snap.timers.emplace_back("t", TimerSnapshot{10, 1});
  snap.histograms.emplace_back("h", h.snapshot());
  const std::vector<std::pair<std::string, std::string>> forward = {
      {"host", "a"}, {"suite", "x"}};
  const std::vector<std::pair<std::string, std::string>> reversed = {
      {"suite", "x"}, {"host", "a"}};
  const PrometheusExposition sink(forward);
  EXPECT_EQ(render(snap, sink), render(snap, sink));
  // Same labels in the opposite construction order render identically.
  const PrometheusExposition swapped(reversed);
  EXPECT_EQ(render(snap, sink), render(snap, swapped));
}

TEST(Exposition, ContentTypes) {
  EXPECT_EQ(PrometheusExposition{}.content_type(),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(JsonExposition{}.content_type(), "application/json");
}

TEST(Exposition, JsonRoundTripThroughParser) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  Snapshot snap;
  snap.counters.emplace_back("sends", 17);
  snap.timers.emplace_back("solve", TimerSnapshot{250, 3});
  snap.histograms.emplace_back("lat", h.snapshot());

  std::ostringstream out;
  JsonExposition{}.expose(snap, out);
  const std::string text = out.str();
  Parser parser(text);
  const JsonValue doc = parser.parse();
  EXPECT_EQ(doc.at("counters").at("sends").as_u64(), 17u);
  EXPECT_EQ(doc.at("timers").at("solve").at("total_ns").as_u64(), 250u);
  EXPECT_EQ(doc.at("timers").at("solve").at("count").as_u64(), 3u);
  EXPECT_EQ(doc.at("histograms").at("lat").at("count").as_u64(), 100u);
  EXPECT_EQ(doc.at("histograms").at("lat").at("min").as_u64(), 1u);
  EXPECT_EQ(doc.at("histograms").at("lat").at("max").as_u64(), 100u);
}

// ---------------------------------------------------------------------------
// Sampler

TEST(Sampler, DeltasAgainstPreviousSample) {
  Registry registry;
  Sampler sampler(registry, {std::chrono::milliseconds(50), 8});
  registry.counter("work.items").add(10);
  sampler.sample_now();
  registry.counter("work.items").add(5);
  registry.counter("late.arrival").add(2);
  sampler.sample_now();

  const std::vector<Sample> series = sampler.series();
  ASSERT_EQ(series.size(), 2u);
  // First sample deltas from zero; second from the first.
  EXPECT_EQ(series[0].dt_ns, 0u);
  ASSERT_EQ(series[0].counter_deltas.size(), 1u);
  EXPECT_EQ(series[0].counter_deltas[0].first, "work.items");
  EXPECT_EQ(series[0].counter_deltas[0].second, 10u);
  ASSERT_EQ(series[1].counter_deltas.size(), 2u);
  // Sorted by name: a counter first seen in this sample deltas from zero.
  EXPECT_EQ(series[1].counter_deltas[0].first, "late.arrival");
  EXPECT_EQ(series[1].counter_deltas[0].second, 2u);
  EXPECT_EQ(series[1].counter_deltas[1].first, "work.items");
  EXPECT_EQ(series[1].counter_deltas[1].second, 5u);
  EXPECT_GE(series[1].t_ns, series[0].t_ns);
}

TEST(Sampler, RegistryResetClampsDeltasToZero) {
  Registry registry;
  Sampler sampler(registry, {std::chrono::milliseconds(50), 8});
  registry.counter("c").add(10);
  sampler.sample_now();
  registry.reset();
  registry.counter("c").add(3);  // value 3 < previous 10
  sampler.sample_now();
  const std::vector<Sample> series = sampler.series();
  ASSERT_EQ(series.size(), 2u);
  ASSERT_EQ(series[1].counter_deltas.size(), 1u);
  EXPECT_EQ(series[1].counter_deltas[0].second, 0u) << "must clamp, not wrap";
}

TEST(Sampler, RingEvictsOldestAtCapacity) {
  Registry registry;
  Sampler sampler(registry, {std::chrono::milliseconds(50), 4});
  for (int i = 0; i < 10; ++i) {
    registry.counter("tick").add(1);
    sampler.sample_now();
  }
  EXPECT_EQ(sampler.samples_taken(), 10u);
  const std::vector<Sample> series = sampler.series();
  ASSERT_EQ(series.size(), 4u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns) << "oldest first";
  }
  // The survivors are the last four samples: counter values 7..10.
  EXPECT_EQ(series.front().snapshot.counter("tick"), 7u);
  EXPECT_EQ(series.back().snapshot.counter("tick"), 10u);
}

TEST(Sampler, RuntimeNullRegistryYieldsEmptySamples) {
  Registry registry;
  registry.set_enabled(false);
  Sampler sampler(registry, {std::chrono::milliseconds(50), 8});
  registry.counter("ghost").add(99);  // scratch cell: never registered
  sampler.sample_now();
  const std::vector<Sample> series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_TRUE(series[0].snapshot.counters.empty());
  EXPECT_TRUE(series[0].counter_deltas.empty());
}

TEST(Sampler, StartStopRespectsCompileSwitch) {
  Registry registry;
  Sampler sampler(registry, {std::chrono::milliseconds(1), 16});
  const bool started = sampler.start();
  const bool compiled_in = MG_OBS_ENABLED != 0;
  if (compiled_in) {
    ASSERT_TRUE(started);
    EXPECT_TRUE(sampler.running());
    EXPECT_FALSE(sampler.start()) << "second start() while running";
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    sampler.stop();  // idempotent
    EXPECT_GE(sampler.samples_taken(), 1u);
  } else {
    // Compiled out: no thread is ever created and nothing is sampled.
    EXPECT_FALSE(started);
    EXPECT_FALSE(sampler.running());
    EXPECT_EQ(sampler.samples_taken(), 0u);
  }
}

TEST(Sampler, WriteJsonRoundTripsThroughParser) {
  Registry registry;
  Sampler sampler(registry, {std::chrono::milliseconds(25), 8});
  registry.counter("sends").add(4);
  registry.histogram("lat").record(123);
  sampler.sample_now();
  registry.counter("sends").add(6);
  sampler.sample_now();

  std::ostringstream out;
  sampler.write_json(out);
  const std::string text = out.str();
  Parser parser(text);
  const JsonValue doc = parser.parse();
  EXPECT_EQ(doc.at("schema_version").as_u64(), 1u);
  EXPECT_EQ(doc.at("cadence_ms").as_u64(), 25u);
  EXPECT_EQ(doc.at("samples_taken").as_u64(), 2u);
  const auto& samples = doc.at("samples");
  ASSERT_EQ(samples.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(samples.array.size(), 2u);
  EXPECT_EQ(samples.array[0].at("counters").at("sends").as_u64(), 4u);
  EXPECT_EQ(samples.array[1].at("counters").at("sends").as_u64(), 10u);
  EXPECT_EQ(samples.array[1].at("counter_deltas").at("sends").as_u64(), 6u);
  EXPECT_EQ(samples.array[0].at("histograms").at("lat").at("count").as_u64(),
            1u);
}

}  // namespace
}  // namespace mg::obs
