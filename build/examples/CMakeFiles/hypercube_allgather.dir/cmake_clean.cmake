file(REMOVE_RECURSE
  "CMakeFiles/hypercube_allgather.dir/hypercube_allgather.cpp.o"
  "CMakeFiles/hypercube_allgather.dir/hypercube_allgather.cpp.o.d"
  "hypercube_allgather"
  "hypercube_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercube_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
