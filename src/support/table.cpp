#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/contracts.h"

namespace mg {

void TextTable::new_row() { rows_.emplace_back(); }

void TextTable::cell(const std::string& value) {
  MG_EXPECTS_MSG(!rows_.empty(), "call new_row() before cell()");
  rows_.back().push_back(value);
}

void TextTable::cell(long long value) { cell(std::to_string(value)); }
void TextTable::cell(unsigned long long value) { cell(std::to_string(value)); }
void TextTable::cell(int value) { cell(std::to_string(value)); }
void TextTable::cell(std::size_t value) { cell(std::to_string(value)); }

void TextTable::cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  cell(std::string(buffer));
}

std::string TextTable::render(bool header_separator) const {
  std::size_t columns = 0;
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> widths(columns, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string value = c < row.size() ? row[c] : std::string();
      out << (c == 0 ? "| " : " ");
      out << value << std::string(widths[c] - value.size(), ' ') << " |";
    }
    out << '\n';
  };

  for (std::size_t r = 0; r < rows_.size(); ++r) {
    emit_row(rows_[r]);
    if (header_separator && r == 0 && rows_.size() > 1) {
      for (std::size_t c = 0; c < columns; ++c) {
        out << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
      }
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace mg
