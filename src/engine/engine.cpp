#include "engine/engine.h"

#include <algorithm>
#include <future>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/registry.h"
#include "obs/span.h"
#include "support/contracts.h"
#include "support/fingerprint.h"
#include "support/thread_pool.h"

namespace mg::engine {

std::uint64_t graph_fingerprint(const graph::Graph& g) {
  Fingerprint64 hash;
  const graph::Vertex n = g.vertex_count();
  hash.update(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    const auto neighbors = g.neighbors(v);
    hash.update(neighbors.size());
    for (const graph::Vertex u : neighbors) hash.update(u);
  }
  return hash.digest();
}

namespace {

struct Key {
  std::uint64_t fingerprint;
  gossip::Algorithm algorithm;

  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    // The fingerprint is already well mixed; fold the algorithm in.
    return static_cast<std::size_t>(
        k.fingerprint ^
        (static_cast<std::uint64_t>(k.algorithm) * 0x9e3779b97f4a7c15ULL));
  }
};

ResultPtr compute(const graph::Graph& g, std::uint64_t fingerprint,
                  gossip::Algorithm algorithm) {
  // Solve in the calling thread with no nested pool: a worker running this
  // from solve_batch must never issue a blocking parallel_for of its own
  // (a one-thread pool would deadlock on itself).
  gossip::Solution solution = gossip::solve_gossip(g, algorithm, nullptr);
  auto result = std::make_shared<Result>();
  result->fingerprint = fingerprint;
  result->algorithm = algorithm;
  result->vertex_count = solution.instance.vertex_count();
  result->radius = solution.instance.radius();
  result->initial = solution.instance.initial();
  result->schedule = std::move(solution.schedule);
  result->report = std::move(solution.report);
  return result;
}

}  // namespace

struct Engine::Shard {
  using LruList = std::list<std::pair<Key, ResultPtr>>;

  std::mutex mutex;
  LruList lru;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> entries;
  std::unordered_map<Key, std::shared_future<ResultPtr>, KeyHash> inflight;
};

Engine::Engine(EngineOptions options)
    : shard_count_(options.shards),
      shard_capacity_((options.cache_capacity + options.shards - 1) /
                      std::max<std::size_t>(options.shards, 1)) {
  MG_EXPECTS(options.cache_capacity >= 1);
  MG_EXPECTS(options.shards >= 1);
  shards_ = std::make_unique<Shard[]>(shard_count_);
  pool_ = std::make_unique<ThreadPool>(options.threads);
}

Engine::~Engine() = default;

Engine::Shard& Engine::shard_for(std::uint64_t fingerprint) const {
  // High bits: the low bits also pick unordered_map buckets inside the
  // shard, and using disjoint bits keeps the two choices independent.
  return shards_[(fingerprint >> 32) % shard_count_];
}

ResultPtr Engine::solve(const graph::Graph& g, gossip::Algorithm algorithm) {
  MG_OBS_SCOPE_TIMER(request_timer, "engine.request_ns");
  MG_OBS_SCOPE_HIST(request_hist, "engine.request_ns");
  requests_.fetch_add(1, std::memory_order_relaxed);
  MG_OBS_ADD("engine.requests", 1);

  const std::uint64_t fingerprint = graph_fingerprint(g);
  const Key key{fingerprint, algorithm};
  Shard& shard = shard_for(fingerprint);

  std::promise<ResultPtr> promise;
  std::shared_future<ResultPtr> future;
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto hit = shard.entries.find(key);
        hit != shard.entries.end()) {
      MG_OBS_SPAN(hit_span, "engine.hit");
      shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      MG_OBS_ADD("engine.cache.hits", 1);
      return hit->second->second;
    }
    if (const auto flight = shard.inflight.find(key);
        flight != shard.inflight.end()) {
      // Someone is already solving this exact key: join their flight.
      future = flight->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      MG_OBS_ADD("engine.cache.hits", 1);
      MG_OBS_ADD("engine.cache.inflight_coalesced", 1);
    } else {
      winner = true;
      future = promise.get_future().share();
      shard.inflight.emplace(key, future);
      misses_.fetch_add(1, std::memory_order_relaxed);
      MG_OBS_ADD("engine.cache.misses", 1);
    }
  }
  if (!winner) {
    // Blocking on another thread's in-flight solve: visible as a wait span.
    MG_OBS_SPAN(wait_span, "engine.wait.single_flight");
    return future.get();  // rethrows the winner's exception
  }

  try {
    ResultPtr result = [&] {
      MG_OBS_SPAN(miss_span, "engine.miss.solve");
      return compute(g, fingerprint, algorithm);
    }();
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      // Publish to the cache and retire the flight atomically, so every
      // later request finds the entry (no hit/in-flight gap).
      shard.lru.emplace_front(key, result);
      shard.entries.emplace(key, shard.lru.begin());
      if (shard.lru.size() > shard_capacity_) {
        shard.entries.erase(shard.lru.back().first);
        shard.lru.pop_back();  // readers keep their shared_ptr alive
        evictions_.fetch_add(1, std::memory_order_relaxed);
        MG_OBS_ADD("engine.cache.evictions", 1);
      }
      shard.inflight.erase(key);
    }
    promise.set_value(result);
    return result;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.inflight.erase(key);  // failures are never cached
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::vector<ResultPtr> Engine::solve_batch(std::span<const Request> requests) {
  std::vector<ResultPtr> results(requests.size());
  if (requests.empty()) return results;
  pool_->parallel_for(requests.size(), [&](std::size_t i) {
    results[i] = solve(requests[i].graph, requests[i].algorithm);
  });
  return results;
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inflight_coalesced = coalesced_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  return s;
}

std::size_t Engine::cache_size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    total += shards_[i].lru.size();
  }
  return total;
}

void Engine::clear_cache() {
  for (std::size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    shards_[i].entries.clear();
    shards_[i].lru.clear();
  }
}

std::size_t Engine::invalidate(std::uint64_t fingerprint) {
  // Every algorithm's entry for this fingerprint lives in the same shard
  // (sharding keys on the fingerprint alone), so one lock covers the whole
  // delta.
  Shard& shard = shard_for(fingerprint);
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.fingerprint == fingerprint) {
        shard.entries.erase(it->first);
        it = shard.lru.erase(it);  // readers keep their shared_ptr alive
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  if (evicted > 0) {
    invalidations_.fetch_add(evicted, std::memory_order_relaxed);
    MG_OBS_ADD("engine.cache.invalidations", evicted);
  }
  return evicted;
}

std::size_t Engine::invalidate(const graph::Graph& g) {
  return invalidate(graph_fingerprint(g));
}

std::size_t Engine::thread_count() const { return pool_->thread_count(); }

}  // namespace mg::engine
