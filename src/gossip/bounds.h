// Lower bounds and approximation-ratio helpers (§1, §4).
//
//  * Every gossip schedule needs at least n - 1 rounds: each processor must
//    receive n - 1 messages, one per round at most.
//  * On the straight-line network with n = 2m + 1 processors, every
//    schedule needs at least n + r - 1 rounds (r = m = radius): the center
//    cannot have all n messages before time n - 1, and the last message to
//    arrive still needs m more steps to reach both ends.
//  * Since the radius satisfies r <= n / 2, the n + r schedule of
//    ConcurrentUpDown is within a factor 1.5 of optimal on every network.
#pragma once

#include <cstddef>

namespace mg::gossip {

/// Trivial bound: n - 1 for every network (0 for n <= 1).
[[nodiscard]] constexpr std::size_t trivial_lower_bound(std::size_t n) {
  return n <= 1 ? 0 : n - 1;
}

/// §1's bound for the odd straight line P_n, n = 2m + 1: n + r - 1 with
/// r = m.  Precondition: n odd, n >= 3.
[[nodiscard]] constexpr std::size_t odd_line_lower_bound(std::size_t n) {
  return n + (n - 1) / 2 - 1;
}

/// The algorithm's guarantee on a network of radius r: n + r.
[[nodiscard]] constexpr std::size_t concurrent_updown_time(std::size_t n,
                                                           std::size_t r) {
  return n <= 1 ? 0 : n + r;
}

/// Worst-case approximation ratio implied by r <= n/2 and OPT >= n - 1:
/// (n + r) / (n - 1).
[[nodiscard]] constexpr double approx_ratio_bound(std::size_t n,
                                                  std::size_t r) {
  return n <= 1 ? 1.0
                : static_cast<double>(n + r) / static_cast<double>(n - 1);
}

}  // namespace mg::gossip
