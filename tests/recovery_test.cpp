// Tests for gossip completion / fault recovery: greedy set-gossip from
// arbitrary hold states, including states produced by faulty simulations.
#include <gtest/gtest.h>

#include "gossip/recovery.h"
#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "sim/network_sim.h"
#include "support/contracts.h"

namespace mg::gossip {
namespace {

std::vector<DynamicBitset> identity_holds(graph::Vertex n) {
  std::vector<DynamicBitset> holds(n, DynamicBitset(n));
  for (graph::Vertex v = 0; v < n; ++v) holds[v].set(v);
  return holds;
}

model::ValidationReport validate_completion(
    const graph::Graph& g, const std::vector<DynamicBitset>& holds,
    const model::Schedule& schedule) {
  return model::validate_schedule_general(
      g, schedule, holds_to_initial_sets(holds),
      holds.empty() ? 0 : holds[0].size());
}

TEST(Recovery, FromScratchIsAFullGossip) {
  // Starting from the identity hold state, greedy completion is itself a
  // (heuristic) gossip algorithm on the full network.
  for (const auto& g : {graph::petersen(), graph::grid(4, 4),
                        graph::cycle(9), graph::star(8)}) {
    const auto holds = identity_holds(g.vertex_count());
    const auto schedule = greedy_completion_schedule(g, holds);
    const auto report = validate_completion(g, holds, schedule);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_GE(schedule.total_time(), g.vertex_count() - 1u);
  }
}

TEST(Recovery, AlmostCompleteStateFinishesFast) {
  // One processor missing one message: a single round fixes it.
  const auto g = graph::cycle(6);
  std::vector<DynamicBitset> holds(6, DynamicBitset(6));
  for (graph::Vertex v = 0; v < 6; ++v) {
    for (model::Message m = 0; m < 6; ++m) holds[v].set(m);
  }
  holds[3].reset(0);
  const auto schedule = greedy_completion_schedule(g, holds);
  EXPECT_TRUE(validate_completion(g, holds, schedule).ok);
  EXPECT_EQ(schedule.total_time(), 1u);
  EXPECT_EQ(schedule.transmission_count(), 1u);
}

TEST(Recovery, CompleteStateNeedsNothing) {
  const auto g = graph::path(4);
  std::vector<DynamicBitset> holds(4, DynamicBitset(4));
  for (graph::Vertex v = 0; v < 4; ++v) {
    for (model::Message m = 0; m < 4; ++m) holds[v].set(m);
  }
  EXPECT_EQ(greedy_completion_schedule(g, holds).total_time(), 0u);
}

TEST(Recovery, RepairsAFaultySimulation) {
  // End-to-end: run ConcurrentUpDown with an injected drop, then repair
  // from the degraded hold state on the ORIGINAL network.
  const auto g = graph::fig4_network();
  const auto sol = solve_gossip(g);
  sim::SimOptions faults;
  faults.drop.emplace_back(5, sol.instance.tree().root());
  faults.drop.emplace_back(7, graph::Vertex{4});
  const auto run = sim::simulate(sol.instance.tree().as_graph(),
                                 sol.schedule, sol.instance.initial(),
                                 faults);
  ASSERT_FALSE(run.completed);

  const auto repair = greedy_completion_schedule(g, run.final_holds);
  const auto report = validate_completion(g, run.final_holds, repair);
  ASSERT_TRUE(report.ok) << report.error;
  // The repair is short compared to a full re-gossip.
  EXPECT_LT(repair.total_time(), sol.schedule.total_time());
}

TEST(Recovery, RepairUsesCrossEdgesOfTheNetwork) {
  // The repair runs on the original graph, so it may route around the
  // tree: from a state where only tree-leaf 3 misses message 15, the
  // repair takes a single round iff a neighbor of 3 knows message 15.
  const auto g = graph::fig4_network();
  std::vector<DynamicBitset> holds(16, DynamicBitset(16));
  for (graph::Vertex v = 0; v < 16; ++v) {
    for (model::Message m = 0; m < 16; ++m) holds[v].set(m);
  }
  holds[3].reset(15);
  const auto schedule = greedy_completion_schedule(g, holds);
  EXPECT_EQ(schedule.total_time(), 1u);
}

TEST(Recovery, UnknownMessageRejected) {
  const auto g = graph::path(3);
  std::vector<DynamicBitset> holds(3, DynamicBitset(3));
  holds[0].set(0);
  holds[1].set(1);  // message 2 known nowhere
  holds[2].set(1);
  EXPECT_THROW((void)greedy_completion_schedule(g, holds),
               ContractViolation);
}

TEST(Recovery, HoldsToInitialSetsRoundTrip) {
  std::vector<DynamicBitset> holds(2, DynamicBitset(3));
  holds[0].set(0);
  holds[0].set(2);
  holds[1].set(1);
  const auto sets = holds_to_initial_sets(holds);
  EXPECT_EQ(sets[0], (std::vector<model::Message>{0, 2}));
  EXPECT_EQ(sets[1], (std::vector<model::Message>{1}));
}

}  // namespace
}  // namespace mg::gossip
