// Tests for the communication-schedule data type (§1's formalism).
#include <gtest/gtest.h>

#include <vector>

#include "model/compiled.h"
#include "model/schedule.h"
#include "support/contracts.h"

namespace mg::model {
namespace {

TEST(Schedule, EmptyScheduleBasics) {
  Schedule s;
  EXPECT_EQ(s.round_count(), 0u);
  EXPECT_EQ(s.total_time(), 0u);
  EXPECT_EQ(s.transmission_count(), 0u);
  EXPECT_EQ(s.max_fanout(), 0u);
  EXPECT_TRUE(s.is_telephone());
}

TEST(Schedule, AddGrowsRounds) {
  Schedule s;
  s.add(3, {7, 1, {2, 5}});
  EXPECT_EQ(s.round_count(), 4u);
  EXPECT_EQ(s.total_time(), 4u);  // sent at 3, received at 4
  EXPECT_EQ(s.round(3).size(), 1u);
  EXPECT_TRUE(s.round(0).empty());
}

TEST(Schedule, TotalTimeIgnoresEmptyTrailingRounds) {
  Schedule s(10);
  EXPECT_EQ(s.round_count(), 10u);
  EXPECT_EQ(s.total_time(), 0u);
  s.add(2, {0, 0, {1}});
  EXPECT_EQ(s.total_time(), 3u);
  s.trim();
  EXPECT_EQ(s.round_count(), 3u);
}

TEST(Schedule, ReceiverSetMustBeSortedUniqueNonEmpty) {
  Schedule s;
  EXPECT_THROW(s.add(0, {0, 0, {}}), ContractViolation);
  EXPECT_THROW(s.add(0, {0, 0, {3, 1}}), ContractViolation);
  EXPECT_THROW(s.add(0, {0, 0, {1, 1}}), ContractViolation);
}

TEST(Schedule, CountsAndFanout) {
  Schedule s;
  s.add(0, {0, 0, {1, 2, 3}});
  s.add(0, {1, 4, {5}});
  s.add(1, {2, 1, {0, 2}});
  EXPECT_EQ(s.transmission_count(), 3u);
  EXPECT_EQ(s.delivery_count(), 6u);
  EXPECT_EQ(s.max_fanout(), 3u);
  EXPECT_FALSE(s.is_telephone());
}

TEST(Schedule, TelephoneDetection) {
  Schedule s;
  s.add(0, {0, 0, {1}});
  s.add(1, {1, 1, {0}});
  EXPECT_TRUE(s.is_telephone());
  s.add(2, {0, 0, {1, 2}});
  EXPECT_FALSE(s.is_telephone());
}

TEST(Schedule, ToStringMentionsTuples) {
  Schedule s;
  s.add(2, {5, 3, {1, 4}});
  const std::string out = s.to_string();
  EXPECT_NE(out.find("t=2"), std::string::npos);
  EXPECT_NE(out.find("msg 5"), std::string::npos);
  EXPECT_NE(out.find("3 -> {1, 4}"), std::string::npos);
}

TEST(Schedule, EquivalentIgnoresWithinRoundOrder) {
  Schedule a;
  a.add(0, {0, 0, {1}});
  a.add(0, {1, 2, {3}});
  Schedule b;
  b.add(0, {1, 2, {3}});
  b.add(0, {0, 0, {1}});
  EXPECT_TRUE(equivalent(a, b));
}

TEST(Schedule, EquivalentDetectsTimeShift) {
  Schedule a;
  a.add(0, {0, 0, {1}});
  Schedule b;
  b.add(1, {0, 0, {1}});
  EXPECT_FALSE(equivalent(a, b));
}

TEST(Schedule, EquivalentDetectsReceiverDifference) {
  Schedule a;
  a.add(0, {0, 0, {1, 2}});
  Schedule b;
  b.add(0, {0, 0, {1}});
  EXPECT_FALSE(equivalent(a, b));
}

TEST(Schedule, EquivalentToleratesTrailingEmptyRounds) {
  Schedule a;
  a.add(0, {0, 0, {1}});
  Schedule b(5);
  b.add(0, {0, 0, {1}});
  EXPECT_TRUE(equivalent(a, b));
}

TEST(CompiledSchedule, PreservesRoundsAndOrder) {
  Schedule s;
  s.add(0, {4, 0, {1, 2, 3}});
  s.add(0, {5, 1, {0}});
  s.add(2, {6, 2, {0, 3}});
  const CompiledSchedule c = CompiledSchedule::compile(s);
  ASSERT_EQ(c.round_count(), 3u);
  EXPECT_EQ(c.transmission_count(), 3u);
  EXPECT_EQ(c.delivery_count(), 6u);
  ASSERT_EQ(c.round(0).size(), 2u);
  EXPECT_TRUE(c.round(1).empty());
  ASSERT_EQ(c.round(2).size(), 1u);
  // Within-round order and receiver order are exactly the schedule's.
  const auto& first = c.round(0)[0];
  EXPECT_EQ(first.message, 4u);
  EXPECT_EQ(first.sender, 0u);
  const auto receivers = c.receivers(first);
  EXPECT_EQ(std::vector<graph::Vertex>(receivers.begin(), receivers.end()),
            (std::vector<graph::Vertex>{1, 2, 3}));
  const auto& second = c.round(0)[1];
  EXPECT_EQ(second.message, 5u);
  ASSERT_EQ(c.receivers(second).size(), 1u);
  EXPECT_EQ(c.receivers(second)[0], 0u);
  const auto& third = c.round(2)[0];
  EXPECT_EQ(third.sender, 2u);
  EXPECT_EQ(c.receivers(third).size(), 2u);
}

TEST(CompiledSchedule, EmptySchedule) {
  const CompiledSchedule c = CompiledSchedule::compile(Schedule{});
  EXPECT_EQ(c.round_count(), 0u);
  EXPECT_EQ(c.transmission_count(), 0u);
  EXPECT_EQ(c.delivery_count(), 0u);
}

}  // namespace
}  // namespace mg::model
