// Greedy scheduler for MultiMessage Multicasting on fully connected
// networks.  Per round, senders are considered in order of remaining
// workload (most loaded first — the degree bound's binding resource); each
// picks its pending message with the most currently-free needy
// destinations and multicasts to all of them (partial delivery allowed:
// the message stays pending for the destinations that were busy).
//
// Guarantees measured rather than proved: on every benchmarked family the
// greedy finishes within a small factor of the degree lower bound d
// (gossip restrictions finish in exactly d = n - 1 rounds; random
// instances typically within ~2d), matching the regime of the simple
// algorithms in the paper's refs [12]-[14].
#pragma once

#include "mmc/problem.h"
#include "model/schedule.h"

namespace mg::mmc {

/// Builds a legal schedule delivering every message to every destination.
/// The result satisfies MmcInstance::check.
[[nodiscard]] model::Schedule greedy_mmc_schedule(const MmcInstance& instance);

}  // namespace mg::mmc
