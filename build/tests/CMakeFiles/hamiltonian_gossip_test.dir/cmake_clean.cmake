file(REMOVE_RECURSE
  "CMakeFiles/hamiltonian_gossip_test.dir/hamiltonian_gossip_test.cpp.o"
  "CMakeFiles/hamiltonian_gossip_test.dir/hamiltonian_gossip_test.cpp.o.d"
  "hamiltonian_gossip_test"
  "hamiltonian_gossip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamiltonian_gossip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
