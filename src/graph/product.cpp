#include "graph/product.h"

#include "support/contracts.h"

namespace mg::graph {

Graph cartesian_product(const Graph& g, const Graph& h) {
  const Vertex gn = g.vertex_count();
  const Vertex hn = h.vertex_count();
  MG_EXPECTS(gn >= 1 && hn >= 1);
  MG_EXPECTS_MSG(static_cast<std::size_t>(gn) * hn < kNoVertex,
                 "product too large");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(gn) * h.edge_count() +
                static_cast<std::size_t>(hn) * g.edge_count());
  for (Vertex gv = 0; gv < gn; ++gv) {
    for (const auto& [h1, h2] : h.edges()) {
      edges.emplace_back(product_vertex(gv, h1, hn),
                         product_vertex(gv, h2, hn));
    }
  }
  for (Vertex hv = 0; hv < hn; ++hv) {
    for (const auto& [g1, g2] : g.edges()) {
      edges.emplace_back(product_vertex(g1, hv, hn),
                         product_vertex(g2, hv, hn));
    }
  }
  return Graph::from_edges(gn * hn, edges);
}

}  // namespace mg::graph
