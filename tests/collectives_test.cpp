// Tests for the gather / scatter collectives.
#include <gtest/gtest.h>

#include "gossip/collectives.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "model/validator.h"
#include "support/bitset.h"
#include "support/rng.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

/// Replays `schedule` and returns the final hold bitsets (no rule checks —
/// pair with the validator for legality).
std::vector<DynamicBitset> replay(const Instance& instance,
                                  const model::Schedule& schedule,
                                  bool root_holds_all) {
  const graph::Vertex n = instance.vertex_count();
  std::vector<DynamicBitset> hold(n, DynamicBitset(n));
  if (root_holds_all) {
    for (model::Message m = 0; m < n; ++m) {
      hold[instance.tree().root()].set(m);
    }
  } else {
    for (graph::Vertex v = 0; v < n; ++v) {
      hold[v].set(instance.labels().label(v));
    }
  }
  for (const auto& round : schedule.rounds()) {
    for (const auto& tx : round) {
      for (graph::Vertex r : tx.receivers) hold[r].set(tx.message);
    }
  }
  return hold;
}

model::ValidationReport check_rules(const Instance& instance,
                                    const model::Schedule& schedule,
                                    bool root_holds_all) {
  const graph::Vertex n = instance.vertex_count();
  std::vector<std::vector<model::Message>> initial(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    if (root_holds_all) {
      if (instance.tree().is_root(v)) {
        for (model::Message m = 0; m < n; ++m) initial[v].push_back(m);
      }
    } else {
      initial[v].push_back(instance.labels().label(v));
    }
  }
  model::ValidatorOptions options;
  options.require_completion = false;  // collective-specific goals below
  return model::validate_schedule_general(instance.tree().as_graph(),
                                          schedule, initial, n, options);
}

TEST(Gather, RootCollectsEverythingInNMinusOne) {
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(8));
    const auto schedule = gather_schedule(instance);
    const auto report = check_rules(instance, schedule, false);
    ASSERT_TRUE(report.ok) << family.name << ": " << report.error;
    EXPECT_EQ(schedule.total_time(), instance.vertex_count() - 1u)
        << family.name;
    const auto hold = replay(instance, schedule, false);
    EXPECT_TRUE(hold[instance.tree().root()].all()) << family.name;
    EXPECT_TRUE(schedule.is_telephone()) << family.name;
  }
}

TEST(Gather, RootReceivesMessageMAtTimeM) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = gather_schedule(instance);
  const auto root = instance.tree().root();
  std::vector<std::size_t> arrival(16, 0);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    for (const auto& tx : schedule.round(t)) {
      for (graph::Vertex r : tx.receivers) {
        if (r == root) arrival[tx.message] = t + 1;
      }
    }
  }
  for (model::Message m = 1; m < 16; ++m) EXPECT_EQ(arrival[m], m);
}

TEST(Scatter, EveryDestinationGetsItsOwnMessage) {
  for (const auto& family : test::families()) {
    const auto instance = Instance::from_network(family.make(8));
    const auto schedule = scatter_schedule(instance);
    const auto report = check_rules(instance, schedule, true);
    ASSERT_TRUE(report.ok) << family.name << ": " << report.error;
    const auto hold = replay(instance, schedule, true);
    for (graph::Vertex v = 0; v < instance.vertex_count(); ++v) {
      EXPECT_TRUE(hold[v].test(instance.labels().label(v)))
          << family.name << " v=" << v;
    }
    EXPECT_EQ(schedule.total_time(), scatter_time(instance)) << family.name;
  }
}

TEST(Scatter, MakespanFormula) {
  // Star: all destinations at depth 1, served one per round: n - 1 total.
  const auto star = Instance::from_network(graph::star(9));
  EXPECT_EQ(scatter_time(star), 8u);
  // Chain rooted at the end: deepest-first means the far end's message
  // goes first; makespan = depth of the chain = n - 1... plus later
  // emissions t + depth(d_t) = t + (n-1-t) = n - 1 throughout.
  const Instance chain(tree::root_tree_graph(graph::path(9), 0));
  EXPECT_EQ(scatter_time(chain), 8u);
}

TEST(Scatter, DeepestFirstBeatsShallowFirstOnCombTrees) {
  // A caterpillar has many shallow legs and a deep spine end; serving the
  // deep destination last would pay t_max + depth.
  const auto instance = Instance::from_network(graph::caterpillar(6, 2));
  const auto best = scatter_time(instance);
  // Shallow-first alternative bound: the deepest destination (depth r)
  // would be emitted last, at round n - 2.
  const std::size_t worst =
      instance.vertex_count() - 2u + instance.radius();
  EXPECT_LT(best, worst);
}

TEST(Scatter, PerVertexReceiveOncePerRound) {
  const auto instance = Instance::from_network(graph::grid(4, 4));
  const auto schedule = scatter_schedule(instance);
  for (std::size_t t = 0; t < schedule.round_count(); ++t) {
    std::vector<graph::Vertex> receivers;
    for (const auto& tx : schedule.round(t)) {
      receivers.insert(receivers.end(), tx.receivers.begin(),
                       tx.receivers.end());
    }
    std::sort(receivers.begin(), receivers.end());
    EXPECT_EQ(std::adjacent_find(receivers.begin(), receivers.end()),
              receivers.end())
        << "t=" << t;
  }
}

TEST(Collectives, TrivialSizes) {
  const Instance one(tree::RootedTree::from_parents(0, {graph::kNoVertex}));
  EXPECT_EQ(gather_schedule(one).total_time(), 0u);
  EXPECT_EQ(scatter_schedule(one).total_time(), 0u);
  EXPECT_EQ(scatter_time(one), 0u);
}

}  // namespace
}  // namespace mg::gossip
