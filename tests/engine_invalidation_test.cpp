// Fingerprint-delta invalidation properties (ISSUE 8 satellite):
//   * a mutated graph never serves a stale cache entry — its fingerprint
//     changes, so the next solve is a miss that answers for the *current*
//     topology;
//   * untouched graphs keep their entries across other graphs' deltas;
//   * `invalidate` evicts exactly the targeted fingerprint (every
//     algorithm's entry for it, nothing else) and reports the count;
//   * concurrent solve / invalidate / mutate traffic is race-free (this
//     file runs in the TSAN CI leg).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "churn/feed.h"
#include "churn/solver.h"
#include "engine/engine.h"
#include "graph/dynamic.h"
#include "graph/generators.h"
#include "model/validator.h"
#include "support/rng.h"

namespace mg {
namespace {

using graph::Graph;

TEST(EngineInvalidation, MutatedGraphFingerprintChangesSoCacheMisses) {
  engine::Engine engine;
  graph::DynamicGraph g(graph::grid(5, 5));

  const auto before = engine.solve(g.snapshot());
  EXPECT_EQ(engine.stats().misses, 1u);
  EXPECT_EQ(engine.solve(g.snapshot())->fingerprint, before->fingerprint);
  EXPECT_EQ(engine.stats().hits, 1u);

  g.add_edge(0, 12);
  const auto after = engine.solve(g.snapshot());
  EXPECT_NE(after->fingerprint, before->fingerprint);
  EXPECT_EQ(after->fingerprint, engine::graph_fingerprint(g.snapshot()));
  EXPECT_EQ(engine.stats().misses, 2u) << "mutation must not be served stale";
}

TEST(EngineInvalidation, EvictsExactlyTheTargetedFingerprint) {
  engine::Engine engine;
  const Graph a = graph::grid(4, 4);
  const Graph b = graph::cycle(12);

  (void)engine.solve(a, gossip::Algorithm::kConcurrentUpDown);
  (void)engine.solve(a, gossip::Algorithm::kSimple);
  (void)engine.solve(b, gossip::Algorithm::kConcurrentUpDown);
  ASSERT_EQ(engine.cache_size(), 3u);

  // All algorithms for a's fingerprint go; b's entry survives.
  EXPECT_EQ(engine.invalidate(a), 2u);
  EXPECT_EQ(engine.cache_size(), 1u);
  EXPECT_EQ(engine.stats().invalidations, 2u);
  EXPECT_EQ(engine.invalidate(a), 0u) << "second invalidation finds nothing";

  const auto hits_before = engine.stats().hits;
  (void)engine.solve(b, gossip::Algorithm::kConcurrentUpDown);
  EXPECT_EQ(engine.stats().hits, hits_before + 1)
      << "untouched graph must keep its entry";
  const auto misses_before = engine.stats().misses;
  (void)engine.solve(a, gossip::Algorithm::kSimple);
  EXPECT_EQ(engine.stats().misses, misses_before + 1);
}

// End-to-end through the churn solver: each event invalidates the
// pre-mutation fingerprint, and an engine solve after the event answers
// for the mutated topology (validator-checked), never the stale one.
TEST(EngineInvalidation, ChurnStreamNeverServesStaleResults) {
  engine::Engine engine;
  const Graph g0 = graph::grid(6, 6);
  churn::FeedOptions options;
  options.events = 24;
  options.seed = 11;
  const auto feed = churn::uniform_feed(g0, options);

  churn::ChurnSolver solver(g0, {}, &engine);
  (void)engine.solve(g0);  // prime the cache with the pre-churn entry
  for (const auto& event : feed.events) {
    (void)solver.apply(event);
    const Graph& g = solver.graph().snapshot();
    const auto result = engine.solve(g);
    ASSERT_EQ(result->fingerprint, engine::graph_fingerprint(g));
    ASSERT_EQ(result->vertex_count, g.vertex_count());
    const auto report =
        model::validate_schedule(g, result->schedule, result->initial, {});
    ASSERT_TRUE(report.ok) << report.error;
  }
  EXPECT_GT(solver.stats().invalidated, 0u)
      << "the primed pre-churn entry (at least) must have been evicted";
}

// TSAN stress: solvers, invalidators and a stats reader hammer one engine
// while a mutator thread churns its own DynamicGraph and publishes
// snapshots through the engine.  No assertion beyond accounting sanity —
// the point is that the TSAN leg finds no races.
TEST(EngineInvalidation, ConcurrentMutateSolveInvalidateStress) {
  engine::Engine engine;
  constexpr int kSolvers = 4;
  constexpr int kIterations = 40;
  std::atomic<bool> stop{false};

  std::vector<Graph> topologies;
  {
    graph::DynamicGraph g(graph::grid(5, 5));
    Rng rng(99);
    topologies.push_back(g.snapshot());
    for (int i = 0; i < 8; ++i) {
      const auto u = static_cast<graph::Vertex>(rng.below(g.vertex_count()));
      const auto v = static_cast<graph::Vertex>(rng.below(g.vertex_count()));
      if (u != v && !g.has_edge(u, v)) g.add_edge(u, v);
      topologies.push_back(g.snapshot());
    }
  }

  std::vector<std::thread> threads;
  for (int s = 0; s < kSolvers; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(1000 + static_cast<std::uint64_t>(s));
      for (int i = 0; i < kIterations; ++i) {
        const auto& g = topologies[rng.below(topologies.size())];
        const auto result = engine.solve(g);
        ASSERT_EQ(result->fingerprint, engine::graph_fingerprint(g));
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(77);
    while (!stop.load(std::memory_order_relaxed)) {
      (void)engine.invalidate(topologies[rng.below(topologies.size())]);
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)engine.stats();
      (void)engine.cache_size();
      std::this_thread::yield();
    }
  });
  for (std::size_t s = 0; s < kSolvers; ++s) threads[s].join();
  stop.store(true, std::memory_order_relaxed);
  threads[kSolvers].join();
  threads[kSolvers + 1].join();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, stats.hits + stats.misses);
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kSolvers) * kIterations);
}

}  // namespace
}  // namespace mg
