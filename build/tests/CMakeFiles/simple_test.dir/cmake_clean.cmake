file(REMOVE_RECURSE
  "CMakeFiles/simple_test.dir/simple_test.cpp.o"
  "CMakeFiles/simple_test.dir/simple_test.cpp.o.d"
  "simple_test"
  "simple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
