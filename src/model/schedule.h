// The paper's communication-schedule formalism (§1).
//
// A *communication round* C is a set of tuples (m, l, D): message m, held
// by processor P_l, is multicast to the set of processors with indices in
// D.  A round must satisfy the network's rules: all D sets pairwise
// disjoint (each processor receives at most one message) and all sender
// indices l distinct (each processor sends at most one message).  A
// *communication schedule* is a sequence of rounds; its *total
// communication time* equals the latest time a message is received — a
// message sent in round t is received at time t + 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace mg::model {

using graph::Vertex;

/// Message identifier.  By the paper's convention message `m` is the one
/// originating at the processor whose DFS label is `m`; on general (non
/// relabeled) instances it is simply the origin processor index.
using Message = std::uint32_t;

/// One schedule tuple (m, l, D).
struct Transmission {
  Message message = 0;
  Vertex sender = 0;
  std::vector<Vertex> receivers;  ///< the D set; non-empty, sorted unique
};

/// One communication round: all transmissions sent at the same time unit.
using Round = std::vector<Transmission>;

/// A sequence of communication rounds.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t rounds) : rounds_(rounds) {}

  [[nodiscard]] std::size_t round_count() const { return rounds_.size(); }
  [[nodiscard]] const Round& round(std::size_t t) const { return rounds_[t]; }
  [[nodiscard]] const std::vector<Round>& rounds() const { return rounds_; }

  /// Appends a transmission sent at time `t`, growing the schedule.
  void add(std::size_t t, Transmission tx);

  /// Drops empty trailing rounds.
  void trim();

  /// Splices every transmission of `tail` into this schedule, shifted so
  /// tail round t lands at round `offset + t` — the schedule-patching
  /// primitive (base prefix + repair suffix).
  void append(const Schedule& tail, std::size_t offset);

  /// Total communication time: latest receive time = (index of the last
  /// non-empty round) + 1; zero for an all-empty schedule.
  [[nodiscard]] std::size_t total_time() const;

  /// Number of (m, l, D) tuples over all rounds.
  [[nodiscard]] std::size_t transmission_count() const;

  /// Number of point-to-point deliveries (sum of |D|).
  [[nodiscard]] std::size_t delivery_count() const;

  /// Largest multicast fan-out |D| in the schedule (0 if empty).
  [[nodiscard]] std::size_t max_fanout() const;

  /// True when every D set is a singleton, i.e. the schedule is also valid
  /// under the telephone (unicasting) communication model.
  [[nodiscard]] bool is_telephone() const;

  /// Human-readable rendering ("t=3: msg 5: 2 -> {0, 4}").
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Round> rounds_;
};

/// True when the two schedules perform exactly the same transmissions at
/// the same times (order within a round is immaterial).
[[nodiscard]] bool equivalent(const Schedule& a, const Schedule& b);

}  // namespace mg::model
