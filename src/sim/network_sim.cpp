#include "sim/network_sim.h"

#include <algorithm>

#include "support/bitset.h"
#include "support/contracts.h"

namespace mg::sim {

SimResult simulate(const graph::Graph& g, const model::Schedule& schedule,
                   const std::vector<Message>& initial,
                   const SimOptions& options) {
  const Vertex n = g.vertex_count();
  SimResult result;
  result.completion_time.assign(n, 0);
  result.missing.assign(n, 0);

  std::vector<Message> origin(initial);
  if (origin.empty()) {
    origin.resize(n);
    for (Vertex v = 0; v < n; ++v) origin[v] = v;
  }
  MG_EXPECTS(origin.size() == n);

  std::vector<DynamicBitset> hold(n, DynamicBitset(n));
  std::vector<std::size_t> known(n, 1);
  for (Vertex v = 0; v < n; ++v) hold[v].set(origin[v]);

  auto dropped = [&](std::size_t t, Vertex sender) {
    return std::find(options.drop.begin(), options.drop.end(),
                     std::make_pair(t, sender)) != options.drop.end();
  };

  std::size_t total_known = n;
  result.knowledge.push_back(total_known);

  // Deliveries land at t + 1 (receive-before-send): buffer the round's
  // arrivals and apply them before the next round's sends.
  std::vector<std::pair<Vertex, Message>> in_flight;
  auto apply_arrivals = [&](std::size_t receive_time) {
    for (const auto& [r, m] : in_flight) {
      if (!hold[r].test(m)) {
        hold[r].set(m);
        ++known[r];
        ++total_known;
        if (known[r] == n) result.completion_time[r] = receive_time;
      }
    }
    in_flight.clear();
  };

  const std::size_t rounds = schedule.round_count();
  for (std::size_t t = 0; t < rounds; ++t) {
    apply_arrivals(t);
    if (t > 0) result.knowledge.push_back(total_known);  // state at time t
    for (const auto& tx : schedule.round(t)) {
      if (dropped(t, tx.sender)) continue;
      if (!hold[tx.sender].test(tx.message)) {
        ++result.skipped_sends;  // fault cascade: nothing to forward
        continue;
      }
      if (options.record_trace) {
        result.trace.push_back({SimEvent::Kind::kSend, t, tx.sender,
                                tx.message,
                                tx.receivers.empty() ? tx.sender
                                                     : tx.receivers.front()});
      }
      for (Vertex r : tx.receivers) {
        result.total_time = std::max(result.total_time, t + 1);
        if (options.record_trace) {
          result.trace.push_back(
              {SimEvent::Kind::kReceive, t + 1, r, tx.message, tx.sender});
        }
        in_flight.emplace_back(r, tx.message);
      }
    }
  }
  apply_arrivals(rounds);
  if (rounds > 0) result.knowledge.push_back(total_known);

  result.completed = true;
  for (Vertex v = 0; v < n; ++v) {
    result.missing[v] = n - known[v];
    if (result.missing[v] != 0) result.completed = false;
  }
  result.final_holds = std::move(hold);
  return result;
}

}  // namespace mg::sim
