// Sensor-network scenario (§2's wireless motivation): "a transmission with
// power r^alpha reaches all receivers at a distance r" — multicast for
// free.  A random geometric deployment in the unit square gossips its
// sensor readings; we compare the multicast schedule against the telephone
// baseline and simulate a lossy round to show the completion impact.
//
//   $ ./sensor_network [n] [radius] [seed]
#include <cstdio>
#include <cstdlib>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "sim/network_sim.h"
#include "support/rng.h"

int main(int argc, char** argv) {
  using namespace mg;
  const auto n = static_cast<graph::Vertex>(argc > 1 ? std::atoi(argv[1]) : 60);
  const double radius = argc > 2 ? std::atof(argv[2]) : 0.22;
  const auto seed = static_cast<std::uint64_t>(
      argc > 3 ? std::atoll(argv[3]) : 0x5e45);

  Rng rng(seed);
  const auto field = graph::random_geometric(n, radius, rng);
  const auto metrics = graph::compute_metrics(field);
  std::printf(
      "sensor field: %u nodes, %zu radio links, network radius %u, hop "
      "diameter %u\n\n",
      field.vertex_count(), field.edge_count(), metrics.radius,
      metrics.diameter);

  // All-to-all dissemination of sensor readings = gossiping.
  const auto multicast = gossip::solve_gossip(field);
  const auto telephone =
      gossip::solve_gossip(field, gossip::Algorithm::kTelephone);
  if (!multicast.report.ok || !telephone.report.ok) {
    std::printf("validation failed\n");
    return 1;
  }
  std::printf("multicast (ConcurrentUpDown): %4zu rounds  (n + r = %u)\n",
              multicast.schedule.total_time(), n + metrics.radius);
  std::printf("telephone baseline:           %4zu rounds  (%.2fx slower)\n\n",
              telephone.schedule.total_time(),
              static_cast<double>(telephone.schedule.total_time()) /
                  static_cast<double>(multicast.schedule.total_time()));

  // Energy proxy: one transmission = one radio wake-up, regardless of how
  // many neighbors hear it (that is the §2 wireless argument).
  std::printf("radio transmissions: multicast %zu vs telephone %zu\n\n",
              multicast.schedule.transmission_count(),
              telephone.schedule.transmission_count());

  // Fault drill: the busiest relay misses one send slot.
  const auto root = multicast.instance.tree().root();
  sim::SimOptions faulty;
  faulty.drop.emplace_back(multicast.schedule.total_time() / 2, root);
  const auto degraded =
      sim::simulate(multicast.instance.tree().as_graph(), multicast.schedule,
                    multicast.instance.initial(), faulty);
  std::size_t starved = 0;
  for (const auto missing : degraded.missing) starved += missing > 0 ? 1 : 0;
  std::printf(
      "fault drill: dropping the sink's transmission at round %zu leaves "
      "%zu/%u\nsensors with incomplete data (%zu forwards silently skipped) "
      "-- a fixed\nschedule has no retransmission, so upper layers must "
      "re-run the gossip.\n",
      multicast.schedule.total_time() / 2, starved, n,
      degraded.skipped_sends);
  return 0;
}
