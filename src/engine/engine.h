// Concurrent batch gossip engine (`mg::engine`).
//
// The paper's pipeline — minimum-depth spanning tree (n BFS sweeps, O(mn),
// §3.1) feeding a tree-gossip schedule of n + r rounds (§3.2) — is pure:
// the same network and algorithm always produce the same schedule.  A
// gossip-as-a-service workload re-queries the same or near-same topologies
// constantly, so the engine memoizes whole solves behind a canonical graph
// fingerprint:
//
//  * requests are deduplicated by (`graph_fingerprint(g)`, algorithm);
//  * repeats are answered from a sharded LRU cache (N mutex-striped
//    shards) of `shared_ptr<const Result>`, so eviction never invalidates
//    a result an in-flight reader still holds;
//  * concurrent identical misses are single-flighted: the first caller
//    solves, every other caller waits on the same future and is accounted
//    as a coalesced hit (one solve per distinct cold key, ever);
//  * `solve_batch` fans a request vector out over the engine's ThreadPool
//    so independent misses solve concurrently.
//
// Accounting identity (asserted by the stress tests): every request is
// either a hit (cache or coalesced join) or a miss (it executed a solve),
// so `hits + misses == requests` — no lost and no duplicated solves.
// Counters and per-request latency are mirrored into `mg::obs` under
// `engine.*`; `bench/engine_throughput` turns them into BENCH_engine.json.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gossip/solve.h"
#include "graph/graph.h"
#include "model/schedule.h"
#include "model/validator.h"

namespace mg {
class ThreadPool;
}

namespace mg::engine {

/// Canonical 64-bit fingerprint of a graph's labelled adjacency structure:
/// a `Fingerprint64` stream of n, then per vertex its degree followed by
/// its sorted neighbor list.  Because CSR storage is canonical (neighbor
/// lists sorted, duplicates collapsed at build time), equal graphs always
/// collide and edge-insertion order never matters.
[[nodiscard]] std::uint64_t graph_fingerprint(const graph::Graph& g);

/// One solved-and-validated gossip instance, immutable once published.
struct Result {
  std::uint64_t fingerprint = 0;
  gossip::Algorithm algorithm = gossip::Algorithm::kConcurrentUpDown;
  graph::Vertex vertex_count = 0;             ///< n
  std::uint32_t radius = 0;                   ///< r (tree height)
  std::vector<model::Message> initial;        ///< processor -> DFS label
  model::Schedule schedule;                   ///< message ids are DFS labels
  model::ValidationReport report;             ///< always validated
};

using ResultPtr = std::shared_ptr<const Result>;

/// One entry of a `solve_batch` request vector.
struct Request {
  graph::Graph graph;
  gossip::Algorithm algorithm = gossip::Algorithm::kConcurrentUpDown;
};

struct EngineOptions {
  /// Total cached schedules across all shards (>= 1); the per-shard LRU
  /// capacity is ceil(cache_capacity / shards).
  std::size_t cache_capacity = 1024;
  /// Mutex stripes (>= 1).  Requests hash to a shard by fingerprint, so
  /// unrelated graphs contend on different locks.
  std::size_t shards = 8;
  /// Worker threads for `solve_batch`; 0 = hardware_concurrency().
  std::size_t threads = 0;
};

/// Point-in-time engine counters (monotonic since construction).
struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;        ///< cache hits + coalesced joins
  std::uint64_t misses = 0;      ///< solves actually executed
  std::uint64_t evictions = 0;   ///< LRU entries displaced
  std::uint64_t inflight_coalesced = 0;  ///< subset of hits that joined a
                                         ///< solve already in flight
  std::uint64_t invalidations = 0;  ///< entries evicted by `invalidate`
};

/// Thread-safe memoizing gossip solver.  All public members may be called
/// concurrently from any number of threads.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Solves gossiping on connected network `g` (cached).  Throws whatever
  /// the underlying solve throws (e.g. ContractViolation on a disconnected
  /// graph) — failures are never cached, and every coalesced waiter of a
  /// failed solve sees the same exception.
  [[nodiscard]] ResultPtr solve(
      const graph::Graph& g,
      gossip::Algorithm algorithm = gossip::Algorithm::kConcurrentUpDown);

  /// Solves every request, fanning misses out over the engine's pool;
  /// results are positionally aligned with `requests`.  If any solve
  /// throws, the first exception is rethrown after the batch drains.
  [[nodiscard]] std::vector<ResultPtr> solve_batch(
      std::span<const Request> requests);

  [[nodiscard]] EngineStats stats() const;

  /// Entries currently cached (sums the shards; O(shards)).
  [[nodiscard]] std::size_t cache_size() const;

  /// Drops every cached entry (outstanding ResultPtrs stay valid).
  void clear_cache();

  /// Fingerprint-delta invalidation: evicts every cached entry (all
  /// algorithms) for exactly this graph fingerprint, leaving the rest of
  /// the cache intact — the churn solver calls this with the *pre-mutation*
  /// fingerprint so a topology delta costs one entry, not the cache.
  /// In-flight solves are left alone: their key fingerprints the content
  /// they are solving, so their eventual publication is still correct.
  /// Returns the number of entries evicted.  Outstanding ResultPtrs stay
  /// valid.
  std::size_t invalidate(std::uint64_t fingerprint);

  /// Convenience: invalidate(graph_fingerprint(g)).
  std::size_t invalidate(const graph::Graph& g);

  [[nodiscard]] std::size_t thread_count() const;

 private:
  struct Shard;

  Shard& shard_for(std::uint64_t fingerprint) const;

  std::size_t shard_count_;
  std::size_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace mg::engine
