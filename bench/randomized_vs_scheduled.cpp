// Extension bench: the decentralized alternative.  Randomized push(-pull)
// rumor spreading (the paper's related-work family [6]) needs no global
// knowledge at all — but under the model's one-receive-per-round rule its
// collisions and duplicate deliveries cost a large constant over the
// offline n + r schedule.  Reported: mean rounds over seeds, message
// overhead (deliveries per useful delivery), and collision counts.
#include <cstdio>

#include "gossip/solve.h"
#include "graph/generators.h"
#include "graph/named.h"
#include "sim/randomized.h"
#include "support/rng.h"
#include "support/table.h"

int main() {
  using namespace mg;
  Rng seed_rng(0xfeed);
  const std::vector<std::pair<std::string, graph::Graph>> graphs = {
      {"complete 32", graph::complete(32)},
      {"cycle 32", graph::cycle(32)},
      {"grid 6x6", graph::grid(6, 6)},
      {"hypercube 5", graph::hypercube(5)},
      {"star 32", graph::star(32)},
      {"petersen", graph::petersen()},
  };
  constexpr int kTrials = 20;

  TextTable table;
  table.new_row();
  for (const char* h :
       {"network", "n", "scheduled (n+r)", "push mean", "push-pull mean",
        "overhead x", "collision %"}) {
    table.cell(std::string(h));
  }

  for (const auto& [name, g] : graphs) {
    const auto sol = gossip::solve_gossip(g);

    double push_rounds = 0;
    double pull_rounds = 0;
    double useful = 0;
    double delivered = 0;
    double offered = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(seed_rng());
      const auto push = sim::randomized_gossip(g, rng);
      push_rounds += static_cast<double>(push.rounds);
      delivered += static_cast<double>(push.transmissions);
      useful += static_cast<double>(push.transmissions - push.useless);
      offered +=
          static_cast<double>(push.transmissions + push.collisions);

      Rng rng2(seed_rng());
      sim::RandomizedOptions with_pull;
      with_pull.pull = true;
      pull_rounds += static_cast<double>(
          sim::randomized_gossip(g, rng2, with_pull).rounds);
    }

    table.new_row();
    table.cell(name);
    table.cell(static_cast<std::size_t>(g.vertex_count()));
    table.cell(sol.schedule.total_time());
    table.cell(push_rounds / kTrials, 1);
    table.cell(pull_rounds / kTrials, 1);
    table.cell(delivered / useful, 2);
    table.cell(100.0 * (offered - delivered) / offered, 1);
  }

  std::printf(
      "Randomized push(-pull) rumor spreading vs the offline n + r "
      "schedule\n(%d seeds per cell; 'overhead' = deliveries per NEW "
      "delivery;\n'collision %%' = offers lost to the one-receive-per-round "
      "rule):\n\n%s\n"
      "Reading: the offline schedule needs global topology knowledge once\n"
      "(O(mn) preprocessing) and then runs collision-free at the n + r\n"
      "optimum-within-1.5x; the randomized protocol needs nothing but pays\n"
      "an order of magnitude in rounds and messages under this model.\n",
      kTrials, table.render().c_str());
  return 0;
}
