// Time-series telemetry: a background thread snapshotting the metric
// registry at a fixed cadence into a bounded ring of timestamped samples.
//
// Each sample is one registry Snapshot (counters, timers, histogram
// quantiles) plus the counter *deltas* against the previous sample, so a
// consumer reads rates without diffing itself.  The ring keeps the last
// `capacity` samples — a scraper that polls less often than the cadence
// still sees a bounded, recent window; older samples are evicted, never
// reallocated into an unbounded log.
//
// The usual zero-cost story holds: building with MG_OBS_ENABLED=0 turns
// `start()` into a no-op (no thread is ever created — the sampler is
// compiled out of the workload's build), and at run time a disabled
// registry yields empty snapshots, so a running sampler observes nothing
// ("runtime-null records nothing" — `bench_main --sanity` checks both).
// Sampling itself never touches the hot path: it reads the same relaxed
// atomics the workload writes, at cadence, off-thread; the measured
// steady-state overhead is documented in docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.h"

namespace mg::obs {

struct SamplerOptions {
  /// Time between samples.
  std::chrono::milliseconds cadence{100};
  /// Samples kept in the ring (oldest evicted first).
  std::size_t capacity = 600;
};

/// One timestamped registry observation.
struct Sample {
  std::uint64_t t_ns = 0;   ///< monotonic ns since the sampler started
  std::uint64_t dt_ns = 0;  ///< ns since the previous sample (0 for first)
  Snapshot snapshot;
  /// Counter increments since the previous sample, sorted by name.
  /// Counters that first appear in this sample delta from zero.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};

class Sampler {
 public:
  explicit Sampler(Registry& registry = Registry::global(),
                   SamplerOptions options = {});
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;
  ~Sampler();  // stops the thread

  /// Starts the background thread; returns false (and stays inert) when
  /// already running or when the build compiled observability out.
  bool start();

  /// Stops and joins the thread; idempotent.
  void stop();

  [[nodiscard]] bool running() const;

  /// Samples taken over the sampler's lifetime (>= ring size).
  [[nodiscard]] std::uint64_t samples_taken() const;

  /// Takes one sample synchronously (also what the thread does each tick);
  /// safe to call with or without the thread running.
  void sample_now();

  /// Copies the ring, oldest first.
  [[nodiscard]] std::vector<Sample> series() const;

  /// Writes the ring as one JSON document:
  /// {"schema_version": 1, "cadence_ms": .., "samples": [{"t_ns": ..,
  ///   "dt_ns": .., "counters": {..}, "counter_deltas": {..},
  ///   "histograms": {name: {"count": .., "p50": .., "p99": ..}}}, ..]}.
  void write_json(std::ostream& out) const;

 private:
  void run_loop();

  Registry& registry_;
  SamplerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Sample> ring_;
  std::vector<std::pair<std::string, std::uint64_t>> last_counters_;
  std::uint64_t taken_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mg::obs
