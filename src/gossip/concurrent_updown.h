// The paper's main result (§3.2): algorithm ConcurrentUpDown, the overlap
// of Propagate-Up (steps U1-U4) and Propagate-Down (steps D1-D3), producing
// a gossip schedule of total communication time exactly n + r on any tree
// with n processors and height r (Theorem 1).  Combined with the
// minimum-depth spanning tree of §3.1 this solves gossiping on an arbitrary
// network in n + radius time — at most 1.5x optimal, and within +1 of the
// n + r - 1 lower bound on odd straight-line networks.
#pragma once

#include "gossip/instance.h"
#include "model/schedule.h"

namespace mg::gossip {

struct ConcurrentUpDownOptions {
  /// Step (U3): each vertex sends its lip-message to its parent at time 0.
  /// Disabling this reproduces the conflict the paper discusses ("message 3
  /// would get stuck in the root"): the merged schedule then violates the
  /// one-receive-per-round rule, which the model validator reports.
  bool lookahead_at_time_zero = true;
};

/// Steps (U1)-(U4): the sender-side schedule pushing every message to the
/// root.  Message m held by vertex v at level k is sent to v's parent at
/// time m - k (lip-messages at time 0), so the root receives message m at
/// time m (Lemma 2).
[[nodiscard]] model::Schedule propagate_up(
    const Instance& instance, const ConcurrentUpDownOptions& options = {});

/// Steps (D1)-(D3): the sender-side schedule propagating every message down
/// to every subtree.  Non-leaf vertex v multicasts its subtree's messages
/// i..j at times i-k..j-k (message i delayed to j-k+1 when i == k) and
/// relays o-messages the round they arrive, except the two arriving at
/// times i-k and i-k+1, which are delayed to j-k+1 and j-k+2 (Lemma 3).
[[nodiscard]] model::Schedule propagate_down(const Instance& instance);

/// Theorem 1: the overlap of Propagate-Up and Propagate-Down.  Up and down
/// transmissions by the same vertex at the same time always carry the same
/// message and are merged into a single multicast.  Total communication
/// time is exactly n + r for n >= 2 (0 for n == 1).
[[nodiscard]] model::Schedule concurrent_updown(
    const Instance& instance, const ConcurrentUpDownOptions& options = {});

}  // namespace mg::gossip
