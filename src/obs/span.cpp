#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace mg::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread nesting depth.  Tracer-agnostic on purpose: a test tracer
/// nested inside global-tracer spans still sees a consistent bracketing.
thread_local std::uint32_t t_depth = 0;

}  // namespace

SpanTracer::SpanTracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity == 0 ? 1 : capacity)),
      epoch_ns_(steady_now_ns()) {}

SpanTracer& SpanTracer::global() {
  static SpanTracer instance;
  return instance;
}

std::uint64_t SpanTracer::now_ns() const {
  return steady_now_ns() - epoch_ns_;
}

std::uint32_t SpanTracer::this_thread_id() {
  static std::atomic<std::uint32_t> counter{0};
  thread_local const std::uint32_t id =
      counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

void SpanTracer::record(std::string_view name, std::uint32_t thread,
                        std::uint32_t depth, std::uint64_t start_ns,
                        std::uint64_t end_ns) {
  const std::uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  if (index >= capacity_) return;  // full: counted as dropped, never blocks
  Slot& slot = slots_[index];
  const std::size_t copy = std::min(name.size(), kMaxNameLength);
  std::memcpy(slot.span.name, name.data(), copy);
  slot.span.name[copy] = '\0';
  slot.span.thread = thread;
  slot.span.depth = depth;
  slot.span.start_ns = start_ns;
  slot.span.end_ns = end_ns;
  slot.ready.store(true, std::memory_order_release);  // publish
}

std::uint64_t SpanTracer::recorded() const {
  return std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                                 capacity_);
}

std::uint64_t SpanTracer::dropped() const {
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  return claimed > capacity_ ? claimed - capacity_ : 0;
}

std::vector<SpanTracer::Span> SpanTracer::snapshot() const {
  const std::uint64_t published =
      std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                              capacity_);
  std::vector<Span> spans;
  spans.reserve(published);
  for (std::uint64_t i = 0; i < published; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      spans.push_back(slots_[i].span);
    }
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.end_ns > b.end_ns;  // parent before its same-start children
  });
  return spans;
}

void SpanTracer::clear() {
  const std::uint64_t published =
      std::min<std::uint64_t>(next_.load(std::memory_order_relaxed),
                              capacity_);
  for (std::uint64_t i = 0; i < published; ++i) {
    slots_[i].ready.store(false, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

ScopeSpan::ScopeSpan(SpanTracer& tracer, std::string_view name) {
  if (!tracer.enabled()) return;  // disabled: one relaxed load, nothing else
  tracer_ = &tracer;
  name_ = name;
  depth_ = t_depth++;
  start_ns_ = tracer.now_ns();
}

ScopeSpan::~ScopeSpan() {
  if (tracer_ == nullptr) return;
  --t_depth;
  tracer_->record(name_, SpanTracer::this_thread_id(), depth_, start_ns_,
                  tracer_->now_ns());
}

}  // namespace mg::obs
