file(REMOVE_RECURSE
  "CMakeFiles/ablation_lip.dir/ablation_lip.cpp.o"
  "CMakeFiles/ablation_lip.dir/ablation_lip.cpp.o.d"
  "ablation_lip"
  "ablation_lip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
