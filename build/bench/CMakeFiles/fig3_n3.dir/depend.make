# Empty dependencies file for fig3_n3.
# This may be replaced when dependencies are built.
