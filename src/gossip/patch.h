// Schedule *patching* under topology churn: instead of re-solving gossip
// from scratch after an edge flip, keep the already-compiled schedule,
// strike the transmissions the mutated network can no longer carry, and
// splice a `partial_completion_schedule` repair onto the tail to close
// whatever gap the strikes opened.
//
// The pipeline (see docs/CHURN.md):
//   1. *filter*  — drop every (m, l, D) receiver no longer adjacent to the
//      sender (edge removals), and whole transmissions whose D set empties;
//      edge insertions strike nothing, so their patch is the old schedule
//      verbatim.
//   2. *replay*  — the filter tracks exact hold state while it walks the
//      rounds (receive-before-send, matching the simulator), which both
//      yields the degraded hold state for free and lets strikes *cascade*:
//      a transmission whose sender never received the message — because an
//      upstream delivery was struck — is struck too, transitively, keeping
//      the output valid under the model's "sender holds the message" rule.
//   3. *repair*  — if gossip no longer completes, append the greedy
//      completion schedule for that hold state after the filtered horizon.
// The result is a valid schedule on the mutated graph (rule conflicts
// cannot appear: filtering only shrinks rounds, and the repair occupies
// rounds of its own), typically within a handful of repair rounds of the
// original — and orders of magnitude cheaper than a fresh solve (pinned by
// bench/churn_bench's patched-vs-resolve gate).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/schedule.h"
#include "support/bitset.h"

namespace mg::gossip {

/// What `patch_schedule` did to the old schedule.
struct PatchResult {
  model::Schedule schedule;  ///< patched schedule, valid on the new graph
  /// Receivers struck from surviving transmissions (no longer adjacent).
  std::size_t trimmed_receivers = 0;
  /// Transmissions dropped whole (sender invalid or D set emptied).
  std::size_t dropped_transmissions = 0;
  /// Rounds of the filtered base schedule (repair starts after these).
  std::size_t base_rounds = 0;
  /// Rounds of the spliced repair tail (0 when the filtered schedule still
  /// completes on its own).
  std::size_t repair_rounds = 0;
  /// True when the patched schedule completes gossip on the new graph —
  /// always, for a connected graph, unless a repair was impossible.
  bool complete = false;
};

/// Patches `old_schedule` (built for some previous topology) so it
/// completes gossip on the *current* graph `g`.  `initial[v]` is the
/// message processor v holds at time 0 (empty = identity, matching
/// `sim::simulate`).  Requires message ids < g.vertex_count(); schedules
/// that predate a node event must be re-solved, not patched (the churn
/// solver enforces this).
[[nodiscard]] PatchResult patch_schedule(
    const graph::Graph& g, const model::Schedule& old_schedule,
    const std::vector<model::Message>& initial = {});

/// Same pipeline, but seeded from an explicit per-vertex hold state —
/// `initial_holds[v].test(m)` iff processor v holds message m at time 0.
/// This is the entry point for non-gossip message universes (e.g. patching
/// a broadcast schedule, where every hold bitset has a single message id);
/// completion means every vertex holds every id in the universe.
[[nodiscard]] PatchResult patch_schedule_from_holds(
    const graph::Graph& g, const model::Schedule& old_schedule,
    const std::vector<DynamicBitset>& initial_holds);

}  // namespace mg::gossip
