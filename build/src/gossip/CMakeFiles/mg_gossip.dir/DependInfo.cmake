
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gossip/bounded_fanout.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/bounded_fanout.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/bounded_fanout.cpp.o.d"
  "/root/repo/src/gossip/broadcast.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/broadcast.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/broadcast.cpp.o.d"
  "/root/repo/src/gossip/classification.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/classification.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/classification.cpp.o.d"
  "/root/repo/src/gossip/collectives.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/collectives.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/collectives.cpp.o.d"
  "/root/repo/src/gossip/concurrent_updown.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/concurrent_updown.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/concurrent_updown.cpp.o.d"
  "/root/repo/src/gossip/hamiltonian_gossip.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/hamiltonian_gossip.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/hamiltonian_gossip.cpp.o.d"
  "/root/repo/src/gossip/line_optimal.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/line_optimal.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/line_optimal.cpp.o.d"
  "/root/repo/src/gossip/online.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/online.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/online.cpp.o.d"
  "/root/repo/src/gossip/optimal_search.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/optimal_search.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/optimal_search.cpp.o.d"
  "/root/repo/src/gossip/recovery.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/recovery.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/recovery.cpp.o.d"
  "/root/repo/src/gossip/repeated.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/repeated.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/repeated.cpp.o.d"
  "/root/repo/src/gossip/simple.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/simple.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/simple.cpp.o.d"
  "/root/repo/src/gossip/solve.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/solve.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/solve.cpp.o.d"
  "/root/repo/src/gossip/telephone.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/telephone.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/telephone.cpp.o.d"
  "/root/repo/src/gossip/timetable.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/timetable.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/timetable.cpp.o.d"
  "/root/repo/src/gossip/updown.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/updown.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/updown.cpp.o.d"
  "/root/repo/src/gossip/weighted.cpp" "src/gossip/CMakeFiles/mg_gossip.dir/weighted.cpp.o" "gcc" "src/gossip/CMakeFiles/mg_gossip.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/mg_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
