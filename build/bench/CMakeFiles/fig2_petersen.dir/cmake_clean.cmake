file(REMOVE_RECURSE
  "CMakeFiles/fig2_petersen.dir/fig2_petersen.cpp.o"
  "CMakeFiles/fig2_petersen.dir/fig2_petersen.cpp.o.d"
  "fig2_petersen"
  "fig2_petersen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_petersen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
