// Tests for the §4 online adaptation: the distributed protocol running on
// purely local information must reproduce the offline ConcurrentUpDown
// schedule exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "gossip/concurrent_updown.h"
#include "gossip/online.h"
#include "support/rng.h"
#include "test_util.h"
#include "tree/spanning_tree.h"

namespace mg::gossip {
namespace {

TEST(Online, LocalInfoExtraction) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto info = local_info_for(instance, 4);
  EXPECT_EQ(info.n, 16u);
  EXPECT_EQ(info.self, 4u);
  EXPECT_EQ(info.i, 4u);
  EXPECT_EQ(info.j, 10u);
  EXPECT_EQ(info.k, 1u);
  EXPECT_TRUE(info.has_parent);
  EXPECT_FALSE(info.first_child);
  EXPECT_EQ(info.parent, 0u);
  EXPECT_EQ(info.children, (std::vector<graph::Vertex>{5, 8}));
  ASSERT_EQ(info.child_intervals.size(), 2u);
  EXPECT_EQ(info.child_intervals[0], std::make_pair(5u, 7u));
  EXPECT_EQ(info.child_intervals[1], std::make_pair(8u, 10u));
}

TEST(Online, FirstChildBit) {
  const auto instance = Instance::from_network(graph::fig4_network());
  EXPECT_TRUE(local_info_for(instance, 1).first_child);
  EXPECT_TRUE(local_info_for(instance, 5).first_child);
  EXPECT_FALSE(local_info_for(instance, 8).first_child);
  EXPECT_FALSE(local_info_for(instance, 0).has_parent);
}

TEST(Online, MatchesOfflineOnFig4) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto offline = concurrent_updown(instance);
  const auto online = run_online(instance);
  EXPECT_TRUE(model::equivalent(offline, online))
      << "offline:\n" << offline.to_string()
      << "online:\n" << online.to_string();
}

TEST(Online, MatchesOfflineAcrossFamilies) {
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 6u, 10u}) {
      const auto instance = Instance::from_network(family.make(knob));
      EXPECT_TRUE(model::equivalent(concurrent_updown(instance),
                                    run_online(instance)))
          << family.name << " knob=" << knob;
    }
  }
}

TEST(Online, MatchesOfflineOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const auto n = static_cast<graph::Vertex>(2 + rng.below(40));
    const auto instance =
        Instance(tree::root_tree_graph(graph::random_tree(n, rng), 0));
    EXPECT_TRUE(model::equivalent(concurrent_updown(instance),
                                  run_online(instance)))
        << "seed=" << seed << " n=" << n;
  }
}

TEST(Online, PerProcessorDecisionParityWithOffline) {
  // The strongest form of the §4 claim, pinned processor by processor:
  // drive every OnlineProcessor by hand (deliveries replayed from the
  // offline schedule's wire traffic) and require that at EVERY round each
  // processor's decision — including the exact receiver set — equals the
  // offline ConcurrentUpDown row for that (round, sender), with no global
  // schedule object anywhere in the loop.
  for (const auto& family : test::families()) {
    for (graph::Vertex knob : {3u, 5u, 9u}) {
      const auto instance = Instance::from_network(family.make(knob));
      const auto offline = concurrent_updown(instance);
      const auto& tree = instance.tree();
      const graph::Vertex n = instance.vertex_count();

      std::vector<OnlineProcessor> procs;
      procs.reserve(n);
      for (graph::Vertex v = 0; v < n; ++v) {
        procs.emplace_back(local_info_for(instance, v));
      }

      for (std::size_t t = 0; t < offline.round_count(); ++t) {
        // Receive (sends of round t-1 arrive at t) happens before send.
        if (t > 0) {
          for (const auto& tx : offline.round(t - 1)) {
            for (const graph::Vertex r : tx.receivers) {
              procs[r].deliver(t, tx.message,
                               /*from_parent=*/!tree.is_root(r) &&
                                   tree.parent(r) == tx.sender);
            }
          }
        }
        std::vector<std::optional<model::Transmission>> expected(n);
        for (const auto& tx : offline.round(t)) {
          expected[tx.sender] = tx;
        }
        for (graph::Vertex v = 0; v < n; ++v) {
          SCOPED_TRACE(family.name + " knob=" + std::to_string(knob) +
                       " t=" + std::to_string(t) + " v=" +
                       std::to_string(v));
          const auto actual = procs[v].send_at(t);
          ASSERT_EQ(actual.has_value(), expected[v].has_value());
          if (!actual.has_value()) continue;
          EXPECT_EQ(actual->sender, v);
          EXPECT_EQ(actual->message, expected[v]->message);
          auto a = actual->receivers;
          auto b = expected[v]->receivers;
          std::sort(a.begin(), a.end());
          std::sort(b.begin(), b.end());
          EXPECT_EQ(a, b);
        }
      }
    }
  }
}

TEST(Online, ScheduleIsValidOnItsOwn) {
  const auto instance = Instance::from_network(graph::fig4_network());
  const auto schedule = run_online(instance);
  test::expect_valid_gossip(instance, schedule);
}

TEST(Online, ProcessorSendsNothingWithoutPlan) {
  const auto instance = Instance::from_network(graph::path(5));
  OnlineProcessor proc(local_info_for(instance, instance.tree().root()));
  // The root never sends at time 0 (no lip, D3 message 0 waits).
  EXPECT_FALSE(proc.send_at(0).has_value());
}

TEST(Online, DeliverTriggersRelay) {
  // A middle vertex relays an o-message from its parent the round it
  // arrives (outside the delay window).
  const auto instance = Instance::from_network(graph::path(7));
  const auto& tree = instance.tree();
  graph::Vertex middle = graph::kNoVertex;
  for (graph::Vertex v = 0; v < 7; ++v) {
    if (!tree.is_root(v) && !tree.is_leaf(v)) middle = v;
  }
  ASSERT_NE(middle, graph::kNoVertex);
  OnlineProcessor proc(local_info_for(instance, middle));
  const auto& info = proc.info();
  const std::size_t safe_time = info.n + info.k;  // last (D1) arrival slot
  proc.deliver(safe_time, 0, /*from_parent=*/true);
  const auto tx = proc.send_at(safe_time);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->message, 0u);
}

}  // namespace
}  // namespace mg::gossip
