file(REMOVE_RECURSE
  "CMakeFiles/telephone_vs_multicast.dir/telephone_vs_multicast.cpp.o"
  "CMakeFiles/telephone_vs_multicast.dir/telephone_vs_multicast.cpp.o.d"
  "telephone_vs_multicast"
  "telephone_vs_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telephone_vs_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
