// Gossip completion from an arbitrary knowledge state ("set gossiping")
// and the self-healing driver built on it.
//
// The paper's schedules are fixed offline plans; the simulator shows that a
// dropped transmission leaves part of the network permanently starved.
// This module provides the repair in two layers:
//
//  * `greedy_completion_schedule` / `partial_completion_schedule` — given
//    per-processor hold sets after a faulty run, build a fresh schedule
//    that finishes the gossip on the *original network* (not just the tree
//    — recovery may route around a lossy branch).  The builder is a greedy
//    maximal-multicast flood: each round, every processor picks the held
//    message wanted by the most still-free needy neighbors, conflicts
//    resolved greedily; it terminates because some wanting receiver with a
//    knowing neighbor always exists while any reachable gap remains.  The
//    partial form accepts dead processors and disconnected survivor
//    graphs: each component floods to its *achievable closure* (the union
//    of what its members know) and unreachable gaps are reported, not
//    asserted.
//
//  * `solve_with_recovery` — the end-to-end self-healing driver: run a
//    schedule under a `fault::FaultPlan`, detect incompleteness from
//    `SimResult::missing`, and close the gap with bounded retry rounds of
//    the greedy completion builder.  Repairs execute under the *same*
//    fault plan at absolute round offsets (the fabric does not politely
//    stop dropping because we are recovering), so several attempts may be
//    needed; a crash-partitioned network degrades to an accurate
//    partial-coverage report instead of an assertion.
#pragma once

#include <utility>
#include <vector>

#include "fault/fault.h"
#include "gossip/solve.h"
#include "graph/graph.h"
#include "model/schedule.h"
#include "sim/network_sim.h"
#include "support/bitset.h"

namespace mg::gossip {

/// Greedy completion schedule: from hold-state `holds` (holds[v].size() ==
/// message_count for every v; bit m set when v knows message m), produce a
/// schedule after which every processor holds every message.  Requires a
/// connected graph and every message known somewhere (ContractViolation
/// otherwise — use partial_completion_schedule to degrade gracefully).
[[nodiscard]] model::Schedule greedy_completion_schedule(
    const graph::Graph& g, const std::vector<DynamicBitset>& holds);

/// Graceful form: processors with alive[v] == 0 neither send nor receive,
/// and each connected component of the surviving subgraph floods only to
/// its achievable closure (messages known to at least one live member).
/// Never throws on partition or globally-unknown messages; an empty
/// `alive` means everyone is alive.  The returned schedule is empty iff
/// the state is already closed.
[[nodiscard]] model::Schedule partial_completion_schedule(
    const graph::Graph& g, const std::vector<DynamicBitset>& holds,
    const std::vector<char>& alive = {});

/// Convenience: hold-state -> initial sets for validate_schedule_general.
[[nodiscard]] std::vector<std::vector<model::Message>> holds_to_initial_sets(
    const std::vector<DynamicBitset>& holds);

/// Knobs for the self-healing driver.
struct RecoveryOptions {
  /// Base schedule generator (the thing being healed).
  Algorithm algorithm = Algorithm::kConcurrentUpDown;
  /// Maximum number of recovery invocations (greedy repair + re-simulate)
  /// before giving up and reporting partial coverage.
  std::size_t max_attempts = 4;
  /// Cap on total extra rounds across all repairs (0 = unbounded).  A
  /// repair schedule is truncated to the remaining budget.
  std::size_t extra_round_budget = 0;
  /// When true (default) repairs run under the same fault plan at absolute
  /// round offsets; when false the fabric heals after the base run.
  bool faults_during_recovery = true;
};

/// What the self-healing run produced.  `complete` is the strong condition
/// (every live processor holds all n messages); `recovered` is the
/// achievable one (every live processor holds everything known within its
/// surviving component — all a repair can ever deliver when crashes ate
/// messages or split the network).
struct RecoveryOutcome {
  explicit RecoveryOutcome(Solution base_solution)
      : base(std::move(base_solution)) {}

  Solution base;               ///< base schedule + its (fault-free) validation
  sim::SimResult faulty_run;   ///< the base schedule under the plan
  std::vector<model::Schedule> repairs;  ///< repair schedules, in order
  std::size_t attempts = 0;       ///< recovery invocations performed
  std::size_t extra_rounds = 0;   ///< total repair rounds simulated
  bool complete = false;
  bool recovered = false;
  bool repairs_valid = true;   ///< every repair passed the model validator
  std::vector<graph::Vertex> crashed;   ///< processors dead by end of run
  std::vector<std::size_t> missing;     ///< per-processor missing counts
  /// Fraction of (live processor, message) pairs held at the end — the
  /// partial-coverage report for crash-partitioned runs (1.0 on success).
  double coverage = 1.0;
};

/// Runs `options.algorithm` on connected network `g` under `plan`,
/// simulating on the spanning tree as the paper prescribes, then heals on
/// the full network until complete, closed, or out of budget.  Message ids
/// in the outcome are DFS labels (see Solution).
[[nodiscard]] RecoveryOutcome solve_with_recovery(
    const graph::Graph& g, const fault::FaultPlan& plan,
    const RecoveryOptions& options = {});

}  // namespace mg::gossip
