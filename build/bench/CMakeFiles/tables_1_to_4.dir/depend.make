# Empty dependencies file for tables_1_to_4.
# This may be replaced when dependencies are built.
